//! Property-based cross-backend bit-identity: for random allreduce
//! programs, processor counts `p ≤ 64`, machine parameters, optional
//! fault plans and tracing on/off, the thread-per-rank machine and the
//! discrete-event scheduler must produce **byte-identical** profiles —
//! every counter, every virtual time, every trace event — and identical
//! numerical results.
//!
//! This is the enforcement arm of the `SimConfig::backend` contract:
//! the thread pool stays the bit-identity oracle at small `p`, and any
//! event-backend divergence (scheduling, fault pricing, chunking,
//! collective shape) fails here long before the mega-scale runs.

use proptest::prelude::*;
use psse::event::prelude::*;
use psse::event::RankProgram;
use psse::sim::machine::SimConfig;
use psse::sim::prelude::{FaultPlan, FaultSpec, RecoveryPolicy};

/// A recovery-enabled plan: every fault kind fires, retries are generous
/// enough that runs always complete, so both backends return `Ok`.
fn retry_plan(seed: u64, drop: f64, corrupt: f64, dup: f64, delay: f64) -> FaultPlan {
    FaultPlan {
        spec: FaultSpec {
            seed,
            drop_rate: drop,
            corrupt_rate: corrupt,
            duplicate_rate: dup,
            delay_rate: delay,
            delay_seconds: if delay > 0.0 { 1e-5 } else { 0.0 },
            ..FaultSpec::default()
        },
        recovery: RecoveryPolicy {
            max_retries: 32,
            retry_backoff: 1e-7,
            checkpoint: None,
        },
    }
}

/// Run `make` on both backends under `cfg` and require byte identity:
/// equal profiles (counters, traces, makespan) and equal per-rank
/// reduced values.
fn assert_backends_agree<P, F>(p: usize, cfg: &SimConfig, make: F, ctx: &str)
where
    P: RankProgram + Send,
    F: Fn(usize, usize) -> P + Sync,
{
    let threads = run_programs(
        p,
        &SimConfig {
            backend: Backend::Threads,
            ..cfg.clone()
        },
        &make,
    )
    .unwrap_or_else(|e| panic!("{ctx}: thread backend failed: {e}"));
    let events = run_programs(
        p,
        &SimConfig {
            backend: Backend::Events,
            ..cfg.clone()
        },
        &make,
    )
    .unwrap_or_else(|e| panic!("{ctx}: event backend failed: {e}"));
    assert_eq!(threads.profile, events.profile, "{ctx}: profile diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (algorithm, p, machine, chunking, faults, tracing) points
    /// agree byte-for-byte across the two backends.
    #[test]
    fn backends_are_bit_identical(
        alg in 0usize..5,
        p in 1usize..65,
        words in 1usize..80,
        seed in 0u64..1_000_000,
        beta_exp in 0u32..4,
        m in 1usize..96,
        record_trace in any::<bool>(),
        with_faults in any::<bool>(),
        drop in 0.0..0.2f64,
        corrupt in 0.0..0.1f64,
        dup in 0.0..0.1f64,
        delay in 0.0..0.1f64,
    ) {
        let cfg = SimConfig {
            gamma_t: 1e-9,
            beta_t: 1e-6 * 10f64.powi(-(beta_exp as i32)),
            alpha_t: 1e-4,
            max_message_words: m,
            record_trace,
            faults: with_faults.then(|| retry_plan(seed, drop, corrupt, dup, delay)),
            ..SimConfig::default()
        };
        let data: Vec<f64> = (0..words)
            .map(|i| ((i as u64).wrapping_mul(seed | 1) % 1000) as f64 * 0.25 - 100.0)
            .collect();
        match alg {
            0 => {
                let ctx = format!("binomial p={p} m={m} faults={with_faults}");
                assert_backends_agree(
                    p,
                    &cfg,
                    BinomialAllreduce::with_data(Tag(7), data.clone()),
                    &ctx,
                );
            }
            1 => {
                // Recursive doubling needs a power-of-two rank count.
                let p = 1usize << (63 - (p as u64).leading_zeros()).min(6);
                let ctx = format!("rd p={p} m={m} faults={with_faults}");
                assert_backends_agree(
                    p,
                    &cfg,
                    RecursiveDoublingAllreduce::with_data(Tag(7), data.clone()),
                    &ctx,
                );
            }
            2 => {
                let ctx = format!("ring p={p} m={m} faults={with_faults}");
                assert_backends_agree(p, &cfg, RingAllreduce::with_data(Tag(7), data.clone()), &ctx);
            }
            3 => {
                // Sample sort needs p | n and a block of at least p keys
                // per rank; stretch the random data to p·max(p, words).
                let p = p.min(16);
                let bs = words.max(p);
                let keys: Vec<f64> = (0..p * bs)
                    .map(|i| (((i as u64).wrapping_mul(seed | 1)) % 4096) as f64 * 0.5 - 1024.0)
                    .collect();
                let ctx = format!("samplesort p={p} bs={bs} m={m} faults={with_faults}");
                assert_backends_agree(p, &cfg, SampleSort::with_data(keys), &ctx);
            }
            _ => {
                // Stencil needs p | n rows: give each rank `words` rows
                // (≥ halo = 1 each) of an n×n grid.
                let p = p.min(8);
                let n = p * words.clamp(1, 8);
                let grid: Vec<f64> = (0..n * n)
                    .map(|i| (((i as u64).wrapping_mul(seed | 3)) % 997) as f64 * 0.125)
                    .collect();
                let iters = 1 + (seed % 3) as usize;
                let ctx = format!("stencil p={p} n={n} iters={iters} m={m} faults={with_faults}");
                assert_backends_agree(p, &cfg, Stencil1D::with_data(grid, n, 1, iters), &ctx);
            }
        }
    }

    /// The per-rank reduced values agree too (not just the profile): the
    /// event backend's payload routing delivers exactly the bytes the
    /// thread backend's mailboxes do.
    #[test]
    fn backend_results_are_bit_identical(
        p in 1usize..33,
        words in 1usize..50,
        seed in 0u64..1_000_000,
        with_faults in any::<bool>(),
    ) {
        let cfg = SimConfig {
            max_message_words: 17,
            faults: with_faults.then(|| retry_plan(seed, 0.1, 0.05, 0.05, 0.05)),
            ..SimConfig::default()
        };
        let data: Vec<f64> = (0..words).map(|i| (i as f64 + seed as f64 * 1e-6).sin()).collect();
        let run = |backend| {
            run_programs(
                p,
                &SimConfig { backend, ..cfg.clone() },
                BinomialAllreduce::with_data(Tag(0), data.clone()),
            )
            .unwrap()
        };
        let (threads, events) = (run(Backend::Threads), run(Backend::Events));
        prop_assert_eq!(&threads.profile, &events.profile);
        for (r, (a, b)) in threads.programs.iter().zip(&events.programs).enumerate() {
            let (a, b) = (a.result().unwrap(), b.result().unwrap());
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "rank {} diverged", r);
            }
        }
    }
}
