//! End-to-end guarantees of the trace subsystem: recording is
//! deterministic, replay reproduces the live run bit-for-bit, and the
//! Chrome export is structurally valid JSON.

use psse::kernels::Matrix;
use psse::prelude::*;
use psse::sim::machine::{Machine, SimConfig};
use psse::sim::Tag;
use psse::trace::Trace;

fn recording_config() -> SimConfig {
    SimConfig {
        record_trace: true,
        ..sim_config_from(&jaketown())
    }
}

/// Run the 2.5D matmul fixture once with recording on.
fn record_mm25d() -> (SimConfig, psse::sim::profile::Profile) {
    let cfg = recording_config();
    let a = Matrix::random(16, 16, 1);
    let b = Matrix::random(16, 16, 2);
    let (_, profile) = matmul_25d(&a, &b, 8, 2, cfg.clone()).unwrap();
    (cfg, profile)
}

#[test]
fn recording_is_deterministic_for_mm25d() {
    let (cfg, p1) = record_mm25d();
    let (_, p2) = record_mm25d();
    assert_eq!(p1, p2, "two identical runs must produce equal profiles");

    let t1 = Trace::from_run(&cfg, &p1).unwrap();
    let t2 = Trace::from_run(&cfg, &p2).unwrap();
    assert_eq!(
        t1.to_text(),
        t2.to_text(),
        "serialized traces must be byte-identical across runs"
    );
}

#[test]
fn recording_is_deterministic_for_collectives() {
    let run = || {
        let cfg = recording_config();
        let out = Machine::run(8, cfg.clone(), |rank| {
            rank.compute(1_000 * (rank.rank() as u64 + 1));
            let local = vec![rank.rank() as f64; 32];
            let summed = rank.allreduce_sum(Tag(7), local)?;
            let world = psse::sim::collectives::Group::world(rank.size());
            let gathered = rank.allgather(Tag(8), &world, vec![summed[0]])?;
            Ok(gathered.len())
        })
        .unwrap();
        let trace = Trace::from_run(&cfg, &out.profile).unwrap();
        (trace.to_text(), out.profile)
    };
    let (text1, prof1) = run();
    let (text2, prof2) = run();
    assert_eq!(prof1, prof2);
    assert_eq!(text1, text2);
}

#[test]
fn replay_reproduces_live_run_exactly() {
    let (cfg, profile) = record_mm25d();
    let trace = Trace::from_run(&cfg, &profile).unwrap();
    // Bit-exact: identical per-rank counters and to_bits()-equal makespan.
    trace.check_consistency(&profile).unwrap();

    let replayed = trace.replay(&trace.params).unwrap();
    assert_eq!(
        replayed.makespan.to_bits(),
        profile.makespan.to_bits(),
        "replay under recorded parameters must be bit-identical"
    );
}

#[test]
fn text_roundtrip_preserves_replay() {
    let (cfg, profile) = record_mm25d();
    let trace = Trace::from_run(&cfg, &profile).unwrap();
    let restored = Trace::from_text(&trace.to_text()).unwrap();
    assert_eq!(restored.to_text(), trace.to_text());
    restored.check_consistency(&profile).unwrap();
}

#[test]
fn chrome_export_is_structurally_valid_json() {
    let (cfg, profile) = record_mm25d();
    let trace = Trace::from_run(&cfg, &profile).unwrap();
    let json = trace.to_chrome_json();

    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"displayTimeUnit\""));
    // One process-name metadata record per rank.
    assert_eq!(json.matches("process_name").count(), trace.p);

    // Structural validation: braces/brackets balance outside strings,
    // and every quote opens or closes a legal JSON string.
    let (mut depth_obj, mut depth_arr) = (0i64, 0i64);
    let mut in_string = false;
    let mut escaped = false;
    for ch in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_string = false;
            }
            continue;
        }
        match ch {
            '"' => in_string = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        assert!(depth_obj >= 0 && depth_arr >= 0, "unbalanced JSON nesting");
    }
    assert!(!in_string, "unterminated string in Chrome JSON");
    assert_eq!(depth_obj, 0, "unbalanced braces in Chrome JSON");
    assert_eq!(depth_arr, 0, "unbalanced brackets in Chrome JSON");
}
