//! Lower-bound certification: the communication measured on the
//! simulator must respect the paper's lower bounds (§III) — and the
//! communication-avoiding algorithms must sit within modest constants of
//! them. These tests tie all three layers together: theory (psse-core),
//! substrate (psse-sim) and algorithms (psse-algos).

use psse::core::bounds::{memory_independent_word_bound, parallel_word_lower_bound};
use psse::kernels::nbody::random_particles;
use psse::kernels::Matrix;
use psse::prelude::*;
use psse::sim::machine::SimConfig;

/// Average words sent per rank of a profile.
fn avg_words(profile: &psse::sim::Profile) -> f64 {
    profile.total_words_sent() as f64 / profile.p() as f64
}

#[test]
fn cannon_respects_and_nearly_attains_the_2d_bound() {
    // 2D: M = Θ(n²/p); the memory-dependent bound gives
    // W = Ω(F/√M − (I+O)) per processor, which for Cannon's balanced
    // blocks is Θ(n²/√p).
    let n = 64u64;
    for p in [4u64, 16, 64] {
        let a = Matrix::random(n as usize, n as usize, 1);
        let b = Matrix::random(n as usize, n as usize, 2);
        let (_, profile) = cannon_matmul(&a, &b, p as usize, SimConfig::counters_only()).unwrap();
        let nf = n as f64;
        let mem = 4.0 * nf * nf / p as f64; // measured footprint: 4 blocks
        let flops = nf * nf * nf / p as f64; // multiplies (model counts n³)
        let io = 3.0 * nf * nf / p as f64;
        let bound = parallel_word_lower_bound(flops, mem, io, 0.0);
        let measured = avg_words(&profile);
        assert!(
            measured >= bound,
            "p={p}: measured {measured} below bound {bound}"
        );
        // Near-optimality: within a factor 8 of the *undiscounted*
        // memory-dependent term F/√M (the I+O discount makes the formal
        // bound weak at toy scale).
        let term = flops / mem.sqrt();
        assert!(
            measured < 8.0 * term,
            "p={p}: measured {measured} far above F/sqrt(M) = {term}"
        );
    }
}

#[test]
fn matmul_25d_beats_the_2d_bound_but_not_the_memory_independent_one() {
    let n = 64u64;
    let p = 256u64;
    let c = 4;
    let a = Matrix::random(n as usize, n as usize, 3);
    let b = Matrix::random(n as usize, n as usize, 4);
    let (_, p25) = matmul_25d(&a, &b, p as usize, c as usize, SimConfig::counters_only()).unwrap();
    let (_, p2d) = cannon_matmul(&a, &b, 64, SimConfig::counters_only()).unwrap();

    // Replication buys real communication: per-rank average words on
    // p = 256 ranks are well below the 2D per-rank average on 64 ranks.
    assert!(avg_words(&p25) < avg_words(&p2d));

    // But no algorithm goes below the memory-independent bound
    // W = Ω(n²/p^(2/3)) (constants: ours is a lower bound with constant
    // 1; the measured run must be at or above a small fraction of it).
    let mi = memory_independent_word_bound(n, p, 3.0);
    assert!(
        avg_words(&p25) >= mi / 8.0,
        "measured {} vs memory-independent bound {mi}",
        avg_words(&p25)
    );
}

#[test]
fn nbody_replication_tracks_the_word_model() {
    // Model: W = n²/(p·M) per rank with M = Θ(c·n/p) block words. The
    // ring algorithm's measured traffic (4 words/particle) should track
    // the model shape across c within a constant.
    let n = 256usize;
    let particles = random_particles(n, 5);
    let mut ratios = Vec::new();
    for c in [1usize, 2, 4] {
        let pr = 16;
        let p = pr * c;
        let (_, profile) = nbody_replicated(&particles, pr, c, SimConfig::counters_only()).unwrap();
        let nf = n as f64;
        let mem = nf / pr as f64; // particles resident per rank (one block)
        let model_w = nf * nf / (p as f64 * mem);
        ratios.push(avg_words(&profile) / model_w);
    }
    // Constant across c within 2x (same algorithm family, same units).
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min < 2.0,
        "measured/model ratio should be stable across c: {ratios:?}"
    );
}

#[test]
fn fft_naive_alltoall_attains_its_word_cost() {
    // Model: W = Θ(n/p) per rank (2 words per complex value, and only
    // (p−1)/p of the data actually moves).
    let n = 4096usize;
    let mut rng = psse::kernels::rng::XorShift64::new(7);
    let x: Vec<psse::kernels::Complex64> = (0..n)
        .map(|_| psse::kernels::Complex64::new(rng.next_f64(), rng.next_f64()))
        .collect();
    for p in [4usize, 8, 16] {
        let (_, profile) =
            distributed_fft(&x, p, AllToAllKind::Pairwise, SimConfig::counters_only()).unwrap();
        let measured = avg_words(&profile);
        let model = 2.0 * n as f64 / p as f64; // words (2 per complex)
        let ratio = measured / model;
        assert!(
            (0.5..=1.1).contains(&ratio),
            "p={p}: measured {measured} vs model {model}"
        );
    }
}

#[test]
fn samplesort_attains_the_scquizzato_silvestri_bound() {
    // Two independent certificates. (1) The shipped samplesort kernel
    // (the bucket-counting nest, every key against every splitter)
    // derives σ = 2 through the HBL LP — the n-body exponent family —
    // confirming sorting's all-pairs comparison structure. (2) The
    // *exchange* the simulator actually runs is governed by the
    // Scquizzato–Silvestri Ω(n/p) words-per-rank bound (arXiv:1307.1805),
    // which regular sampling attains: every key crosses the network at
    // most once.
    let text = std::fs::read_to_string("specs/kernels/samplesort.kernel").unwrap();
    let kernel = Kernel::parse(&text).unwrap();
    let (cost, _) = derive(&kernel).unwrap();
    assert_eq!(cost.sigma, Rational::int(2));
    assert_eq!((cost.depth, cost.rmax), (2, 1));

    let n = 1usize << 14;
    let keys = random_keys(n, 21);
    for p in [4usize, 8, 16] {
        let (_, profile) = sample_sort(&keys, p, SimConfig::counters_only()).unwrap();
        let bound = n as f64 / p as f64;
        let measured = avg_words(&profile);
        // Attainment within constants: a rank keeps the ≈1/p of its
        // keys that land in its own bucket (free self-sends), so the
        // exchange moves (p−1)/p of each block, plus the (p−1)²
        // splitter samples on top.
        let lo = (1.0 - 1.0 / p as f64) * bound * 0.9;
        let hi = 1.1 * (bound + ((p - 1) * (p - 1)) as f64);
        assert!(
            (lo..=hi).contains(&measured),
            "p={p}: measured {measured} outside [{lo}, {hi}] around bound {bound}"
        );
        // But the latency attains Θ(p), not Θ(1): 2(p−1) messages per
        // rank (sample allgather + pairwise all-to-all) — the term that
        // denies sorting a perfect strong scaling range (paper §IV's
        // FFT counterexample, same mechanism).
        assert_eq!(profile.max_msgs_sent() as usize, 2 * (p - 1));
    }
}

#[test]
fn stencil_respects_the_skewed_kernel_bound() {
    // The skewed space-time stencil kernel also derives σ = 2, giving
    // W = Ω(G/(p·M)) for G total grid updates. A plain halo-exchange
    // sweep (no temporal blocking) holds M = n²/p, where the bound
    // degenerates to Ω(iters) — respected by orders of magnitude, but
    // *not* attained: attaining it requires time-tiling. What the
    // measured traffic does match exactly is the surface closed form
    // iters·(2hb + 2h(b+2h)) per rank, b = n/√p.
    let text = std::fs::read_to_string("specs/kernels/stencil3.kernel").unwrap();
    let kernel = Kernel::parse(&text).unwrap();
    let (cost, _) = derive(&kernel).unwrap();
    assert_eq!(cost.sigma, Rational::int(2));
    assert_eq!(cost.depth, 3);

    let n = 64usize;
    let (halo, iters) = (1usize, 4usize);
    let grid = random_grid(n, 22);
    for p in [4usize, 16] {
        let (_, profile) = halo_stencil(
            &grid,
            n,
            halo,
            iters,
            Decomp::TwoD,
            p,
            SimConfig::counters_only(),
        )
        .unwrap();
        let mem = (n * n) as f64 / p as f64;
        let updates = (iters * n * n) as f64;
        let bound = updates / (p as f64 * mem.powf(cost.sigma.to_f64() - 1.0));
        let measured = avg_words(&profile);
        assert!(
            measured >= bound,
            "p={p}: measured {measured} below HBL bound {bound}"
        );
        let b = n / (p as f64).sqrt() as usize;
        let surface = (iters * (2 * halo * b + 2 * halo * (b + 2 * halo))) as f64;
        assert_eq!(measured, surface, "p={p}");
    }
}

#[test]
fn strassen_leaf_traffic_matches_the_fum_bound() {
    // Non-leader leaf ranks send exactly (n/2^k)² = n²/p^(2/ω0) words —
    // the memory-independent Strassen bound of Ballard et al.
    let n = 32u64;
    let p = 49u64; // k = 2
    let a = Matrix::random(n as usize, n as usize, 8);
    let b = Matrix::random(n as usize, n as usize, 9);
    let (_, profile) =
        strassen_distributed(&a, &b, p as usize, SimConfig::counters_only()).unwrap();
    let bound = memory_independent_word_bound(n, p, psse::core::STRASSEN_OMEGA);
    // p^(2/ω0) = 4^k exactly for p = 7^k.
    let leaf_words = (n as f64 / 4.0).powi(2);
    assert!((leaf_words / bound - 1.0).abs() < 1e-9);
    // Rank 1 is a deepest-level non-leader: its sends equal the bound.
    assert_eq!(profile.per_rank[1].words_sent as f64, leaf_words);
}
