//! Property-based tests of the fault-injection layer: deterministic
//! replayable fault schedules, exact recovery across every algorithm
//! family, and ABFT detection of silent corruption.

use proptest::prelude::*;
use psse::kernels::fft::{fft, Complex64};
use psse::kernels::gemm::matmul;
use psse::kernels::nbody::{accumulate_forces, random_particles};
use psse::kernels::rng::XorShift64;
use psse::kernels::Matrix;
use psse::prelude::*;
use psse::sim::machine::SimConfig;
use psse::trace::Trace;

/// A recovery-enabled plan: drops (and optionally duplicates/delays)
/// repaired by generous retries, so every run completes.
fn retry_plan(seed: u64, drop: f64, dup: f64, delay: f64) -> FaultPlan {
    FaultPlan {
        spec: FaultSpec {
            seed,
            drop_rate: drop,
            duplicate_rate: dup,
            delay_rate: delay,
            delay_seconds: if delay > 0.0 { 1e-6 } else { 0.0 },
            ..FaultSpec::default()
        },
        recovery: RecoveryPolicy {
            max_retries: 32,
            retry_backoff: 1e-7,
            checkpoint: None,
        },
    }
}

fn faulted_cfg(plan: FaultPlan, record: bool) -> SimConfig {
    SimConfig {
        faults: Some(plan),
        record_trace: record,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// (a) The fault schedule is a pure function of the plan: two runs
    /// under the same seeded `FaultPlan` serialize to byte-identical
    /// traces (same fault events at the same virtual times), while the
    /// fault-free run of the same program differs once faults fire.
    #[test]
    fn same_fault_seed_gives_byte_identical_traces(
        seed in 0u64..1_000_000,
        drop in 0.05..0.3f64,
        dup in 0.0..0.1f64,
    ) {
        let a = Matrix::random(16, 16, 1);
        let b = Matrix::random(16, 16, 2);
        let run = |plan: Option<FaultPlan>| {
            let cfg = SimConfig {
                faults: plan,
                record_trace: true,
                ..SimConfig::default()
            };
            let (_, profile) = matmul_25d(&a, &b, 8, 2, cfg.clone()).unwrap();
            let tr = Trace::from_run(&cfg, &profile).unwrap();
            tr.check_consistency(&profile).unwrap();
            tr.to_text()
        };
        let plan = retry_plan(seed, drop, dup, 0.0);
        let t1 = run(Some(plan.clone()));
        let t2 = run(Some(plan));
        prop_assert_eq!(&t1, &t2, "same seed must reproduce the trace byte for byte");
        let clean = run(None);
        if t1.contains("\nY ") {
            prop_assert!(t1 != clean, "a retried run must not serialize like a clean one");
        }
    }

    /// (b) Drop faults + retry recovery leave every algorithm family's
    /// numerics bit-identical to the fault-free run: retransmission
    /// resends the same payload, so recovery is exact, not approximate.
    #[test]
    fn retry_recovery_is_numerically_exact_for_every_algorithm(
        seed in 0u64..1_000_000,
        drop in 0.02..0.25f64,
        alg in 0usize..7,
    ) {
        let plan = retry_plan(seed, drop, 0.0, 0.0);
        let free = SimConfig::default;
        let faulted = || faulted_cfg(plan.clone(), false);
        match alg {
            0 => {
                let a = Matrix::random(16, 16, 1);
                let b = Matrix::random(16, 16, 2);
                let (c0, _) = cannon_matmul(&a, &b, 16, free()).unwrap();
                let (c1, _) = cannon_matmul(&a, &b, 16, faulted()).unwrap();
                prop_assert_eq!(c0.as_slice(), c1.as_slice());
            }
            1 => {
                let a = Matrix::random(16, 16, 1);
                let b = Matrix::random(16, 16, 2);
                let (c0, _) = summa_matmul(&a, &b, 16, 4, free()).unwrap();
                let (c1, _) = summa_matmul(&a, &b, 16, 4, faulted()).unwrap();
                prop_assert_eq!(c0.as_slice(), c1.as_slice());
            }
            2 => {
                let a = Matrix::random(16, 16, 1);
                let b = Matrix::random(16, 16, 2);
                let (c0, _) = matmul_25d(&a, &b, 32, 2, free()).unwrap();
                let (c1, _) = matmul_25d(&a, &b, 32, 2, faulted()).unwrap();
                prop_assert_eq!(c0.as_slice(), c1.as_slice());
            }
            3 => {
                let a = Matrix::random(16, 16, 1);
                let b = Matrix::random(16, 16, 2);
                let (c0, _) = matmul_3d(&a, &b, 64, free()).unwrap();
                let (c1, _) = matmul_3d(&a, &b, 64, faulted()).unwrap();
                prop_assert_eq!(c0.as_slice(), c1.as_slice());
            }
            4 => {
                let a = Matrix::random_diagonally_dominant(16, 3);
                let (p0, _) = lu_2d(&a, 16, free()).unwrap();
                let (p1, _) = lu_2d(&a, 16, faulted()).unwrap();
                prop_assert_eq!(p0.as_slice(), p1.as_slice());
            }
            5 => {
                let mut rng = XorShift64::new(seed.wrapping_add(9));
                let x: Vec<Complex64> = (0..256)
                    .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
                    .collect();
                let (s0, _) = distributed_fft(&x, 8, AllToAllKind::Pairwise, free()).unwrap();
                let (s1, _) = distributed_fft(&x, 8, AllToAllKind::Pairwise, faulted()).unwrap();
                prop_assert_eq!(s0.len(), s1.len());
                for (u, v) in s0.iter().zip(&s1) {
                    prop_assert!(u.re.to_bits() == v.re.to_bits() && u.im.to_bits() == v.im.to_bits());
                }
                // Sanity: the transform itself is right.
                let reference = fft(&x);
                for (u, v) in s1.iter().zip(&reference) {
                    prop_assert!((*u - *v).abs() < 1e-8);
                }
            }
            _ => {
                let ps = random_particles(32, 8);
                let (f0, _) = nbody_replicated(&ps, 8, 2, free()).unwrap();
                let (f1, _) = nbody_replicated(&ps, 8, 2, faulted()).unwrap();
                prop_assert_eq!(&f0, &f1);
                let mut serial = vec![[0.0; 3]; ps.len()];
                accumulate_forces(&ps, &ps, &mut serial);
                for (x, y) in f1.iter().zip(&serial) {
                    for d in 0..3 {
                        prop_assert!((x[d] - y[d]).abs() < 1e-9);
                    }
                }
            }
        }
    }

    /// (c) ABFT detects every silent corruption that alters the SUMMA
    /// product: whenever the unprotected run's result differs from the
    /// true product, the checksum-protected run must fail with a
    /// corruption error — and with no faults it must succeed.
    #[test]
    fn abft_detects_every_silent_corruption_in_summa(
        seed in 0u64..1_000_000,
        corrupt in 0.0..0.6f64,
    ) {
        let n = 16;
        let a = Matrix::random(n, n, 4);
        let b = Matrix::random(n, n, 5);
        let reference = matmul(&a, &b);
        // Silent corruption: no retries, perturbed words are delivered.
        let plan = FaultPlan {
            spec: FaultSpec {
                seed,
                corrupt_rate: corrupt,
                ..FaultSpec::default()
            },
            recovery: RecoveryPolicy::default(),
        };
        let plain = summa_matmul(&a, &b, 4, 8, faulted_cfg(plan.clone(), false)).unwrap();
        let was_corrupted = plain.0.max_abs_diff(&reference) > 1e-9;
        let abft = summa_matmul_abft(&a, &b, 4, 8, faulted_cfg(plan, false));
        if was_corrupted {
            let err = abft.expect_err("corruption altered the product; ABFT must catch it");
            prop_assert!(
                matches!(err, SimError::CorruptPayload { .. } | SimError::PeerFailed(_)),
                "unexpected error kind: {}", err
            );
        } else if corrupt == 0.0 {
            let (c, _) = abft.unwrap();
            prop_assert!(c.max_abs_diff(&reference) < 1e-10);
        }
        // (0 < corrupt, uncorrupted result): faults may still have hit —
        // e.g. the checksum word itself — so either outcome is legal.
    }
}
