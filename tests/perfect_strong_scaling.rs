//! The headline integration test: *perfect strong scaling using no
//! additional energy*, measured end-to-end — real distributed algorithms
//! on the simulated machine, counters priced with the paper's Eq. 2.

use psse::kernels::fft::Complex64;
use psse::kernels::nbody::random_particles;
use psse::kernels::rng::XorShift64;
use psse::kernels::Matrix;
use psse::prelude::*;

fn machine() -> MachineParams {
    MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(4e-9)
        .alpha_t(1e-7)
        .gamma_e(2e-9)
        .beta_e(8e-9)
        .alpha_e(2e-7)
        .delta_e(1e-7)
        .epsilon_e(1e-4)
        .max_message_words(4096.0)
        .mem_words(1e9)
        .build()
        .unwrap()
}

#[test]
fn matmul_25d_scales_runtime_not_energy() {
    let mp = machine();
    let cfg = sim_config_from(&mp);
    let n = 256;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let reference = psse::kernels::gemm::matmul(&a, &b);

    let mut measurements = Vec::new();
    for c in [1usize, 2, 4] {
        let p = 64 * c;
        let (cm, profile) = matmul_25d(&a, &b, p, c, cfg.clone()).unwrap();
        assert!(cm.max_abs_diff(&reference) < 1e-9);
        measurements.push((c as f64, measure(&profile, &mp)));
    }
    let (_, base) = measurements[0];
    for (c, m) in &measurements[1..] {
        let speedup = base.time / m.time;
        assert!(
            speedup > 0.72 * c,
            "runtime should scale ~1/p: c = {c}, speedup {speedup}"
        );
        let e_ratio = m.energy / base.energy;
        assert!(
            (0.8..1.25).contains(&e_ratio),
            "energy should stay ~constant: c = {c}, ratio {e_ratio}"
        );
    }
}

#[test]
fn nbody_replication_scales_runtime_not_energy() {
    let mp = machine();
    let cfg = sim_config_from(&mp);
    let particles = random_particles(256, 3);

    let mut measurements = Vec::new();
    for c in [1usize, 2, 4] {
        let (_, profile) = nbody_replicated(&particles, 16, c, cfg.clone()).unwrap();
        measurements.push((c as f64, measure(&profile, &mp)));
    }
    let (_, base) = measurements[0];
    for (c, m) in &measurements[1..] {
        let speedup = base.time / m.time;
        assert!(speedup > 0.8 * c, "c = {c}, speedup {speedup}");
        let e_ratio = m.energy / base.energy;
        assert!(
            (0.9..1.1).contains(&e_ratio),
            "c = {c}, energy ratio {e_ratio}"
        );
    }
}

#[test]
fn fft_is_the_counterexample() {
    // FFT energy must NOT stay constant as p grows (the message/latency
    // terms grow) — and runtime gains are sublinear at scale.
    let mp = machine();
    let cfg = sim_config_from(&mp);
    let mut rng = XorShift64::new(9);
    let x: Vec<Complex64> = (0..4096)
        .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
        .collect();
    let mut energies = Vec::new();
    for p in [4usize, 8, 16, 32] {
        let (_, profile) = distributed_fft(&x, p, AllToAllKind::Pairwise, cfg.clone()).unwrap();
        energies.push(measure(&profile, &mp).energy);
    }
    assert!(
        energies.last().unwrap() > energies.first().unwrap(),
        "FFT energy must grow with p: {energies:?}"
    );
}

#[test]
fn lu_messages_grow_with_p() {
    let mp = machine();
    let cfg = sim_config_from(&mp);
    let a = Matrix::random_diagonally_dominant(64, 5);
    let mut last = 0;
    for p in [4usize, 16, 64] {
        let (_, profile) = lu_2d(&a, p, cfg.clone()).unwrap();
        let s = profile.max_msgs_sent();
        assert!(s > last, "LU critical path: S must grow with p");
        last = s;
    }
}

#[test]
fn measured_counters_track_the_cost_model() {
    // The simulator's measured (F, W) for 2.5D matmul must stay within a
    // small constant of the analytic per-processor model (Eq. 8 with the
    // flop count doubled for multiply-adds).
    let mp = machine();
    let cfg = sim_config_from(&mp);
    let n = 128usize;
    let a = Matrix::random(n, n, 7);
    let b = Matrix::random(n, n, 8);
    for (p, c) in [(16usize, 1usize), (64, 1), (64, 4)] {
        let (_, profile) = matmul_25d(&a, &b, p, c, cfg.clone()).unwrap();
        let nf = n as f64;
        let model_f = nf * nf * nf / p as f64;
        let measured_f = profile.max_flops() as f64;
        let ratio_f = measured_f / (2.0 * model_f);
        assert!(
            (0.9..=1.3).contains(&ratio_f),
            "flops off model at (p={p}, c={c}): ratio {ratio_f}"
        );
        // Memory per rank: 4 blocks of (n/q)² = 4·c·n²/p words.
        let q = ((p / c) as f64).sqrt();
        let model_m = 4.0 * (nf / q) * (nf / q);
        let measured_m = profile.max_mem_peak() as f64;
        assert!(
            (measured_m / model_m - 1.0).abs() < 0.35,
            "memory off model: measured {measured_m}, model {model_m}"
        );
        // Words: model W = n³/(p·sqrt(M/3))·Θ(1); just require the same
        // order of magnitude (factor 4).
        let mem = (nf / q) * (nf / q);
        let model_w = nf * nf * nf / (p as f64 * mem.sqrt());
        let measured_w = profile.max_words_sent() as f64;
        let ratio_w = measured_w / model_w;
        assert!(
            (0.25..=6.0).contains(&ratio_w),
            "words far from model at (p={p}, c={c}): ratio {ratio_w}"
        );
    }
}

#[test]
fn model_predicts_measured_scaling_shape() {
    // Analytic T from Eq. 9 and the simulator makespan must agree on the
    // *shape*: their ratio stays within a small band across the range.
    use psse::core::time::t_matmul_25d;
    let mp = machine();
    let cfg = sim_config_from(&mp);
    let n = 256usize;
    let a = Matrix::random(n, n, 9);
    let b = Matrix::random(n, n, 10);
    let mut ratios = Vec::new();
    for c in [1usize, 2, 4] {
        let p = 64 * c;
        let (_, profile) = matmul_25d(&a, &b, p, c, cfg.clone()).unwrap();
        let q = 8.0;
        let mem = (n as f64 / q).powi(2);
        // Eq. 9 prices n³ flops; the implementation executes 2n³
        // (multiply + add), so compare against the doubled model.
        let model = 2.0 * t_matmul_25d(&mp, n as u64, p as u64, mem);
        ratios.push(profile.makespan / model);
    }
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min < 1.6,
        "measured/model ratio should be stable across p: {ratios:?}"
    );
}
