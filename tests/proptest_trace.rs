//! Property-based tests of trace replay: one recording re-prices
//! faithfully for *every* machine, and replay time is linear in each
//! Eq. 1 parameter.

use proptest::prelude::*;
use psse::kernels::Matrix;
use psse::prelude::*;
use psse::sim::machine::SimConfig;
use psse::sim::profile::Profile;
use psse::trace::{ReplayParams, Trace};
use std::sync::OnceLock;

/// A random but physically sensible machine (time side only matters
/// for replay; energy parameters ride along for `reprice`).
fn machines() -> impl Strategy<Value = MachineParams> {
    (
        1e-13..1e-8f64, // gamma_t
        1e-11..1e-6f64, // beta_t
        1e-9..1e-4f64,  // alpha_t
        1.0..1e5f64,    // max message words
    )
        .prop_map(|(gt, bt, at, m)| {
            MachineParams::builder()
                .gamma_t(gt)
                .beta_t(bt)
                .alpha_t(at)
                .gamma_e(1e-10)
                .beta_e(1e-9)
                .alpha_e(0.0)
                .delta_e(1e-10)
                .epsilon_e(0.1)
                .max_message_words(m)
                .build()
                .expect("strategy produces valid machines")
        })
}

/// The small run fixtures: (algorithm label, n, p, c). All satisfy the
/// 2.5D validity constraints `p = q²c`, `c | q`, `q | n`.
const FIXTURES: [(usize, usize, usize); 3] = [(16, 8, 2), (16, 4, 1), (16, 16, 1)];

/// Record each fixture once (under recording defaults) and reuse the
/// traces across proptest cases — recording spawns `p` threads per run.
fn recorded(idx: usize) -> &'static Trace {
    static TRACES: OnceLock<Vec<Trace>> = OnceLock::new();
    &TRACES.get_or_init(|| {
        FIXTURES
            .iter()
            .map(|&(n, p, c)| {
                let cfg = SimConfig {
                    record_trace: true,
                    ..sim_config_from(&jaketown())
                };
                let a = Matrix::random(n, n, 1);
                let b = Matrix::random(n, n, 2);
                let (_, profile) = matmul_25d(&a, &b, p, c, cfg.clone()).unwrap();
                let trace = Trace::from_run(&cfg, &profile).unwrap();
                trace.check_consistency(&profile).unwrap();
                trace
            })
            .collect()
    })[idx]
}

/// Run the same fixture live under `mp` (no recording).
fn live_profile(idx: usize, mp: &MachineParams) -> Profile {
    let (n, p, c) = FIXTURES[idx];
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let (_, profile) = matmul_25d(&a, &b, p, c, sim_config_from(mp)).unwrap();
    profile
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying a recording under any machine's parameters reproduces
    /// what the live simulator measures on that machine.
    #[test]
    fn replay_matches_live_execution(idx in 0usize..FIXTURES.len(), mp in machines()) {
        let trace = recorded(idx);
        let replayed = trace.replay(&ReplayParams::from(&mp)).unwrap();
        let live = live_profile(idx, &mp);
        prop_assert!(
            rel_close(replayed.makespan, live.makespan, 1e-9),
            "replay {} vs live {}", replayed.makespan, live.makespan
        );
        // The DAG itself is machine-independent: identical traffic.
        prop_assert_eq!(replayed.total_flops(), live.total_flops());
        prop_assert_eq!(replayed.total_words_sent(), live.total_words_sent());
        prop_assert_eq!(replayed.total_msgs_sent(), live.total_msgs_sent());
    }

    /// With the other parameters zeroed, replay time is homogeneous in
    /// each Eq. 1 price: doubling the price doubles the makespan
    /// (exactly — doubling is exponent-shift-exact in binary floats).
    #[test]
    fn replay_linear_in_each_time_param(
        idx in 0usize..FIXTURES.len(),
        gamma in 1e-13..1e-8f64,
        beta in 1e-11..1e-6f64,
        alpha in 1e-9..1e-4f64,
        which in 0usize..3,
    ) {
        let trace = recorded(idx);
        let mut one = ReplayParams {
            gamma_t: 0.0,
            beta_t: 0.0,
            alpha_t: 0.0,
            ..trace.params.clone()
        };
        match which {
            0 => one.gamma_t = gamma,
            1 => one.beta_t = beta,
            _ => one.alpha_t = alpha,
        }
        let mut two = one.clone();
        two.gamma_t *= 2.0;
        two.beta_t *= 2.0;
        two.alpha_t *= 2.0;

        let t1 = trace.replay(&one).unwrap().makespan;
        let t2 = trace.replay(&two).unwrap().makespan;
        prop_assert!(t1 > 0.0, "fixture exercises every cost term");
        prop_assert_eq!(t2.to_bits(), (2.0 * t1).to_bits());
    }

    /// Joint homogeneity: scaling all three prices by 2 scales the
    /// whole makespan by 2.
    #[test]
    fn replay_homogeneous_in_all_params(
        idx in 0usize..FIXTURES.len(),
        mp in machines(),
    ) {
        let trace = recorded(idx);
        let one = ReplayParams::from(&mp);
        let mut two = one.clone();
        two.gamma_t *= 2.0;
        two.beta_t *= 2.0;
        two.alpha_t *= 2.0;
        let t1 = trace.replay(&one).unwrap().makespan;
        let t2 = trace.replay(&two).unwrap().makespan;
        prop_assert_eq!(t2.to_bits(), (2.0 * t1).to_bits());
    }
}
