//! Markdown link and anchor checker over the top-level documentation.
//!
//! Every inline link in the shipped docs must resolve: relative paths
//! to files that exist in the repository, `#anchors` to headings that
//! GitHub's slugger would actually generate (in the same file or the
//! linked one). External `http(s)` URLs are skipped — the check must
//! work offline — but everything else is load-bearing: a stale
//! `[see DESIGN.md §10](DESIGN.md#10-...)` is a doc bug this test
//! catches at CI time.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// The documentation set under check, all relative to the repo root.
const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "TUTORIAL.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGELOG.md",
    "PAPER.md",
    "CHANGES.md",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// GitHub's heading slugger: lowercase, strip everything but
/// alphanumerics / hyphens / underscores / spaces, spaces to hyphens.
/// Repeated headings get `-1`, `-2`, ... suffixes.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// All anchors a markdown file exposes, with GitHub's duplicate
/// numbering. Headings inside fenced code blocks don't count.
fn anchors_of(text: &str) -> HashSet<String> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let trimmed = line.trim_start();
        let hashes = trimmed.chars().take_while(|&c| c == '#').count();
        if !(1..=6).contains(&hashes) || !trimmed[hashes..].starts_with(' ') {
            continue;
        }
        let base = slug(&trimmed[hashes + 1..]);
        let mut candidate = base.clone();
        let mut n = 0;
        while !seen.insert(candidate.clone()) {
            n += 1;
            candidate = format!("{base}-{n}");
        }
    }
    seen
}

/// Inline link targets in one line, with inline code spans removed so
/// shell snippets can't masquerade as links.
fn link_targets(line: &str) -> Vec<String> {
    let mut clean = String::new();
    let mut in_code = false;
    for c in line.chars() {
        if c == '`' {
            in_code = !in_code;
        } else if !in_code {
            clean.push(c);
        }
    }
    let mut out = Vec::new();
    let mut rest = clean.as_str();
    while let Some(pos) = rest.find("](") {
        rest = &rest[pos + 2..];
        let Some(end) = rest.find(')') else { break };
        out.push(rest[..end].trim().to_string());
        rest = &rest[end + 1..];
    }
    out
}

/// Check every link in `doc`; push one message per broken link.
fn check_doc(doc: &str, errors: &mut Vec<String>) {
    let root = repo_root();
    let text = match std::fs::read_to_string(root.join(doc)) {
        Ok(t) => t,
        Err(e) => {
            errors.push(format!("{doc}: unreadable: {e}"));
            return;
        }
    };
    let own_anchors = anchors_of(&text);
    let mut in_fence = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        for target in link_targets(line) {
            let target = target
                .trim_start_matches('<')
                .trim_end_matches('>')
                .to_string();
            if target.contains("://") || target.starts_with("mailto:") || target.is_empty() {
                continue;
            }
            let at = format!("{doc}:{}", lineno + 1);
            if let Some(anchor) = target.strip_prefix('#') {
                if !own_anchors.contains(anchor) {
                    errors.push(format!("{at}: broken anchor `#{anchor}`"));
                }
                continue;
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (target.as_str(), None),
            };
            let full = root.join(path_part);
            if !full.exists() {
                errors.push(format!("{at}: broken path `{path_part}`"));
                continue;
            }
            if let Some(anchor) = anchor {
                if Path::new(path_part).extension().is_some_and(|e| e == "md") {
                    let linked = std::fs::read_to_string(&full).unwrap_or_default();
                    if !anchors_of(&linked).contains(anchor) {
                        errors.push(format!("{at}: broken anchor `{path_part}#{anchor}`"));
                    }
                }
            }
        }
    }
}

#[test]
fn all_doc_links_and_anchors_resolve() {
    let mut errors = Vec::new();
    for doc in DOCS {
        check_doc(doc, &mut errors);
    }
    assert!(
        errors.is_empty(),
        "broken documentation links:\n  {}",
        errors.join("\n  ")
    );
}

#[test]
fn slugger_matches_github_conventions() {
    assert_eq!(slug("Observability"), "observability");
    assert_eq!(
        slug("10. Self-profiling & metrics"),
        "10-self-profiling--metrics"
    );
    assert_eq!(slug("`psse lab run`"), "psse-lab-run");
    assert_eq!(slug("Eq. 1 / Eq. 2 terms"), "eq-1--eq-2-terms");
}

#[test]
fn anchor_duplicates_get_numbered() {
    let text = "# Same\n## Same\n### Other\n";
    let a = anchors_of(text);
    assert!(a.contains("same"));
    assert!(a.contains("same-1"));
    assert!(a.contains("other"));
}
