//! Cross-algorithm consistency: every distributed implementation must
//! agree with its sequential reference and with each other.

use psse::kernels::fft::{fft, Complex64};
use psse::kernels::gemm::matmul;
use psse::kernels::lu::{lu_nopivot_inplace, split_lu};
use psse::kernels::nbody::{accumulate_forces, random_particles};
use psse::kernels::rng::XorShift64;
use psse::kernels::strassen::strassen;
use psse::kernels::Matrix;
use psse::prelude::*;
use psse::sim::machine::SimConfig;

#[test]
fn all_matmul_algorithms_agree() {
    let n = 16;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let cfg = SimConfig::counters_only;

    let reference = matmul(&a, &b);
    let seq_strassen = strassen(&a, &b);
    let (cannon, _) = cannon_matmul(&a, &b, 16, cfg()).unwrap();
    let (summa, _) = summa_matmul(&a, &b, 16, 4, cfg()).unwrap();
    let (mm25, _) = matmul_25d(&a, &b, 32, 2, cfg()).unwrap();
    let (mm3, _) = matmul_3d(&a, &b, 64, cfg()).unwrap();
    let (strd, _) = strassen_distributed(&a, &b, 7, cfg()).unwrap();

    for (name, m) in [
        ("sequential strassen", &seq_strassen),
        ("cannon", &cannon),
        ("summa", &summa),
        ("2.5d", &mm25),
        ("3d", &mm3),
        ("distributed strassen", &strd),
    ] {
        assert!(
            m.max_abs_diff(&reference) < 1e-9,
            "{name} disagrees with the reference product"
        );
    }
}

#[test]
fn distributed_lu_reconstructs_input() {
    let n = 32;
    let a = Matrix::random_diagonally_dominant(n, 4);
    let (packed, _) = lu_2d(&a, 16, SimConfig::counters_only()).unwrap();
    let (l, u) = split_lu(&packed);
    let recon = matmul(&l, &u);
    assert!(recon.relative_error(&a) < 1e-10);

    // And matches the sequential factorization elementwise.
    let mut seq = a.clone();
    lu_nopivot_inplace(&mut seq).unwrap();
    assert!(packed.max_abs_diff(&seq) < 1e-9);
}

#[test]
fn distributed_fft_variants_agree_with_kernel() {
    let n = 1024;
    let mut rng = XorShift64::new(6);
    let x: Vec<Complex64> = (0..n)
        .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
        .collect();
    let reference = fft(&x);
    for kind in [AllToAllKind::Pairwise, AllToAllKind::Hypercube] {
        let (spec, _) = distributed_fft(&x, 8, kind, SimConfig::counters_only()).unwrap();
        let err = spec
            .iter()
            .zip(&reference)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-8, "{kind:?}: max error {err}");
    }
}

#[test]
fn nbody_variants_agree_with_serial() {
    let ps = random_particles(64, 8);
    let mut serial = vec![[0.0; 3]; ps.len()];
    accumulate_forces(&ps, &ps, &mut serial);

    let (ring, _) = nbody_ring(&ps, 8, SimConfig::counters_only()).unwrap();
    let (repl, _) = nbody_replicated(&ps, 8, 4, SimConfig::counters_only()).unwrap();
    for i in 0..ps.len() {
        for d in 0..3 {
            assert!((ring[i][d] - serial[i][d]).abs() < 1e-9);
            assert!((repl[i][d] - serial[i][d]).abs() < 1e-9);
        }
    }
}

#[test]
fn profiles_conserve_traffic() {
    // Every word sent over a link is received exactly once — across all
    // algorithm families.
    let a = Matrix::random(16, 16, 1);
    let b = Matrix::random(16, 16, 2);
    let (_, p1) = matmul_25d(&a, &b, 32, 2, SimConfig::counters_only()).unwrap();
    let ps = random_particles(32, 2);
    let (_, p2) = nbody_replicated(&ps, 8, 2, SimConfig::counters_only()).unwrap();
    let mut rng = XorShift64::new(1);
    let x: Vec<Complex64> = (0..256)
        .map(|_| Complex64::new(rng.next_f64(), rng.next_f64()))
        .collect();
    let (_, p3) =
        distributed_fft(&x, 4, AllToAllKind::Hypercube, SimConfig::counters_only()).unwrap();
    let adm = Matrix::random_diagonally_dominant(16, 3);
    let (_, p4) = lu_2d(&adm, 16, SimConfig::counters_only()).unwrap();
    for (name, profile) in [("2.5d", p1), ("nbody", p2), ("fft", p3), ("lu", p4)] {
        let (sent, recvd) = profile.words_balance();
        assert_eq!(sent, recvd, "{name}: sent {sent} != received {recvd}");
    }
}

#[test]
fn memory_limit_enforces_the_replication_tradeoff() {
    // Failure injection: a machine whose per-rank memory holds the 2D
    // working set but not the replicated one must run c = 1 and reject
    // c = 4 with a MemoryLimitExceeded error — the physical constraint
    // behind the paper's M ≤ n²/p^(2/3) ceiling.
    let n = 32;
    let a = Matrix::random(n, n, 11);
    let b = Matrix::random(n, n, 12);
    // q = 8 at c = 1: blocks of (n/8)² = 16 words, footprint 4·16 = 64.
    // q = 4 at c = 4 (same p = 64): blocks of 64 words, footprint 256.
    let cfg = |limit: u64| psse::sim::machine::SimConfig {
        mem_limit_words: Some(limit),
        ..psse::sim::machine::SimConfig::counters_only()
    };
    assert!(matmul_25d(&a, &b, 64, 1, cfg(100)).is_ok());
    let r = matmul_25d(&a, &b, 64, 4, cfg(100));
    assert!(
        matches!(r, Err(psse::sim::SimError::MemoryLimitExceeded { .. })),
        "replication must be rejected when memory does not allow it: {r:?}"
    );
    // With enough memory the replicated run goes through.
    assert!(matmul_25d(&a, &b, 64, 4, cfg(1000)).is_ok());
}

#[test]
fn tsqr_least_squares_end_to_end() {
    use psse::algos::tsqr::tsqr_least_squares;
    let m = 128;
    let n = 6;
    let a = Matrix::random(m, n, 13);
    let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
    let b: Vec<f64> = (0..m)
        .map(|i| a.row(i).iter().zip(&x_true).map(|(aij, xj)| aij * xj).sum())
        .collect();
    let (x, rho, profile) = tsqr_least_squares(&a, &b, 16, SimConfig::counters_only()).unwrap();
    for (xi, ti) in x.iter().zip(&x_true) {
        assert!((xi - ti).abs() < 1e-8);
    }
    assert!(rho < 1e-8);
    // Communication: log2(16) = 4 combine messages into the root.
    assert_eq!(profile.per_rank[0].msgs_recvd, 4);
}

#[test]
fn deterministic_profiles_across_runs() {
    let a = Matrix::random(32, 32, 5);
    let b = Matrix::random(32, 32, 6);
    let run = || matmul_25d(&a, &b, 32, 2, SimConfig::default()).unwrap().1;
    let p1 = run();
    let p2 = run();
    assert_eq!(p1, p2, "simulator must be deterministic");
}
