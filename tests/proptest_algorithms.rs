//! Property-based tests of the distributed algorithms and the simulator:
//! correctness on random inputs and shapes, conservation laws, and
//! determinism.

use proptest::prelude::*;
use psse::kernels::fft::{fft, Complex64};
use psse::kernels::gemm::matmul;
use psse::kernels::lu::split_lu;
use psse::kernels::nbody::{accumulate_forces, random_particles};
use psse::kernels::rng::XorShift64;
use psse::kernels::Matrix;
use psse::prelude::*;
use psse::sim::machine::SimConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cannon, SUMMA and 2.5D all compute the true product for random
    /// inputs and random compatible grid shapes.
    #[test]
    fn matmul_family_is_correct(
        seed in 0u64..1_000_000,
        q in 1usize..5,
        blocks in 1usize..4,
        c_pick in 0usize..3,
    ) {
        let n = q * blocks * 4;
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed.wrapping_add(1));
        let reference = matmul(&a, &b);
        let p = q * q;

        let (cm, _) = cannon_matmul(&a, &b, p, SimConfig::counters_only()).unwrap();
        prop_assert!(cm.max_abs_diff(&reference) < 1e-9);

        let (sm, _) = summa_matmul(&a, &b, p, blocks * 4, SimConfig::counters_only()).unwrap();
        prop_assert!(sm.max_abs_diff(&reference) < 1e-9);

        // A replication factor compatible with q.
        let divisors: Vec<usize> = (1..=q).filter(|d| q % d == 0).collect();
        let c = divisors[c_pick % divisors.len()];
        let (m25, _) = matmul_25d(&a, &b, p * c, c, SimConfig::counters_only()).unwrap();
        prop_assert!(m25.max_abs_diff(&reference) < 1e-9);
    }

    /// Distributed LU reconstructs random diagonally dominant inputs.
    #[test]
    fn lu_reconstructs(seed in 0u64..1_000_000, q in 1usize..5, bs in 2usize..5) {
        let n = q * bs;
        let a = Matrix::random_diagonally_dominant(n, seed);
        let (packed, _) = lu_2d(&a, q * q, SimConfig::counters_only()).unwrap();
        let (l, u) = split_lu(&packed);
        prop_assert!(matmul(&l, &u).relative_error(&a) < 1e-9);
    }

    /// The distributed FFT matches the sequential kernel for random
    /// signals and rank counts, under both all-to-all strategies.
    #[test]
    fn distributed_fft_is_correct(
        seed in 0u64..1_000_000,
        log_n in 6u32..11,
        log_p in 0u32..3,
        hyper in any::<bool>(),
    ) {
        let n = 1usize << log_n;
        let p = 1usize << log_p;
        let mut rng = XorShift64::new(seed);
        let x: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect();
        let kind = if hyper { AllToAllKind::Hypercube } else { AllToAllKind::Pairwise };
        let (spec, profile) = distributed_fft(&x, p, kind, SimConfig::counters_only()).unwrap();
        let reference = fft(&x);
        for (a, b) in spec.iter().zip(&reference) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
        let (sent, recvd) = profile.words_balance();
        prop_assert_eq!(sent, recvd);
    }

    /// TSQR matches the sequential QR for random tall matrices and any
    /// rank count dividing the rows.
    #[test]
    fn tsqr_matches_sequential(
        seed in 0u64..1_000_000,
        p in 1usize..9,
        cols in 1usize..6,
        extra in 1usize..4,
    ) {
        use psse::kernels::qr::householder_qr;
        let rows = p * cols * extra;
        let a = psse::kernels::Matrix::random(rows, cols, seed);
        let (r_dist, profile) = tsqr(&a, p, SimConfig::counters_only()).unwrap();
        let (_, r_seq) = householder_qr(&a);
        prop_assert!(r_dist.max_abs_diff(&r_seq) < 1e-7);
        let (sent, recvd) = profile.words_balance();
        prop_assert_eq!(sent, recvd);
    }

    /// Distributed Cholesky reconstructs random SPD inputs on random
    /// grids.
    #[test]
    fn cholesky_2d_reconstructs(seed in 0u64..1_000_000, q in 1usize..5, bs in 2usize..5) {
        let n = q * bs;
        let b = psse::kernels::Matrix::random(n, n, seed);
        let mut a = matmul(&b.transpose(), &b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let (l, _) = cholesky_2d(&a, q * q, SimConfig::counters_only()).unwrap();
        prop_assert!(matmul(&l, &l.transpose()).relative_error(&a) < 1e-9);
    }

    /// The replicating n-body algorithm matches serial forces for every
    /// compatible (pr, c).
    #[test]
    fn nbody_replication_is_correct(
        seed in 0u64..1_000_000,
        pr_exp in 1u32..4,
        c_exp in 0u32..3,
        blocks in 1usize..4,
    ) {
        let pr = 1usize << pr_exp;
        let c = 1usize << c_exp.min(pr_exp);
        let n = pr * blocks * 2;
        let ps = random_particles(n, seed);
        let mut serial = vec![[0.0; 3]; n];
        accumulate_forces(&ps, &ps, &mut serial);
        let (acc, _) = nbody_replicated(&ps, pr, c, SimConfig::counters_only()).unwrap();
        for (x, y) in acc.iter().zip(&serial) {
            for d in 0..3 {
                prop_assert!((x[d] - y[d]).abs() < 1e-9 * (1.0 + y[d].abs()));
            }
        }
    }

    /// Energy priced from measured counters scales linearly with the
    /// energy parameters — a sanity link between simulator and model.
    #[test]
    fn measured_energy_scales_with_prices(scale in 1.0..100.0f64) {
        let base = MachineParams::builder()
            .gamma_t(1e-9)
            .beta_t(1e-8)
            .alpha_t(1e-7)
            .gamma_e(1e-9)
            .beta_e(1e-8)
            .alpha_e(1e-7)
            .delta_e(1e-8)
            .epsilon_e(0.0)
            .max_message_words(1024.0)
            .build()
            .unwrap();
        let a = Matrix::random(16, 16, 1);
        let b = Matrix::random(16, 16, 2);
        let (_, profile) = cannon_matmul(&a, &b, 16, sim_config_from(&base)).unwrap();
        let m1 = measure(&profile, &base);
        let scaled = MachineParams {
            gamma_e: base.gamma_e * scale,
            beta_e: base.beta_e * scale,
            alpha_e: base.alpha_e * scale,
            delta_e: base.delta_e * scale,
            ..base.clone()
        };
        let m2 = measure(&profile, &scaled);
        prop_assert!((m2.energy / m1.energy / scale - 1.0).abs() < 1e-9);
        prop_assert!((m2.time - m1.time).abs() < 1e-15);
    }
}
