//! Property-based tests of the analytical models: the paper's theorems
//! hold for *every* machine, not just the ones in the unit tests.

use proptest::prelude::*;
use psse::core::costs::{Algorithm, ClassicalMatMul, DirectNBody, StrassenMatMul};
use psse::core::energy::{e_matmul_25d, e_matmul_fast_lm, e_nbody};
use psse::core::optimize::nbody::NBodyOptimizer;
use psse::core::optimize::numeric::golden_section_min;
use psse::core::time::{t_matmul_25d, t_nbody};
use psse::prelude::*;

/// A random but physically sensible machine.
fn machines() -> impl Strategy<Value = MachineParams> {
    (
        1e-13..1e-8f64, // gamma_t
        1e-11..1e-6f64, // beta_t
        1e-9..1e-4f64,  // alpha_t
        1e-12..1e-7f64, // gamma_e
        1e-11..1e-5f64, // beta_e
        0.0..1e-4f64,   // alpha_e
        1e-12..1e-4f64, // delta_e
        0.0..1.0f64,    // epsilon_e
        1.0..1e6f64,    // max message words
    )
        .prop_map(|(gt, bt, at, ge, be, ae, de, ee, m)| {
            MachineParams::builder()
                .gamma_t(gt)
                .beta_t(bt)
                .alpha_t(at)
                .gamma_e(ge)
                .beta_e(be)
                .alpha_e(ae)
                .delta_e(de)
                .epsilon_e(ee)
                .max_message_words(m)
                .build()
                .expect("strategy produces valid machines")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline theorem, classical matmul: for any machine and any
    /// (n, M, p) inside the scaling range, energy is independent of p.
    #[test]
    fn matmul_energy_independent_of_p(
        mp in machines(),
        n_exp in 10u32..16,
        p0_exp in 2u32..6,
        c_exp in 1u32..4,
    ) {
        let n = 1u64 << n_exp;
        let p0 = 1u64 << (2 * p0_exp); // square
        let mem = ClassicalMatMul.min_memory(n, p0);
        let range = ClassicalMatMul.strong_scaling_range(n, mem).unwrap();
        let p1 = p0 << c_exp;
        prop_assume!(range.contains(p1 as f64));

        let c0 = ClassicalMatMul.costs(n, p0, mem, &mp).unwrap();
        let c1 = ClassicalMatMul.costs(n, p1, mem, &mp).unwrap();
        let e0 = mp.energy(p0, &c0, mem, mp.time(&c0));
        let e1 = mp.energy(p1, &c1, mem, mp.time(&c1));
        prop_assert!((e1 / e0 - 1.0).abs() < 1e-9);

        // And runtime divides exactly by the processor factor.
        let t0 = mp.time(&c0);
        let t1 = mp.time(&c1);
        prop_assert!((t0 / t1 / (p1 as f64 / p0 as f64) - 1.0).abs() < 1e-9);
    }

    /// Same theorem for Strassen-like matmul at any exponent. The
    /// scaling headroom is `p_min^(ω/2−1)`, so small exponents need a
    /// large `p_min` for any room at all — we start from p0 = 256, where
    /// ω ≥ 2.5 leaves at least a factor 4.
    #[test]
    fn strassen_energy_independent_of_p(
        mp in machines(),
        omega in 2.5..3.0f64,
        n_exp in 10u32..16,
    ) {
        let alg = StrassenMatMul { omega };
        let n = 1u64 << n_exp;
        let p0 = 256u64;
        let mem = alg.min_memory(n, p0);
        let range = alg.strong_scaling_range(n, mem).unwrap();
        let p1 = 512u64;
        prop_assert!(range.contains(p1 as f64), "headroom {}", range.headroom());
        let c0 = alg.costs(n, p0, mem, &mp).unwrap();
        let c1 = alg.costs(n, p1, mem, &mp).unwrap();
        let e0 = mp.energy(p0, &c0, mem, mp.time(&c0));
        let e1 = mp.energy(p1, &c1, mem, mp.time(&c1));
        prop_assert!((e1 / e0 - 1.0).abs() < 1e-9);
    }

    /// Closed-form energies equal the generic Eq. 2 evaluation
    /// everywhere in the valid (p, M) region.
    #[test]
    fn closed_forms_match_generic(
        mp in machines(),
        n_exp in 10u32..16,
        frac in 0.0..1.0f64,
    ) {
        let n = 1u64 << n_exp;
        let p = 64u64;

        let (lo, hi) = ClassicalMatMul.memory_range(n, p).unwrap();
        let mem = lo + frac * (hi - lo);
        let c = ClassicalMatMul.costs(n, p, mem, &mp).unwrap();
        let generic = mp.energy(p, &c, mem, mp.time(&c));
        let closed = e_matmul_25d(&mp, n, mem);
        prop_assert!((closed / generic - 1.0).abs() < 1e-9);

        let alg = StrassenMatMul::default();
        let (lo, hi) = alg.memory_range(n, p).unwrap();
        let mem = lo + frac * (hi - lo);
        let c = alg.costs(n, p, mem, &mp).unwrap();
        let generic = mp.energy(p, &c, mem, mp.time(&c));
        let closed = e_matmul_fast_lm(&mp, n, mem, alg.omega);
        prop_assert!((closed / generic - 1.0).abs() < 1e-9);

        let nb = DirectNBody::default();
        let (lo, hi) = nb.memory_range(n, p).unwrap();
        let mem = lo + frac * (hi - lo);
        let c = nb.costs(n, p, mem, &mp).unwrap();
        let generic = mp.energy(p, &c, mem, mp.time(&c));
        let closed = e_nbody(&mp, n, mem, nb.flops_per_interaction);
        prop_assert!((closed / generic - 1.0).abs() < 1e-9);
    }

    /// M0 is a true argmin: any perturbation raises the energy; and the
    /// closed-form E* matches a golden-section search.
    #[test]
    fn m0_is_global_minimum(
        mp in machines(),
        f in 1.0..100.0f64,
        perturb in prop::sample::select(vec![0.25, 0.5, 0.8, 1.25, 2.0, 4.0]),
    ) {
        let opt = NBodyOptimizer::new(&mp, f).unwrap();
        let n = 1u64 << 20;
        let m0 = opt.m0().unwrap();
        prop_assume!(m0.is_finite() && m0 > 1.0);
        let e_star = opt.e_star(n).unwrap();
        prop_assert!(e_nbody(&mp, n, m0 * perturb, f) >= e_star * (1.0 - 1e-12));
        let (_, e_num) = golden_section_min(
            |m| e_nbody(&mp, n, m, f),
            m0 / 1e3,
            m0 * 1e3,
            1e-12,
        );
        prop_assert!((e_num / e_star - 1.0).abs() < 1e-9);
    }

    /// Deadline/budget optimizers: feasible, binding, and monotone.
    #[test]
    fn deadline_and_budget_optimizers_are_consistent(
        mp in machines(),
        f in 1.0..100.0f64,
        slack in 1.05..10.0f64,
    ) {
        let opt = NBodyOptimizer::new(&mp, f).unwrap();
        let n = 1u64 << 20;
        let e_star = opt.e_star(n).unwrap();
        let threshold = opt.tmax_threshold().unwrap();

        // Loose deadline: global optimum; tight: more energy, deadline met.
        let loose = opt.min_energy_given_tmax(n, threshold * slack).unwrap();
        prop_assert!((loose.energy / e_star - 1.0).abs() < 1e-9);
        let tight = opt.min_energy_given_tmax(n, threshold / slack).unwrap();
        prop_assert!(tight.energy >= e_star * (1.0 - 1e-12));
        let t_actual = t_nbody(&mp, n, tight.p.round().max(1.0) as u64, tight.mem, f);
        prop_assert!(t_actual <= threshold / slack * 1.01);

        // Budget: binding with equality, monotone in the budget.
        let fast1 = opt.min_time_given_emax(n, e_star * slack).unwrap();
        let fast2 = opt.min_time_given_emax(n, e_star * slack * 2.0).unwrap();
        prop_assert!(fast2.time <= fast1.time * (1.0 + 1e-9));
        prop_assert!((fast1.energy / (e_star * slack) - 1.0).abs() < 1e-6);
    }

    /// Runtime closed forms are monotone: more processors or more memory
    /// never slow the data-replicating algorithms down.
    #[test]
    fn runtime_monotonicity(
        mp in machines(),
        n_exp in 10u32..16,
    ) {
        let n = 1u64 << n_exp;
        let mem = 1e6;
        let t1 = t_matmul_25d(&mp, n, 64, mem);
        let t2 = t_matmul_25d(&mp, n, 128, mem);
        prop_assert!(t2 < t1);
        let t3 = t_matmul_25d(&mp, n, 64, mem * 4.0);
        prop_assert!(t3 <= t1 * (1.0 + 1e-12));
        let t4 = t_nbody(&mp, n, 64, mem, 20.0);
        let t5 = t_nbody(&mp, n, 64, mem * 2.0, 20.0);
        prop_assert!(t5 <= t4 * (1.0 + 1e-12));
    }

    /// GFLOPS/W at the optimum is independent of problem size — §V.F's
    /// "pure machine constraint" claim.
    #[test]
    fn efficiency_at_optimum_is_size_invariant(
        mp in machines(),
        f in 1.0..100.0f64,
    ) {
        let opt = NBodyOptimizer::new(&mp, f).unwrap();
        let g = opt.gflops_per_watt_at_optimum().unwrap();
        for n_exp in [14u32, 18, 22] {
            let n = 1u64 << n_exp;
            let nf = n as f64;
            let direct = f * nf * nf / opt.e_star(n).unwrap() / 1e9;
            prop_assert!((direct / g - 1.0).abs() < 1e-9);
        }
    }
}
