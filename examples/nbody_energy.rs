//! The §V optimization suite on the direct n-body problem: minimum
//! energy, deadlines, budgets, and power caps — answered in closed form
//! and cross-checked against a real simulated run.
//!
//! Run with: `cargo run --release --example nbody_energy`

use psse::core::costs::DirectNBody;
use psse::core::optimize::numeric;
use psse::prelude::*;

fn main() {
    let machine = MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(2e-8)
        .alpha_t(1e-6)
        .gamma_e(1e-9)
        .beta_e(4e-6)
        .alpha_e(1e-4)
        .delta_e(5e-4)
        .max_message_words(100.0)
        .mem_words(1e12)
        .build()
        .unwrap();
    let f = 10.0;
    let n: u64 = 10_000;
    let opt = NBodyOptimizer::new(&machine, f).unwrap();

    println!("== Question 1: minimum energy for the computation ==");
    let m0 = opt.m0().unwrap();
    let e_star = opt.e_star(n).unwrap();
    let (p_lo, p_hi) = opt.m0_processor_range(n).unwrap();
    println!("energy-optimal memory  M0 = {m0:.1} words/processor (independent of n, p)");
    println!(
        "minimum energy         E* = {e_star:.4} J, attainable for p in [{p_lo:.0}, {p_hi:.0}]"
    );
    println!("('race to halt' is NOT optimal here: max memory would waste DRAM energy)");

    println!("\n== Question 2: minimum energy under a deadline ==");
    let threshold = opt.tmax_threshold().unwrap();
    for tmax in [threshold * 2.0, threshold / 2.0] {
        let cfg = opt.min_energy_given_tmax(n, tmax).unwrap();
        println!(
            "Tmax = {tmax:.5} s -> run at p = {:.0}, M = {:.0}: E = {:.4} J{}",
            cfg.p,
            cfg.mem,
            cfg.energy,
            if cfg.energy > e_star * 1.0001 {
                "  (deadline costs energy)"
            } else {
                "  (= E*, deadline is free)"
            }
        );
    }

    println!("\n== Question 3: minimum runtime under an energy budget ==");
    for factor in [1.05, 1.5, 3.0] {
        let cfg = opt.min_time_given_emax(n, e_star * factor).unwrap();
        println!(
            "Emax = {factor:.2}·E* -> fastest run T = {:.6} s at p = {:.0} (2D boundary M = n/sqrt(p))",
            cfg.time, cfg.p
        );
    }

    println!("\n== Question 4: power caps ==");
    let p_proc_cap = opt.average_power(1.0, m0) * 1.5;
    let m_cap = opt.max_memory_given_proc_power(p_proc_cap).unwrap();
    println!("per-processor cap {p_proc_cap:.3} W -> memory capped at M <= {m_cap:.0} words");
    let total_cap = 50.0;
    let p_max = opt.max_p_given_total_power(total_cap, m0);
    println!("total cap {total_cap} W at M0 -> at most p = {p_max:.1} processors");

    println!("\n== Question 5: target efficiency -> machine constraint ==");
    let eff = opt.gflops_per_watt_at_optimum().unwrap();
    let target = 10.0 * eff;
    let k = opt.energy_improvement_for_target(target).unwrap();
    println!("current best-case efficiency: {eff:.4} GFLOPS/W");
    println!("to reach {target:.3} GFLOPS/W, all energy prices must improve by {k:.1}x");

    println!("\n== closed form vs numeric optimizer ==");
    let nb = DirectNBody {
        flops_per_interaction: f,
    };
    let p_mid = ((p_lo * p_hi).sqrt()).round() as u64;
    let numeric_cfg = numeric::argmin_energy_memory(&nb, &machine, n, p_mid).unwrap();
    println!(
        "numeric argmin at p = {p_mid}: M = {:.1} (closed form {m0:.1}), E = {:.4} (E* {e_star:.4})",
        numeric_cfg.mem, numeric_cfg.energy
    );

    println!("\n== and measured: the real algorithm on the simulator ==");
    let particles = psse::kernels::nbody::random_particles(256, 7);
    let cfg = sim_config_from(&machine);
    println!("     p   c        T (s)        E (J)");
    for c in [1usize, 2, 4] {
        let (_, profile) = nbody_replicated(&particles, 16, c, cfg.clone()).unwrap();
        let m = measure(&profile, &machine);
        println!(
            "{:>6}  {c:>2}   {:>10.3e}   {:>10.3e}",
            16 * c,
            m.time,
            m.energy
        );
    }
    println!("(replication: same energy, c times faster — the theorem, measured)");
}
