//! Quickstart: model a machine, price an algorithm, and see the paper's
//! headline — perfect strong scaling using no additional energy.
//!
//! Run with: `cargo run --release --example quickstart`

use psse::prelude::*;

fn main() {
    // 1. Describe a machine (here: the paper's Table I server; build
    //    your own with MachineParams::builder()).
    let machine = jaketown();
    println!(
        "machine: gamma_t = {:.3e} s/flop, beta_t = {:.3e} s/word",
        machine.gamma_t, machine.beta_t
    );

    // 2. Pick an algorithm and a problem.
    let alg = ClassicalMatMul;
    let n: u64 = 1 << 14;

    // 3. The smallest machine that fits one copy of the data with
    //    M = 2^26 words per processor, and the largest that can still
    //    trade memory for communication.
    let mem = (1u64 << 26) as f64;
    let range = alg.strong_scaling_range(n, mem).unwrap();
    println!(
        "\nwith M = {mem:.0} words/processor, perfect strong scaling holds for\n\
         p in [{:.0}, {:.0}]  (headroom: {:.0}x)",
        range.p_min,
        range.p_max,
        range.headroom()
    );

    // 4. Walk the range: runtime drops with p, energy does not move.
    println!("\n       p        T (s)        E (J)   E/E0");
    let p0 = range.p_min.ceil() as u64;
    let e0 = {
        let costs = alg.costs(n, p0, mem, &machine).unwrap();
        machine.energy(p0, &costs, mem, machine.time(&costs))
    };
    for k in 0..6 {
        let p = p0 << k;
        if (p as f64) > range.p_max {
            break;
        }
        let costs = alg.costs(n, p, mem, &machine).unwrap();
        let t = machine.time(&costs);
        let e = machine.energy(p, &costs, mem, t);
        println!("{p:>8}   {t:>10.4}   {e:>10.1}  {:.4}", e / e0);
        assert!((e / e0 - 1.0).abs() < 1e-9, "energy must not move");
    }

    // 5. The same effect, measured: run the real 2.5D algorithm on the
    //    simulated machine (toy size) and price the counters.
    println!("\nmeasured on the simulator (n = 256, q = 8 fixed => fixed M/rank):");
    let a = psse::kernels::Matrix::random(256, 256, 1);
    let b = psse::kernels::Matrix::random(256, 256, 2);
    let cfg = sim_config_from(&machine);
    println!("       p   c        T (s)        E (J)");
    for c in [1usize, 2, 4] {
        let p = 64 * c;
        let (_, profile) = matmul_25d(&a, &b, p, c, cfg.clone()).unwrap();
        let m = measure(&profile, &machine);
        println!("{p:>8}  {c:>2}   {:>10.3e}   {:>10.3e}", m.time, m.energy);
    }
    println!("\nRuntime falls ~1/p; energy stays ~constant. That is the paper.");
}
