//! Heterogeneous co-design: split one workload across processors with
//! different speeds and energy prices (the direction of the paper's
//! heterogeneous-bounds reference [7]) — built on Table II parts.
//!
//! Run with: `cargo run --release --example hetero_codesign`

use psse::core::hetero::{HeteroMachine, HeteroProc};
use psse::core::machines::table2;

fn main() {
    // Build a machine from real Table II silicon: one big GPU, one
    // server CPU, one low-power part. Leakage: 5% of TDP.
    let specs = table2();
    let pick = |name: &str| {
        specs
            .iter()
            .find(|s| s.name.contains(name))
            .unwrap_or_else(|| panic!("{name} in Table II"))
    };
    let parts = [pick("GTX590"), pick("Sandy Bridge"), pick("Cortex A9 (0.8")];
    let machine = HeteroMachine::new(
        parts
            .iter()
            .map(|s| HeteroProc {
                gamma_t: s.gamma_t(),
                gamma_e: s.gamma_e(),
                epsilon_e: 0.05 * s.tdp_w,
            })
            .collect(),
    )
    .unwrap();

    println!("== the machine ==");
    for (s, p) in parts.iter().zip(machine.procs()) {
        println!(
            "  {:<28} gamma_t {:.2e} s/flop, gamma_e {:.2e} J/flop, leak {:.1} W",
            s.name, p.gamma_t, p.gamma_e, p.epsilon_e
        );
    }

    let f = 1e13; // 10 Tflop of divisible work
    println!("\n== minimum runtime split (work ∝ speed) ==");
    let fast = machine.min_time_split(f);
    for (s, w) in parts.iter().zip(&fast.flops) {
        println!("  {:<28} {:>6.2}% of the flops", s.name, 100.0 * w / f);
    }
    println!("  T = {:.3} s, E = {:.1} J", fast.time, fast.energy);

    println!("\n== minimum energy under deadlines ==");
    for slack in [1.0, 1.5, 3.0, 10.0] {
        let tmax = fast.time * slack;
        let a = machine.min_energy_split_given_tmax(f, tmax).unwrap();
        let shares: Vec<String> = a
            .flops
            .iter()
            .map(|w| format!("{:>5.1}%", 100.0 * w / f))
            .collect();
        println!(
            "  Tmax = {:>7.3} s  ->  E = {:>8.1} J   shares [gpu cpu arm] = {}",
            tmax,
            a.energy,
            shares.join(" ")
        );
    }
    println!(
        "\nWith any slack at all, the work flows to the cheapest joules-per-\n\
         flop silicon (the GPU); the deadline only forces expensive flops\n\
         when the cheap processor saturates. Race-to-halt is a special case,\n\
         not the rule — same moral as the paper's M0 analysis."
    );

    println!("\n== energy/time Pareto frontier ==");
    let frontier = machine.pareto(f, 8, 8.0).unwrap();
    println!("      T (s)        E (J)");
    for a in frontier {
        println!("  {:>9.3}   {:>10.1}", a.time, a.energy);
    }
}
