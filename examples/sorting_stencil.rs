//! Priced workloads beyond linear algebra: a distributed sample sort
//! and an iterated halo-exchange stencil, simulated with real data,
//! verified bit-for-bit against their sequential references, and priced
//! with the paper's Eq. 1/2 models — including where each stands with
//! respect to its communication lower bound.
//!
//! Run with: `cargo run --release --example sorting_stencil`

use psse::core::costs::{Algorithm, HaloStencilModel, SampleSortModel};
use psse::prelude::*;
use psse::sim::machine::SimConfig;

fn main() {
    let mp = MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(1e-8)
        .alpha_t(1e-7)
        .gamma_e(1e-9)
        .beta_e(1e-8)
        .alpha_e(1e-7)
        .max_message_words(1e4)
        .build()
        .unwrap();

    // ── Sample sort: the bandwidth bound is attained, the band is not ──
    let n = 1usize << 14;
    let keys = random_keys(n, 1);
    let mut reference = keys.clone();
    reference.sort_by(|a, b| a.total_cmp(b));

    println!("== distributed sample sort, n = {n} keys ==");
    println!("       p   W/rank   Omega(n/p)   msgs/rank   T*p (model)");
    for p in [4usize, 8, 16] {
        let (sorted, profile) = sample_sort(&keys, p, SimConfig::counters_only()).unwrap();
        assert!(
            sorted
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "sample sort must reproduce the serial sort bit-for-bit"
        );
        let w = profile.total_words_sent() as f64 / p as f64;
        let bound = n as f64 / p as f64;
        let model = SampleSortModel;
        let c = model
            .costs(
                n as u64,
                p as u64,
                model.min_memory(n as u64, p as u64),
                &mp,
            )
            .unwrap();
        println!(
            "  {p:>6}   {w:>6.0}   {bound:>10.0}   {:>9}   {:.4e}",
            profile.max_msgs_sent(),
            mp.time(&c) * p as f64
        );
    }
    assert!(SampleSortModel
        .strong_scaling_range(n as u64, 1e9)
        .is_none());
    println!(
        "W attains the Scquizzato–Silvestri Omega(n/p) bound, but S = 2(p-1)\n\
         grows with p: like the paper's FFT counterexample, sorting has NO\n\
         perfect strong scaling range — T*p climbs with the latency term.\n"
    );

    // ── Halo stencil: an ε-perfect band from surface-to-volume ──
    let ns = 64usize;
    let (halo, iters) = (1usize, 4usize);
    let grid = random_grid(ns, 2);
    let serial = serial_stencil(&grid, ns, halo, iters);

    println!("== {iters}-sweep radius-{halo} box stencil, {ns}x{ns} grid ==");
    println!("       p   decomp   W/rank   surface model   T*p (model)");
    for (p, decomp) in [
        (4usize, Decomp::TwoD),
        (8, Decomp::OneD),
        (16, Decomp::TwoD),
    ] {
        let (out, profile) = halo_stencil(
            &grid,
            ns,
            halo,
            iters,
            decomp,
            p,
            SimConfig::counters_only(),
        )
        .unwrap();
        assert!(
            out.iter()
                .zip(&serial)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "the distributed stencil must match the serial sweep bit-for-bit"
        );
        let w = profile.total_words_sent() as f64 / p as f64;
        let model = HaloStencilModel {
            halo: halo as u64,
            iters: iters as u64,
        };
        let (label, surface) = match decomp {
            Decomp::TwoD => {
                let b = ns / (p as f64).sqrt() as usize;
                (
                    "2-D",
                    (iters * (2 * halo * b + 2 * halo * (b + 2 * halo))) as f64,
                )
            }
            Decomp::OneD => ("1-D", (iters * 2 * halo * ns) as f64),
        };
        let c = model
            .costs(
                ns as u64,
                p as u64,
                model.min_memory(ns as u64, p as u64),
                &mp,
            )
            .unwrap();
        println!(
            "  {p:>6}   {label:>6}   {w:>6.0}   {surface:>13.0}   {:.4e}",
            mp.time(&c) * p as f64
        );
        assert_eq!(w, surface, "measured words must equal the closed form");
    }
    let model = HaloStencilModel { halo: 1, iters: 4 };
    let range = model
        .strong_scaling_range(ns as u64, (ns * ns) as f64 / 4.0)
        .unwrap();
    println!(
        "surface/volume gives a scaling band [{:.0}, {:.0}]: S is constant per\n\
         sweep and W ~ 1/sqrt(p), so T*p stays flat to within the quantified\n\
         surface term — epsilon-perfect until the tile side shrinks to 2h.",
        range.p_min, range.p_max
    );
}
