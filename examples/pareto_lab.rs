//! psse-lab walkthrough: declare a sweep, run it on every core, and
//! extract the (time, energy) Pareto frontier plus the detected
//! perfect-strong-scaling range — cross-checked against the paper's
//! closed forms.
//!
//! Run with: `cargo run --release --example pareto_lab`

use psse::prelude::*;

fn main() {
    // 1. Declare the sweep: a 2.5D matmul (p, M) grid on the Table I
    //    machine. The same text works from the CLI:
    //    `psse lab run --spec <file> --jobs 8 --pareto front.csv`.
    let spec = SweepSpec::parse(
        "kind = model\n\
         alg = matmul\n\
         machine = jaketown\n\
         n = 8192\n\
         p = pow2:1:1024\n\
         mem = geomf:7e4:7e7:24\n",
    )
    .expect("valid spec");
    println!(
        "sweep: {} runs (alg `{}`, machine `{}`)",
        spec.len(),
        spec.alg,
        spec.machine_name
    );

    // 2. Run it. The pool uses every core; results come back in spec
    //    order, so the output is identical for any worker count — and a
    //    second run of the same spec is answered from the cache.
    let lab = Lab::new(LabConfig::default());
    let sweep = lab.run_spec(&spec);
    let (feasible, infeasible) = sweep.feasibility();
    let stats = lab.cache_stats();
    println!(
        "ran {} evaluations ({feasible} feasible, {infeasible} infeasible); \
         cache: {} misses, {} hits",
        sweep.results.len(),
        stats.misses,
        stats.hits
    );

    // 3. The (T, E) Pareto frontier over the feasible runs: every point
    //    on it is a run no other run beats on both time and energy.
    let idx: Vec<usize> = (0..sweep.keys.len())
        .filter(|&i| matches!(&sweep.results[i], Ok(r) if r.feasible))
        .collect();
    let pts: Vec<(f64, f64)> = idx
        .iter()
        .map(|&i| {
            let r = sweep.results[i].as_ref().unwrap();
            (r.time, r.energy)
        })
        .collect();
    let frontier = pareto_indices(&pts);
    println!(
        "\nPareto frontier ({} of {} feasible runs):",
        frontier.len(),
        pts.len()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "p", "M (words)", "T (s)", "E (J)"
    );
    for &fi in &frontier {
        let key = &sweep.keys[idx[fi]];
        let (t, e) = pts[fi];
        println!("{:>6} {:>12.3e} {:>12.4e} {:>12.4e}", key.p, key.mem, t, e);
    }

    // 4. Each frontier point sits inside the paper's perfect strong
    //    scaling band [p_min, p_max] for its memory (bounds.rs, Eq. 9).
    for &fi in &frontier {
        let key = &sweep.keys[idx[fi]];
        let r = sweep.results[idx[fi]].as_ref().unwrap();
        let band = ClassicalMatMul
            .strong_scaling_range(key.n, r.mem_used)
            .expect("2.5D matmul scales perfectly");
        assert!(band.contains(key.p as f64));
    }
    println!("\nevery frontier point lies inside its [p_min, p_max] band (Eq. 9)");

    // 5. A fixed-memory p-ladder recovers the band by measurement: T
    //    drops as 1/p while E stays flat, exactly between the closed-form
    //    endpoints.
    let mem = 1.0e6;
    let ladder = SweepSpec::parse(&format!(
        "kind = model\nalg = matmul\nmachine = jaketown\nn = 8192\np = 64..512..8\nmem = {mem}\n"
    ))
    .unwrap();
    let run = lab.run_spec(&ladder);
    let samples: Vec<(u64, f64, f64)> = run
        .keys
        .iter()
        .zip(&run.results)
        .filter_map(|(k, r)| {
            let r = r.as_ref().ok()?;
            r.feasible.then_some((k.p, r.time, r.energy))
        })
        .collect();
    let detected = detect_scaling_range(&samples, 1e-9).expect("a scaling range");
    let closed = ClassicalMatMul.strong_scaling_range(8192, mem).unwrap();
    println!(
        "detected perfect strong scaling for p in [{}, {}] at M = {mem:.0} \
         (closed form: [{:.0}, {:.0}])",
        detected.p_min, detected.p_max, closed.p_min, closed.p_max
    );
}
