//! The sequential side of the story (paper Fig. 1(a), Eqs. 3–4): drive
//! naive and blocked matmul through the LRU cache simulator and watch
//! the measured traffic against the Ω(F/√M) lower bound — then find the
//! cache size that minimizes *energy*.
//!
//! Run with: `cargo run --release --example cache_blocking`

use psse::algos::seq_matmul::{choose_tile, instrumented_matmul, SeqVariant};
use psse::core::sequential::{
    blocked_matmul_costs, optimal_fast_memory, sequential_energy, traffic_vs_lower_bound,
};
use psse::kernels::Matrix;
use psse::prelude::*;

fn main() {
    let n = 64usize;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let reference = psse::kernels::gemm::matmul(&a, &b);

    println!("== measured slow<->fast traffic, n = {n} (words) ==");
    println!("  fast mem   naive W     blocked W   blocked/lower-bound");
    for log_m in [9u32, 10, 11, 12] {
        let fast = 1u64 << log_m;
        let (c1, naive) = instrumented_matmul(&a, &b, SeqVariant::Naive, fast, 1).unwrap();
        let tile = choose_tile(fast);
        let (c2, blocked) =
            instrumented_matmul(&a, &b, SeqVariant::Blocked { tile }, fast, 1).unwrap();
        assert!(c1.max_abs_diff(&reference) < 1e-12);
        assert!(c2.max_abs_diff(&reference) < 1e-12);
        let ratio = traffic_vs_lower_bound(n as u64, fast as f64, blocked.words_moved as f64);
        println!(
            "  {fast:>8}   {:>9}   {:>9}   {ratio:.2}x",
            naive.words_moved, blocked.words_moved
        );
    }
    println!(
        "\nNaive traffic barely moves with cache size (LRU thrashing keeps it\n\
         ~n³); blocked traffic tracks the Ω(F/sqrt(M)) bound within a small\n\
         constant — the sequential communication-avoiding story."
    );

    println!("\n== the energy-optimal cache size (sequential M0) ==");
    let mp = MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(1e-8)
        .alpha_t(1e-7)
        .gamma_e(1e-9)
        .beta_e(1e-7)
        .delta_e(1e-6)
        .max_message_words(8.0)
        .build()
        .unwrap();
    let n_model = 1u64 << 12;
    let (m_star, e_star) = optimal_fast_memory(&mp, n_model, 48.0).unwrap();
    println!("n = {n_model}: M* = {m_star:.0} words, E* = {e_star:.3} J");
    for f in [0.25, 1.0, 4.0] {
        let m = m_star * f;
        let c = blocked_matmul_costs(n_model, m, mp.max_message_words);
        println!(
            "  M = {m:>12.0} words -> E = {:>10.3} J ({}x M*)",
            sequential_energy(&mp, &c, m),
            f
        );
    }
    println!(
        "\nA bigger cache is not free: below M* communication energy wins,\n\
         above it the energy of keeping the memory powered does."
    );
}
