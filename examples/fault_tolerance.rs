//! Fault injection, exact recovery and priced resilience overhead.
//!
//! Runs the same 2.5D matmul three ways on the jaketown model:
//!
//! 1. fault-free — the baseline flat-band energy;
//! 2. with a deterministic fault plan (drops + duplicates + corruption)
//!    recovered by acked retries and verified by ABFT checksums — the
//!    numerics come back *bit-identical*, and the extra energy equals
//!    the Eq. 2 resilience term exactly;
//! 3. with silent corruption and no recovery — to show the ABFT layer
//!    detecting the damage instead of returning a wrong product.
//!
//! Also prints the Daly optimal checkpoint interval for the machine's
//! checkpoint cost against a range of MTBFs.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use psse::algos::abft::{matmul_25d_abft, summa_matmul_abft};
use psse::algos::prelude::{measure, sim_config_from};
use psse::core::machines::jaketown;
use psse::core::prelude::{daly_optimal_interval, overhead_fraction, resilience_energy};
use psse::kernels::Matrix;
use psse::prelude::*;

fn main() {
    let (n, p, c) = (64, 32, 2);
    let mp = jaketown();
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);

    // 1. Fault-free baseline.
    let (c_free, prof_free) =
        matmul_25d_abft(&a, &b, p, c, sim_config_from(&mp)).expect("fault-free 2.5D");
    let m_free = measure(&prof_free, &mp);
    println!("fault-free 2.5D matmul n={n} p={p} c={c}:");
    println!(
        "  time {:.3e} s, energy {:.3e} J\n",
        m_free.time, m_free.energy
    );

    // 2. Same run under a deterministic fault plan with retry recovery.
    let plan = FaultPlan {
        spec: FaultSpec {
            seed: 42,
            drop_rate: 0.05,
            duplicate_rate: 0.02,
            corrupt_rate: 0.02,
            ..FaultSpec::default()
        },
        recovery: RecoveryPolicy {
            max_retries: 24,
            retry_backoff: 1e-8,
            checkpoint: None,
        },
    };
    let mut cfg = sim_config_from(&mp);
    cfg.faults = Some(plan);
    let (c_fault, prof_fault) = matmul_25d_abft(&a, &b, p, c, cfg).expect("faulted 2.5D");
    assert_eq!(
        c_fault.as_slice(),
        c_free.as_slice(),
        "retry recovery must reproduce the fault-free numerics exactly"
    );
    let m_fault = measure(&prof_fault, &mp);
    let overhead = m_fault.energy - m_free.energy;
    let model = resilience_energy(
        &mp,
        prof_fault.resilience_words() as f64,
        prof_fault.resilience_msgs() as f64,
        m_fault.time - m_free.time,
        p as f64,
        prof_fault.max_mem_peak() as f64,
    );
    println!("same run, seeded faults (drop 5%, dup 2%, corrupt 2%), retries + ABFT:");
    println!(
        "  {} retries, {} retransmitted words; numerics bit-identical to fault-free",
        prof_fault.total_retries(),
        prof_fault.resilience_words()
    );
    println!(
        "  energy {:.3e} J = baseline + {:.3e} J overhead (Eq. 2 model: {:.3e} J)",
        m_fault.energy, overhead, model
    );
    assert!((overhead - model).abs() <= 1e-9 * overhead);
    println!("  measured overhead matches the priced resilience term exactly\n");

    // 3. Silent corruption with no recovery: ABFT refuses the bad product.
    let silent = FaultPlan {
        spec: FaultSpec {
            seed: 7,
            corrupt_rate: 0.3,
            ..FaultSpec::default()
        },
        recovery: RecoveryPolicy::default(),
    };
    let mut cfg = sim_config_from(&mp);
    cfg.faults = Some(silent);
    match summa_matmul_abft(&a, &b, 16, 8, cfg) {
        Err(e) => println!("silent corruption, no retries: ABFT detected it:\n  {e}\n"),
        Ok(_) => println!("silent corruption left the product intact this time\n"),
    }

    // Daly optimal checkpoint interval for this machine's checkpoint cost.
    let ckpt_words = ((n / 4) * (n / 4)) as f64;
    let delta = mp.alpha_t + mp.beta_t * ckpt_words;
    println!("Daly checkpoint interval (checkpoint cost {delta:.3e} s):");
    println!(
        "  {:>10}  {:>12}  {:>10}",
        "MTBF (s)", "tau* (s)", "overhead"
    );
    for mtbf in [1e-3, 1e-1, 1e1, 1e3] {
        let tau = daly_optimal_interval(delta, mtbf).expect("valid inputs");
        let frac = overhead_fraction(delta, tau, mtbf).expect("valid inputs");
        println!("  {mtbf:>10.0e}  {tau:>12.3e}  {:>9.2}%", 100.0 * frac);
    }
}
