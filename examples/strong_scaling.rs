//! Strong-scaling study across all four algorithm families, executed on
//! the simulated machine: who scales perfectly, who doesn't, and why.
//!
//! Run with: `cargo run --release --example strong_scaling`

use psse::kernels::fft::Complex64;
use psse::kernels::nbody::random_particles;
use psse::kernels::rng::XorShift64;
use psse::kernels::Matrix;
use psse::prelude::*;

fn machine() -> MachineParams {
    MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(4e-9)
        .alpha_t(1e-7)
        .gamma_e(2e-9)
        .beta_e(8e-9)
        .alpha_e(2e-7)
        .delta_e(1e-7)
        .epsilon_e(1e-4)
        .max_message_words(4096.0)
        .mem_words(1e9)
        .build()
        .unwrap()
}

fn main() {
    let mp = machine();
    let cfg = sim_config_from(&mp);

    println!("== 2.5D matmul (n = 256, fixed memory per rank) ==");
    let a = Matrix::random(256, 256, 1);
    let b = Matrix::random(256, 256, 2);
    println!("     p   c     T (s)      E (J)   speedup   E/E0");
    let mut base: Option<(f64, f64)> = None;
    for c in [1usize, 2, 4] {
        let p = 64 * c;
        let (_, profile) = matmul_25d(&a, &b, p, c, cfg.clone()).unwrap();
        let m = measure(&profile, &mp);
        let (t0, e0) = *base.get_or_insert((m.time, m.energy));
        println!(
            "{p:>6}  {c:>2}  {:>8.2e}  {:>9.2e}   {:>6.2}x  {:>5.3}",
            m.time,
            m.energy,
            t0 / m.time,
            m.energy / e0
        );
    }

    println!("\n== replicating n-body (256 particles, fixed block size) ==");
    let particles = random_particles(256, 3);
    let mut base: Option<(f64, f64)> = None;
    println!("     p   c     T (s)      E (J)   speedup   E/E0");
    for c in [1usize, 2, 4] {
        let p = 16 * c;
        let (_, profile) = nbody_replicated(&particles, 16, c, cfg.clone()).unwrap();
        let m = measure(&profile, &mp);
        let (t0, e0) = *base.get_or_insert((m.time, m.energy));
        println!(
            "{p:>6}  {c:>2}  {:>8.2e}  {:>9.2e}   {:>6.2}x  {:>5.3}",
            m.time,
            m.energy,
            t0 / m.time,
            m.energy / e0
        );
    }

    println!("\n== FFT, the counterexample (n = 4096) ==");
    let mut rng = XorShift64::new(5);
    let x: Vec<Complex64> = (0..4096)
        .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
        .collect();
    let mut base: Option<(f64, f64)> = None;
    println!("     p      T (s)      E (J)   speedup   E/E0");
    for p in [4usize, 8, 16, 32] {
        let (_, profile) = distributed_fft(&x, p, AllToAllKind::Hypercube, cfg.clone()).unwrap();
        let m = measure(&profile, &mp);
        let (t0, e0) = *base.get_or_insert((m.time, m.energy));
        println!(
            "{p:>6}  {:>9.2e}  {:>9.2e}   {:>6.2}x  {:>5.3}",
            m.time,
            m.energy,
            t0 / m.time,
            m.energy / e0
        );
    }
    println!("(FFT: runtime improves sublinearly and energy RISES — no perfect range)");

    println!("\n== distributed LU (n = 64, critical path) ==");
    let alu = Matrix::random_diagonally_dominant(64, 5);
    println!("     p      T (s)   max msgs/rank");
    for p in [4usize, 16, 64] {
        let (_, profile) = lu_2d(&alu, p, cfg.clone()).unwrap();
        let m = measure(&profile, &mp);
        println!("{p:>6}  {:>9.2e}   {:>6}", m.time, profile.max_msgs_sent());
    }
    println!("(LU: bandwidth scales like matmul, but the message count grows with p)");
}
