//! Record one 2.5D matmul run as an event trace, verify that replaying
//! the trace reproduces the live run bit-for-bit, then answer what-if
//! questions from the single recording: re-price the same communication
//! DAG on scaled machines and walk the critical path.
//!
//! Run with: `cargo run --release --example trace_replay`

use psse::algos::prelude::{matmul_25d, sim_config_from};
use psse::core::machines::jaketown;
use psse::kernels::Matrix;
use psse::sim::machine::SimConfig;
use psse::trace::Trace;

fn main() {
    let (n, p, c) = (32, 8, 2);
    let base = jaketown();
    let cfg = SimConfig {
        record_trace: true,
        ..sim_config_from(&base)
    };

    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let (_, profile) = matmul_25d(&a, &b, p, c, cfg.clone()).expect("2.5D matmul");

    let trace = Trace::from_run(&cfg, &profile).expect("recording enabled");
    trace
        .check_consistency(&profile)
        .expect("replay must be bit-identical to the live run");
    println!(
        "recorded 2.5D matmul n={n} p={p} c={c}: {} events, makespan {:.3e} s",
        trace.n_events(),
        trace.makespan
    );
    println!("replay under recorded parameters: bit-identical to the live run\n");

    // What-if: re-price the same DAG on machines with a scaled network.
    println!("network scaling (same recorded DAG, Eq. 1/2 re-priced):");
    println!(
        "  {:>12}  {:>12}  {:>12}",
        "beta_t x", "time (s)", "energy (J)"
    );
    for scale in [0.1, 1.0, 10.0] {
        let mut m = base.clone();
        m.beta_t *= scale;
        m.alpha_t *= scale;
        let measured = trace.reprice(&m).expect("re-price");
        println!(
            "  {scale:>12}  {:>12.3e}  {:>12.3e}",
            measured.time, measured.energy
        );
    }

    // Critical path under the recorded parameters.
    let params = trace.params.clone();
    let report = trace.critical_path(&params).expect("critical path");
    println!("\nper-rank breakdown (compute / comm / idle, seconds):");
    for b in &report.breakdown {
        println!(
            "  rank {:>2}: {:.3e} / {:.3e} / {:.3e}",
            b.rank, b.compute, b.comm, b.idle
        );
    }
    println!(
        "\ncritical path: {} segments; top 3 by duration:",
        report.path.len()
    );
    for seg in report.top_segments(3) {
        println!(
            "  rank {:>2} {:<12} [{:.3e}, {:.3e}] = {:.3e} s",
            seg.rank,
            seg.label,
            seg.t_start,
            seg.t_end,
            seg.duration()
        );
    }
    let total: f64 = report.path.iter().map(|s| s.duration()).sum();
    assert!((total - report.makespan).abs() <= 1e-12 * report.makespan.max(1.0));
    println!("\npath durations sum to the makespan: {:.3e} s", total);
}
