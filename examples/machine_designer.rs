//! Hardware/software co-design with the energy model (paper §VI–VII):
//! start from real processors (Table II), ask what efficiency the model
//! predicts for a full algorithm run (not just peak), and how much the
//! energy parameters must improve to hit a target.
//!
//! Run with: `cargo run --release --example machine_designer`

use psse::core::machines::{jaketown, table2};
use psse::core::tech_scaling::{multiplier_for_target, scale_all_energy, CaseStudy};
use psse::prelude::*;

fn main() {
    println!("== Table II processors: peak efficiency (GFLOPS/W) ==");
    let mut specs = table2();
    specs.sort_by(|a, b| {
        b.gflops_per_watt()
            .partial_cmp(&a.gflops_per_watt())
            .unwrap()
    });
    for s in &specs {
        println!(
            "  {:<28} peak {:>8.1} GFLOP/s  TDP {:>6.1} W  ->  {:>6.3} GFLOPS/W",
            s.name,
            s.peak_gflops(),
            s.tdp_w,
            s.gflops_per_watt()
        );
    }
    println!(
        "\n(paper §VII: none approach 10 GFLOPS/W; the poles are big GPUs and\n\
         low-power parts)"
    );

    println!("\n== modelled whole-run efficiency vs peak (Jaketown, 2.5D matmul) ==");
    let base = jaketown();
    let study = CaseStudy::default();
    let model_eff = study.gflops_per_watt(&base);
    println!(
        "  peak-only estimate: {:.3} GFLOPS/W",
        table2()[0].gflops_per_watt()
    );
    println!("  whole-run model:    {model_eff:.3} GFLOPS/W (communication + DRAM included)");

    println!("\n== design question: reach 75 GFLOPS/W ==");
    let target = 75.0;
    let k = multiplier_for_target(&base, study, target)
        .expect("target reachable by scaling energy parameters");
    println!(
        "  all energy parameters must improve by {k:.1}x (~{:.1} process generations\n\
         at one halving per generation)",
        k.log2()
    );
    let future = scale_all_energy(&base, 1.0 / k);
    println!(
        "  check: scaled machine delivers {:.1} GFLOPS/W",
        study.gflops_per_watt(&future)
    );

    println!("\n== what if only one component improves? ==");
    use psse::core::tech_scaling::{scale_param, EnergyParam};
    for p in EnergyParam::fig6_set() {
        let scaled = scale_param(&base, p, 1.0 / k);
        println!(
            "  {:>8} alone {k:.0}x better -> {:>7.3} GFLOPS/W",
            p.symbol(),
            study.gflops_per_watt(&scaled)
        );
    }
    println!(
        "\n  Improving a single component saturates (Amdahl for energy):\n\
         target components that serve the whole system (paper §VI)."
    );

    println!("\n== n-body intrinsic efficiency ceiling per machine ==");
    for s in table2().iter().take(4) {
        // A coarse machine: the processor's gamma_t/gamma_e with the
        // Jaketown link and memory prices.
        let mp = MachineParams {
            gamma_t: s.gamma_t(),
            gamma_e: s.gamma_e(),
            ..jaketown()
        };
        let opt = NBodyOptimizer::new(&mp, 20.0).unwrap();
        println!(
            "  {:<28} best-case n-body: {:>6.3} GFLOPS/W at M0 = {:.2e} words",
            s.name,
            opt.gflops_per_watt_at_optimum().unwrap(),
            opt.m0().unwrap()
        );
    }
}
