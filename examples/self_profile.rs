//! Self-profiling walkthrough: run a sweep through the lab engine and
//! read the profile it records about itself — per-key wall-clock,
//! worker utilization, cache temperature, and the Eq. 1/2 metric
//! series the runs exported while executing.
//!
//! The same report is what `psse lab run` writes next to the sweep CSV
//! as `<out>.profile.json` (see `DESIGN.md` §10).
//!
//! Run with: `cargo run --release --example self_profile`

use psse::metrics::{Histogram, Json};
use psse::prelude::*;

fn main() {
    // 1. Declare a small 2.5D-matmul model sweep (same text the CLI
    //    accepts via `psse lab run --spec <file>`).
    let spec = SweepSpec::parse(
        "kind = model\n\
         alg = matmul\n\
         machine = jaketown\n\
         n = 8192\n\
         p = pow2:8:512\n\
         mem = geomf:1e6:1e7:4\n",
    )
    .expect("valid spec");

    // 2. Run it profiled. The results are bit-identical to the
    //    unprofiled `run_spec` path — the profile is a pure
    //    side-channel.
    let lab = Lab::new(LabConfig::default());
    let (sweep, profile) = lab.run_spec_profiled(&spec);
    let (feasible, infeasible) = sweep.feasibility();
    println!(
        "ran {} evaluations ({feasible} feasible, {infeasible} infeasible) \
         on {} worker(s)\n",
        sweep.results.len(),
        profile.jobs
    );

    // 3. The human-readable report: top-K slowest keys plus per-worker
    //    busy/idle bars. This is exactly what the CLI prints.
    print!("{}", profile.render(5));

    // 4. The same data programmatically. Structure is deterministic:
    //    runs are in spec order, so reruns differ only in the
    //    nanosecond values.
    let slowest = profile.top_slowest(1)[0];
    println!(
        "\nslowest key : {} ({} ns host wall-clock, cached={})",
        profile.runs[slowest].label, profile.runs[slowest].wall_ns, profile.runs[slowest].cached
    );
    println!(
        "worker 0    : {:.1}% busy over a {} ns sweep",
        100.0 * profile.utilization(0),
        profile.wall_ns
    );

    // 5. The metric series exported during execution. `virt.*` series
    //    are recorded per key occurrence (identical across worker
    //    counts and cache temperature); here we pull the modeled-time
    //    histogram back out of the snapshot JSON.
    let virt = profile
        .metrics
        .get("virt.time_ns")
        .expect("virt.time_ns is always recorded");
    let h = psse::metrics::registry::histogram_from_json(virt).expect("canonical histogram JSON");
    print_hist("virt.time_ns", &h);

    // 6. The whole profile round-trips through canonical JSON — what
    //    the CLI writes to disk parses back to an equal value.
    let text = profile.to_json().to_string();
    let reparsed = SweepProfile::from_json(&Json::parse(&text).expect("valid JSON"))
        .expect("canonical profile JSON");
    assert_eq!(reparsed, profile, "profile JSON must round-trip");
    println!("\nprofile JSON: {} bytes, round-trips exactly", text.len());
}

fn print_hist(name: &str, h: &Histogram) {
    println!(
        "\n{name}: {} samples, mean {:.3e} ns, p50 {} ns, max {} ns",
        h.count(),
        h.mean(),
        h.quantile(0.5).unwrap_or(0),
        h.max().unwrap_or(0)
    );
}
