//! The FFT as the paper's counterexample: no perfect strong scaling
//! range exists, and the two all-to-all strategies trade words for
//! messages. Model predictions side by side with measured simulator
//! counters.
//!
//! Run with: `cargo run --release --example fft_scaling`

use psse::core::costs::{Algorithm, FftAllToAll, FftTree};
use psse::core::energy::e_fft;
use psse::core::time::t_fft;
use psse::kernels::fft::{fft, Complex64};
use psse::kernels::rng::XorShift64;
use psse::prelude::*;

fn main() {
    let mp = MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(4e-9)
        .alpha_t(1e-6)
        .gamma_e(2e-9)
        .beta_e(8e-9)
        .alpha_e(1e-6)
        .delta_e(1e-8)
        .epsilon_e(1e-4)
        .max_message_words(4096.0)
        .mem_words(1e9)
        .build()
        .unwrap();

    println!("== model: FFT costs have no perfect scaling range ==");
    let n: u64 = 1 << 20;
    println!("  algorithm            scaling range?");
    println!(
        "  FFT (tree)           {:?}",
        FftTree.strong_scaling_range(n, 1024.0)
    );
    println!(
        "  FFT (naive)          {:?}",
        FftAllToAll.strong_scaling_range(n, 1024.0)
    );
    println!("  (extra memory is useless: max_useful == min == n/p)");
    assert_eq!(FftTree.min_memory(n, 64), FftTree.max_useful_memory(n, 64));

    println!("\n== model: T and E vs p (n = 2^20) ==");
    println!("       p        T (s)        E (J)");
    let mut prev_e = 0.0;
    for k in 2..=14 {
        let p = 1u64 << k;
        let t = t_fft(&mp, n, p);
        let e = e_fft(&mp, n, p);
        println!("{p:>8}   {t:>10.3e}   {e:>10.3e}");
        if k > 6 {
            assert!(e >= prev_e * 0.9, "energy should stop falling");
        }
        prev_e = e;
    }
    println!("(the p·log p message-energy term eventually dominates)");

    println!("\n== measured: transpose FFT on the simulator (n = 4096) ==");
    let mut rng = XorShift64::new(11);
    let x: Vec<Complex64> = (0..4096)
        .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
        .collect();
    let reference = fft(&x);
    let cfg = sim_config_from(&mp);
    println!("     p   kind        T (s)     W/rank   S/rank");
    for p in [4usize, 16, 64] {
        for (name, kind) in [
            ("naive", AllToAllKind::Pairwise),
            ("tree ", AllToAllKind::Hypercube),
        ] {
            let (spec, profile) = distributed_fft(&x, p, kind, cfg.clone()).unwrap();
            // Numerics hold for both variants.
            let err = spec
                .iter()
                .zip(&reference)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0f64, f64::max);
            assert!(err < 1e-7, "fft numerics: {err}");
            let m = measure(&profile, &mp);
            println!(
                "{p:>6}   {name}  {:>9.3e}   {:>8}   {:>6}",
                m.time,
                profile.max_words_sent(),
                profile.max_msgs_sent()
            );
        }
    }
    println!(
        "\nnaive: S grows with p at minimal W; tree: S = log p at log p times\n\
         the words — the paper's exact trade-off, measured."
    );
}
