//! Multi-step n-body time integration on the simulated machine: the
//! strong-scaling theorem applied to a real workload shape (many force
//! evaluations, not one), with per-step energy accounting.
//!
//! Run with: `cargo run --release --example nbody_trajectory`

use psse::kernels::nbody::{potential_energy, random_particles};
use psse::prelude::*;

fn main() {
    let machine = MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(4e-9)
        .alpha_t(1e-7)
        .gamma_e(2e-9)
        .beta_e(8e-9)
        .alpha_e(2e-7)
        .delta_e(1e-7)
        .epsilon_e(1e-4)
        .max_message_words(4096.0)
        .mem_words(1e9)
        .build()
        .unwrap();
    let cfg = sim_config_from(&machine);

    let n = 256;
    let steps = 10;
    let dt = 1e-3;
    let particles = random_particles(n, 42);
    println!("integrating {n} particles for {steps} leapfrog steps (dt = {dt})\n");

    println!("     p   c       T (s)       E (J)   speedup   E/E0");
    let mut base: Option<(f64, f64)> = None;
    let mut final_states = Vec::new();
    for c in [1usize, 2, 4] {
        let p = 16 * c;
        let (state, profile) = nbody_simulate(&particles, 16, c, steps, dt, cfg.clone()).unwrap();
        let m = measure(&profile, &machine);
        let (t0, e0) = *base.get_or_insert((m.time, m.energy));
        println!(
            "{p:>6}  {c:>2}  {:>10.3e}  {:>10.3e}   {:>6.2}x  {:>5.3}",
            m.time,
            m.energy,
            t0 / m.time,
            m.energy / e0
        );
        final_states.push(state);
    }

    // All replication factors produce the same trajectory.
    let reference = &final_states[0];
    for (i, state) in final_states.iter().enumerate().skip(1) {
        let max_dev = state
            .iter()
            .zip(reference)
            .flat_map(|(a, b)| (0..3).map(move |d| (a.pos[d] - b.pos[d]).abs()))
            .fold(0.0f64, f64::max);
        println!(
            "\nc = {}: max position deviation vs c = 1: {max_dev:.2e}",
            1 << i
        );
        assert!(max_dev < 1e-9, "trajectories must agree across layouts");
    }

    // Physics sanity: the system is gravitationally bound and total
    // momentum stays ~0 (equal masses, Newton's third law).
    let pe = potential_energy(reference);
    let mom: f64 = (0..3)
        .map(|d| {
            reference
                .iter()
                .map(|pt| pt.mass * pt.vel[d])
                .sum::<f64>()
                .abs()
        })
        .sum();
    println!("\nfinal potential energy: {pe:.4} (bound: negative)");
    println!("net momentum after {steps} steps: {mom:.2e} (conserved: ~0)");
    println!(
        "\nSame trajectory, same energy bill, {}x fewer wall-clock seconds at\n\
         c = 4 — the paper's theorem compounds over every time step.",
        4
    );
}
