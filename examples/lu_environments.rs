//! Paper §VII open problem: "the effect of poor latency scaling by 2.5D
//! LU in various processing environments (embedded, cluster, cloud)" —
//! quantified with the cost models on three machine presets.
//!
//! Run with: `cargo run --release --example lu_environments`

use psse::core::costs::{Algorithm, ClassicalMatMul, Lu25d};
use psse::core::machines::{cloud_instance, cluster_node, embedded_soc};
use psse::prelude::*;

fn main() {
    let environments: [(&str, MachineParams); 3] = [
        ("embedded SoC", embedded_soc()),
        ("cluster node", cluster_node()),
        ("cloud instance", cloud_instance()),
    ];

    println!("== LU vs matmul across environments ==");
    println!(
        "(same problem everywhere: the latency term S_LU = p*sqrt(M)/n grows\n\
         with p, so high-latency fabrics punish LU specifically)\n"
    );

    let n: u64 = 1 << 14;
    for (name, mp) in &environments {
        println!(
            "--- {name} (alpha_t = {:.1e} s, beta_t = {:.1e} s/word) ---",
            mp.alpha_t, mp.beta_t
        );
        println!("       p    T matmul (s)      T LU (s)   LU latency share");
        for logp in [6u32, 10, 14] {
            let p = 1u64 << logp;
            let m = ClassicalMatMul.min_memory(n, p) * 2.0; // c = 2 replication
            let cm = ClassicalMatMul.costs(n, p, m, mp).unwrap();
            let cl = Lu25d.costs(n, p, m, mp).unwrap();
            let t_mm = mp.time(&cm);
            let t_lu = mp.time(&cl);
            let lat_share = mp.alpha_t * cl.messages / t_lu;
            println!(
                "{p:>8}    {t_mm:>12.4e}  {t_lu:>12.4e}   {:>5.1}%",
                100.0 * lat_share
            );
        }
        println!();
    }

    println!("== strong-scaling consequence ==");
    println!("speedup from p = 64 to p = 16384 at fixed M (ideal = 256x):\n");
    for (name, mp) in &environments {
        let m = ClassicalMatMul.min_memory(n, 64) / 4.0; // stays valid at both p
        let t = |alg: &dyn Algorithm, p: u64| {
            let c = alg.costs_clamped(n, p, m, mp).unwrap();
            mp.time(&c)
        };
        let mm = t(&ClassicalMatMul, 64) / t(&ClassicalMatMul, 16384);
        let lu = t(&Lu25d, 64) / t(&Lu25d, 16384);
        println!("  {name:<15} matmul {mm:>7.1}x   LU {lu:>7.1}x");
    }
    println!(
        "\nOn the low-latency fabrics LU rides along with matmul; on the cloud\n\
         fabric its critical-path messages erase most of the scaling — the\n\
         paper's point about which algorithms tolerate which environments."
    );
}
