//! Automatic communication lower bounds from loop nests.
//!
//! Write the kernel, not the bound: the HBL linear program derives the
//! communication exponent σ_HBL from the array subscripts alone, and the
//! bridge prices the resulting `W = Ω(#iter / M^(σ-1))` bound through
//! the paper's Eq. 1/2 machine model.
//!
//! Run with: `cargo run --release --example hbl_bounds`

use psse::prelude::*;

fn main() {
    // 1. A kernel in the text grammar — this is all the analyzer sees.
    let matmul = Kernel::parse(
        "kernel = matmul\n\
         for i in 0..n\n\
         for j in 0..n\n\
         for k in 0..n\n\
         C[i,j] += A[i,k] * B[k,j]\n",
    )
    .unwrap();
    let hbl = analyze(&matmul).unwrap();
    println!("matmul: sigma = {} (exact rational)", hbl.sigma);
    println!(
        "bound : {}",
        hbl.bound_string(matmul.indices.len()).unwrap()
    );
    for (r, s) in matmul.refs.iter().zip(&hbl.exponents) {
        println!("        s({}) = {s}", r.render(&matmul.indices));
    }

    // 2. The same kernel through the builder API — no text involved.
    let nbody = Kernel::builder("nbody")
        .indices(&["i", "j"])
        .access("F", &["i"])
        .access("P", &["i"])
        .access("Q", &["j"])
        .build()
        .unwrap();
    let hbl = analyze(&nbody).unwrap();
    println!("\nnbody : sigma = {}", hbl.sigma);
    println!("bound : {}", hbl.bound_string(nbody.indices.len()).unwrap());

    // 3. Bridge to the paper's machine model: the derived cost model
    //    prices the energy-optimal memory and the perfect-strong-scaling
    //    processor range, bit-for-bit identical to the hand-written
    //    optimizers in psse-core.
    let machine = jaketown();
    let (cost, derived) = derive(&nbody).unwrap();
    println!(
        "\nfamily: {:?} (depth {}, rmax {})",
        cost.family(),
        cost.depth,
        cost.rmax
    );
    let n = 10_000_000;
    let opt = cost.energy_optimum(&machine, n).unwrap();
    println!(
        "n = {n}: M0 = {:.4e} words, E* = {:.4e} J for p in [{:.4}, {:.4}]",
        opt.m0, opt.e_star, opt.p_lo, opt.p_hi
    );
    let _ = derived; // the full analysis rides along for reporting

    // 4. Kernels also live in files; the CLI and the lab read the same
    //    grammar (`psse bound solve --kernel specs/kernels/matmul.kernel`,
    //    `kernel = <file>` in a sweep spec).
    let path = format!("{}/specs/kernels/tensor.kernel", env!("CARGO_MANIFEST_DIR"));
    let tensor = Kernel::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    let hbl = analyze(&tensor).unwrap();
    println!(
        "\n{} (from specs/kernels): sigma = {}, {}",
        tensor.name,
        hbl.sigma,
        hbl.bound_string(tensor.indices.len()).unwrap()
    );
    assert_eq!(hbl.sigma, Rational::new(3, 2).unwrap());
}
