//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the criterion API its benches
//! use: [`Criterion::benchmark_group`], `bench_function`/
//! `bench_with_input`, [`BenchmarkId`], `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling it times a fixed warmup
//! plus a batch of iterations and prints mean wall-clock nanoseconds per
//! iteration — enough to compare kernels locally and to keep the bench
//! targets compiling; swap the registry crate back in when networked
//! builds return.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier combining a function name and a parameter, e.g.
/// `BenchmarkId::new("blocked", 256)` → `blocked/256`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Handed to bench closures; [`Bencher::iter`] times the payload.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`: a short warmup, then a fixed batch sized so the whole
    /// measurement stays in the tens of milliseconds.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup and calibration: run once to size the batch.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.05 / once) as u64).clamp(1, 1000);
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.ns_per_iter = t1.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the fixed-batch harness ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run and report one parameterised benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// End the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    if b.ns_per_iter >= 1e6 {
        println!("{label:<48} {:>12.3} ms/iter", b.ns_per_iter / 1e6);
    } else if b.ns_per_iter >= 1e3 {
        println!("{label:<48} {:>12.3} us/iter", b.ns_per_iter / 1e3);
    } else {
        println!("{label:<48} {:>12.1} ns/iter", b.ns_per_iter);
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run and report one ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{id}"), f);
        self
    }
}

/// Bundle bench functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 256).to_string(), "f/256");
    }
}
