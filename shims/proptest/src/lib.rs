//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the proptest API its test suites
//! actually use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, [`Just`], [`any`], [`ProptestConfig`], and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministic cases from a seed derived from the test name,
//! and a failing case reports its index and message. This keeps the
//! property suites runnable (and reproducible) without the external
//! dependency; swap the registry crate back in when networked builds
//! return.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Deterministic xorshift64* generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator for the named test (stable across runs).
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: seed | 1, // never zero
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How a test case ended short of success.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// `prop_assert!`/`prop_assert_eq!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a preformatted message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Per-`proptest!` block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of values for property tests.
///
/// The real proptest `Strategy` builds shrinkable value trees; this shim
/// only draws values, which is all the workspace's suites need.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each generated value and draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);
tuple_strategy!(A, B, C, D, E, G, H);
tuple_strategy!(A, B, C, D, E, G, H, I);
tuple_strategy!(A, B, C, D, E, G, H, I, J);
tuple_strategy!(A, B, C, D, E, G, H, I, J, K);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy over the whole domain of `T` (`any::<bool>()` etc.).
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection and sampling strategies (`prop::collection::vec`, …).
pub mod prop {
    /// Strategies over collections.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// A vector of values from `element` with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Strategies that sample from explicit value sets.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// Choose uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything the test suites import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discard the current case (it is retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Mirrors proptest's surface grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in pairs()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(config.cases);
            while passed < config.cases && attempts < max_attempts {
                attempts += 1;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {attempts}: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25..0.75f64).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_round_trip(x in 1usize..100, flip in any::<bool>(), pick in prop::sample::select(vec![2, 4, 8])) {
            prop_assume!(x != 50);
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(pick % 2, 0);
            let _ = flip;
        }

        #[test]
        fn tuple_and_vec_strategies((n, v) in (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(0u64..10, 1..6)))) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 6);
        }
    }
}
