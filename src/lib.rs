//! # psse — Perfect Strong Scaling Using No Additional Energy
//!
//! A Rust reproduction of Demmel, Gearhart, Lipshitz and Schwartz,
//! *"Perfect Strong Scaling Using No Additional Energy"* (IPDPS 2013).
//!
//! This facade crate re-exports the member crates of the workspace:
//!
//! * [`core`] (`psse-core`) — the paper's analytical models: time/energy
//!   models, communication lower bounds, strong-scaling analysis, the §V
//!   optimization suite, the §VI case study and machine database.
//! * [`sim`] (`psse-sim`) — a deterministic virtual-time distributed
//!   machine simulator with per-rank flop/word/message/memory counters.
//! * [`event`] (`psse-event`) — the discrete-event simulator backend:
//!   resumable rank programs scheduled by virtual time, byte-identical
//!   to the thread backend (`SimConfig::backend`) and scaling to
//!   `p = 10^5`–`10^6` ranks in one process.
//! * [`kernels`] (`psse-kernels`) — local dense kernels (GEMM, Strassen,
//!   LU, FFT, n-body forces).
//! * [`algos`] (`psse-algos`) — the distributed algorithms executed on
//!   the simulator: Cannon, SUMMA, 2.5D/3D matmul, CAPS Strassen,
//!   distributed LU, replicated n-body, parallel FFT.
//! * [`trace`] (`psse-trace`) — event-trace recording, deterministic
//!   DAG replay and re-pricing for arbitrary machine parameters,
//!   critical-path analysis, and Chrome trace-event export.
//! * [`faults`] (`psse-faults`) — deterministic fault schedules
//!   (crash/drop/corrupt/duplicate/delay) and recovery policies
//!   (retry, checkpoint/restart) injected through `SimConfig::faults`.
//! * [`hbl`] (`psse-hbl`) — automatic communication lower bounds for
//!   arbitrary affine loop nests: a kernel DSL, the
//!   Hölder–Brascamp–Lieb rank-condition linear program solved by an
//!   exact-rational simplex, and a bridge pricing the derived bound
//!   through the Eq. 1/2 models and §V optimizers.
//! * [`lab`] (`psse-lab`) — the parallel batch experiment engine:
//!   declarative sweep specs, an order-preserving worker pool,
//!   content-addressed result caching, and Pareto-frontier /
//!   strong-scaling-range analysis.
//! * [`metrics`] (`psse-metrics`) — zero-dependency structured
//!   metrics: counters, gauges, mergeable log-linear histograms, and a
//!   registry with canonical text/JSON snapshots; powers the lab
//!   self-profile and the simulator's Eq. 1/2 term export.
//!
//! See the repository `README.md` for a tour, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.

pub use psse_algos as algos;
pub use psse_core as core;
pub use psse_event as event;
pub use psse_faults as faults;
pub use psse_hbl as hbl;
pub use psse_kernels as kernels;
pub use psse_lab as lab;
pub use psse_metrics as metrics;
pub use psse_sim as sim;
pub use psse_trace as trace;

/// Convenience prelude: the core model prelude plus the most common
/// simulator and algorithm entry points.
pub mod prelude {
    // `psse_faults`'s types arrive via `psse_sim::prelude` (re-exported
    // there so simulator users see one coherent surface).
    pub use psse_algos::prelude::*;
    pub use psse_core::prelude::*;
    pub use psse_hbl::prelude::*;
    pub use psse_lab::prelude::*;
    pub use psse_sim::prelude::*;
    pub use psse_trace::prelude::*;
}
