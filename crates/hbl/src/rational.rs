//! Exact rational numbers with `i64` components and `i128` intermediates.
//!
//! Every operation is overflow-checked: intermediates are computed in
//! `i128` (where a product of two `i64`s always fits) and the reduced
//! result must fit back into `i64` components or the operation returns
//! [`HblError::Overflow`]. Nothing ever wraps, saturates or rounds — the
//! HBL exponent `σ` is a statement about a proof, so it is carried as an
//! exact fraction until the final float bridge.

use crate::error::HblError;
use std::cmp::Ordering;
use std::fmt;

/// An exact rational `num/den` with `den > 0` and `gcd(|num|, den) = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: i64,
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Reduce `num/den` (i128 intermediates) into `i64` components.
fn norm(num: i128, den: i128, op: &'static str) -> Result<Rational, HblError> {
    debug_assert!(den != 0);
    let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
    if num == 0 {
        return Ok(Rational::ZERO);
    }
    let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i128;
    let (num, den) = (num / g, den / g);
    match (i64::try_from(num), i64::try_from(den)) {
        (Ok(num), Ok(den)) => Ok(Rational { num, den }),
        _ => Err(HblError::Overflow { op }),
    }
}

// Checked arithmetic returns `Result` — overflow is a typed error, so
// the infallible `std::ops` traits are deliberately not implemented.
#[allow(clippy::should_implement_trait)]
impl Rational {
    /// Exact zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// Exact one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num/den`, reduced. `den = 0` is an error.
    pub fn new(num: i64, den: i64) -> Result<Rational, HblError> {
        if den == 0 {
            return Err(HblError::Arithmetic(format!("{num}/0 is undefined")));
        }
        norm(num as i128, den as i128, "new")
    }

    /// The integer `v`.
    pub const fn int(v: i64) -> Rational {
        Rational { num: v, den: 1 }
    }

    /// Reduced numerator (sign carrier).
    pub fn numer(&self) -> i64 {
        self.num
    }

    /// Reduced denominator, always positive.
    pub fn denom(&self) -> i64 {
        self.den
    }

    /// Whether the value is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Checked addition.
    pub fn add(self, o: Rational) -> Result<Rational, HblError> {
        let num = self.num as i128 * o.den as i128 + o.num as i128 * self.den as i128;
        norm(num, self.den as i128 * o.den as i128, "add")
    }

    /// Checked subtraction.
    pub fn sub(self, o: Rational) -> Result<Rational, HblError> {
        self.add(o.neg()?)
    }

    /// Checked multiplication.
    pub fn mul(self, o: Rational) -> Result<Rational, HblError> {
        norm(
            self.num as i128 * o.num as i128,
            self.den as i128 * o.den as i128,
            "mul",
        )
    }

    /// Checked division. Division by zero is an error.
    pub fn div(self, o: Rational) -> Result<Rational, HblError> {
        if o.num == 0 {
            return Err(HblError::Arithmetic("division by zero".into()));
        }
        norm(
            self.num as i128 * o.den as i128,
            self.den as i128 * o.num as i128,
            "div",
        )
    }

    /// Checked negation (`-i64::MIN` would overflow).
    pub fn neg(self) -> Result<Rational, HblError> {
        match self.num.checked_neg() {
            Some(num) => Ok(Rational { num, den: self.den }),
            None => Err(HblError::Overflow { op: "neg" }),
        }
    }

    /// Nearest `f64` (used only at the float bridge, never inside the LP).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Ord for Rational {
    fn cmp(&self, o: &Rational) -> Ordering {
        // i64 × i64 always fits in i128: the comparison is exact.
        (self.num as i128 * o.den as i128).cmp(&(o.num as i128 * self.den as i128))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, o: &Rational) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

impl fmt::Display for Rational {
    /// `3/2` for proper fractions, `2` for integers.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Rational {
    /// Render as `num/den`, or just `num` for integers.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d).unwrap()
    }

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, -7), Rational::ZERO);
        assert_eq!(r(6, 3).render(), "2");
        assert_eq!(r(3, 2).render(), "3/2");
    }

    #[test]
    fn arithmetic_is_exact() {
        assert_eq!(r(1, 2).add(r(1, 3)).unwrap(), r(5, 6));
        assert_eq!(r(1, 2).sub(r(1, 3)).unwrap(), r(1, 6));
        assert_eq!(r(2, 3).mul(r(3, 4)).unwrap(), r(1, 2));
        assert_eq!(r(1, 2).div(r(3, 2)).unwrap(), r(1, 3));
        assert!(r(1, 2).div(Rational::ZERO).is_err());
        assert!(Rational::new(1, 0).is_err());
    }

    #[test]
    fn ordering_is_exact() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < Rational::ZERO);
        assert_eq!(r(2, 4).cmp(&r(1, 2)), Ordering::Equal);
        // Near-i64-extremes comparison cannot overflow (i128 products).
        let big = Rational::int(i64::MAX);
        let small = Rational::int(i64::MIN);
        assert!(small < big);
    }

    #[test]
    fn overflow_is_a_typed_error_not_a_wrap() {
        let big = Rational::int(i64::MAX);
        match big.add(Rational::ONE) {
            Err(HblError::Overflow { op }) => assert_eq!(op, "add"),
            other => panic!("expected typed overflow, got {other:?}"),
        }
        match big.mul(big) {
            Err(HblError::Overflow { op }) => assert_eq!(op, "mul"),
            other => panic!("expected typed overflow, got {other:?}"),
        }
        // Denominator blow-up overflows too: 1/p + 1/q with huge p, q.
        let a = r(1, i64::MAX);
        let b = r(1, i64::MAX - 2);
        assert!(matches!(a.add(b), Err(HblError::Overflow { .. })));
        assert!(Rational::int(i64::MIN).neg().is_err());
    }

    #[test]
    fn to_f64_bridges() {
        assert_eq!(r(3, 2).to_f64(), 1.5);
        assert_eq!(r(-1, 4).to_f64(), -0.25);
    }
}
