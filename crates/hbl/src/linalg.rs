//! Exact rational linear algebra over `Q^d`: reduced row echelon form,
//! canonical subspace bases, sums and intersections (Zassenhaus).
//!
//! Subspaces are the raw material of the HBL rank conditions: for each
//! subgroup `H ≤ Z^d` (equivalently a rational subspace of `Q^d`) the
//! bound needs `dim H` and `rank(φ_j(H))` for every array subscript map
//! `φ_j`. Storing every subspace by its RREF basis makes equality
//! structural, so the lattice closure in [`crate::analysis`] can dedup
//! by simple comparison.

use crate::error::HblError;
use crate::rational::Rational;

/// Reduce `rows` to reduced row echelon form in place; returns the rank.
/// Zero rows are removed, so `rows.len() == rank` afterwards.
pub fn rref(rows: &mut Vec<Vec<Rational>>) -> Result<usize, HblError> {
    let ncols = rows.first().map_or(0, Vec::len);
    let mut lead = 0usize;
    let mut r = 0usize;
    while r < rows.len() && lead < ncols {
        // Find a pivot in column `lead` at or below row `r`.
        let Some(pr) = (r..rows.len()).find(|&i| !rows[i][lead].is_zero()) else {
            lead += 1;
            continue;
        };
        rows.swap(r, pr);
        let piv = rows[r][lead];
        for x in rows[r].iter_mut() {
            *x = x.div(piv)?;
        }
        let pivot_row = rows[r].clone();
        for (i, row) in rows.iter_mut().enumerate() {
            if i != r && !row[lead].is_zero() {
                let factor = row[lead];
                for (x, &p) in row.iter_mut().zip(pivot_row.iter()) {
                    let delta = factor.mul(p)?;
                    *x = x.sub(delta)?;
                }
            }
        }
        r += 1;
        lead += 1;
    }
    rows.retain(|row| row.iter().any(|x| !x.is_zero()));
    Ok(rows.len())
}

/// The rank of an integer matrix (rows need not be independent).
pub fn rank_i64(rows: &[Vec<i64>]) -> Result<usize, HblError> {
    let mut m: Vec<Vec<Rational>> = rows
        .iter()
        .map(|row| row.iter().map(|&v| Rational::int(v)).collect())
        .collect();
    rref(&mut m)
}

/// A subspace of `Q^d`, stored as its canonical RREF basis. Equality of
/// the struct is equality of the subspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subspace {
    /// Ambient dimension `d`.
    pub ambient: usize,
    /// RREF basis rows; `basis.len()` is the dimension.
    pub basis: Vec<Vec<Rational>>,
}

impl Subspace {
    /// The zero subspace of `Q^d`.
    pub fn zero(ambient: usize) -> Subspace {
        Subspace {
            ambient,
            basis: Vec::new(),
        }
    }

    /// All of `Q^d`.
    pub fn full(ambient: usize) -> Subspace {
        let basis = (0..ambient)
            .map(|i| {
                let mut row = vec![Rational::ZERO; ambient];
                row[i] = Rational::ONE;
                row
            })
            .collect();
        Subspace { ambient, basis }
    }

    /// The coordinate axis `span(e_i)`.
    pub fn axis(ambient: usize, i: usize) -> Subspace {
        let mut row = vec![Rational::ZERO; ambient];
        row[i] = Rational::ONE;
        Subspace {
            ambient,
            basis: vec![row],
        }
    }

    /// Canonicalize arbitrary spanning rows into a subspace.
    pub fn from_rows(ambient: usize, mut rows: Vec<Vec<Rational>>) -> Result<Subspace, HblError> {
        debug_assert!(rows.iter().all(|r| r.len() == ambient));
        rref(&mut rows)?;
        Ok(Subspace {
            ambient,
            basis: rows,
        })
    }

    /// Dimension of the subspace.
    pub fn dim(&self) -> usize {
        self.basis.len()
    }

    /// `self + other` (span of the union).
    pub fn sum(&self, other: &Subspace) -> Result<Subspace, HblError> {
        let mut rows = self.basis.clone();
        rows.extend(other.basis.iter().cloned());
        Subspace::from_rows(self.ambient, rows)
    }

    /// `self ∩ other` via the Zassenhaus block construction: row-reduce
    /// `[U | U; W | 0]`; rows whose left block vanished carry an
    /// intersection basis in their right block.
    pub fn intersect(&self, other: &Subspace) -> Result<Subspace, HblError> {
        let d = self.ambient;
        let mut block: Vec<Vec<Rational>> = Vec::with_capacity(self.dim() + other.dim());
        for u in &self.basis {
            let mut row = Vec::with_capacity(2 * d);
            row.extend(u.iter().copied());
            row.extend(u.iter().copied());
            block.push(row);
        }
        for w in &other.basis {
            let mut row = Vec::with_capacity(2 * d);
            row.extend(w.iter().copied());
            row.extend(std::iter::repeat_n(Rational::ZERO, d));
            block.push(row);
        }
        rref(&mut block)?;
        let rows = block
            .into_iter()
            .filter(|row| row[..d].iter().all(Rational::is_zero))
            .map(|row| row[d..].to_vec())
            .collect();
        Subspace::from_rows(d, rows)
    }

    /// `rank(φ(H))` for an integer map `φ : Q^d → Q^k` given as `k × d`
    /// coefficient rows: the rank of the images of the basis vectors.
    pub fn image_rank(&self, map: &[Vec<i64>]) -> Result<usize, HblError> {
        let mut images: Vec<Vec<Rational>> = Vec::with_capacity(self.dim());
        for v in &self.basis {
            let mut img = Vec::with_capacity(map.len());
            for row in map {
                let mut acc = Rational::ZERO;
                for (c, &coef) in row.iter().enumerate() {
                    acc = acc.add(Rational::int(coef).mul(v[c])?)?;
                }
                img.push(acc);
            }
            images.push(img);
        }
        rref(&mut images)
    }
}

/// The null space of an integer map `φ : Q^d → Q^k` (`k × d` rows), as a
/// subspace of `Q^d`.
pub fn kernel_of(map: &[Vec<i64>], ambient: usize) -> Result<Subspace, HblError> {
    let mut m: Vec<Vec<Rational>> = map
        .iter()
        .map(|row| row.iter().map(|&v| Rational::int(v)).collect())
        .collect();
    rref(&mut m)?;
    // Pivot columns of the RREF; the rest are free.
    let mut pivot_col_of_row = Vec::new();
    for row in &m {
        let lead = row.iter().position(|x| !x.is_zero()).expect("nonzero row");
        pivot_col_of_row.push(lead);
    }
    let mut basis = Vec::new();
    for free in 0..ambient {
        if pivot_col_of_row.contains(&free) {
            continue;
        }
        let mut v = vec![Rational::ZERO; ambient];
        v[free] = Rational::ONE;
        for (r, &pc) in pivot_col_of_row.iter().enumerate() {
            v[pc] = m[r][free].neg()?;
        }
        basis.push(v);
    }
    Subspace::from_rows(ambient, basis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: i64) -> Rational {
        Rational::int(v)
    }

    #[test]
    fn rref_ranks() {
        assert_eq!(rank_i64(&[vec![1, 0], vec![0, 1]]).unwrap(), 2);
        assert_eq!(rank_i64(&[vec![1, 2], vec![2, 4]]).unwrap(), 1);
        assert_eq!(rank_i64(&[vec![0, 0]]).unwrap(), 0);
        assert_eq!(
            rank_i64(&[vec![1, 1, 0], vec![0, 1, 1], vec![1, 0, -1]]).unwrap(),
            2
        );
    }

    #[test]
    fn sum_and_intersection() {
        let e1 = Subspace::axis(3, 0);
        let e2 = Subspace::axis(3, 1);
        let plane = e1.sum(&e2).unwrap();
        assert_eq!(plane.dim(), 2);
        assert_eq!(plane.intersect(&e1).unwrap(), e1);
        assert_eq!(e1.intersect(&e2).unwrap().dim(), 0);
        let diag = Subspace::from_rows(3, vec![vec![q(1), q(1), q(0)]]).unwrap();
        // The diagonal lies inside the plane but meets neither axis.
        assert_eq!(plane.intersect(&diag).unwrap(), diag);
        assert_eq!(e1.intersect(&diag).unwrap().dim(), 0);
        assert_eq!(Subspace::full(3).intersect(&plane).unwrap(), plane);
    }

    #[test]
    fn kernels_and_image_ranks() {
        // φ_A(i, j, k) = (i, k): kernel is span(e_j).
        let phi_a = vec![vec![1, 0, 0], vec![0, 0, 1]];
        let ker = kernel_of(&phi_a, 3).unwrap();
        assert_eq!(ker, Subspace::axis(3, 1));
        assert_eq!(Subspace::full(3).image_rank(&phi_a).unwrap(), 2);
        assert_eq!(Subspace::axis(3, 1).image_rank(&phi_a).unwrap(), 0);
        assert_eq!(Subspace::axis(3, 0).image_rank(&phi_a).unwrap(), 1);
        // Skewed map φ(t, i, j) = (t+i, t+j): kernel is span(1, -1, -1).
        let phi = vec![vec![1, 1, 0], vec![1, 0, 1]];
        let ker = kernel_of(&phi, 3).unwrap();
        assert_eq!(ker.dim(), 1);
        assert_eq!(ker.image_rank(&phi).unwrap(), 0);
        let expect = Subspace::from_rows(3, vec![vec![q(1), q(-1), q(-1)]]).unwrap();
        assert_eq!(ker, expect);
    }
}
