//! Bridge from an HBL exponent to the paper's machinery: build a
//! [`psse_core::costs::Algorithm`] whose `(F, W, S)` model is the
//! communication lower bound `W = #iter/(p·M^(σ−1))` attained with
//! equality, price it through Eq. 1/2, and reuse the §V optimizers.
//!
//! The contract that makes this useful is **bit-for-bit agreement** with
//! the hand-written models: a kernel whose derived `(depth, rank, σ)`
//! signature matches 2.5D matmul or the replicating n-body algorithm
//! evaluates through the very same float expression trees as
//! [`ClassicalMatMul`](psse_core::costs::ClassicalMatMul) /
//! [`DirectNBody`](psse_core::costs::DirectNBody) and the very same
//! closed-form optimizers, so sweeps and CSVs are interchangeable with
//! the existing `alg = matmul` / `alg = nbody` paths. Kernels outside
//! those families price through the generic Eq. 1/2 path (exactly what
//! the lab runner does for `lu`, `cholesky`, ...), and `fft-pebbling`
//! kernels delegate wholesale to [`FftTree`].

use crate::analysis::{analyze, HblAnalysis};
use crate::dsl::{Kernel, SpecialBound};
use crate::error::HblError;
use crate::rational::Rational;
use psse_core::bounds::ScalingRange;
use psse_core::costs::{Algorithm, AlgorithmCosts, FftTree};
use psse_core::error::CoreError;
use psse_core::optimize::matmul::MatMulOptimizer;
use psse_core::optimize::nbody::NBodyOptimizer;
use psse_core::optimize::RunConfig;
use psse_core::params::MachineParams;
use psse_core::Real;

/// Same relative tolerance the core cost models apply at the memory
/// range boundary (private there, replicated here so the derived model
/// rejects exactly the same inputs).
const M_RANGE_TOL: Real = 1e-9;

/// `x^e` for integer `e ≥ 1` as a chained product — the same expression
/// tree (`(x·x)·x`, left-associated) the hand-written models use, so the
/// result is bit-identical to theirs, unlike `powi`/`powf`.
fn pow_chain(x: Real, e: u32) -> Real {
    let mut v = x;
    for _ in 1..e {
        v *= x;
    }
    v
}

/// `x^r` for a rational `r ≥ 0`, routed through whichever float
/// expression the hand-written models use for that exponent: chained
/// products for integers, `sqrt` for `1/2`, `powf` otherwise.
fn pow_rat(x: Real, r: Rational) -> Real {
    if r.is_zero() {
        return 1.0;
    }
    if r.is_integer() {
        return pow_chain(x, r.numer() as u32);
    }
    if r.numer() == 1 && r.denom() == 2 {
        return x.sqrt();
    }
    x.powf(r.numer() as Real / r.denom() as Real)
}

/// How a derived kernel is priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `(d, rmax, σ) = (3, 2, 3/2)` with unit flop cost: the 2.5D
    /// classical matmul shape. Priced by [`MatMulOptimizer`].
    Matmul25,
    /// `(d, rmax, σ) = (2, 1, 2)`: the data-replicating n-body shape.
    /// Priced by [`NBodyOptimizer`].
    NBody,
    /// `bound = fft-pebbling` escape hatch: delegates to [`FftTree`].
    Pebbling,
    /// Any other exponent: priced by the generic Eq. 1/2 path.
    Generic,
}

/// What [`derive()`] proved about the kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum Derived {
    /// The solved HBL program (constraints, exponents, duals).
    Hbl(HblAnalysis),
    /// The kernel opted into the hand-derived FFT pebbling bound.
    Pebbling,
}

/// An [`Algorithm`] generated from a kernel's HBL exponent:
/// `F = f·n^d/p`, `W = n^d/(p·M^(σ−1))`, `S = W/m`, valid for
/// `n^rmax/p ≤ M ≤ (n^d/p)^(1/σ)`, where `rmax` is the largest array
/// rank (the dominant array's footprint holds one copy of the data).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCost {
    kernel_name: String,
    /// Loop-nest depth `d` (`#iterations = n^d`).
    pub depth: u32,
    /// Largest `rank(φ_j)` over the references (footprint exponent).
    pub rmax: u32,
    /// The HBL exponent `σ`, exact.
    pub sigma: Rational,
    /// Flops per innermost iteration (`f`).
    pub flops_per_iter: Real,
    /// Whether the kernel routes around the LP to the FFT bound.
    pub pebbling: bool,
}

/// Derive the cost model (and its proof artifacts) from a kernel.
pub fn derive(kernel: &Kernel) -> Result<(KernelCost, Derived), HblError> {
    if kernel.special == Some(SpecialBound::FftPebbling) {
        return Ok((
            KernelCost {
                kernel_name: kernel.name.clone(),
                depth: 1,
                rmax: 1,
                sigma: Rational::ONE,
                flops_per_iter: kernel.flops_per_iter,
                pebbling: true,
            },
            Derived::Pebbling,
        ));
    }
    let a = analyze(kernel)?;
    let mut rmax = 0usize;
    for aref in &kernel.refs {
        rmax = rmax.max(aref.rank()?);
    }
    // analyze() rejected any kernel with a common null direction, so at
    // least one reference has positive rank, and the full-space
    // constraint forces σ ≥ 1.
    debug_assert!(rmax >= 1);
    debug_assert!(a.sigma >= Rational::ONE);
    let cost = KernelCost {
        kernel_name: kernel.name.clone(),
        depth: kernel.depth() as u32,
        rmax: rmax as u32,
        sigma: a.sigma,
        flops_per_iter: kernel.flops_per_iter,
        pebbling: false,
    };
    Ok((cost, Derived::Hbl(a)))
}

impl KernelCost {
    /// The kernel's own name (the [`Algorithm::name`] implementation
    /// must return `&'static str`, so it reports the family instead).
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Which pricing path the derived exponent selects.
    pub fn family(&self) -> Family {
        if self.pebbling {
            return Family::Pebbling;
        }
        let three_halves = Rational::new(3, 2).expect("3/2");
        if self.depth == 3
            && self.rmax == 2
            && self.sigma == three_halves
            && self.flops_per_iter == 1.0
        {
            return Family::Matmul25;
        }
        if self.depth == 2 && self.rmax == 1 && self.sigma == Rational::int(2) {
            return Family::NBody;
        }
        Family::Generic
    }

    /// Evaluate `(T, E)` at an explicit `(p, M)`, dispatching by family
    /// so that matmul- and n-body-shaped kernels reproduce the closed
    /// forms bit-for-bit (this is exactly the lab runner's model
    /// dispatch). Generic kernels clamp `M` into the valid range for
    /// the costs (the energy still charges the requested `M`).
    pub fn evaluate_point(
        &self,
        machine: &MachineParams,
        n: u64,
        p: u64,
        mem: Real,
    ) -> Result<RunConfig, CoreError> {
        match self.family() {
            Family::Matmul25 => Ok(MatMulOptimizer::new(machine)?.evaluate(n, p, mem)),
            Family::NBody => {
                Ok(NBodyOptimizer::new(machine, self.flops_per_iter)?.evaluate(n, p, mem))
            }
            Family::Pebbling | Family::Generic => {
                let costs = self.costs_clamped(n, p, mem, machine)?;
                let t = machine.time(&costs);
                let e = machine.energy(p, &costs, mem, t);
                Ok(RunConfig {
                    p: p as Real,
                    mem,
                    time: t,
                    energy: e,
                })
            }
        }
    }

    /// The energy-optimal operating point (§V.A): `M0`, `E*` and the
    /// processor range where `M0` is feasible — via the closed-form
    /// optimizers for the matmul/n-body families (bit-for-bit what
    /// `psse optimize` prints). Other families have no closed form
    /// here: the FFT has no memory knob at all, and generic kernels
    /// should be optimized at explicit `p` with
    /// [`psse_core::optimize::numeric::argmin_energy_memory`].
    pub fn energy_optimum(
        &self,
        machine: &MachineParams,
        n: u64,
    ) -> Result<EnergyOptimum, CoreError> {
        match self.family() {
            Family::Matmul25 => {
                let opt = MatMulOptimizer::new(machine)?;
                let (p_lo, p_hi) = opt.m0_processor_range(n)?;
                Ok(EnergyOptimum {
                    m0: opt.m0()?,
                    e_star: opt.e_star(n)?,
                    p_lo,
                    p_hi,
                })
            }
            Family::NBody => {
                let opt = NBodyOptimizer::new(machine, self.flops_per_iter)?;
                let (p_lo, p_hi) = opt.m0_processor_range(n)?;
                Ok(EnergyOptimum {
                    m0: opt.m0()?,
                    e_star: opt.e_star(n)?,
                    p_lo,
                    p_hi,
                })
            }
            Family::Pebbling => Err(CoreError::Infeasible(
                "the FFT has no replication knob (M = n/p always): there is no \
                 energy-optimal memory to choose"
                    .into(),
            )),
            Family::Generic => Err(CoreError::Infeasible(format!(
                "kernel `{}` is outside the closed-form families; optimize at an \
                 explicit processor count instead (numeric argmin over M)",
                self.kernel_name
            ))),
        }
    }
}

/// The §V.A optimum of a kernel on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyOptimum {
    /// Energy-optimal memory per processor, words.
    pub m0: Real,
    /// Minimum energy `E*(n)`, joules.
    pub e_star: Real,
    /// Smallest `p` at which `M0` is feasible.
    pub p_lo: Real,
    /// Largest `p` at which `M0` is feasible.
    pub p_hi: Real,
}

impl Algorithm for KernelCost {
    fn name(&self) -> &'static str {
        "HBL-derived kernel"
    }

    fn total_flops(&self, n: u64) -> Real {
        if self.pebbling {
            return FftTree.total_flops(n);
        }
        let nf = n as Real;
        let mut v = self.flops_per_iter;
        for _ in 0..self.depth {
            v *= nf;
        }
        v
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        if self.pebbling {
            return FftTree.min_memory(n, p);
        }
        pow_chain(n as Real, self.rmax) / p as Real
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        if self.pebbling {
            return FftTree.max_useful_memory(n, p);
        }
        // Invert p_max = n^d/M^σ: M_max = n^(d/σ)/p^(1/σ). For the
        // matmul family d/σ = 2 and 1/σ = 2/3; for n-body 1 and 1/2 —
        // the same expressions (and bits) as the hand-written models.
        let d_over_sigma = Rational::int(self.depth as i64)
            .div(self.sigma)
            .expect("sigma >= 1");
        let inv_sigma = Rational::ONE.div(self.sigma).expect("sigma >= 1");
        pow_rat(n as Real, d_over_sigma) / pow_rat(p as Real, inv_sigma)
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        if self.pebbling {
            return FftTree.costs(n, p, m_words, params);
        }
        let (lo, hi) = self.memory_range(n, p)?;
        if !(m_words.is_finite() && m_words > 0.0)
            || m_words < lo * (1.0 - M_RANGE_TOL)
            || m_words > hi * (1.0 + M_RANGE_TOL)
        {
            return Err(CoreError::MemoryOutOfRange {
                m: m_words,
                min: lo,
                max: hi,
            });
        }
        let f = self.total_flops(n) / p as Real;
        let sigma_m1 = self.sigma.sub(Rational::ONE).expect("sigma >= 1");
        let w = pow_chain(n as Real, self.depth) / (p as Real * pow_rat(m_words, sigma_m1));
        Ok(AlgorithmCosts {
            flops: f,
            words: w,
            messages: w / params.max_message_words,
        })
    }

    fn strong_scaling_range(&self, n: u64, mem: Real) -> Option<ScalingRange> {
        if self.pebbling {
            return FftTree.strong_scaling_range(n, mem);
        }
        let nf = n as Real;
        Some(ScalingRange {
            p_min: pow_chain(nf, self.rmax) / mem,
            p_max: pow_chain(nf, self.depth) / pow_rat(mem, self.sigma),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_core::costs::{ClassicalMatMul, DirectNBody};

    fn machine() -> MachineParams {
        MachineParams::builder()
            .gamma_t(2.5e-12)
            .beta_t(1.6e-10)
            .alpha_t(6e-8)
            .gamma_e(3.8e-10)
            .beta_e(3.8e-10)
            .alpha_e(1e-8)
            .delta_e(5.8e-9)
            .epsilon_e(0.1)
            .max_message_words(4096.0)
            .build()
            .unwrap()
    }

    fn matmul_cost() -> KernelCost {
        let k = Kernel::parse(
            "for i in 0..n\nfor j in 0..n\nfor k in 0..n\nC[i,j] += A[i,k] * B[k,j]\n",
        )
        .unwrap();
        derive(&k).unwrap().0
    }

    fn nbody_cost() -> KernelCost {
        let k = Kernel::parse(
            "flops-per-iter = 20\nfor i in 0..n\nfor j in 0..n\nF[i] += P[i] * P[j]\n",
        )
        .unwrap();
        derive(&k).unwrap().0
    }

    #[test]
    fn families_are_recognized() {
        assert_eq!(matmul_cost().family(), Family::Matmul25);
        assert_eq!(nbody_cost().family(), Family::NBody);
        let fft = Kernel::parse("bound = fft-pebbling\n").unwrap();
        assert_eq!(derive(&fft).unwrap().0.family(), Family::Pebbling);
        // Tensor contraction: σ = 3/2 but depth 4 — generic.
        let t = Kernel::parse(
            "for i in 0..n\nfor j in 0..n\nfor k in 0..n\nfor l in 0..n\n\
             C[i,j] += A[i,k,l] * B[l,k,j]\n",
        )
        .unwrap();
        let (cost, _) = derive(&t).unwrap();
        assert_eq!(cost.sigma, Rational::new(3, 2).unwrap());
        assert_eq!((cost.depth, cost.rmax), (4, 3));
        assert_eq!(cost.family(), Family::Generic);
    }

    #[test]
    fn matmul_costs_are_bit_identical_to_the_hand_written_model() {
        let mp = machine();
        let derived = matmul_cost();
        let hand = ClassicalMatMul;
        let (n, p) = (4096u64, 512u64);
        assert_eq!(
            derived.total_flops(n).to_bits(),
            hand.total_flops(n).to_bits()
        );
        assert_eq!(
            derived.min_memory(n, p).to_bits(),
            hand.min_memory(n, p).to_bits()
        );
        assert_eq!(
            derived.max_useful_memory(n, p).to_bits(),
            hand.max_useful_memory(n, p).to_bits()
        );
        let m = hand.min_memory(n, p) * 3.0;
        let a = derived.costs(n, p, m, &mp).unwrap();
        let b = hand.costs(n, p, m, &mp).unwrap();
        assert_eq!(a.flops.to_bits(), b.flops.to_bits());
        assert_eq!(a.words.to_bits(), b.words.to_bits());
        assert_eq!(a.messages.to_bits(), b.messages.to_bits());
        let ra = derived.strong_scaling_range(n, m).unwrap();
        let rb = hand.strong_scaling_range(n, m).unwrap();
        assert_eq!(ra.p_min.to_bits(), rb.p_min.to_bits());
        assert_eq!(ra.p_max.to_bits(), rb.p_max.to_bits());
    }

    #[test]
    fn nbody_costs_are_bit_identical_to_the_hand_written_model() {
        let mp = machine();
        let derived = nbody_cost();
        let hand = DirectNBody {
            flops_per_interaction: 20.0,
        };
        let (n, p) = (1u64 << 20, 1024u64);
        assert_eq!(
            derived.total_flops(n).to_bits(),
            hand.total_flops(n).to_bits()
        );
        let m = hand.max_useful_memory(n, p);
        assert_eq!(m.to_bits(), derived.max_useful_memory(n, p).to_bits());
        let a = derived.costs(n, p, m, &mp).unwrap();
        let b = hand.costs(n, p, m, &mp).unwrap();
        assert_eq!(a.flops.to_bits(), b.flops.to_bits());
        assert_eq!(a.words.to_bits(), b.words.to_bits());
        assert_eq!(a.messages.to_bits(), b.messages.to_bits());
    }

    #[test]
    fn out_of_range_memory_is_rejected_like_the_core_models() {
        let mp = machine();
        let derived = matmul_cost();
        let (n, p) = (4096u64, 512u64);
        let lo = derived.min_memory(n, p);
        assert!(matches!(
            derived.costs(n, p, lo * 0.5, &mp),
            Err(CoreError::MemoryOutOfRange { .. })
        ));
        assert!(matches!(
            derived.costs(n, p, f64::NAN, &mp),
            Err(CoreError::MemoryOutOfRange { .. })
        ));
        assert!(derived.costs(n, p, lo, &mp).is_ok());
    }

    #[test]
    fn evaluate_point_matches_the_closed_form_optimizers() {
        let mp = machine();
        let (n, p) = (4096u64, 512u64);
        let mm = matmul_cost();
        let m = mm.min_memory(n, p) * 2.0;
        let a = mm.evaluate_point(&mp, n, p, m).unwrap();
        let b = MatMulOptimizer::new(&mp).unwrap().evaluate(n, p, m);
        assert_eq!(a.time.to_bits(), b.time.to_bits());
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        let nb = nbody_cost();
        let n2 = 1u64 << 20;
        let m2 = nb.min_memory(n2, p) * 2.0;
        let a2 = nb.evaluate_point(&mp, n2, p, m2).unwrap();
        let b2 = NBodyOptimizer::new(&mp, 20.0).unwrap().evaluate(n2, p, m2);
        assert_eq!(a2.time.to_bits(), b2.time.to_bits());
        assert_eq!(a2.energy.to_bits(), b2.energy.to_bits());
    }

    #[test]
    fn energy_optimum_matches_the_optimizers_and_rejects_generic() {
        let mp = machine();
        let n = 4096u64;
        let opt = MatMulOptimizer::new(&mp).unwrap();
        let e = matmul_cost().energy_optimum(&mp, n).unwrap();
        assert_eq!(e.m0.to_bits(), opt.m0().unwrap().to_bits());
        assert_eq!(e.e_star.to_bits(), opt.e_star(n).unwrap().to_bits());
        let (lo, hi) = opt.m0_processor_range(n).unwrap();
        assert_eq!(e.p_lo.to_bits(), lo.to_bits());
        assert_eq!(e.p_hi.to_bits(), hi.to_bits());
        let fft = derive(&Kernel::parse("bound = fft-pebbling\n").unwrap())
            .unwrap()
            .0;
        assert!(fft.energy_optimum(&mp, n).is_err());
    }

    #[test]
    fn pebbling_delegates_to_fft_tree() {
        let mp = machine();
        let fft = derive(&Kernel::parse("bound = fft-pebbling\n").unwrap())
            .unwrap()
            .0;
        let (n, p) = (1u64 << 20, 256u64);
        let hand = FftTree;
        assert_eq!(fft.total_flops(n).to_bits(), hand.total_flops(n).to_bits());
        let m = hand.min_memory(n, p);
        let a = fft.costs(n, p, m, &mp).unwrap();
        let b = hand.costs(n, p, m, &mp).unwrap();
        assert_eq!(a.words.to_bits(), b.words.to_bits());
        assert!(fft.strong_scaling_range(n, m).is_none());
    }
}
