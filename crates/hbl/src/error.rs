//! Typed errors for the HBL bound machinery.

use std::fmt;

/// Everything that can go wrong between a kernel file and its bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HblError {
    /// Exact-rational arithmetic left the `i64` component range. The
    /// solver refuses to wrap or round: a bound derived from silently
    /// saturated arithmetic would be worthless.
    Overflow {
        /// The operation that overflowed (`"add"`, `"mul"`, ...).
        op: &'static str,
    },
    /// Division by zero or another arithmetic impossibility.
    Arithmetic(String),
    /// Kernel text rejected, with the 1-based source line.
    Parse {
        /// 1-based line number in the kernel file (0 = whole file).
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// Builder-API misuse (no line numbers: the call site is the error).
    Builder(String),
    /// The loop nest reuses data along a direction invisible to every
    /// array: `∩_j ker φ_j ≠ {0}`, so unboundedly many iterations touch
    /// the same operands and no finite `M`-dependent bound exists.
    UnboundedReuse {
        /// A direction in the common kernel, rendered over loop indices.
        direction: String,
    },
    /// The subspace-lattice closure exceeded its cap (pathological
    /// kernel; the shipped examples stay far below it).
    LatticeTooLarge(usize),
    /// The linear program has no feasible point.
    Infeasible(String),
    /// The linear program is unbounded below (cannot happen for the
    /// HBL LP, whose variables live in `[0, 1]`).
    Unbounded(String),
    /// The kernel opted into a special (non-HBL) bound; the LP does not
    /// apply to it.
    SpecialBound(String),
}

impl fmt::Display for HblError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HblError::Overflow { op } => {
                write!(f, "rational overflow in `{op}` (result outside i64 range)")
            }
            HblError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            HblError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            HblError::Builder(msg) => write!(f, "kernel builder: {msg}"),
            HblError::UnboundedReuse { direction } => write!(
                f,
                "no finite HBL bound: direction {direction} is invisible to every \
                 array reference (unbounded reuse)"
            ),
            HblError::LatticeTooLarge(cap) => {
                write!(f, "subspace lattice exceeded {cap} members")
            }
            HblError::Infeasible(msg) => write!(f, "LP infeasible: {msg}"),
            HblError::Unbounded(msg) => write!(f, "LP unbounded: {msg}"),
            HblError::SpecialBound(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for HblError {}
