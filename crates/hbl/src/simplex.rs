//! An exact-rational dense simplex solver for the HBL linear program.
//!
//! Solves `min c·x` subject to `A·x ≥ b`, `x ≥ 0` with two-phase
//! simplex under Bland's rule (smallest-index entering and leaving
//! variable), which is guaranteed to terminate without cycling. All
//! arithmetic is exact [`Rational`] — the optimum `σ_HBL` is a fraction,
//! never a float — and any overflow surfaces as a typed error instead
//! of wrapping.
//!
//! The dual certificate is obtained by solving the explicit dual LP
//! (`max b·y` s.t. `Aᵀy ≤ c`, `y ≥ 0`) with the same routine; strong
//! duality (`value == dual value`, checked exactly) is an internal
//! self-test on every call.
//!
//! [`brute_force`] enumerates all candidate vertices (every square
//! subsystem of active constraints) and is the independent oracle the
//! property tests compare against on small LPs.

use crate::error::HblError;
use crate::rational::Rational;

/// `min c·x` subject to `a·x ≥ b`, `x ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Lp {
    /// Objective coefficients (length `n`).
    pub c: Vec<Rational>,
    /// Constraint matrix (`m × n`), one row per `a_i·x ≥ b_i`.
    pub a: Vec<Vec<Rational>>,
    /// Right-hand sides (length `m`).
    pub b: Vec<Rational>,
}

/// An optimal primal/dual pair.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// The optimal objective value, exact.
    pub value: Rational,
    /// An optimal primal point (length `n`).
    pub x: Vec<Rational>,
    /// An optimal dual certificate (length `m`): `y ≥ 0`, `Aᵀy ≤ c`,
    /// and `b·y == value` (strong duality, verified exactly).
    pub y: Vec<Rational>,
}

fn dot(a: &[Rational], b: &[Rational]) -> Result<Rational, HblError> {
    let mut acc = Rational::ZERO;
    for (x, y) in a.iter().zip(b) {
        acc = acc.add(x.mul(*y)?)?;
    }
    Ok(acc)
}

/// Solve the LP; returns the optimum with a verified dual certificate.
pub fn solve(lp: &Lp) -> Result<LpSolution, HblError> {
    let (value, x) = simplex_min(&lp.c, &lp.a, &lp.b)?;
    // Dual: max b·y s.t. Aᵀy ≤ c, y ≥ 0 — rewritten for the same
    // primal routine as min (−b)·y s.t. (−Aᵀ)·y ≥ −c, y ≥ 0.
    let m = lp.a.len();
    let n = lp.c.len();
    let dual_c: Vec<Rational> = lp.b.iter().map(|v| v.neg()).collect::<Result<_, _>>()?;
    let mut dual_a = vec![vec![Rational::ZERO; m]; n];
    for (i, row) in lp.a.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            dual_a[j][i] = v.neg()?;
        }
    }
    let dual_b: Vec<Rational> = lp.c.iter().map(|v| v.neg()).collect::<Result<_, _>>()?;
    let (neg_dual_value, y) = simplex_min(&dual_c, &dual_a, &dual_b)?;
    if neg_dual_value.neg()? != value {
        return Err(HblError::Arithmetic(
            "internal simplex error: duality gap on an exact LP".into(),
        ));
    }
    Ok(LpSolution { value, x, y })
}

/// Two-phase simplex core: `min c·x`, `a·x ≥ b`, `x ≥ 0`.
fn simplex_min(
    c: &[Rational],
    a: &[Vec<Rational>],
    b: &[Rational],
) -> Result<(Rational, Vec<Rational>), HblError> {
    let n = c.len();
    let m = a.len();
    let cols = n + 2 * m; // x | surplus | artificial
                          // Equality form `a·x − s = b` with every RHS made nonnegative by
                          // flipping rows, then one artificial per row as the initial basis.
    let mut t: Vec<Vec<Rational>> = Vec::with_capacity(m);
    let mut rhs: Vec<Rational> = Vec::with_capacity(m);
    for i in 0..m {
        let flip = b[i] < Rational::ZERO;
        let mut row = vec![Rational::ZERO; cols];
        for j in 0..n {
            row[j] = if flip { a[i][j].neg()? } else { a[i][j] };
        }
        row[n + i] = if flip {
            Rational::ONE
        } else {
            Rational::int(-1)
        };
        row[n + m + i] = Rational::ONE;
        t.push(row);
        rhs.push(if flip { b[i].neg()? } else { b[i] });
    }
    let mut basis: Vec<usize> = (n + m..cols).collect();

    // Phase 1: minimize the artificial sum down to zero (else infeasible).
    let mut cost1 = vec![Rational::ZERO; cols];
    for cj in cost1.iter_mut().skip(n + m) {
        *cj = Rational::ONE;
    }
    run_phase(&mut t, &mut rhs, &mut basis, &cost1, cols).map_err(|e| match e {
        // Phase 1 is bounded below by 0; "unbounded" cannot escape it.
        HblError::Unbounded(_) => HblError::Arithmetic("internal: phase-1 unbounded".into()),
        other => other,
    })?;
    let mut phase1 = Rational::ZERO;
    for (r, &bv) in basis.iter().enumerate() {
        phase1 = phase1.add(cost1[bv].mul(rhs[r])?)?;
    }
    if phase1 > Rational::ZERO {
        return Err(HblError::Infeasible(format!(
            "no feasible point (phase-1 residual {phase1})"
        )));
    }
    // Pivot leftover zero-valued artificials out of the basis when
    // possible; a fully zero row is redundant and may keep its
    // artificial (phase 2 bans artificial columns from entering).
    for r in 0..m {
        if basis[r] >= n + m {
            if let Some(j) = (0..n + m).find(|&j| !t[r][j].is_zero()) {
                pivot(&mut t, &mut rhs, &mut basis, r, j)?;
            }
        }
    }

    // Phase 2: the real objective over x and surplus columns only.
    let mut cost2 = vec![Rational::ZERO; cols];
    cost2[..n].copy_from_slice(c);
    run_phase(&mut t, &mut rhs, &mut basis, &cost2, n + m)?;

    let mut x = vec![Rational::ZERO; n];
    for (r, &bv) in basis.iter().enumerate() {
        if bv < n {
            x[bv] = rhs[r];
        }
    }
    Ok((dot(c, &x)?, x))
}

/// Run Bland-rule pivots until no reduced cost is negative. Columns at
/// index `ban` and beyond may not enter the basis.
fn run_phase(
    t: &mut [Vec<Rational>],
    rhs: &mut [Rational],
    basis: &mut [usize],
    cost: &[Rational],
    ban: usize,
) -> Result<(), HblError> {
    let m = t.len();
    // Far above any reachable pivot count for these LP sizes; a trip
    // would indicate a solver bug, not a hard problem.
    for _ in 0..20_000 {
        // Bland: entering column = smallest index with negative reduced
        // cost (computed fresh — the LPs here are tiny).
        let mut entering = None;
        'cols: for j in 0..ban.min(cost.len()) {
            if basis.contains(&j) {
                continue;
            }
            let mut rc = cost[j];
            for r in 0..m {
                rc = rc.sub(cost[basis[r]].mul(t[r][j])?)?;
            }
            if rc < Rational::ZERO {
                entering = Some(j);
                break 'cols;
            }
        }
        let Some(j) = entering else {
            return Ok(());
        };
        // Ratio test; ties broken by smallest basis variable (Bland).
        let mut leave: Option<(usize, Rational)> = None;
        for r in 0..m {
            if t[r][j] > Rational::ZERO {
                let ratio = rhs[r].div(t[r][j])?;
                let better = match &leave {
                    None => true,
                    Some((lr, lratio)) => {
                        ratio < *lratio || (ratio == *lratio && basis[r] < basis[*lr])
                    }
                };
                if better {
                    leave = Some((r, ratio));
                }
            }
        }
        let Some((r, _)) = leave else {
            return Err(HblError::Unbounded(format!(
                "objective decreases without bound along column {j}"
            )));
        };
        pivot(t, rhs, basis, r, j)?;
    }
    Err(HblError::Arithmetic(
        "internal simplex error: pivot budget exhausted".into(),
    ))
}

fn pivot(
    t: &mut [Vec<Rational>],
    rhs: &mut [Rational],
    basis: &mut [usize],
    r: usize,
    j: usize,
) -> Result<(), HblError> {
    let piv = t[r][j];
    for x in t[r].iter_mut() {
        *x = x.div(piv)?;
    }
    rhs[r] = rhs[r].div(piv)?;
    for i in 0..t.len() {
        if i != r && !t[i][j].is_zero() {
            let factor = t[i][j];
            for cidx in 0..t[i].len() {
                let delta = factor.mul(t[r][cidx])?;
                t[i][cidx] = t[i][cidx].sub(delta)?;
            }
            let delta = factor.mul(rhs[r])?;
            rhs[i] = rhs[i].sub(delta)?;
        }
    }
    basis[r] = j;
    Ok(())
}

/// Independent oracle: enumerate every candidate vertex (each square
/// subsystem drawn from the constraint rows `a_i·x = b_i` and the axis
/// planes `x_j = 0`), keep the feasible ones, and return the minimum
/// objective. `None` means infeasible (no vertex satisfies everything).
///
/// Only meaningful for LPs whose feasible region is a polytope (e.g.
/// with `x ≤ 1` box rows included in `a`): a bounded feasible LP always
/// attains its optimum at a vertex. Exponential in the problem size —
/// this is a test oracle, not a solver.
pub fn brute_force(lp: &Lp) -> Result<Option<(Rational, Vec<Rational>)>, HblError> {
    let n = lp.c.len();
    let mut rows: Vec<(Vec<Rational>, Rational)> =
        lp.a.iter()
            .zip(&lp.b)
            .map(|(r, v)| (r.clone(), *v))
            .collect();
    for j in 0..n {
        let mut e = vec![Rational::ZERO; n];
        e[j] = Rational::ONE;
        rows.push((e, Rational::ZERO));
    }
    let mut best: Option<(Rational, Vec<Rational>)> = None;
    let mut combo = Vec::with_capacity(n);
    enumerate_vertices(&rows, n, 0, &mut combo, &mut |x| {
        // Feasibility: every constraint row and every axis bound.
        for (a, b) in &rows {
            if dot(a, x)? < *b {
                return Ok(());
            }
        }
        let value = dot(&lp.c, x)?;
        if best.as_ref().is_none_or(|(bv, _)| value < *bv) {
            best = Some((value, x.to_vec()));
        }
        Ok(())
    })?;
    Ok(best)
}

/// Recurse over all `n`-subsets of rows; solve each square system and
/// feed nonsingular solutions to `visit`.
fn enumerate_vertices(
    rows: &[(Vec<Rational>, Rational)],
    n: usize,
    start: usize,
    combo: &mut Vec<usize>,
    visit: &mut dyn FnMut(&[Rational]) -> Result<(), HblError>,
) -> Result<(), HblError> {
    if combo.len() == n {
        if let Some(x) = solve_square(rows, combo)? {
            visit(&x)?;
        }
        return Ok(());
    }
    for i in start..rows.len() {
        combo.push(i);
        enumerate_vertices(rows, n, i + 1, combo, visit)?;
        combo.pop();
    }
    Ok(())
}

/// Solve the square system given by the selected rows; `None` if singular.
fn solve_square(
    rows: &[(Vec<Rational>, Rational)],
    combo: &[usize],
) -> Result<Option<Vec<Rational>>, HblError> {
    let n = combo.len();
    let mut aug: Vec<Vec<Rational>> = combo
        .iter()
        .map(|&i| {
            let mut row = rows[i].0.clone();
            row.push(rows[i].1);
            row
        })
        .collect();
    // Gaussian elimination with exact pivots.
    for col in 0..n {
        let Some(pr) = (col..n).find(|&r| !aug[r][col].is_zero()) else {
            return Ok(None);
        };
        aug.swap(col, pr);
        let piv = aug[col][col];
        for x in aug[col].iter_mut() {
            *x = x.div(piv)?;
        }
        let pivot_row = aug[col].clone();
        for (r, row) in aug.iter_mut().enumerate() {
            if r != col && !row[col].is_zero() {
                let factor = row[col];
                for (x, &p) in row.iter_mut().zip(pivot_row.iter()) {
                    let delta = factor.mul(p)?;
                    *x = x.sub(delta)?;
                }
            }
        }
    }
    Ok(Some((0..n).map(|r| aug[r][n]).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d).unwrap()
    }

    fn q(v: i64) -> Rational {
        Rational::int(v)
    }

    /// The matmul HBL LP: min s1+s2+s3 s.t. the axis constraints
    /// 1 ≤ s_i + s_j (each pair) and 3 ≤ 2(s1+s2+s3), s ≤ 1.
    fn matmul_lp() -> Lp {
        let one = Rational::ONE;
        let z = Rational::ZERO;
        let neg1 = q(-1);
        Lp {
            c: vec![one, one, one],
            a: vec![
                vec![one, one, z],
                vec![one, z, one],
                vec![z, one, one],
                vec![q(2), q(2), q(2)],
                vec![neg1, z, z],
                vec![z, neg1, z],
                vec![z, z, neg1],
            ],
            b: vec![one, one, one, q(3), neg1, neg1, neg1],
        }
    }

    #[test]
    fn matmul_lp_value_is_three_halves() {
        let sol = solve(&matmul_lp()).unwrap();
        assert_eq!(sol.value, r(3, 2));
        assert_eq!(sol.x, vec![r(1, 2), r(1, 2), r(1, 2)]);
        // Certificate invariants: y ≥ 0, Aᵀy ≤ c, b·y = value.
        let lp = matmul_lp();
        assert!(sol.y.iter().all(|v| *v >= Rational::ZERO));
        for j in 0..3 {
            let mut aty = Rational::ZERO;
            for (i, yi) in sol.y.iter().enumerate() {
                aty = aty.add(yi.mul(lp.a[i][j]).unwrap()).unwrap();
            }
            assert!(aty <= lp.c[j]);
        }
        let by = dot(&lp.b, &sol.y).unwrap();
        assert_eq!(by, sol.value);
    }

    #[test]
    fn brute_force_agrees_on_matmul() {
        let lp = matmul_lp();
        let (value, _) = brute_force(&lp).unwrap().unwrap();
        assert_eq!(value, r(3, 2));
    }

    #[test]
    fn infeasible_is_detected_by_both() {
        // x1 ≥ 2 and −x1 ≥ −1 (x1 ≤ 1) cannot both hold.
        let lp = Lp {
            c: vec![Rational::ONE],
            a: vec![vec![Rational::ONE], vec![q(-1)]],
            b: vec![q(2), q(-1)],
        };
        assert!(matches!(solve(&lp), Err(HblError::Infeasible(_))));
        assert_eq!(brute_force(&lp).unwrap(), None);
    }

    #[test]
    fn unbounded_is_detected() {
        // min −x1, x1 ≥ 0 only: decreases forever.
        let lp = Lp {
            c: vec![q(-1)],
            a: vec![vec![Rational::ONE]],
            b: vec![Rational::ZERO],
        };
        assert!(matches!(solve(&lp), Err(HblError::Unbounded(_))));
    }

    #[test]
    fn degenerate_ties_terminate_under_bland() {
        // Multiple redundant constraints through the same vertex.
        let one = Rational::ONE;
        let lp = Lp {
            c: vec![one, one],
            a: vec![
                vec![one, one],
                vec![q(2), q(2)],
                vec![one, Rational::ZERO],
                vec![q(-1), Rational::ZERO],
                vec![Rational::ZERO, q(-1)],
            ],
            b: vec![one, q(2), Rational::ZERO, q(-1), q(-1)],
        };
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.value, one);
        let (bf, _) = brute_force(&lp).unwrap().unwrap();
        assert_eq!(bf, one);
    }
}
