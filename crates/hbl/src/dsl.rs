//! The kernel DSL: a loop nest plus its array references, parsed from a
//! small line-oriented text grammar (in the style of the lab sweep
//! specs) or assembled through [`KernelBuilder`].
//!
//! ```text
//! # Classical matrix multiplication.
//! kernel = matmul
//! for i in 0..n
//! for j in 0..n
//! for k in 0..n
//! C[i,j] += A[i,k] * B[k,j]
//! ```
//!
//! Grammar, line by line (blank lines and `#` comments are ignored):
//!
//! * `kernel = NAME` — optional display name.
//! * `flops-per-iter = F` — flops counted per innermost iteration
//!   (default 1, matching the paper's `n³` convention for matmul).
//! * `bound = hbl | fft-pebbling` — `fft-pebbling` is the documented
//!   escape hatch for kernels whose index maps are not affine (FFT
//!   butterflies): the LP is skipped and the hand-derived pebbling
//!   bound from `psse-core` is used instead.
//! * `for IDX in 0..n` — one loop per line, outermost first. All loops
//!   share the symbolic extent `n` (the model's single size parameter).
//! * `LHS (+=|=) RHS` — the statement. Both sides are built from array
//!   references `Name[expr, expr, ...]` combined with `+`, `-`, `*`;
//!   each subscript is an affine expression in the loop indices
//!   (`i`, `i+k`, `2*i-j`, `i+1`). Constant offsets shift data without
//!   changing the projection, so they are accepted and dropped.
//!
//! Each distinct `(array, linear map)` pair becomes one HBL reference
//! `φ_j`; the same array read through two different maps (`P[i]` and
//! `P[j]` in the n-body kernel) contributes two references. Errors
//! carry 1-based line numbers.

use crate::error::HblError;
use crate::linalg::rank_i64;

/// A non-affine kernel routed around the HBL LP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecialBound {
    /// FFT butterflies: use the paper's pebbling bound (`psse-core`'s
    /// `FftTree` model) instead of the LP.
    FftPebbling,
}

/// One array reference `φ_j : Z^d → Z^k`, the linear part only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Array name as written.
    pub array: String,
    /// `k × d` integer coefficient rows, one per subscript.
    pub map: Vec<Vec<i64>>,
}

impl ArrayRef {
    /// Render as `A[i,k]` / `A[t+i]` over the given index names
    /// (constant offsets were dropped at parse time).
    pub fn render(&self, indices: &[String]) -> String {
        let subs: Vec<String> = self
            .map
            .iter()
            .map(|row| render_affine(row, indices))
            .collect();
        format!("{}[{}]", self.array, subs.join(","))
    }

    /// `rank(φ_j)` over the full space.
    pub fn rank(&self) -> Result<usize, HblError> {
        rank_i64(&self.map)
    }
}

/// Render an integer coefficient row over index names: `i`, `t+i`,
/// `2*i-j`, `0`.
pub fn render_affine(row: &[i64], indices: &[String]) -> String {
    let mut out = String::new();
    for (c, &coef) in row.iter().enumerate() {
        if coef == 0 {
            continue;
        }
        if coef > 0 && !out.is_empty() {
            out.push('+');
        }
        if coef == -1 {
            out.push('-');
        } else if coef != 1 {
            out.push_str(&format!("{coef}*"));
        }
        out.push_str(&indices[c]);
    }
    if out.is_empty() {
        out.push('0');
    }
    out
}

/// A parsed kernel: iteration space `[0, n)^d` plus array references.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Display name (`kernel = ...`, default `"kernel"`).
    pub name: String,
    /// Loop indices, outermost first; `d = indices.len()`.
    pub indices: Vec<String>,
    /// Deduplicated array references.
    pub refs: Vec<ArrayRef>,
    /// Flops counted per innermost iteration.
    pub flops_per_iter: f64,
    /// Escape hatch for non-affine kernels.
    pub special: Option<SpecialBound>,
}

/// Caps keeping the subspace lattice enumerable; far above every
/// shipped kernel (deepest is the 4-loop tensor contraction).
const MAX_DEPTH: usize = 6;
const MAX_REFS: usize = 8;

impl Kernel {
    /// Parse kernel text; errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<Kernel, HblError> {
        let err = |line: usize, msg: String| HblError::Parse { line, msg };
        let mut name = String::from("kernel");
        let mut indices: Vec<String> = Vec::new();
        let mut refs: Vec<ArrayRef> = Vec::new();
        let mut flops_per_iter = 1.0;
        let mut special = None;
        let mut saw_statement = false;

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("for ") {
                if saw_statement {
                    return Err(err(lineno, "loops must precede the statement".into()));
                }
                let mut toks = rest.split_whitespace();
                let idx = toks.next().unwrap_or("");
                let kw = toks.next().unwrap_or("");
                let range = toks.next().unwrap_or("");
                if !is_ident(idx) || kw != "in" || toks.next().is_some() {
                    return Err(err(
                        lineno,
                        format!("expected `for IDX in 0..n`, got `{line}`"),
                    ));
                }
                if range != "0..n" {
                    return Err(err(
                        lineno,
                        format!(
                            "loop ranges must be `0..n` (all loops share the symbolic \
                             extent n), got `{range}`"
                        ),
                    ));
                }
                if indices.iter().any(|x| x == idx) {
                    return Err(err(lineno, format!("duplicate loop index `{idx}`")));
                }
                if indices.len() == MAX_DEPTH {
                    return Err(err(lineno, format!("at most {MAX_DEPTH} nested loops")));
                }
                indices.push(idx.to_string());
                continue;
            }
            // A statement has an array reference before its `=`;
            // everything else is a `key = value` directive.
            let eq = line.find('=');
            let bracket = line.find('[');
            let is_statement = matches!((bracket, eq), (Some(b), Some(e)) if b < e);
            if is_statement {
                parse_statement(line, lineno, &indices, &mut refs)?;
                saw_statement = true;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
            };
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(err(lineno, format!("`{key}` has no value")));
            }
            match key {
                "kernel" => name = value.to_string(),
                "flops-per-iter" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| err(lineno, format!("bad number `{value}`")))?;
                    if !(v > 0.0 && v.is_finite()) {
                        return Err(err(lineno, "`flops-per-iter` must be positive".into()));
                    }
                    flops_per_iter = v;
                }
                "bound" => {
                    special = match value {
                        "hbl" => None,
                        "fft-pebbling" => Some(SpecialBound::FftPebbling),
                        other => {
                            return Err(err(
                                lineno,
                                format!("unknown bound `{other}` (hbl|fft-pebbling)"),
                            ))
                        }
                    };
                }
                other => return Err(err(lineno, format!("unknown key `{other}`"))),
            }
        }

        let kernel = Kernel {
            name,
            indices,
            refs,
            flops_per_iter,
            special,
        };
        kernel.validate().map_err(|e| match e {
            HblError::Builder(msg) => err(0, msg),
            other => other,
        })?;
        Ok(kernel)
    }

    /// Start a builder-API kernel.
    pub fn builder(name: &str) -> KernelBuilder {
        KernelBuilder {
            name: name.to_string(),
            indices: Vec::new(),
            accesses: Vec::new(),
            flops_per_iter: 1.0,
            special: None,
        }
    }

    /// Loop-nest depth `d`.
    pub fn depth(&self) -> usize {
        self.indices.len()
    }

    /// Shared validity checks for parser and builder.
    fn validate(&self) -> Result<(), HblError> {
        if self.special.is_some() {
            return Ok(()); // loops/statement optional under an escape hatch
        }
        if self.indices.is_empty() {
            return Err(HblError::Builder("kernel has no loops".into()));
        }
        if self.refs.is_empty() {
            return Err(HblError::Builder(
                "kernel has no statement (no array references)".into(),
            ));
        }
        if self.refs.len() > MAX_REFS {
            return Err(HblError::Builder(format!(
                "at most {MAX_REFS} distinct array references"
            )));
        }
        Ok(())
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse `LHS (+=|=) RHS` into array references, appending to `refs`.
fn parse_statement(
    line: &str,
    lineno: usize,
    indices: &[String],
    refs: &mut Vec<ArrayRef>,
) -> Result<(), HblError> {
    let err = |msg: String| HblError::Parse { line: lineno, msg };
    if indices.is_empty() {
        return Err(err("statement before any `for` loop".into()));
    }
    let (lhs, rhs) = match line.split_once("+=") {
        Some((l, r)) => (l, r),
        None => line
            .split_once('=')
            .ok_or_else(|| err("statement needs `=` or `+=`".into()))?,
    };
    for side in [lhs, rhs] {
        for token in split_refs(side) {
            let token = token.trim();
            if token.is_empty() {
                return Err(err("empty term in statement".into()));
            }
            // Bare numeric literals (scalars) carry no data movement.
            if token.chars().all(|c| c.is_ascii_digit() || c == '.') {
                continue;
            }
            let array_ref = parse_ref(token, indices).map_err(&err)?;
            if !refs.contains(&array_ref) {
                refs.push(array_ref);
            }
        }
    }
    Ok(())
}

/// Split a statement side on `+`, `-`, `*` outside subscript brackets.
fn split_refs(side: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    for ch in side.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            '+' | '-' | '*' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                // The operator itself is dropped: only the references
                // matter for the bound.
            }
            _ => cur.push(ch),
        }
    }
    out.push(cur);
    out.retain(|t| !t.trim().is_empty());
    out
}

/// Parse one `Name[expr, expr, ...]` reference.
fn parse_ref(token: &str, indices: &[String]) -> Result<ArrayRef, String> {
    let Some((array, rest)) = token.split_once('[') else {
        return Err(format!(
            "expected an array reference `Name[...]`, got `{token}` \
             (scalars must be numeric literals)"
        ));
    };
    let array = array.trim();
    if !is_ident(array) {
        return Err(format!("bad array name `{array}`"));
    }
    let Some(subs) = rest.trim_end().strip_suffix(']') else {
        return Err(format!("unclosed `[` in `{token}`"));
    };
    let mut map = Vec::new();
    for sub in subs.split(',') {
        map.push(parse_affine(sub, indices)?);
    }
    if map.is_empty() {
        return Err(format!("`{array}` has no subscripts"));
    }
    Ok(ArrayRef {
        array: array.to_string(),
        map,
    })
}

/// Parse an affine expression over loop indices into its coefficient
/// row; the constant part is dropped (it does not affect the bound).
fn parse_affine(expr: &str, indices: &[String]) -> Result<Vec<i64>, String> {
    let expr = expr.trim();
    if expr.is_empty() {
        return Err("empty subscript".into());
    }
    let mut coeffs = vec![0i64; indices.len()];
    // Split into signed terms.
    let mut terms: Vec<(i64, String)> = Vec::new();
    let mut sign = 1i64;
    let mut cur = String::new();
    for ch in expr.chars() {
        match ch {
            '+' | '-' => {
                // An operator closes the current term (if any) and sets
                // the sign of the NEXT term; consecutive operators
                // compose ("--i" is "+i").
                if !cur.trim().is_empty() {
                    terms.push((sign, std::mem::take(&mut cur)));
                    sign = 1;
                } else {
                    cur.clear();
                }
                if ch == '-' {
                    sign = -sign;
                }
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        terms.push((sign, cur));
    }
    if terms.is_empty() {
        return Err(format!("empty subscript expression `{expr}`"));
    }
    for (sign, term) in terms {
        let term = term.trim().to_string();
        let (coef, ident) = match term.split_once('*') {
            Some((c, id)) => {
                let c: i64 = c
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad coefficient `{c}` in `{expr}`"))?;
                (c, id.trim().to_string())
            }
            None => {
                if term.chars().all(|c| c.is_ascii_digit()) {
                    continue; // constant offset: dropped
                }
                (1, term)
            }
        };
        let Some(pos) = indices.iter().position(|x| *x == ident) else {
            return Err(format!("unknown loop index `{ident}` in `{expr}`"));
        };
        let add = coef.checked_mul(sign).ok_or("coefficient overflow")?;
        coeffs[pos] = coeffs[pos].checked_add(add).ok_or("coefficient overflow")?;
    }
    Ok(coeffs)
}

/// Programmatic kernel construction mirroring the text grammar.
///
/// ```
/// use psse_hbl::dsl::Kernel;
/// let lu = Kernel::builder("lu")
///     .indices(&["i", "j", "k"])
///     .access("A", &["i", "j"])
///     .access("L", &["i", "k"])
///     .access("U", &["k", "j"])
///     .build()
///     .unwrap();
/// assert_eq!(lu.depth(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    indices: Vec<String>,
    accesses: Vec<(String, Vec<String>)>,
    flops_per_iter: f64,
    special: Option<SpecialBound>,
}

impl KernelBuilder {
    /// Append one loop index (outermost first).
    pub fn index(mut self, id: &str) -> Self {
        self.indices.push(id.to_string());
        self
    }

    /// Append several loop indices at once.
    pub fn indices(mut self, ids: &[&str]) -> Self {
        self.indices.extend(ids.iter().map(|s| s.to_string()));
        self
    }

    /// Add an array access; each subscript is an affine expression
    /// string (`"i"`, `"i+k"`, `"2*i-j"`).
    pub fn access(mut self, array: &str, subs: &[&str]) -> Self {
        self.accesses.push((
            array.to_string(),
            subs.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Set the flops counted per innermost iteration (default 1).
    pub fn flops_per_iter(mut self, f: f64) -> Self {
        self.flops_per_iter = f;
        self
    }

    /// Route the kernel around the LP to a special bound.
    pub fn special(mut self, s: SpecialBound) -> Self {
        self.special = Some(s);
        self
    }

    /// Validate and build the kernel.
    pub fn build(self) -> Result<Kernel, HblError> {
        let berr = |msg: String| HblError::Builder(msg);
        for id in &self.indices {
            if !is_ident(id) {
                return Err(berr(format!("bad loop index `{id}`")));
            }
        }
        for window in self.indices.windows(2) {
            // O(d²) duplicate scan via positions; d ≤ 6.
            let _ = window;
        }
        for (i, id) in self.indices.iter().enumerate() {
            if self.indices[..i].contains(id) {
                return Err(berr(format!("duplicate loop index `{id}`")));
            }
        }
        if self.indices.len() > MAX_DEPTH {
            return Err(berr(format!("at most {MAX_DEPTH} nested loops")));
        }
        if !(self.flops_per_iter > 0.0 && self.flops_per_iter.is_finite()) {
            return Err(berr("`flops_per_iter` must be positive".into()));
        }
        let mut refs: Vec<ArrayRef> = Vec::new();
        for (array, subs) in &self.accesses {
            if !is_ident(array) {
                return Err(berr(format!("bad array name `{array}`")));
            }
            let mut map = Vec::new();
            for sub in subs {
                map.push(
                    parse_affine(sub, &self.indices)
                        .map_err(|msg| berr(format!("access `{array}`: {msg}")))?,
                );
            }
            if map.is_empty() {
                return Err(berr(format!("`{array}` has no subscripts")));
            }
            let r = ArrayRef {
                array: array.clone(),
                map,
            };
            if !refs.contains(&r) {
                refs.push(r);
            }
        }
        let kernel = Kernel {
            name: self.name,
            indices: self.indices,
            refs,
            flops_per_iter: self.flops_per_iter,
            special: self.special,
        };
        kernel.validate()?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MATMUL: &str = "\
kernel = matmul
for i in 0..n
for j in 0..n
for k in 0..n
C[i,j] += A[i,k] * B[k,j]
";

    #[test]
    fn parses_matmul() {
        let k = Kernel::parse(MATMUL).unwrap();
        assert_eq!(k.name, "matmul");
        assert_eq!(k.indices, ["i", "j", "k"]);
        assert_eq!(k.refs.len(), 3);
        assert_eq!(k.refs[0].render(&k.indices), "C[i,j]");
        assert_eq!(k.refs[1].map, vec![vec![1, 0, 0], vec![0, 0, 1]]);
        assert_eq!(k.flops_per_iter, 1.0);
    }

    #[test]
    fn same_array_two_maps_gives_two_refs_and_dedup_works() {
        let k =
            Kernel::parse("for i in 0..n\nfor j in 0..n\nF[i] += P[i] * P[j] + P[i]\n").unwrap();
        // F[i], P[i], P[j] — the second P[i] deduplicates.
        assert_eq!(k.refs.len(), 3);
        assert_eq!(k.refs[1].map, vec![vec![1, 0]]);
        assert_eq!(k.refs[2].map, vec![vec![0, 1]]);
    }

    #[test]
    fn affine_subscripts_with_offsets_and_coefficients() {
        let k =
            Kernel::parse("for t in 0..n\nfor i in 0..n\nA[t+i] += A[t+i-1] * W[2*i-t]\n").unwrap();
        // A[t+i] and A[t+i-1] share a linear part: deduplicated.
        assert_eq!(k.refs.len(), 2);
        assert_eq!(k.refs[0].map, vec![vec![1, 1]]);
        assert_eq!(k.refs[1].map, vec![vec![-1, 2]]);
        assert_eq!(k.refs[1].render(&k.indices), "W[-t+2*i]");
    }

    #[test]
    fn a_minus_does_not_leak_into_later_terms() {
        // Regression: the sign of one term must not carry over to the
        // next ("−i+j" is j−i, not −i−j), while consecutive operators
        // still compose ("--j" is +j).
        let k = Kernel::parse(
            "for i in 0..n\nfor j in 0..n\nfor k in 0..n\nC[-i+j] += A[i-j+k] * B[--j]\n",
        )
        .unwrap();
        assert_eq!(k.refs[0].map, vec![vec![-1, 1, 0]]);
        assert_eq!(k.refs[1].map, vec![vec![1, -1, 1]]);
        assert_eq!(k.refs[2].map, vec![vec![0, 1, 0]]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("for i in 0..n\nfor i in 0..n\n", 2, "duplicate loop index"),
            ("for i in 0..m\n", 1, "0..n"),
            ("for i in 0..n\nC[q] += A[i]\n", 2, "unknown loop index `q`"),
            ("for i in 0..n\nC[i] += A[i\n", 2, "unclosed"),
            ("bogus = 1\n", 1, "unknown key"),
            (
                "for i in 0..n\nflops-per-iter = -2\nC[i] += A[i]\n",
                2,
                "positive",
            ),
            ("for i in 0..n\nC[i] += x * A[i]\n", 2, "array reference"),
        ];
        for (text, line, needle) in cases {
            let err = Kernel::parse(text).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("line {line}")) && msg.contains(needle),
                "{text:?} -> {msg}"
            );
        }
        // Whole-file errors use line 0.
        let err = Kernel::parse("for i in 0..n\n").unwrap_err();
        assert!(err.to_string().contains("no statement"), "{err}");
    }

    #[test]
    fn escape_hatch_skips_structure_requirements() {
        let k = Kernel::parse("kernel = fft\nbound = fft-pebbling\n").unwrap();
        assert_eq!(k.special, Some(SpecialBound::FftPebbling));
        assert!(k.refs.is_empty());
    }

    #[test]
    fn builder_matches_parser() {
        let built = Kernel::builder("matmul")
            .indices(&["i", "j", "k"])
            .access("C", &["i", "j"])
            .access("A", &["i", "k"])
            .access("B", &["k", "j"])
            .build()
            .unwrap();
        let parsed = Kernel::parse(MATMUL).unwrap();
        assert_eq!(built, parsed);
        assert!(Kernel::builder("bad")
            .indices(&["i", "i"])
            .access("A", &["i"])
            .build()
            .is_err());
        assert!(Kernel::builder("bad")
            .index("i")
            .access("A", &["i+q"])
            .build()
            .is_err());
    }
}
