//! Cross-checks for the HBL pipeline.
//!
//! Two property suites: (1) the exact-rational simplex against the
//! brute-force vertex enumerator on random small LPs, and (2) the full
//! `analyze` pipeline under symmetry — renaming/reordering the loop
//! indices and permuting the array references must not move σ_HBL (the
//! LP only sees the subscript *lattice*, which these transformations
//! map isomorphically).

use proptest::prelude::*;
use proptest::TestRng;
use psse_hbl::dsl::render_affine;
use psse_hbl::prelude::*;
use psse_hbl::simplex::{brute_force, solve, Lp};

fn rat(n: i64) -> Rational {
    Rational::int(n)
}

/// A random LP `min c·x s.t. a·x ≥ b, x ≥ 0` with small integer data
/// and `c ≥ 0` (so the objective is bounded below and the only
/// outcomes are an optimum or infeasibility — exactly what the vertex
/// enumerator can adjudicate).
fn gen_lp(rng: &mut TestRng) -> Lp {
    let nvars = 1 + rng.below(4) as usize;
    let nrows = 1 + rng.below(5) as usize;
    let c = (0..nvars).map(|_| rat(rng.below(4) as i64)).collect();
    let a = (0..nrows)
        .map(|_| {
            (0..nvars)
                .map(|_| rat(rng.below(7) as i64 - 3))
                .collect::<Vec<_>>()
        })
        .collect();
    let b = (0..nrows).map(|_| rat(rng.below(7) as i64 - 3)).collect();
    Lp { c, a, b }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Simplex and brute force agree on feasibility and, when feasible,
    /// on the exact optimal value.
    #[test]
    fn simplex_matches_brute_force(seed in 0u64..100_000) {
        let mut rng = TestRng::for_test(&format!("lp-{seed}"));
        let lp = gen_lp(&mut rng);
        match (solve(&lp), brute_force(&lp).unwrap()) {
            (Ok(s), Some((value, _))) => prop_assert_eq!(s.value, value),
            (Err(HblError::Infeasible(_)), None) => {}
            (simplex, brute) => {
                return Err(TestCaseError::fail(format!(
                    "disagreement on {lp:?}: simplex {simplex:?} vs brute {brute:?}"
                )));
            }
        }
    }
}

/// Fresh index names, enough for any generated depth.
const NAMES: [&str; 8] = ["i", "j", "k", "l", "a", "b", "u", "v"];

/// One random affine loop nest as raw subscript matrices:
/// `refs[j][row][col]` over `depth` indices.
struct RawKernel {
    depth: usize,
    refs: Vec<Vec<Vec<i64>>>,
}

fn gen_raw(rng: &mut TestRng) -> RawKernel {
    let depth = 2 + rng.below(2) as usize; // 2..=3
    let nrefs = 2 + rng.below(2) as usize; // 2..=3
    let refs = (0..nrefs)
        .map(|_| {
            let rank = 1 + rng.below(depth as u64) as usize;
            (0..rank)
                .map(|_| {
                    (0..depth)
                        .map(|_| rng.below(3) as i64 - 1) // -1..=1
                        .collect::<Vec<_>>()
                })
                .collect()
        })
        .collect();
    RawKernel { depth, refs }
}

/// Build a [`Kernel`] from raw matrices, applying an index permutation
/// `idx_perm` (column reorder + renaming offset) and a reference
/// permutation `ref_perm`.
fn build(raw: &RawKernel, idx_perm: &[usize], name_off: usize, ref_perm: &[usize]) -> Kernel {
    let names: Vec<&str> = (0..raw.depth).map(|i| NAMES[name_off + i]).collect();
    let mut b = Kernel::builder("gen").indices(&names);
    for &j in ref_perm {
        let subs: Vec<String> = raw.refs[j]
            .iter()
            .map(|row| {
                let permuted: Vec<i64> = idx_perm.iter().map(|&c| row[c]).collect();
                render_affine(
                    &permuted,
                    &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
                )
            })
            .collect();
        let subs_ref: Vec<&str> = subs.iter().map(String::as_str).collect();
        b = b.access(&format!("R{j}"), &subs_ref);
    }
    b.build().expect("generated kernel is structurally valid")
}

/// A permutation of `0..n` drawn by Fisher–Yates.
fn gen_perm(rng: &mut TestRng, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        p.swap(i, j);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// σ_HBL is invariant under renaming + reordering the loop indices
    /// and permuting the array references; the optimal value of the LP
    /// only depends on the subscript lattice up to isomorphism. (The
    /// exponent *vector* is not compared — degenerate optima admit
    /// several optimal vertices and the permuted LP may surface a
    /// different one — but it must still sum to σ.)
    #[test]
    fn sigma_is_invariant_under_symmetry(seed in 0u64..100_000) {
        let mut rng = TestRng::for_test(&format!("kernel-{seed}"));
        let raw = gen_raw(&mut rng);
        let identity: Vec<usize> = (0..raw.depth).collect();
        let ref_identity: Vec<usize> = (0..raw.refs.len()).collect();
        let idx_perm = gen_perm(&mut rng, raw.depth);
        let ref_perm = gen_perm(&mut rng, raw.refs.len());
        let name_off = rng.below((NAMES.len() - raw.depth) as u64 + 1) as usize;

        let base = build(&raw, &identity, 0, &ref_identity);
        let transformed = build(&raw, &idx_perm, name_off, &ref_perm);
        match (analyze(&base), analyze(&transformed)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.sigma, b.sigma, "seed {}", seed);
                for side in [&a, &b] {
                    let total = side
                        .exponents
                        .iter()
                        .fold(Rational::int(0), |acc, &s| acc.add(s).unwrap());
                    prop_assert_eq!(total, side.sigma, "seed {}", seed);
                }
            }
            // Degenerate nests (unbounded reuse, oversized lattices)
            // must degenerate identically.
            (Err(_), Err(_)) => {}
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "seed {seed}: asymmetric outcome {a:?} vs {b:?}"
                )));
            }
        }
    }
}

/// The builder API and the text grammar derive the same exponents for
/// the shipped kernel shapes (spot equalities; the DSL unit tests cover
/// the full table).
#[test]
fn builder_reproduces_the_paper_exponents() {
    let matmul = Kernel::builder("mm")
        .indices(&["i", "j", "k"])
        .access("C", &["i", "j"])
        .access("A", &["i", "k"])
        .access("B", &["k", "j"])
        .build()
        .unwrap();
    assert_eq!(
        analyze(&matmul).unwrap().sigma,
        Rational::new(3, 2).unwrap()
    );
    let nbody = Kernel::builder("nb")
        .indices(&["i", "j"])
        .access("F", &["i"])
        .access("P", &["i"])
        .access("Q", &["j"])
        .build()
        .unwrap();
    assert_eq!(analyze(&nbody).unwrap().sigma, Rational::int(2));
}
