//! Golden-file contract for `psse bound`.
//!
//! The `--csv` row format and the `explain` report are compatibility
//! surfaces: CI's `hbl-smoke` job diffs the shipped kernels against
//! `tests/fixtures/hbl_range_golden.csv`, and this test keeps both
//! fixtures honest from inside `cargo test` (no CI required). If an
//! intentional format change lands, regenerate the fixtures with the
//! commands shown in each assertion message.

use std::fs;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run(argv: &[&str]) -> String {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    psse_cli::run(&argv, &mut out).expect("bound command failed");
    out
}

#[test]
fn range_csv_over_all_shipped_kernels_matches_the_golden_file() {
    let root = repo_root();
    let mut kernels: Vec<PathBuf> = fs::read_dir(root.join("specs/kernels"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "kernel"))
        .collect();
    kernels.sort();
    assert!(kernels.len() >= 5, "expected >= 5 shipped kernels");

    let mut csv = String::from("kernel,sigma,n,mem,p_min,p_max\n");
    for path in &kernels {
        csv.push_str(&run(&[
            "bound",
            "range",
            "--kernel",
            path.to_str().unwrap(),
            "--n",
            "8192",
            "--mem",
            "1000000",
            "--csv",
        ]));
    }
    let golden = fs::read_to_string(root.join("tests/fixtures/hbl_range_golden.csv")).unwrap();
    assert_eq!(
        csv, golden,
        "regenerate with: psse bound range --kernel specs/kernels/<k>.kernel \
         --n 8192 --mem 1000000 --csv"
    );
}

#[test]
fn explain_matmul_matches_the_golden_report() {
    let root = repo_root();
    let out = run(&[
        "bound",
        "explain",
        "--kernel",
        root.join("specs/kernels/matmul.kernel").to_str().unwrap(),
    ]);
    let golden = fs::read_to_string(root.join("tests/fixtures/hbl_explain_matmul.txt")).unwrap();
    assert_eq!(
        out, golden,
        "regenerate with: psse bound explain --kernel specs/kernels/matmul.kernel"
    );
}
