//! Process-level exit-code audit: every failure path of the `psse`
//! binary must exit nonzero with a one-line `error: ...` reason on
//! stderr, and success paths must exit zero — scripts and CI gate on
//! these codes.

use std::path::Path;
use std::process::{Command, Output};

fn psse(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_psse"))
        .args(args)
        .output()
        .expect("spawn psse")
}

fn stderr_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).trim().to_string()
}

fn write_spec(dir: &Path, name: &str, body: &str) -> String {
    std::fs::create_dir_all(dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, body).unwrap();
    p.display().to_string()
}

#[test]
fn success_paths_exit_zero() {
    let out = psse(&["help"]);
    assert!(out.status.success(), "{}", stderr_line(&out));
    let dir = std::env::temp_dir().join(format!("psse-exit0-{}", std::process::id()));
    let spec = write_spec(
        &dir,
        "ok.spec",
        "kind = model\nalg = nbody\nn = 1000\np = 2,4\n",
    );
    let out = psse(&["lab", "run", "--spec", &spec, "--profile", "off"]);
    assert!(out.status.success(), "{}", stderr_line(&out));
    assert!(stderr_line(&out).is_empty(), "{}", stderr_line(&out));
    std::fs::remove_dir_all(&dir).ok();
    // The sorting and stencil workloads simulate and self-verify on
    // both backends.
    for (alg, extra) in [
        ("samplesort", &[][..]),
        ("stencil", &["--halo", "2", "--iters", "2"][..]),
    ] {
        for backend in ["threads", "events"] {
            let mut args = vec![
                "simulate",
                "--alg",
                alg,
                "--n",
                "64",
                "--p",
                "4",
                "--backend",
                backend,
            ];
            args.extend_from_slice(extra);
            let out = psse(&args);
            assert!(
                out.status.success(),
                "{alg}/{backend}: {}",
                stderr_line(&out)
            );
            let stdout = String::from_utf8_lossy(&out.stdout).to_string();
            assert!(
                stdout.contains("verified against the sequential reference"),
                "{alg}/{backend}: {stdout}"
            );
        }
    }
}

#[test]
fn missing_spec_file_exits_nonzero_with_reason() {
    let out = psse(&["lab", "run", "--spec", "/nonexistent/sweep.spec"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_line(&out);
    assert!(err.starts_with("error:"), "{err}");
    assert!(err.contains("/nonexistent/sweep.spec"), "{err}");
    assert_eq!(err.lines().count(), 1, "one-line reason: {err}");
}

#[test]
fn malformed_spec_exits_nonzero_with_line_number() {
    let dir = std::env::temp_dir().join(format!("psse-exit-badspec-{}", std::process::id()));
    let spec = write_spec(&dir, "bad.spec", "kind = model\nalg = nbody\nbogus = 1\n");
    let out = psse(&["lab", "run", "--spec", &spec]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_line(&out);
    assert!(err.starts_with("error:"), "{err}");
    assert!(err.contains("line 3"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_run_keys_exit_nonzero_but_keep_outputs() {
    let dir = std::env::temp_dir().join(format!("psse-exit-failkeys-{}", std::process::id()));
    let spec = write_spec(
        &dir,
        "fail.spec",
        "kind = simulate\nalg = mm25d\nn = 8\np = 4,3\n",
    );
    let csv = dir.join("sweep.csv").display().to_string();
    let out = psse(&[
        "lab",
        "run",
        "--spec",
        &spec,
        "--out",
        &csv,
        "--profile",
        "off",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_line(&out);
    assert!(err.starts_with("error:"), "{err}");
    assert!(err.contains("1 of 2 runs failed"), "{err}");
    // stdout still carries the summary and the CSV was written.
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("runs      :"), "{stdout}");
    assert!(std::fs::metadata(dir.join("sweep.csv")).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsck_exit_code_tracks_corruption() {
    let dir = std::env::temp_dir().join(format!("psse-exit-fsck-{}", std::process::id()));
    let spec = write_spec(
        &dir,
        "ok.spec",
        "kind = model\nalg = matmul\nn = 1024\np = 4\n",
    );
    let cache = dir.join("cache").display().to_string();
    let out = psse(&[
        "lab",
        "run",
        "--spec",
        &spec,
        "--cache",
        &cache,
        "--profile",
        "off",
    ]);
    assert!(out.status.success(), "{}", stderr_line(&out));

    let out = psse(&["lab", "fsck", "--cache", &cache]);
    assert!(out.status.success(), "clean cache: {}", stderr_line(&out));

    let rec = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "rec"))
        .unwrap();
    std::fs::write(&rec, "garbage\n").unwrap();
    let out = psse(&["lab", "fsck", "--cache", &cache]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_line(&out).contains("corrupt"),
        "{}",
        stderr_line(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_and_faults_failures_exit_nonzero() {
    let out = psse(&["trace", "replay", "--in", "/nonexistent/run.trace"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_line(&out).starts_with("error:"));
    let out = psse(&[
        "faults",
        "sweep",
        "--q",
        "2",
        "--c-list",
        "1",
        "--n",
        "16",
        "--drop-rate",
        "1.5",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_line(&out).starts_with("error:"));
    let out = psse(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_line(&out).contains("unknown subcommand"));
}

#[test]
fn misspelled_subcommand_exits_nonzero_with_hint() {
    let out = psse(&["buond", "solve", "--kernel", "x.kernel"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_line(&out);
    assert!(err.starts_with("error:"), "{err}");
    assert!(err.contains("unknown subcommand `buond`"), "{err}");
    assert!(err.contains("did you mean `bound`?"), "{err}");
    assert_eq!(err.lines().count(), 1, "one-line reason: {err}");
}

#[test]
fn malformed_kernel_exits_nonzero_with_line_number() {
    let dir = std::env::temp_dir().join(format!("psse-exit-badkernel-{}", std::process::id()));
    let kernel = write_spec(
        &dir,
        "bad.kernel",
        "kernel = bad\nfor i in 0..n\nC[q] += A[i]\n",
    );
    let out = psse(&["bound", "solve", "--kernel", &kernel]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_line(&out);
    assert!(err.starts_with("error:"), "{err}");
    assert!(err.contains("line 3"), "{err}");
    assert!(err.contains("bad.kernel"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
