//! # psse-cli — the `psse` command
//!
//! A command-line front end to the whole workspace: evaluate the paper's
//! time/energy models at a point, inspect strong-scaling ranges, run the
//! §V optimizers, execute the real algorithms on the simulated machine,
//! and print the machine tables.
//!
//! ```text
//! psse machines
//! psse model    --alg matmul --n 8192 --p 64 [--mem 2e6] [--machine jaketown]
//! psse scaling  --alg nbody --n 1e6 --mem 4096
//! psse optimize --n 1e5 [--f 20] [--tmax 1e-2] [--emax 5.0]
//! psse simulate --alg mm25d --n 64 --p 32 --c 2
//! psse tech     --target 75
//! psse trace    record --alg mm25d --n 16 --p 8 --c 2 --out run.trace
//! psse trace    replay --in run.trace --gamma-t 1e-10
//! psse trace    critical-path --in run.trace --top 5
//! psse trace    export --in run.trace --out run.trace.json
//! psse trace    flame --in run.trace | flamegraph.pl > flame.svg
//! psse lab      run --spec sweep.spec --jobs 8 --out sweep.csv --pareto front.csv
//! psse lab      run --spec sweep.spec --journal sweep.journal --resume
//! psse lab      expand --spec sweep.spec
//! psse lab      gc --cache .labcache --max-bytes 1e8 --max-age 604800
//! psse lab      fsck --cache .labcache
//! psse bound    solve --kernel specs/kernels/matmul.kernel
//! psse bound    explain --kernel specs/kernels/matmul.kernel
//! psse bound    price --kernel specs/kernels/nbody.kernel --n 1e5
//! psse bound    range --kernel specs/kernels/matmul.kernel --n 8192 --mem 1e6
//! ```
//!
//! All logic lives in [`run`] so it can be tested without spawning the
//! binary; `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
mod commands;

use args::Args;
use std::fmt::Write as _;

/// Execute a CLI invocation; human-readable output is appended to `out`.
pub fn run(argv: &[String], out: &mut String) -> Result<(), String> {
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        let _ = write!(out, "{}", HELP);
        return Ok(());
    }
    if !argv[0].starts_with("--") && !COMMANDS.contains(&argv[0].as_str()) {
        let hint = args::suggest(&argv[0], COMMANDS)
            .map(|cand| format!(" (did you mean `{cand}`?)"))
            .unwrap_or_default();
        return Err(format!(
            "unknown subcommand `{}`; try `psse help`{hint}",
            argv[0]
        ));
    }
    if argv[0] == "trace" {
        if argv.len() < 2 {
            return Err(
                "usage: psse trace <record|replay|critical-path|export|flame> [--option value]..."
                    .into(),
            );
        }
        let args = Args::parse(&argv[1..])?;
        let action = args.command.clone();
        return commands::trace_cmd(&action, &args, out);
    }
    if argv[0] == "faults" {
        if argv.len() < 2 {
            return Err("usage: psse faults <sweep> [--option value]...".into());
        }
        let args = Args::parse(&argv[1..])?;
        let action = args.command.clone();
        return commands::faults_cmd(&action, &args, out);
    }
    if argv[0] == "lab" {
        if argv.len() < 2 {
            return Err("usage: psse lab <run|expand|gc|fsck> [--option value]...".into());
        }
        let args = Args::parse(&argv[1..])?;
        let action = args.command.clone();
        return commands::lab_cmd(&action, &args, out);
    }
    if argv[0] == "bound" {
        if argv.len() < 2 {
            return Err("usage: psse bound <solve|price|range|explain> [--option value]...".into());
        }
        let args = Args::parse(&argv[1..])?;
        let action = args.command.clone();
        return commands::bound_cmd(&action, &args, out);
    }
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "machines" => commands::machines(&args, out),
        "model" => commands::model(&args, out),
        "scaling" => commands::scaling(&args, out),
        "optimize" => commands::optimize(&args, out),
        "simulate" => commands::simulate(&args, out),
        "tech" => commands::tech(&args, out),
        // Unreachable in practice — the COMMANDS gate above already
        // rejected anything outside this match — but kept so the match
        // stays total if the two lists ever drift.
        other => Err(format!("unknown subcommand `{other}`; try `psse help`")),
    }
}

/// Every top-level subcommand, for the `psse buond` → `bound` hint.
const COMMANDS: &[&str] = &[
    "machines", "model", "scaling", "optimize", "simulate", "tech", "trace", "faults", "lab",
    "bound", "help",
];

const HELP: &str = "\
psse — Perfect Strong Scaling Using No Additional Energy (IPDPS 2013)

USAGE: psse <command> [--option value]...

COMMANDS:
  machines   Print the paper's Table II processor database.
  model      Evaluate T (Eq. 1), E (Eq. 2) and P for an algorithm at a point.
               --alg matmul|strassen|nbody|fft|lu|matvec  --n N  --p P
               [--mem WORDS]        memory/processor (default: minimal)
               [--machine jaketown] plus per-parameter overrides, e.g.
               [--gamma-t S] [--beta-t S] [--alpha-t S] [--gamma-e J]
               [--beta-e J] [--alpha-e J] [--delta-e J] [--epsilon-e J]
               [--f FLOPS]          n-body flops per interaction (20)
  scaling    Print the perfect strong scaling range at fixed memory.
               --alg ... --n N --mem WORDS
  optimize   Section V answers for the n-body problem (closed form).
               --n N [--f FLOPS] [--tmax S] [--emax J]
               [--power-total W] [--power-proc W]
  simulate   Run the real algorithm on the virtual machine and price it.
               --alg cannon|summa|mm25d|mm3d|strassen|lu|solve|nbody|fft|matvec
               --n N --p P [--c C] [--panel W] [--seed S]
               [--backend threads|events]  execution backend (default threads;
                                           both are bit-identical by contract)
  tech       Technology scaling (Figs. 6-7): generations to a target.
               [--target GFLOPS_W]
  trace      Record, replay, analyse and export event traces.
               record        --alg ... --n N --p P [--c C] [--out FILE]
                             run once with recording on, verify that replay
                             reproduces the live run, save the trace
               replay        --in FILE [--machine jaketown + overrides]
                             re-price the recorded DAG on another machine
               critical-path --in FILE [--top K]
                             longest chain and per-rank compute/comm/idle
               export        --in FILE [--out FILE.json]
                             Chrome trace-event JSON (Perfetto-loadable)
               flame         --in FILE [--out FILE] [--gamma-t S] [--beta-t S]
                             [--alpha-t S] [--max-message W]
                             fold the DAG into collapsed-stack format
                             (rank;phase;op + virtual ns); with no --out
                             prints only the folded lines, ready to pipe
                             into flamegraph.pl or speedscope
  faults     Deterministic fault injection and resilience pricing.
               sweep  --q Q (grid edge, default 4) --c-list 1,2,4 --n N
                      [--seed S] [--drop-rate R] [--corrupt-rate R]
                      [--duplicate-rate R] [--delay-rate R] [--delay-seconds S]
                      [--retries K] [--backoff S] [--checkpoint-interval S]
                      [--checkpoint-words W] [--restart S] [--mtbf S]
                      [--backend threads|events] [--out FILE.csv]
                      run 2.5D matmul per c with and without the fault plan,
                      verify faulted numerics match fault-free, report the
                      measured energy overhead against the Eq. 2 resilience
                      model (and the Daly-optimal interval when --mtbf given)
                      [--jobs N]  worker threads for the sweep (default: auto)
  lab        Parallel batch experiment engine over declarative sweep specs.
               run    --spec FILE  execute the sweep and print a summary
                      [--jobs N]        worker threads (0 = PSSE_LAB_JOBS/auto);
                                        output bytes are identical for any N
                      [--out FILE.csv]  full sweep CSV (spec order)
                      [--pareto FILE]   per-n (time, energy) Pareto frontier CSV
                      [--cache DIR|off] persistent content-addressed result
                                        cache (default off); reruns hit
                      [--scaling]       detect perfect-strong-scaling ranges
                                        per (n, c, M) ladder (paper SIII)
                      [--profile FILE|off] self-profile destination (default:
                                        <out>.profile.json, or
                                        <spec stem>.profile.json without --out)
                      [--top K]         slowest keys shown in the profile (5)
                      [--journal FILE]  append one checksummed line per finished
                                        run; torn tails from a kill -9 are
                                        detected and truncated on resume
                      [--resume]        replay completed runs from --journal and
                                        skip them; the final CSV is
                                        byte-identical to an uninterrupted sweep
                      [--timeout S]     per-run wall-clock watchdog for
                                        simulator runs (overrides the spec
                                        `timeout` key); a hung run fails alone
               expand --spec FILE  print the expanded run list with digests
               gc     --cache DIR  evict old cache records, oldest first
                      [--max-bytes B]   keep at most B bytes of records
                      [--max-age S]     evict records older than S seconds
                      [--dry-run]       report without deleting
                                        (quarantine/ is reported, never evicted)
               fsck   --cache DIR  re-verify every record checksum; corrupt
                      records move to quarantine/ (exit 1 if any found)
                      [--dry-run]       report without moving
  bound      Automatic communication lower bounds from loop-nest kernel
             files (the HBL linear program, specs/kernels/*.kernel).
               solve   --kernel FILE  parse the loop nest, enumerate the
                       subgroup lattice, solve the LP: exact σ_HBL,
                       per-array exponents and the symbolic W bound
               explain --kernel FILE  show the whole proof: the rank
                       inequalities, the dual certificate and the bound
               price   --kernel FILE --n N [--machine jaketown + overrides]
                       energy-optimal point M0/E* via the closed forms;
                       with [--p P], numeric argmin over M at that p
                       (the only route for generic-family kernels)
               range   --kernel FILE --n N --mem WORDS  perfect strong
                       scaling range [p_min, p_max] at fixed memory
                       [--csv]  one machine-readable row instead
  help       This message.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn call(line: &str) -> Result<String, String> {
        let argv: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        let mut out = String::new();
        run(&argv, &mut out)?;
        Ok(out)
    }

    #[test]
    fn help_lists_commands() {
        let out = call("help").unwrap();
        for cmd in [
            "machines",
            "model",
            "scaling",
            "optimize",
            "simulate",
            "tech",
            "trace",
            "faults",
            "lab",
            "flame",
            "gc",
            "--profile",
        ] {
            assert!(out.contains(cmd), "help should mention {cmd}");
        }
    }

    #[test]
    fn unknown_options_get_a_nearest_match_hint() {
        let err = call("model --alg matmul --n 8192 --p 64 --machne jaketown").unwrap_err();
        assert!(err.contains("unknown option --machne"), "{err}");
        assert!(err.contains("did you mean --machine?"), "{err}");
        let err = call("scaling --alg matmul --n 8192 --memm 1e6").unwrap_err();
        assert!(err.contains("did you mean --mem?"), "{err}");
        // Typos in two-level commands are caught too.
        let err = call("faults sweep --q 2 --c-list 1 --n 16 --drop-rte 0.1").unwrap_err();
        assert!(err.contains("did you mean --drop-rate?"), "{err}");
    }

    #[test]
    fn unknown_command_errors() {
        assert!(call("frobnicate").is_err());
    }

    #[test]
    fn unknown_command_gets_a_nearest_match_hint() {
        let err = call("buond solve").unwrap_err();
        assert!(err.contains("unknown subcommand `buond`"), "{err}");
        assert!(err.contains("did you mean `bound`?"), "{err}");
        let err = call("simulte --alg fft --n 16 --p 2").unwrap_err();
        assert!(err.contains("did you mean `simulate`?"), "{err}");
        // A wildly different word gets no misleading hint.
        let err = call("frobnicate").unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    /// Path to a shipped kernel file, robust to the test's working dir.
    fn kernel_path(name: &str) -> String {
        format!(
            "{}/../../specs/kernels/{name}.kernel",
            env!("CARGO_MANIFEST_DIR")
        )
    }

    #[test]
    fn bound_solve_derives_matmul_and_nbody() {
        let out = call(&format!("bound solve --kernel {}", kernel_path("matmul"))).unwrap();
        assert!(out.contains("sigma     : 3/2"), "{out}");
        assert!(out.contains("W = Ω(n^3 / (p · M^(1/2)))"), "{out}");
        assert!(out.contains("matmul (2.5D closed form)"), "{out}");
        let out = call(&format!("bound solve --kernel {}", kernel_path("nbody"))).unwrap();
        assert!(out.contains("sigma     : 2"), "{out}");
        assert!(out.contains("W = Ω(n^2 / (p · M))"), "{out}");
        let out = call(&format!("bound solve --kernel {}", kernel_path("fft"))).unwrap();
        assert!(out.contains("fft-pebbling escape hatch"), "{out}");
    }

    #[test]
    fn bound_price_matches_optimize_bit_for_bit() {
        // The n-body kernel file declares flops-per-iter = 20, the
        // default of `psse optimize`: both commands must print the very
        // same M0/E* lines.
        let opt = call("optimize --n 100000").unwrap();
        let prc = call(&format!(
            "bound price --kernel {} --n 100000",
            kernel_path("nbody")
        ))
        .unwrap();
        let line = |s: &str, pat: &str| {
            s.lines()
                .find(|l| l.starts_with(pat))
                .map(str::to_string)
                .unwrap_or_else(|| panic!("missing `{pat}` in: {s}"))
        };
        assert_eq!(line(&opt, "M0 = "), line(&prc, "M0 = "));
        assert_eq!(line(&opt, "E* = "), line(&prc, "E* = "));
    }

    #[test]
    fn bound_price_generic_requires_explicit_p() {
        let err = call(&format!(
            "bound price --kernel {} --n 64",
            kernel_path("tensor")
        ))
        .unwrap_err();
        assert!(err.contains("explicit processor count"), "{err}");
        // Feasibility for the tensor shape needs p ≥ n (σ = 3/2 with a
        // rank-3 footprint): at (n, p) = (16, 64) the range is open.
        let out = call(&format!(
            "bound price --kernel {} --n 16 --p 64",
            kernel_path("tensor")
        ))
        .unwrap();
        assert!(out.contains("numeric argmin over M at p = 64"), "{out}");
        assert!(out.contains("E = "), "{out}");
    }

    #[test]
    fn bound_range_matches_scaling_and_emits_csv() {
        let scl = call("scaling --alg matmul --n 8192 --mem 1e6").unwrap();
        let rng = call(&format!(
            "bound range --kernel {} --n 8192 --mem 1e6",
            kernel_path("matmul")
        ))
        .unwrap();
        let line = |s: &str, pat: &str| {
            s.lines()
                .find(|l| l.starts_with(pat))
                .map(str::to_string)
                .unwrap_or_else(|| panic!("missing `{pat}` in: {s}"))
        };
        assert_eq!(line(&scl, "p_min = "), line(&rng, "p_min = "));
        assert_eq!(line(&scl, "p_max = "), line(&rng, "p_max = "));
        let csv = call(&format!(
            "bound range --kernel {} --n 8192 --mem 1e6 --csv",
            kernel_path("matmul")
        ))
        .unwrap();
        assert!(csv.starts_with("matmul,3/2,8192,1000000,"), "{csv}");
        assert_eq!(csv.lines().count(), 1, "{csv}");
        // No replication knob: the FFT row carries `na` sentinels.
        let csv = call(&format!(
            "bound range --kernel {} --n 65536 --mem 1024 --csv",
            kernel_path("fft")
        ))
        .unwrap();
        assert!(csv.contains(",na,na"), "{csv}");
    }

    #[test]
    fn bound_explain_prints_the_certificate() {
        let out = call(&format!("bound explain --kernel {}", kernel_path("matmul"))).unwrap();
        assert!(
            out.contains("linear program: minimize s1 + s2 + s3"),
            "{out}"
        );
        assert!(out.contains("exact strong duality"), "{out}");
        assert!(out.contains("σ_HBL = 3/2"), "{out}");
        assert!(out.contains("W = Ω(n^3 / (p · M^(1/2)))"), "{out}");
    }

    #[test]
    fn bound_errors_carry_the_line_number() {
        let dir = std::env::temp_dir().join("psse-cli-bound-err-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.kernel");
        std::fs::write(&bad, "kernel = bad\nfor i in 0..n\nC[q] += A[i]\n").unwrap();
        let err = call(&format!("bound solve --kernel {}", bad.display())).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(
            err.contains(bad.to_str().unwrap()),
            "error should name the file: {err}"
        );
        assert!(call("bound").is_err());
        assert!(call("bound frobnicate").is_err());
        assert!(call("bound solve --kernel /nonexistent/x.kernel").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn machines_prints_table2() {
        let out = call("machines").unwrap();
        assert!(out.contains("Nvidia GTX590"));
        assert!(out.contains("GFLOPS/W"));
        assert!(out.contains("6.817"));
    }

    #[test]
    fn model_evaluates_matmul() {
        let out = call("model --alg matmul --n 8192 --p 64").unwrap();
        assert!(out.contains("runtime"));
        assert!(out.contains("energy"));
        // Default machine is Table I.
        assert!(out.contains("jaketown"));
    }

    #[test]
    fn model_respects_overrides() {
        let a = call("model --alg nbody --n 100000 --p 64 --f 20").unwrap();
        let b = call("model --alg nbody --n 100000 --p 64 --f 20 --gamma-e 1e-6").unwrap();
        assert_ne!(a, b, "energy override must change the output");
    }

    #[test]
    fn model_rejects_bad_algorithms() {
        assert!(call("model --alg quicksort --n 8 --p 2").is_err());
        assert!(call("model --alg matmul --p 2").is_err());
    }

    #[test]
    fn scaling_reports_range() {
        let out = call("scaling --alg matmul --n 8192 --mem 1e6").unwrap();
        assert!(out.contains("p_min"));
        assert!(out.contains("p_max"));
        let out = call("scaling --alg fft --n 65536 --mem 1024").unwrap();
        assert!(out.contains("no perfect strong scaling"));
    }

    #[test]
    fn optimize_answers_section_v() {
        let out = call("optimize --n 100000 --f 10").unwrap();
        assert!(out.contains("M0"));
        assert!(out.contains("E*"));
        let out = call("optimize --n 100000 --f 10 --emax 1e9").unwrap();
        assert!(out.contains("fastest run within"));
    }

    #[test]
    fn simulate_runs_and_verifies() {
        let out = call("simulate --alg mm25d --n 16 --p 32 --c 2").unwrap();
        assert!(out.contains("verified"), "{out}");
        assert!(out.contains("measured runtime"));
        let out = call("simulate --alg nbody --n 64 --p 8 --c 2").unwrap();
        assert!(out.contains("verified"));
        let out = call("simulate --alg fft --n 256 --p 4").unwrap();
        assert!(out.contains("verified"));
        let out = call("simulate --alg cholesky --n 16 --p 4").unwrap();
        assert!(out.contains("verified"));
    }

    #[test]
    fn simulate_backend_flag_selects_events_and_matches_threads() {
        let th = call("simulate --alg mm25d --n 16 --p 32 --c 2").unwrap();
        assert!(th.contains("backend   : threads"), "{th}");
        let ev = call("simulate --alg mm25d --n 16 --p 32 --c 2 --backend events").unwrap();
        assert!(ev.contains("backend   : events"), "{ev}");
        // Everything but the backend line is byte-identical.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("backend"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&th), strip(&ev));
        let err = call("simulate --alg mm25d --n 16 --p 32 --c 2 --backend fibers").unwrap_err();
        assert!(err.contains("fibers"), "{err}");
    }

    #[test]
    fn simulate_rejects_bad_grids() {
        assert!(call("simulate --alg cannon --n 16 --p 3").is_err());
    }

    #[test]
    fn trace_record_replay_analyse_export() {
        let dir = std::env::temp_dir().join("psse-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mm25d.trace");
        let tp = path.to_str().unwrap();

        let out = call(&format!(
            "trace record --alg mm25d --n 16 --p 8 --c 2 --out {tp}"
        ))
        .unwrap();
        assert!(out.contains("verified (bit-identical"), "{out}");
        assert!(out.contains("makespan"), "{out}");

        let out = call(&format!("trace replay --in {tp}")).unwrap();
        assert!(out.contains("self-replay verified"), "{out}");
        assert!(out.contains("re-priced on `jaketown`"), "{out}");
        // A 10x cheaper network must not report a longer runtime.
        let fast = call(&format!(
            "trace replay --in {tp} --beta-t 1e-12 --alpha-t 1e-9"
        ))
        .unwrap();
        assert_ne!(out, fast);

        let out = call(&format!("trace critical-path --in {tp} --top 3")).unwrap();
        assert!(out.contains("critical path:"), "{out}");
        assert!(out.contains("idle(s)"), "{out}");

        let json_path = dir.join("mm25d.trace.json");
        let out = call(&format!(
            "trace export --in {tp} --out {}",
            json_path.to_str().unwrap()
        ))
        .unwrap();
        assert!(out.contains("Chrome trace-event JSON"), "{out}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"traceEvents\""));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&json_path).ok();
    }

    #[test]
    fn trace_requires_action_and_input() {
        assert!(call("trace").is_err());
        assert!(call("trace frobnicate").is_err());
        assert!(call("trace replay").is_err());
        assert!(call("trace replay --in /nonexistent/path.trace").is_err());
    }

    #[test]
    fn faults_sweep_reports_overhead_and_writes_csv() {
        let dir = std::env::temp_dir().join("psse-cli-faults-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("sweep.csv");
        let cp = csv_path.to_str().unwrap();

        let line = format!(
            "faults sweep --q 2 --c-list 1,2 --n 16 --seed 7 --drop-rate 0.1 \
             --corrupt-rate 0.05 --retries 16 --out {cp}"
        );
        let out = call(&line).unwrap();
        assert!(out.contains("fault sweep"), "{out}");
        assert!(out.contains("E_fault(J)"), "{out}");
        assert!(
            out.contains("all faulted runs identical to fault-free"),
            "{out}"
        );
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("c,p,"), "{csv}");
        assert_eq!(csv.lines().count(), 3, "header + one row per c: {csv}");

        // Determinism: the same seed reproduces the CSV byte for byte.
        let out2 = call(&line.replace("sweep.csv", "sweep2.csv")).unwrap();
        assert_eq!(
            out.replace("sweep.csv", "sweep2.csv"),
            out2,
            "sweep output must be deterministic"
        );
        let csv2 = std::fs::read_to_string(dir.join("sweep2.csv")).unwrap();
        assert_eq!(csv, csv2);

        std::fs::remove_file(&csv_path).ok();
        std::fs::remove_file(dir.join("sweep2.csv")).ok();
    }

    #[test]
    fn faults_sweep_overhead_matches_resilience_model() {
        // The measured E_fault − E_free must equal the Eq. 2 resilience
        // term printed in the model column (identical arithmetic, words
        // and messages outside the resilience counters).
        let out = call("faults sweep --q 2 --c-list 1 --n 16 --seed 3 --drop-rate 0.2").unwrap();
        let row = out
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .expect("sweep row");
        let cols: Vec<&str> = row.split_whitespace().collect();
        let overhead: f64 = cols[4].parse().unwrap();
        let model: f64 = cols[5].parse().unwrap();
        let retries: u64 = cols[6].parse().unwrap();
        assert!(retries > 0, "plan should inject at least one drop: {out}");
        assert!(overhead > 0.0, "{out}");
        // The printed columns carry 4 significant digits, so allow for
        // display rounding on top of float round-off.
        assert!(
            (overhead - model).abs() <= 2e-3 * overhead.abs(),
            "overhead {overhead} vs model {model}"
        );
    }

    #[test]
    fn faults_sweep_backends_produce_identical_csvs() {
        let dir = std::env::temp_dir().join("psse-cli-faults-backend-test");
        std::fs::create_dir_all(&dir).unwrap();
        let th = dir.join("threads.csv");
        let ev = dir.join("events.csv");
        let base = "faults sweep --q 2 --c-list 1,2 --n 16 --seed 7 --drop-rate 0.1 --retries 16";
        call(&format!("{base} --backend threads --out {}", th.display())).unwrap();
        call(&format!("{base} --backend events --out {}", ev.display())).unwrap();
        // The sweep CSV — virtual times, energies, retry counts — is a
        // pure function of the run, so the backends must agree on every
        // byte.
        assert_eq!(std::fs::read(&th).unwrap(), std::fs::read(&ev).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faults_requires_action() {
        assert!(call("faults").is_err());
        assert!(call("faults frobnicate").is_err());
        // Invalid plans are rejected up front.
        assert!(call("faults sweep --q 2 --c-list 1 --n 16 --drop-rate 1.5").is_err());
    }

    #[test]
    fn lab_run_executes_spec_and_writes_identical_csvs_for_any_jobs() {
        let dir = std::env::temp_dir().join("psse-cli-lab-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("nbody.spec");
        std::fs::write(
            &spec_path,
            "kind = model\nalg = nbody\nn = 10000\np = geom:6:100:8\nmem = geomf:2e2:1e4:4\nf = 10\n",
        )
        .unwrap();
        let sp = spec_path.to_str().unwrap();
        let csv1 = dir.join("sweep1.csv");
        let csv8 = dir.join("sweep8.csv");
        let front = dir.join("front.csv");

        let out = call(&format!(
            "lab run --spec {sp} --jobs 1 --out {} --pareto {} --scaling",
            csv1.display(),
            front.display()
        ))
        .unwrap();
        assert!(out.contains("32 model runs"), "{out}");
        assert!(out.contains("cache     : hits=0 misses=32"), "{out}");
        assert!(out.contains("scaling   :"), "{out}");

        let out8 = call(&format!(
            "lab run --spec {sp} --jobs 8 --out {}",
            csv8.display()
        ))
        .unwrap();
        assert!(out8.contains("jobs      : 8"), "{out8}");

        let b1 = std::fs::read(&csv1).unwrap();
        let b8 = std::fs::read(&csv8).unwrap();
        assert_eq!(b1, b8, "sweep CSV must not depend on --jobs");
        let f = std::fs::read_to_string(&front).unwrap();
        assert!(f.starts_with("n,p,c,mem_words,time_s,energy_j\n"), "{f}");
        assert!(f.lines().count() >= 2, "frontier should be non-empty: {f}");

        // The self-profiles land next to the CSVs by default and are
        // structurally identical across --jobs: same runs in the same
        // order, only the host timing values differ.
        assert!(out.contains("self-profile:"), "{out}");
        assert!(out8.contains("worker utilization:"), "{out8}");
        let parse = |p: &std::path::Path| {
            let text = std::fs::read_to_string(format!("{}.profile.json", p.display())).unwrap();
            psse_lab::prelude::SweepProfile::from_json(&psse_metrics::Json::parse(&text).unwrap())
                .unwrap()
        };
        let (p1, p8) = (parse(&csv1), parse(&csv8));
        assert_eq!(p1.jobs, 1);
        assert_eq!(p8.jobs, 8);
        assert_eq!(p1.runs.len(), 32);
        let keys = |p: &psse_lab::prelude::SweepProfile| -> Vec<(String, String)> {
            p.runs
                .iter()
                .map(|r| (r.label.clone(), r.digest.clone()))
                .collect()
        };
        assert_eq!(
            keys(&p1),
            keys(&p8),
            "profile key set must not depend on --jobs"
        );
        // Model runs are deterministic, so even the virtual-cost metric
        // values agree; only wall-clock fields may differ.
        assert_eq!(p1.metrics.to_string(), p8.metrics.to_string());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_flame_is_pipe_clean_and_reprices() {
        let dir = std::env::temp_dir().join("psse-cli-flame-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nbody.trace");
        let tp = path.to_str().unwrap();
        call(&format!("trace record --alg nbody --n 64 --p 4 --out {tp}")).unwrap();

        // No --out: nothing but collapsed-stack lines, so the output
        // pipes straight into flamegraph.pl / speedscope.
        let folded = call(&format!("trace flame --in {tp}")).unwrap();
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("`stack count` lines only");
            assert_eq!(stack.split(';').count(), 3, "{line}");
            assert!(count.parse::<u64>().unwrap() > 0, "{line}");
        }

        // --out writes the same bytes to a file and prints a summary.
        let fp = dir.join("nbody.folded");
        let out = call(&format!("trace flame --in {tp} --out {}", fp.display())).unwrap();
        assert!(out.contains("collapsed stacks"), "{out}");
        assert_eq!(std::fs::read_to_string(&fp).unwrap(), folded);

        // Re-pricing the fold under a slower network changes the counts
        // without re-recording.
        let slow = call(&format!("trace flame --in {tp} --beta-t 1e-5")).unwrap();
        assert_ne!(folded, slow);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lab_gc_bounds_the_cache_directory() {
        let dir = std::env::temp_dir().join("psse-cli-lab-gc-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("tiny.spec");
        std::fs::write(
            &spec_path,
            "kind = model\nalg = matmul\nn = 1024\np = 4,8\n",
        )
        .unwrap();
        let cache = dir.join("cache");
        let out = call(&format!(
            "lab run --spec {} --cache {} --profile off",
            spec_path.display(),
            cache.display()
        ))
        .unwrap();
        assert!(!out.contains("self-profile"), "--profile off: {out}");
        let recs = || {
            std::fs::read_dir(&cache)
                .map(|d| {
                    d.filter_map(Result::ok)
                        .filter(|e| e.path().extension().is_some_and(|x| x == "rec"))
                        .count()
                })
                .unwrap_or(0)
        };
        assert_eq!(recs(), 2);

        // Dry run reports without deleting.
        let out = call(&format!(
            "lab gc --cache {} --max-bytes 0 --dry-run",
            cache.display()
        ))
        .unwrap();
        assert!(out.contains("2 scanned, 2 would evict"), "{out}");
        assert_eq!(recs(), 2);

        let out = call(&format!("lab gc --cache {} --max-bytes 0", cache.display())).unwrap();
        assert!(out.contains("2 scanned, 2 evicted"), "{out}");
        assert_eq!(recs(), 0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lab_run_journal_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join("psse-cli-lab-journal-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("nbody.spec");
        std::fs::write(
            &spec_path,
            "kind = model\nalg = nbody\nn = 10000\np = geom:6:100:8\nmem = 2000\nf = 10\n",
        )
        .unwrap();
        let (sp, journal, csv_a, csv_b) = (
            spec_path.display().to_string(),
            dir.join("sweep.journal"),
            dir.join("a.csv"),
            dir.join("b.csv"),
        );

        // Reference run, then a journaled run "killed" mid-write.
        call(&format!("lab run --spec {sp} --out {}", csv_a.display())).unwrap();
        let out = call(&format!(
            "lab run --spec {sp} --journal {} --out {}",
            journal.display(),
            csv_b.display()
        ))
        .unwrap();
        assert!(out.contains("journal   :"), "{out}");
        assert!(out.contains("(0 runs replayed)"), "{out}");
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() - 11]).unwrap();

        // Resume: replayed runs become cache hits, CSV bytes identical.
        let out = call(&format!(
            "lab run --spec {sp} --journal {} --resume --out {}",
            journal.display(),
            csv_b.display()
        ))
        .unwrap();
        assert!(!out.contains("(0 runs replayed)"), "{out}");
        assert!(out.contains("runs replayed)"), "{out}");
        assert!(!out.contains("cache     : hits=0 "), "{out}");
        assert_eq!(
            std::fs::read(&csv_a).unwrap(),
            std::fs::read(&csv_b).unwrap(),
            "resumed CSV must be byte-identical"
        );

        // --resume without --journal is a usage error.
        let err = call(&format!("lab run --spec {sp} --resume")).unwrap_err();
        assert!(err.contains("--resume requires --journal"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lab_fsck_quarantines_corrupt_records_and_fails() {
        let dir = std::env::temp_dir().join("psse-cli-lab-fsck-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("tiny.spec");
        std::fs::write(
            &spec_path,
            "kind = model\nalg = matmul\nn = 1024\np = 4,8\n",
        )
        .unwrap();
        let cache = dir.join("cache");
        call(&format!(
            "lab run --spec {} --cache {} --profile off",
            spec_path.display(),
            cache.display()
        ))
        .unwrap();

        // A healthy cache passes.
        let out = call(&format!("lab fsck --cache {}", cache.display())).unwrap();
        assert!(out.contains("2 scanned, 2 ok, 0 corrupt"), "{out}");

        // Corrupt one record: dry-run reports without moving, the real
        // pass quarantines and exits nonzero.
        let rec = std::fs::read_dir(&cache)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "rec"))
            .unwrap();
        std::fs::write(&rec, "garbage\n").unwrap();
        let err = call(&format!("lab fsck --cache {} --dry-run", cache.display())).unwrap_err();
        assert!(err.contains("would quarantine"), "{err}");
        assert!(rec.exists(), "dry run must not move the record");
        let err = call(&format!("lab fsck --cache {}", cache.display())).unwrap_err();
        assert!(err.contains("1 corrupt record"), "{err}");
        assert!(!rec.exists(), "corrupt record must move to quarantine/");
        assert!(cache
            .join("quarantine")
            .join(rec.file_name().unwrap())
            .exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lab_run_failed_keys_exit_nonzero_after_writing_outputs() {
        let dir = std::env::temp_dir().join("psse-cli-lab-fail-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("bad.spec");
        // p = 4 forms a valid 2×2 grid; p = 3 cannot — one key fails.
        std::fs::write(&spec_path, "kind = simulate\nalg = mm25d\nn = 8\np = 4,3\n").unwrap();
        let csv = dir.join("sweep.csv");
        let err = call(&format!(
            "lab run --spec {} --out {} --profile off",
            spec_path.display(),
            csv.display()
        ))
        .unwrap_err();
        assert!(err.contains("1 of 2 runs failed"), "{err}");
        assert!(err.contains("p=3"), "failure list names the key: {err}");
        // The CSV for the surviving run was still written.
        let body = std::fs::read_to_string(&csv).unwrap();
        assert!(body.lines().count() >= 2, "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lab_expand_lists_digests() {
        let dir = std::env::temp_dir().join("psse-cli-lab-expand-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("tiny.spec");
        std::fs::write(
            &spec_path,
            "kind = model\nalg = matmul\nn = 1024\np = 4,8\n",
        )
        .unwrap();
        let out = call(&format!("lab expand --spec {}", spec_path.display())).unwrap();
        assert!(out.contains("expands to 2 runs"), "{out}");
        // One 32-hex digest per run, all distinct.
        let digests: Vec<&str> = out
            .lines()
            .skip(1)
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert_eq!(digests.len(), 2, "{out}");
        assert!(digests.iter().all(|d| d.len() == 32), "{out}");
        assert_ne!(digests[0], digests[1]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lab_requires_action_and_spec() {
        assert!(call("lab").is_err());
        assert!(call("lab frobnicate").is_err());
        assert!(call("lab run").is_err());
        assert!(call("lab run --spec /nonexistent/file.spec").is_err());
    }

    #[test]
    fn tech_reports_generations() {
        let out = call("tech --target 75").unwrap();
        assert!(out.contains("generations"));
        assert!(out.contains("75"));
    }
}
