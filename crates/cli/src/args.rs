//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    opts: HashMap<String, String>,
}

impl Args {
    /// Parse `argv` (without the program name). The first token is the
    /// subcommand; the rest must be `--key value` pairs (or bare
    /// `--flag`, stored with an empty value).
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut it = argv.iter().peekable();
        let command = it
            .next()
            .cloned()
            .ok_or_else(|| "no subcommand given; try `psse help`".to_string())?;
        if command.starts_with("--") {
            return Err(format!(
                "expected a subcommand before options, got {command}; try `psse help`"
            ));
        }
        let mut opts = HashMap::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {tok}"))?;
            if key.is_empty() {
                return Err("empty option name `--`".into());
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().cloned().unwrap(),
                _ => String::new(),
            };
            if opts.insert(key.to_string(), value).is_some() {
                return Err(format!("option --{key} given twice"));
            }
        }
        Ok(Args { command, opts })
    }

    /// Raw option lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Whether a bare flag (or any value) was supplied.
    pub fn has(&self, key: &str) -> bool {
        self.opts.contains_key(key)
    }

    /// Required string option.
    pub fn req(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Required numeric option (accepts scientific notation).
    pub fn req_f64(&self, key: &str) -> Result<f64, String> {
        self.req(key)?
            .parse::<f64>()
            .map_err(|_| format!("--{key} must be a number"))
    }

    /// Required integer option (accepts `1e6`-style floats that are
    /// exact integers).
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        let v = self.req_f64(key)?;
        if v < 0.0 || v.fract() != 0.0 || v > 2f64.powi(53) {
            return Err(format!("--{key} must be a non-negative integer"));
        }
        Ok(v as u64)
    }

    /// Optional numeric option with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(_) => self.req_f64(key),
        }
    }

    /// Optional integer option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(_) => self.req_u64(key),
        }
    }

    /// Optional string option with a default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).filter(|v| !v.is_empty()).unwrap_or(default)
    }

    /// Reject any option outside `allowed`, with a nearest-match hint —
    /// a silently ignored `--machne jaketown` is far worse than an
    /// error. Call once per command with its full key list.
    pub fn expect_keys(&self, allowed: &[&str]) -> Result<(), String> {
        // Deterministic order for reproducible error messages.
        let mut unknown: Vec<&str> = self
            .opts
            .keys()
            .map(String::as_str)
            .filter(|k| !allowed.contains(k))
            .collect();
        unknown.sort_unstable();
        let Some(key) = unknown.first() else {
            return Ok(());
        };
        let hint = suggest(key, allowed)
            .map(|cand| format!(" (did you mean --{cand}?)"))
            .unwrap_or_default();
        Err(format!(
            "unknown option --{key} for `{}`{hint}",
            self.command
        ))
    }
}

/// The candidate closest to `word` in edit distance, if close enough to
/// be a plausible typo (distance at most `max(len/2, 2)`). Shared by the
/// `--option` hints above and the subcommand hints in `run`, so
/// `psse buond` helps exactly like `--machne` does.
pub fn suggest<'a>(word: &str, candidates: &[&'a str]) -> Option<&'a str> {
    candidates
        .iter()
        .map(|cand| (levenshtein(word, cand), *cand))
        .min()
        .filter(|&(d, cand)| d <= (cand.len() / 2).max(2))
        .map(|(_, cand)| cand)
}

/// Classic dynamic-programming edit distance, small inputs only.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        cur[0] = i;
        for j in 1..=b.len() {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = Args::parse(&argv("model --alg matmul --n 8192 --mem 1e6")).unwrap();
        assert_eq!(a.command, "model");
        assert_eq!(a.req("alg").unwrap(), "matmul");
        assert_eq!(a.req_u64("n").unwrap(), 8192);
        assert_eq!(a.req_f64("mem").unwrap(), 1e6);
    }

    #[test]
    fn bare_flags_are_supported() {
        let a = Args::parse(&argv("simulate --verbose --n 4")).unwrap();
        assert!(a.has("verbose"));
        assert_eq!(a.req_u64("n").unwrap(), 4);
    }

    #[test]
    fn rejects_missing_subcommand_and_duplicates() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("--alg matmul")).is_err());
        assert!(Args::parse(&argv("model --n 1 --n 2")).is_err());
        assert!(Args::parse(&argv("model stray")).is_err());
    }

    #[test]
    fn numeric_validation() {
        let a = Args::parse(&argv("m --x 1.5 --y -3 --z abc --w 1e3")).unwrap();
        assert!(a.req_u64("x").is_err());
        assert!(a.req_u64("y").is_err());
        assert!(a.req_f64("z").is_err());
        assert_eq!(a.req_u64("w").unwrap(), 1000);
        assert!(a.req("missing").is_err());
    }

    #[test]
    fn expect_keys_accepts_known_and_rejects_unknown() {
        let a = Args::parse(&argv("model --alg matmul --n 8 --p 2")).unwrap();
        assert!(a.expect_keys(&["alg", "n", "p", "mem"]).is_ok());
        let err = a.expect_keys(&["alg", "n", "mem"]).unwrap_err();
        assert!(err.contains("--p"), "{err}");
        assert!(err.contains("model"), "{err}");
    }

    #[test]
    fn expect_keys_suggests_nearest_match() {
        let a = Args::parse(&argv("model --machne jaketown --n 8")).unwrap();
        let err = a.expect_keys(&["machine", "n", "p"]).unwrap_err();
        assert!(
            err.contains("did you mean --machine?"),
            "want a hint, got: {err}"
        );
        // A wildly different key gets no misleading hint.
        let a = Args::parse(&argv("model --zzzzqqqq 1 --n 8")).unwrap();
        let err = a.expect_keys(&["machine", "n", "p"]).unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn expect_keys_reports_first_unknown_deterministically() {
        let a = Args::parse(&argv("m --zeta 1 --beta 2 --alpha 3")).unwrap();
        let err = a.expect_keys(&["n"]).unwrap_err();
        assert!(err.contains("--alpha"), "sorted order: {err}");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", "abd"), 1);
        assert_eq!(levenshtein("gamma-t", "gamma-e"), 1);
        assert_eq!(levenshtein("machne", "machine"), 1);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn defaults() {
        let a = Args::parse(&argv("m --p 8")).unwrap();
        assert_eq!(a.u64_or("p", 1).unwrap(), 8);
        assert_eq!(a.u64_or("q", 7).unwrap(), 7);
        assert_eq!(a.f64_or("f", 20.0).unwrap(), 20.0);
        assert_eq!(a.str_or("machine", "jaketown"), "jaketown");
    }
}
