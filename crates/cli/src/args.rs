//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    opts: HashMap<String, String>,
}

impl Args {
    /// Parse `argv` (without the program name). The first token is the
    /// subcommand; the rest must be `--key value` pairs (or bare
    /// `--flag`, stored with an empty value).
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut it = argv.iter().peekable();
        let command = it
            .next()
            .cloned()
            .ok_or_else(|| "no subcommand given; try `psse help`".to_string())?;
        if command.starts_with("--") {
            return Err(format!(
                "expected a subcommand before options, got {command}; try `psse help`"
            ));
        }
        let mut opts = HashMap::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {tok}"))?;
            if key.is_empty() {
                return Err("empty option name `--`".into());
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().cloned().unwrap(),
                _ => String::new(),
            };
            if opts.insert(key.to_string(), value).is_some() {
                return Err(format!("option --{key} given twice"));
            }
        }
        Ok(Args { command, opts })
    }

    /// Raw option lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Whether a bare flag (or any value) was supplied.
    pub fn has(&self, key: &str) -> bool {
        self.opts.contains_key(key)
    }

    /// Required string option.
    pub fn req(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Required numeric option (accepts scientific notation).
    pub fn req_f64(&self, key: &str) -> Result<f64, String> {
        self.req(key)?
            .parse::<f64>()
            .map_err(|_| format!("--{key} must be a number"))
    }

    /// Required integer option (accepts `1e6`-style floats that are
    /// exact integers).
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        let v = self.req_f64(key)?;
        if v < 0.0 || v.fract() != 0.0 || v > 2f64.powi(53) {
            return Err(format!("--{key} must be a non-negative integer"));
        }
        Ok(v as u64)
    }

    /// Optional numeric option with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(_) => self.req_f64(key),
        }
    }

    /// Optional integer option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(_) => self.req_u64(key),
        }
    }

    /// Optional string option with a default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).filter(|v| !v.is_empty()).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = Args::parse(&argv("model --alg matmul --n 8192 --mem 1e6")).unwrap();
        assert_eq!(a.command, "model");
        assert_eq!(a.req("alg").unwrap(), "matmul");
        assert_eq!(a.req_u64("n").unwrap(), 8192);
        assert_eq!(a.req_f64("mem").unwrap(), 1e6);
    }

    #[test]
    fn bare_flags_are_supported() {
        let a = Args::parse(&argv("simulate --verbose --n 4")).unwrap();
        assert!(a.has("verbose"));
        assert_eq!(a.req_u64("n").unwrap(), 4);
    }

    #[test]
    fn rejects_missing_subcommand_and_duplicates() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("--alg matmul")).is_err());
        assert!(Args::parse(&argv("model --n 1 --n 2")).is_err());
        assert!(Args::parse(&argv("model stray")).is_err());
    }

    #[test]
    fn numeric_validation() {
        let a = Args::parse(&argv("m --x 1.5 --y -3 --z abc --w 1e3")).unwrap();
        assert!(a.req_u64("x").is_err());
        assert!(a.req_u64("y").is_err());
        assert!(a.req_f64("z").is_err());
        assert_eq!(a.req_u64("w").unwrap(), 1000);
        assert!(a.req("missing").is_err());
    }

    #[test]
    fn defaults() {
        let a = Args::parse(&argv("m --p 8")).unwrap();
        assert_eq!(a.u64_or("p", 1).unwrap(), 8);
        assert_eq!(a.u64_or("q", 7).unwrap(), 7);
        assert_eq!(a.f64_or("f", 20.0).unwrap(), 20.0);
        assert_eq!(a.str_or("machine", "jaketown"), "jaketown");
    }
}
