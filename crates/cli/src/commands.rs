//! Subcommand implementations.

use crate::args::Args;
use psse_algos::prelude::*;
use psse_core::costs::{
    Algorithm, ClassicalMatMul, DirectNBody, FftTree, HaloStencilModel, Lu25d, MatVec,
    SampleSortModel, StrassenMatMul,
};
use psse_core::machines::{jaketown, table2};
use psse_core::optimize::nbody::NBodyOptimizer;
use psse_core::optimize::numeric::argmin_energy_memory;
use psse_core::params::MachineParams;
use psse_core::tech_scaling::{fig6_series, multiplier_for_target, CaseStudy};
use psse_hbl::prelude::{derive, Derived, Family, Kernel, KernelCost};
use psse_kernels::fft::fft as kernel_fft;
use psse_kernels::matrix::Matrix;
use psse_kernels::nbody::{accumulate_forces, random_particles};
use psse_kernels::rng::XorShift64;
use psse_lab::prelude::{
    detect_scaling_range, fsck_dir, gc_dir, pareto_csv, spec_digest, sweep_csv, GcConfig, Journal,
    Lab, LabConfig, RunKey, SweepSpec,
};
use psse_sim::profile::Profile;
use psse_trace::Trace;
use std::fmt::Write as _;

type CmdResult = Result<(), String>;

/// `--machine` plus its per-parameter override keys, shared by every
/// command that prices runs.
const MACHINE_KEYS: [&str; 11] = [
    "machine",
    "gamma-t",
    "beta-t",
    "alpha-t",
    "gamma-e",
    "beta-e",
    "alpha-e",
    "delta-e",
    "epsilon-e",
    "max-message",
    "mem-words",
];

/// Keys consumed by [`run_algorithm`] (shared by `simulate` and
/// `trace record`).
const RUN_KEYS: [&str; 10] = [
    "alg", "n", "p", "c", "seed", "panel", "cols", "backend", "halo", "iters",
];

/// Build the allowed-key list for [`crate::args::Args::expect_keys`]
/// from slices of shared and command-specific keys.
fn allowed(groups: &[&[&'static str]]) -> Vec<&'static str> {
    groups.iter().flat_map(|g| g.iter().copied()).collect()
}

fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if (1e-3..1e6).contains(&x.abs()) {
        format!("{x:.4}")
    } else {
        format!("{x:.4e}")
    }
}

/// Resolve `--machine` plus per-parameter overrides into machine params.
fn machine_from(args: &Args) -> Result<(MachineParams, String), String> {
    let name = args.str_or("machine", "jaketown").to_string();
    let base = match name.as_str() {
        "jaketown" => jaketown(),
        other => return Err(format!("unknown machine `{other}` (available: jaketown)")),
    };
    let mut mp = base;
    for (key, field) in [
        ("gamma-t", 0usize),
        ("beta-t", 1),
        ("alpha-t", 2),
        ("gamma-e", 3),
        ("beta-e", 4),
        ("alpha-e", 5),
        ("delta-e", 6),
        ("epsilon-e", 7),
        ("max-message", 8),
        ("mem-words", 9),
    ] {
        if args.has(key) {
            let v = args.req_f64(key)?;
            match field {
                0 => mp.gamma_t = v,
                1 => mp.beta_t = v,
                2 => mp.alpha_t = v,
                3 => mp.gamma_e = v,
                4 => mp.beta_e = v,
                5 => mp.alpha_e = v,
                6 => mp.delta_e = v,
                7 => mp.epsilon_e = v,
                8 => mp.max_message_words = v,
                _ => mp.mem_words = v,
            }
        }
    }
    mp.validate().map_err(|e| e.to_string())?;
    Ok((mp, name))
}

/// Resolve `--backend threads|events` (default threads).
fn backend_from(args: &Args) -> Result<psse_sim::Backend, String> {
    args.str_or("backend", "threads").parse()
}

fn algorithm_from(args: &Args) -> Result<Box<dyn Algorithm>, String> {
    let f = args.f64_or("f", 20.0)?;
    Ok(match args.req("alg")? {
        "matmul" => Box::new(ClassicalMatMul),
        "strassen" => Box::new(StrassenMatMul::default()),
        "nbody" => Box::new(DirectNBody {
            flops_per_interaction: f,
        }),
        "fft" => Box::new(FftTree),
        "lu" => Box::new(Lu25d),
        "matvec" => Box::new(MatVec),
        "samplesort" => Box::new(SampleSortModel),
        "stencil" => Box::new(HaloStencilModel {
            halo: args.u64_or("halo", 1)?,
            iters: args.u64_or("iters", 4)?,
        }),
        other => {
            return Err(format!(
                "unknown algorithm `{other}` \
                 (matmul|strassen|nbody|fft|lu|matvec|samplesort|stencil)"
            ))
        }
    })
}

pub fn machines(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&[])?;
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>6} {:>5} {:>8} {:>14} {:>12} {:>12} {:>9}",
        "processor",
        "freq(GHz)",
        "cores",
        "SIMD",
        "TDP(W)",
        "peak(GFLOP/s)",
        "gamma_t",
        "gamma_e",
        "GFLOPS/W"
    );
    for s in table2() {
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>6} {:>5} {:>8} {:>14.2} {:>12.3e} {:>12.3e} {:>9.3}",
            s.name,
            s.freq_ghz,
            s.cores,
            s.simd_width,
            s.tdp_w,
            s.peak_gflops(),
            s.gamma_t(),
            s.gamma_e(),
            s.gflops_per_watt()
        );
    }
    Ok(())
}

pub fn model(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&allowed(&[
        &MACHINE_KEYS,
        &["alg", "n", "p", "mem", "f", "halo", "iters"],
    ]))?;
    let (mp, mname) = machine_from(args)?;
    let alg = algorithm_from(args)?;
    let n = args.req_u64("n")?;
    let p = args.req_u64("p")?;
    let mem = match args.get("mem") {
        Some(_) => args.req_f64("mem")?,
        None => alg.min_memory(n, p),
    };
    let costs = alg.costs(n, p, mem, &mp).map_err(|e| e.to_string())?;
    let t = mp.time(&costs);
    let e = mp.energy(p, &costs, mem, t);
    let _ = writeln!(out, "algorithm : {}", alg.name());
    let _ = writeln!(out, "machine   : {mname}");
    let _ = writeln!(out, "n = {n}, p = {p}, M = {} words/processor", fmt(mem));
    let _ = writeln!(
        out,
        "per-processor F = {}, W = {}, S = {}",
        fmt(costs.flops),
        fmt(costs.words),
        fmt(costs.messages)
    );
    let _ = writeln!(out, "runtime  T = {} s   (Eq. 1)", fmt(t));
    let _ = writeln!(out, "energy   E = {} J   (Eq. 2)", fmt(e));
    let _ = writeln!(out, "power    P = {} W", fmt(e / t));
    let _ = writeln!(
        out,
        "efficiency = {} GFLOPS/W",
        fmt(alg.total_flops(n) / e / 1e9)
    );
    Ok(())
}

pub fn scaling(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&["alg", "n", "mem", "f", "halo", "iters"])?;
    let alg = algorithm_from(args)?;
    let n = args.req_u64("n")?;
    let mem = args.req_f64("mem")?;
    match alg.strong_scaling_range(n, mem) {
        Some(r) => {
            let _ = writeln!(out, "algorithm : {}", alg.name());
            let _ = writeln!(out, "n = {n}, M = {} words/processor (fixed)", fmt(mem));
            let _ = writeln!(out, "p_min = {}  (one copy of the data)", fmt(r.p_min));
            let _ = writeln!(out, "p_max = {}  (replication saturates)", fmt(r.p_max));
            let _ = writeln!(
                out,
                "headroom = {}x: scale processors by that factor for the same\n\
                 energy and proportionally less time.",
                fmt(r.headroom())
            );
        }
        None => {
            let _ = writeln!(
                out,
                "{}: no perfect strong scaling range exists (see paper §IV).",
                alg.name()
            );
        }
    }
    Ok(())
}

pub fn optimize(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&allowed(&[
        &MACHINE_KEYS,
        &["n", "f", "tmax", "emax", "power-total", "power-proc"],
    ]))?;
    let (mp, mname) = machine_from(args)?;
    let n = args.req_u64("n")?;
    let f = args.f64_or("f", 20.0)?;
    let opt = NBodyOptimizer::new(&mp, f).map_err(|e| e.to_string())?;
    let _ = writeln!(out, "n-body optimization on `{mname}` (n = {n}, f = {f})");
    match (opt.m0(), opt.e_star(n)) {
        (Ok(m0), Ok(e_star)) => {
            let (p_lo, p_hi) = opt.m0_processor_range(n).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "M0 = {} words/processor (energy-optimal, any p)",
                fmt(m0)
            );
            let _ = writeln!(
                out,
                "E* = {} J, attainable for p in [{}, {}]",
                fmt(e_star),
                fmt(p_lo),
                fmt(p_hi)
            );
        }
        (Err(e), _) | (_, Err(e)) => {
            let _ = writeln!(out, "no interior optimum: {e}");
        }
    }
    if args.has("tmax") {
        let tmax = args.req_f64("tmax")?;
        let cfg = opt
            .min_energy_given_tmax(n, tmax)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "cheapest run within Tmax = {} s: E = {} J at p = {}, M = {}",
            fmt(tmax),
            fmt(cfg.energy),
            fmt(cfg.p),
            fmt(cfg.mem)
        );
    }
    if args.has("emax") {
        let emax = args.req_f64("emax")?;
        let cfg = opt
            .min_time_given_emax(n, emax)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "fastest run within Emax = {} J: T = {} s at p = {}, M = {}",
            fmt(emax),
            fmt(cfg.time),
            fmt(cfg.p),
            fmt(cfg.mem)
        );
    }
    if args.has("power-total") {
        let cap = args.req_f64("power-total")?;
        if let Ok(m0) = opt.m0() {
            let p_max = opt.max_p_given_total_power(cap, m0);
            let _ = writeln!(
                out,
                "total power {} W at M0 allows p <= {}",
                fmt(cap),
                fmt(p_max)
            );
        }
    }
    if args.has("power-proc") {
        let cap = args.req_f64("power-proc")?;
        match opt.max_memory_given_proc_power(cap) {
            Ok(m) => {
                let _ = writeln!(
                    out,
                    "per-processor power {} W caps memory at M <= {}",
                    fmt(cap),
                    fmt(m)
                );
            }
            Err(e) => {
                let _ = writeln!(out, "per-processor power {} W: {e}", fmt(cap));
            }
        }
    }
    if let Ok(g) = opt.gflops_per_watt_at_optimum() {
        let _ = writeln!(
            out,
            "best-case efficiency: {} GFLOPS/W (size-independent)",
            fmt(g)
        );
    }
    Ok(())
}

/// Run the algorithm selected by `--alg` on the virtual machine under
/// `cfg`, returning its profile and whether the numerics matched the
/// sequential reference. Shared by `simulate` and `trace record`.
fn run_algorithm(
    args: &Args,
    cfg: psse_sim::machine::SimConfig,
) -> Result<(Profile, bool), String> {
    let n = args.req_u64("n")? as usize;
    let p = args.u64_or("p", 4)? as usize;
    let c = args.u64_or("c", 1)? as usize;
    let seed = args.u64_or("seed", 42)?;
    let alg = args.req("alg")?;

    let (profile, verified) = match alg {
        "cannon" | "summa" | "mm25d" | "mm3d" | "strassen" => {
            let a = Matrix::random(n, n, seed);
            let b = Matrix::random(n, n, seed + 1);
            let reference = psse_kernels::gemm::matmul(&a, &b);
            let (cm, profile) = match alg {
                "cannon" => cannon_matmul(&a, &b, p, cfg).map_err(|e| e.to_string())?,
                "summa" => {
                    let panel = args
                        .u64_or("panel", (n / (p as f64).sqrt() as usize).max(1) as u64)?
                        as usize;
                    summa_matmul(&a, &b, p, panel, cfg).map_err(|e| e.to_string())?
                }
                "mm25d" => matmul_25d(&a, &b, p, c, cfg).map_err(|e| e.to_string())?,
                "mm3d" => matmul_3d(&a, &b, p, cfg).map_err(|e| e.to_string())?,
                _ => strassen_distributed(&a, &b, p, cfg).map_err(|e| e.to_string())?,
            };
            (profile, cm.max_abs_diff(&reference) < 1e-8)
        }
        "cholesky" => {
            let b = Matrix::random(n, n, seed);
            let mut a = psse_kernels::gemm::matmul(&b.transpose(), &b);
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            let (l, profile) =
                psse_algos::cholesky2d::cholesky_2d(&a, p, cfg).map_err(|e| e.to_string())?;
            let recon = psse_kernels::gemm::matmul(&l, &l.transpose());
            (profile, recon.relative_error(&a) < 1e-8)
        }
        "lu" | "solve" => {
            let a = Matrix::random_diagonally_dominant(n, seed);
            if alg == "lu" {
                let (packed, profile) = lu_2d(&a, p, cfg).map_err(|e| e.to_string())?;
                let (l, u) = psse_kernels::lu::split_lu(&packed);
                let ok = psse_kernels::gemm::matmul(&l, &u).relative_error(&a) < 1e-8;
                (profile, ok)
            } else {
                let x_true: Vec<f64> = (0..n).map(|i| i as f64 - n as f64 / 2.0).collect();
                let b: Vec<f64> = (0..n)
                    .map(|i| (0..n).map(|j| a[(i, j)] * x_true[j]).sum())
                    .collect();
                let (x, profile) = solve_2d(&a, &b, p, cfg).map_err(|e| e.to_string())?;
                let ok = x
                    .iter()
                    .zip(&x_true)
                    .all(|(a, b)| (a - b).abs() < 1e-6 * (1.0 + b.abs()));
                (profile, ok)
            }
        }
        "nbody" => {
            if c == 0 || !p.is_multiple_of(c) {
                return Err(format!(
                    "--c {c} must divide --p {p} for the replicated n-body layout"
                ));
            }
            let particles = random_particles(n, seed);
            let pr = p / c;
            let (acc, profile) =
                nbody_replicated(&particles, pr, c, cfg).map_err(|e| e.to_string())?;
            let mut serial = vec![[0.0; 3]; n];
            accumulate_forces(&particles, &particles, &mut serial);
            let ok = acc
                .iter()
                .zip(&serial)
                .all(|(a, b)| (0..3).all(|d| (a[d] - b[d]).abs() < 1e-8));
            (profile, ok)
        }
        "fft" => {
            let mut rng = XorShift64::new(seed);
            let x: Vec<psse_kernels::Complex64> = (0..n)
                .map(|_| {
                    psse_kernels::Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0))
                })
                .collect();
            let (spec, profile) =
                distributed_fft(&x, p, AllToAllKind::Pairwise, cfg).map_err(|e| e.to_string())?;
            let reference = kernel_fft(&x);
            let ok = spec
                .iter()
                .zip(&reference)
                .all(|(a, b)| (*a - *b).abs() < 1e-7);
            (profile, ok)
        }
        "tsqr" => {
            let cols = args.u64_or("cols", 4)? as usize;
            let a = Matrix::random(n, cols, seed);
            let (r, profile) = tsqr(&a, p, cfg).map_err(|e| e.to_string())?;
            let (_, r_seq) = psse_kernels::qr::householder_qr(&a);
            (profile, r.max_abs_diff(&r_seq) < 1e-7)
        }
        "matvec" => {
            let a = Matrix::random(n, n, seed);
            let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 1.0).collect();
            let (y, profile) = matvec_1d(&a, &x, p, cfg).map_err(|e| e.to_string())?;
            let ok = (0..n).all(|i| {
                let serial: f64 = a.row(i).iter().zip(&x).map(|(aij, xj)| aij * xj).sum();
                (y[i] - serial).abs() < 1e-8 * (1.0 + serial.abs())
            });
            (profile, ok)
        }
        "samplesort" => {
            let keys = random_keys(n, seed);
            let (sorted, profile) = sample_sort(&keys, p, cfg).map_err(|e| e.to_string())?;
            let mut reference = keys;
            reference.sort_by(|a, b| a.total_cmp(b));
            // Bit-identical, not approximately equal: sorting permutes,
            // it never rounds.
            (profile, sorted == reference)
        }
        "stencil" => {
            let halo = args.u64_or("halo", 1)? as usize;
            let iters = args.u64_or("iters", 4)? as usize;
            // 2-D blocks when p is a perfect square dividing n, 1-D row
            // slabs otherwise (same rule as the lab runner).
            let q = (p as f64).sqrt().round() as usize;
            let decomp = if q * q == p && q > 0 && n.is_multiple_of(q) {
                Decomp::TwoD
            } else {
                Decomp::OneD
            };
            let grid = random_grid(n, seed);
            let (out, profile) =
                halo_stencil(&grid, n, halo, iters, decomp, p, cfg).map_err(|e| e.to_string())?;
            let reference = serial_stencil(&grid, n, halo, iters);
            (profile, out == reference)
        }
        other => {
            return Err(format!(
                "unknown simulation `{other}` \
                 (cannon|summa|mm25d|mm3d|strassen|lu|solve|cholesky|tsqr|nbody|fft|matvec|\
                 samplesort|stencil)"
            ))
        }
    };
    Ok((profile, verified))
}

pub fn simulate(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&allowed(&[&MACHINE_KEYS, &RUN_KEYS]))?;
    let (mp, mname) = machine_from(args)?;
    let mut cfg = sim_config_from(&mp);
    cfg.backend = backend_from(args)?;
    let alg = args.req("alg")?;
    let backend = cfg.backend;
    let (profile, verified) = run_algorithm(args, cfg)?;

    let m = measure(&profile, &mp);
    let _ = writeln!(
        out,
        "algorithm : {alg} on {} ranks (machine `{mname}`)",
        profile.p()
    );
    let _ = writeln!(out, "backend   : {backend}");
    let _ = writeln!(
        out,
        "numerics  : {}",
        if verified {
            "verified against the sequential reference"
        } else {
            "MISMATCH vs sequential reference!"
        }
    );
    let _ = writeln!(out, "measured runtime  T = {} s (virtual)", fmt(m.time));
    let _ = writeln!(
        out,
        "measured energy   E = {} J (Eq. 2 over counters)",
        fmt(m.energy)
    );
    let _ = writeln!(
        out,
        "critical path     F = {}, W = {}, S = {}",
        profile.max_flops(),
        profile.max_words_sent(),
        profile.max_msgs_sent()
    );
    let _ = writeln!(
        out,
        "peak memory/rank  M = {} words",
        profile.max_mem_peak()
    );
    if !verified {
        return Err("numerical verification failed".into());
    }
    Ok(())
}

pub fn tech(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&allowed(&[&MACHINE_KEYS, &["target"]]))?;
    let (mp, _) = machine_from(args)?;
    let target = args.f64_or("target", 75.0)?;
    let study = CaseStudy::default();
    let base = study.gflops_per_watt(&mp);
    let _ = writeln!(
        out,
        "case study: 2.5D matmul, n = {}, p = {}",
        study.n, study.p
    );
    let _ = writeln!(out, "today: {} GFLOPS/W", fmt(base));
    match multiplier_for_target(&mp, study, target) {
        Some(k) => {
            let _ = writeln!(
                out,
                "target {} GFLOPS/W: improve all energy parameters {}x \
                 (~{:.2} generations at one halving per generation)",
                fmt(target),
                fmt(k),
                k.log2()
            );
        }
        None => {
            let _ = writeln!(
                out,
                "target {} GFLOPS/W unreachable by energy scaling alone",
                fmt(target)
            );
        }
    }
    let _ = writeln!(out, "\nper-parameter sensitivity (halving per generation):");
    let rows = fig6_series(&mp, study, 5);
    let last = rows.last().unwrap();
    for (param, eff) in &last.per_param {
        let _ = writeln!(
            out,
            "  {:>9} alone, 5 generations: {} GFLOPS/W",
            param.symbol(),
            fmt(*eff)
        );
    }
    let _ = writeln!(
        out,
        "  all three, 5 generations: {} GFLOPS/W",
        fmt(last.together)
    );
    Ok(())
}

/// `psse trace <action>`: record an algorithm run as an event trace,
/// replay/re-price it on another machine, analyse its critical path, or
/// export it as Chrome trace-event JSON.
pub fn trace_cmd(action: &str, args: &Args, out: &mut String) -> CmdResult {
    match action {
        "record" => trace_record(args, out),
        "replay" => trace_replay(args, out),
        "critical-path" => trace_critical_path(args, out),
        "export" => trace_export(args, out),
        "flame" => trace_flame(args, out),
        other => Err(format!(
            "unknown trace action `{other}` (record|replay|critical-path|export|flame)"
        )),
    }
}

fn trace_record(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&allowed(&[&MACHINE_KEYS, &RUN_KEYS, &["out"]]))?;
    let (mp, mname) = machine_from(args)?;
    let mut cfg = sim_config_from(&mp);
    cfg.backend = backend_from(args)?;
    cfg.record_trace = true;
    let alg = args.req("alg")?.to_string();
    let (profile, verified) = run_algorithm(args, cfg.clone())?;
    if !verified {
        return Err("numerical verification failed; not saving the trace".into());
    }
    let trace = Trace::from_run(&cfg, &profile).map_err(|e| e.to_string())?;
    trace
        .check_consistency(&profile)
        .map_err(|e| e.to_string())?;
    let default_out = format!("{alg}.trace");
    let path = args.str_or("out", &default_out).to_string();
    trace.save(&path).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "recorded {alg} on {} ranks (machine `{mname}`)",
        trace.p
    );
    let _ = writeln!(out, "events    : {}", trace.n_events());
    let _ = writeln!(out, "makespan  : {} s (virtual)", fmt(trace.makespan));
    let _ = writeln!(out, "replay    : verified (bit-identical to the live run)");
    let _ = writeln!(out, "saved to  : {path}");
    Ok(())
}

fn trace_replay(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&allowed(&[&MACHINE_KEYS, &["in"]]))?;
    let trace = Trace::load(args.req("in")?).map_err(|e| e.to_string())?;
    // Self-replay under the recorded parameters must reproduce the
    // recorded makespan exactly.
    let self_prof = trace.replay(&trace.params).map_err(|e| e.to_string())?;
    if self_prof.makespan.to_bits() != trace.makespan.to_bits() {
        return Err(format!(
            "self-replay makespan {} differs from recorded {}",
            self_prof.makespan, trace.makespan
        ));
    }
    let (mp, mname) = machine_from(args)?;
    let m = trace.reprice(&mp).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "trace     : {} ranks, {} events",
        trace.p,
        trace.n_events()
    );
    let _ = writeln!(
        out,
        "recorded  : T = {} s (self-replay verified)",
        fmt(trace.makespan)
    );
    let _ = writeln!(out, "re-priced on `{mname}`:");
    let _ = writeln!(out, "  runtime T = {} s   (Eq. 1 per event)", fmt(m.time));
    let _ = writeln!(out, "  energy  E = {} J   (Eq. 2)", fmt(m.energy));
    let _ = writeln!(out, "  power   P = {} W", fmt(m.power));
    Ok(())
}

fn trace_critical_path(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&["in", "top"])?;
    let trace = Trace::load(args.req("in")?).map_err(|e| e.to_string())?;
    let rep = trace
        .critical_path(&trace.params)
        .map_err(|e| e.to_string())?;
    let k = args.u64_or("top", 5)? as usize;
    let _ = writeln!(out, "makespan  : {} s", fmt(rep.makespan));
    let _ = writeln!(
        out,
        "{:>5} {:>12} {:>12} {:>12}",
        "rank", "compute(s)", "comm(s)", "idle(s)"
    );
    for b in &rep.breakdown {
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>12} {:>12}",
            b.rank,
            fmt(b.compute),
            fmt(b.comm),
            fmt(b.idle)
        );
    }
    let _ = writeln!(
        out,
        "critical path: {} segments totalling {} s",
        rep.path.len(),
        fmt(rep.path_total())
    );
    for seg in rep.top_segments(k) {
        let _ = writeln!(
            out,
            "  rank {:>3}  {:<12} [{} .. {}]  {} s",
            seg.rank,
            seg.label,
            fmt(seg.t_start),
            fmt(seg.t_end),
            fmt(seg.duration())
        );
    }
    Ok(())
}

fn trace_export(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&["in", "out"])?;
    let input = args.req("in")?.to_string();
    let trace = Trace::load(&input).map_err(|e| e.to_string())?;
    let default_out = format!("{input}.json");
    let path = args.str_or("out", &default_out).to_string();
    std::fs::write(&path, trace.to_chrome_json()).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "wrote Chrome trace-event JSON for {} ranks ({} events) to {path}",
        trace.p,
        trace.n_events()
    );
    let _ = writeln!(
        out,
        "load it at https://ui.perfetto.dev or chrome://tracing"
    );
    Ok(())
}

/// `psse trace flame`: fold the recorded DAG into collapsed-stack
/// format. With no `--out` the output is *only* the folded lines, so
/// `psse trace flame --in run.trace | flamegraph.pl` works unmodified;
/// with `--out` the lines go to the file and a summary is printed.
/// Replay-parameter overrides re-price the fold without re-running.
fn trace_flame(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&["in", "out", "gamma-t", "beta-t", "alpha-t", "max-message"])?;
    let trace = Trace::load(args.req("in")?).map_err(|e| e.to_string())?;
    let mut params = trace.params.clone();
    if args.has("gamma-t") {
        params.gamma_t = args.req_f64("gamma-t")?;
    }
    if args.has("beta-t") {
        params.beta_t = args.req_f64("beta-t")?;
    }
    if args.has("alpha-t") {
        params.alpha_t = args.req_f64("alpha-t")?;
    }
    if args.has("max-message") {
        params.max_message_words = args.req_u64("max-message")? as usize;
    }
    let folded = trace.flame_folded(&params).map_err(|e| e.to_string())?;
    match args.get("out").filter(|v| !v.is_empty()) {
        Some(path) => {
            std::fs::write(path, &folded).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "wrote {} collapsed stacks for {} ranks to {path}",
                folded.lines().count(),
                trace.p
            );
            let _ = writeln!(
                out,
                "render with flamegraph.pl/inferno, or load in speedscope"
            );
        }
        None => out.push_str(&folded),
    }
    Ok(())
}

/// `psse faults <action>`: fault-injection experiments on the simulated
/// machine. The one action, `sweep`, runs 2.5D matmul across replication
/// factors with and without an injected fault plan and reports the
/// measured vs model-predicted resilience-energy overhead.
pub fn faults_cmd(action: &str, args: &Args, out: &mut String) -> CmdResult {
    match action {
        "sweep" => faults_sweep(args, out),
        other => Err(format!("unknown faults action `{other}` (sweep)")),
    }
}

fn faults_sweep(args: &Args, out: &mut String) -> CmdResult {
    use psse_core::optimize::resilience::{daly_optimal_interval, resilience_energy};
    use psse_sim::prelude::{CheckpointPolicy, FaultPlan, FaultSpec, RecoveryPolicy};

    args.expect_keys(&allowed(&[
        &MACHINE_KEYS,
        &[
            "n",
            "q",
            "c-list",
            "seed",
            "checkpoint-interval",
            "drop-rate",
            "corrupt-rate",
            "duplicate-rate",
            "delay-rate",
            "delay-seconds",
            "retries",
            "backoff",
            "checkpoint-words",
            "restart",
            "mtbf",
            "out",
            "jobs",
            "backend",
        ],
    ]))?;
    let (mp, mname) = machine_from(args)?;
    let backend = backend_from(args)?;
    let n = args.u64_or("n", 32)? as usize;
    let q = args.u64_or("q", 4)? as usize;
    let c_list: Vec<usize> = args
        .str_or("c-list", "1,2,4")
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad replication factor `{s}` in --c-list"))
        })
        .collect::<Result<_, _>>()?;
    let seed = args.u64_or("seed", 42)?;
    let interval = args.f64_or("checkpoint-interval", 0.0)?;
    let spec = FaultSpec {
        seed,
        drop_rate: args.f64_or("drop-rate", 0.02)?,
        corrupt_rate: args.f64_or("corrupt-rate", 0.01)?,
        duplicate_rate: args.f64_or("duplicate-rate", 0.0)?,
        delay_rate: args.f64_or("delay-rate", 0.0)?,
        delay_seconds: args.f64_or("delay-seconds", 0.0)?,
        crashes: Vec::new(),
    };
    let recovery = RecoveryPolicy {
        max_retries: args.u64_or("retries", 16)? as u32,
        retry_backoff: args.f64_or("backoff", 0.0)?,
        checkpoint: if interval > 0.0 {
            Some(CheckpointPolicy {
                interval,
                words: args.u64_or("checkpoint-words", ((n / q) * (n / q)) as u64)?,
                restart_seconds: args.f64_or("restart", 0.0)?,
            })
        } else {
            None
        },
    };
    let plan = FaultPlan { spec, recovery };
    plan.validate()
        .map_err(|e| format!("bad fault plan: {e}"))?;

    let _ = writeln!(
        out,
        "fault sweep: 2.5D matmul, n = {n}, q = {q}, machine `{mname}`, seed {seed}, backend {backend}"
    );
    let _ = writeln!(
        out,
        "plan: drop {:.3}, corrupt {:.3}, duplicate {:.3}, delay {:.3}, retries {}, checkpoint {}",
        plan.spec.drop_rate,
        plan.spec.corrupt_rate,
        plan.spec.duplicate_rate,
        plan.spec.delay_rate,
        plan.recovery.max_retries,
        if interval > 0.0 { "on" } else { "off" }
    );
    if let Some(mtbf) = args.get("mtbf").and_then(|v| v.parse::<f64>().ok()) {
        // Advisory: the Daly-optimal interval for a checkpoint whose
        // write time follows from the policy's word count at this
        // machine's link prices.
        let words = args.u64_or("checkpoint-words", ((n / q) * (n / q)) as u64)? as f64;
        let delta = mp.alpha_t + mp.beta_t * words;
        let tau = daly_optimal_interval(delta, mtbf).map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "daly: checkpoint write δ = {} s, MTBF = {} s → optimal interval τ* = {} s",
            fmt(delta),
            fmt(mtbf),
            fmt(tau)
        );
    }
    let _ = writeln!(
        out,
        "{:>3} {:>5} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "c", "p", "E_free(J)", "E_fault(J)", "overhead(J)", "model(J)", "retries", "ckpt_words"
    );

    // Route the sweep through the lab engine: each c contributes a
    // fault-free and a faulted key; the pool parallelises across c and
    // the content-addressed cache dedups repeat invocations.
    let lab = Lab::new(LabConfig {
        jobs: args.u64_or("jobs", 0)? as usize,
        ..LabConfig::default()
    });
    let mut keys = Vec::new();
    for &c in &c_list {
        let p = q * q * c;
        for faults in [None, Some(plan.clone())] {
            let mut k = RunKey::simulate("mm25d-abft", n as u64, p as u64, mp.clone());
            k.c = c as u64;
            k.seed = seed;
            k.faults = faults;
            k.backend = backend;
            keys.push(k);
        }
    }
    let results = lab.run_keys(&keys);

    let mut csv = String::from(
        "c,p,t_free_s,t_fault_s,e_free_j,e_fault_j,overhead_j,model_j,retries,checkpoint_words,resilience_words\n",
    );
    for (i, &c) in c_list.iter().enumerate() {
        let p = q * q * c;
        let r_free = results[2 * i]
            .as_ref()
            .map_err(|e| format!("c = {c} fault-free run: {e}"))?;
        let r_fault = results[2 * i + 1]
            .as_ref()
            .map_err(|e| format!("c = {c} faulted run: {e}"))?;
        if r_fault.output_digest != r_free.output_digest {
            return Err(format!(
                "c = {c}: faulted run numerics differ from fault-free (retry should resend identical data)"
            ));
        }

        let overhead = r_fault.energy - r_free.energy;
        let model = resilience_energy(
            &mp,
            r_fault.resilience_words as f64,
            r_fault.resilience_msgs as f64,
            r_fault.time - r_free.time,
            p as f64,
            r_fault.mem_used,
        );
        let retries = r_fault.retries;
        let ckpt_words = r_fault.checkpoint_words;
        let _ = writeln!(
            out,
            "{:>3} {:>5} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10}",
            c,
            p,
            fmt(r_free.energy),
            fmt(r_fault.energy),
            fmt(overhead),
            fmt(model),
            retries,
            ckpt_words
        );
        let _ = writeln!(
            csv,
            "{c},{p},{:?},{:?},{:?},{:?},{:?},{:?},{retries},{ckpt_words},{}",
            r_free.time,
            r_fault.time,
            r_free.energy,
            r_fault.energy,
            overhead,
            model,
            r_fault.resilience_words
        );
    }
    let _ = writeln!(
        out,
        "numerics  : all faulted runs identical to fault-free (retry + ABFT verified)"
    );
    if let Some(path) = args.get("out").filter(|v| !v.is_empty()) {
        std::fs::write(path, &csv).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote CSV to {path}");
    }
    Ok(())
}

pub fn lab_cmd(action: &str, args: &Args, out: &mut String) -> CmdResult {
    match action {
        "run" => lab_run(args, out),
        "expand" => lab_expand(args, out),
        "gc" => lab_gc(args, out),
        "fsck" => lab_fsck(args, out),
        other => Err(format!("unknown lab action `{other}` (run|expand|gc|fsck)")),
    }
}

/// Read and parse the `--spec` file.
fn lab_spec_from(args: &Args) -> Result<(SweepSpec, String), String> {
    let path = args.req("spec")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read --spec {path}: {e}"))?;
    let spec = SweepSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((spec, path.to_string()))
}

fn lab_run(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&[
        "spec", "jobs", "out", "pareto", "cache", "scaling", "profile", "top", "journal", "resume",
        "timeout",
    ])?;
    let (spec, path) = lab_spec_from(args)?;
    // `--cache DIR` persists results under DIR; `off` (or omitting the
    // flag) keeps the cache in-memory only.
    let cache_dir = match args.get("cache") {
        None | Some("") | Some("off") => None,
        Some(dir) => Some(std::path::PathBuf::from(dir)),
    };
    // Watchdog budget: `--timeout S` overrides the spec's `timeout`
    // key. The budget never enters run identity, so cache digests and
    // CSV bytes are independent of it.
    let timeout_secs = match args.get("timeout") {
        None => spec.timeout,
        Some(_) => Some(args.req_f64("timeout")?),
    };
    let timeout = match timeout_secs {
        None => None,
        Some(s) if s > 0.0 && s.is_finite() => Some(std::time::Duration::from_secs_f64(s)),
        Some(s) => {
            return Err(format!(
                "--timeout must be a positive number of seconds, got {s}"
            ))
        }
    };
    let mut lab = Lab::new(LabConfig {
        jobs: args.u64_or("jobs", 0)? as usize,
        cache_dir,
        timeout,
        ..LabConfig::default()
    });
    // `--journal FILE` appends one checksummed line per finished run;
    // `--resume` replays completed runs from it (skipping their
    // execution) before continuing the sweep.
    let mut replayed_runs = 0usize;
    let journal_path = args.get("journal").filter(|v| !v.is_empty());
    match journal_path {
        Some(jp) => {
            let sd = spec_digest(&spec.expand());
            let journal = if args.has("resume") {
                let (journal, replayed) = Journal::open_resume(std::path::Path::new(jp), &sd)?;
                replayed_runs = replayed.len();
                lab.seed(&replayed);
                journal
            } else {
                Journal::create(std::path::Path::new(jp), &sd)?
            };
            lab.set_journal(journal);
        }
        None if args.has("resume") => {
            return Err("--resume requires --journal FILE".into());
        }
        None => {}
    }
    // Self-profile destination: `--profile off` disables it, `--profile
    // FILE` overrides it, and by default the JSON lands next to the
    // sweep CSV (`<out>.profile.json`) or, with no `--out`, in the
    // working directory as `<spec stem>.profile.json`.
    let profile_path = match args.get("profile") {
        Some("off") => None,
        Some(p) if !p.is_empty() => Some(p.to_string()),
        _ => Some(match args.get("out").filter(|v| !v.is_empty()) {
            Some(o) => format!("{o}.profile.json"),
            None => {
                let stem = std::path::Path::new(&path)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("sweep");
                format!("{stem}.profile.json")
            }
        }),
    };
    let _ = writeln!(
        out,
        "spec      : {path} ({} {} runs, alg `{}`, machine `{}`)",
        spec.len(),
        spec.kind.as_str(),
        spec.alg,
        spec.machine_name
    );
    let _ = writeln!(out, "jobs      : {}", lab.jobs());
    if let Some(jp) = journal_path {
        let _ = writeln!(out, "journal   : {jp} ({replayed_runs} runs replayed)");
    }
    let (sweep, profile) = if profile_path.is_some() {
        let (sweep, profile) = lab.run_spec_profiled(&spec);
        (sweep, Some(profile))
    } else {
        (lab.run_spec(&spec), None)
    };
    let (feasible, infeasible) = sweep.feasibility();
    let _ = writeln!(
        out,
        "runs      : {} ok ({feasible} feasible, {infeasible} infeasible), {} failed",
        sweep.results.len() - sweep.failures(),
        sweep.failures()
    );
    for (key, res) in sweep.keys.iter().zip(&sweep.results) {
        if let Err(e) = res {
            let _ = writeln!(out, "  failed  : {}: {e}", key.label());
        }
    }
    // Counters live in the summary only — the CSV bytes stay a pure
    // function of the spec, independent of cache temperature.
    let s = sweep.stats;
    let _ = writeln!(
        out,
        "cache     : hits={} misses={} evictions={} hit_rate={:.1}% corrupt={} quarantined={}",
        s.hits,
        s.misses,
        s.evictions,
        s.hit_rate(),
        s.corrupt,
        s.quarantined,
    );
    if args.has("scaling") {
        lab_scaling_report(&sweep, out);
    }
    if let Some(p) = args.get("out").filter(|v| !v.is_empty()) {
        std::fs::write(p, sweep_csv(&sweep.keys, &sweep.results)).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote sweep CSV to {p}");
    }
    if let Some(p) = args.get("pareto").filter(|v| !v.is_empty()) {
        std::fs::write(p, pareto_csv(&sweep.keys, &sweep.results)).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote Pareto CSV to {p}");
    }
    if let (Some(path), Some(profile)) = (&profile_path, &profile) {
        let top = args.u64_or("top", 5)? as usize;
        let _ = write!(out, "{}", profile.render(top));
        std::fs::write(path, profile.to_json().to_string()).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "wrote self-profile JSON to {path}");
    }
    // Failures surface as a nonzero exit *after* every requested output
    // is written: completed work is never discarded, and the journal
    // holds the successes for a `--resume` retry.
    if sweep.failures() > 0 {
        let failed: Vec<String> = sweep
            .keys
            .iter()
            .zip(&sweep.results)
            .filter(|(_, r)| r.is_err())
            .map(|(k, _)| k.label())
            .collect();
        return Err(format!(
            "{} of {} runs failed: {}",
            failed.len(),
            sweep.results.len(),
            failed.join("; ")
        ));
    }
    Ok(())
}

/// `psse lab fsck`: offline verification of a persistent cache
/// directory — every record's checksum is re-checked and corrupt
/// records are moved (never deleted) into `quarantine/`.
fn lab_fsck(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&["cache", "dry-run"])?;
    let dir = args.req("cache")?;
    let dry_run = args.has("dry-run");
    let report = fsck_dir(std::path::Path::new(dir), dry_run)?;
    let verb = if dry_run {
        "would quarantine"
    } else {
        "quarantined"
    };
    let _ = writeln!(out, "cache     : {dir}");
    let _ = writeln!(
        out,
        "records   : {} scanned, {} ok, {} corrupt ({} {verb})",
        report.scanned, report.ok, report.corrupt, report.quarantined
    );
    let _ = writeln!(
        out,
        "quarantine: {} records held from earlier incidents",
        report.previously_quarantined
    );
    if report.corrupt > 0 {
        return Err(format!(
            "{} corrupt record(s) in {dir} ({verb})",
            report.corrupt
        ));
    }
    Ok(())
}

/// `psse lab gc`: size/age-bounded eviction over a persistent cache
/// directory, oldest records first.
fn lab_gc(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&["cache", "max-bytes", "max-age", "dry-run"])?;
    let dir = args.req("cache")?;
    let cfg = GcConfig {
        max_bytes: match args.get("max-bytes") {
            None => None,
            Some(_) => Some(args.req_u64("max-bytes")?),
        },
        max_age_secs: match args.get("max-age") {
            None => None,
            Some(_) => Some(args.req_u64("max-age")?),
        },
        dry_run: args.has("dry-run"),
    };
    let report = gc_dir(std::path::Path::new(dir), &cfg).map_err(|e| e.to_string())?;
    let verb = if cfg.dry_run {
        "would evict"
    } else {
        "evicted"
    };
    let _ = writeln!(out, "cache     : {dir}");
    let _ = writeln!(
        out,
        "records   : {} scanned, {} {verb}",
        report.scanned, report.evicted
    );
    let _ = writeln!(
        out,
        "bytes     : {} before, {} after",
        report.bytes_before, report.bytes_after
    );
    let _ = writeln!(
        out,
        "quarantine: {} records ({} bytes), never evicted",
        report.quarantined, report.quarantined_bytes
    );
    Ok(())
}

/// Per-(n, c, M) perfect-strong-scaling detection over the feasible
/// samples of a sweep (paper §III: T ∝ 1/p at constant E).
fn lab_scaling_report(sweep: &psse_lab::SweepResults, out: &mut String) {
    let mut groups: Vec<(u64, u64, u64)> = Vec::new();
    for key in &sweep.keys {
        let g = (key.n, key.c, key.mem.to_bits());
        if !groups.contains(&g) {
            groups.push(g);
        }
    }
    for (n, c, mem_bits) in groups {
        let mut samples: Vec<(u64, f64, f64)> = sweep
            .keys
            .iter()
            .zip(&sweep.results)
            .filter(|(k, _)| k.n == n && k.c == c && k.mem.to_bits() == mem_bits)
            .filter_map(|(k, r)| {
                let r = r.as_ref().ok()?;
                r.feasible.then_some((k.p, r.time, r.energy))
            })
            .collect();
        samples.sort_by_key(|&(p, _, _)| p);
        samples.dedup_by_key(|&mut (p, _, _)| p);
        let label = format!("n = {n}, M = {}", fmt(f64::from_bits(mem_bits)));
        match detect_scaling_range(&samples, 1e-9) {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "scaling   : {label}: perfect strong scaling for p ∈ [{}, {}]",
                    r.p_min, r.p_max
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "scaling   : {label}: no perfect-strong-scaling range detected"
                );
            }
        }
    }
}

/// `psse bound <action>`: derive a communication lower bound from a
/// loop-nest kernel file via the HBL linear program, then price it with
/// the paper's Eq. 1/2 machinery.
pub fn bound_cmd(action: &str, args: &Args, out: &mut String) -> CmdResult {
    match action {
        "solve" => bound_solve(args, out),
        "price" => bound_price(args, out),
        "range" => bound_range(args, out),
        "explain" => bound_explain(args, out),
        other => Err(format!(
            "unknown bound action `{other}` (solve|price|range|explain)"
        )),
    }
}

/// Read, parse and derive the `--kernel` file. Parse errors carry the
/// offending line number, prefixed with the path (`foo.kernel: line 3:
/// ...`) so editors can jump to it.
fn kernel_from(args: &Args) -> Result<(Kernel, KernelCost, Derived), String> {
    let path = args.req("kernel")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read --kernel {path}: {e}"))?;
    let kernel = Kernel::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let (cost, derived) = derive(&kernel).map_err(|e| format!("{path}: {e}"))?;
    Ok((kernel, cost, derived))
}

fn family_str(f: Family) -> &'static str {
    match f {
        Family::Matmul25 => "matmul (2.5D closed form)",
        Family::NBody => "n-body (replicated closed form)",
        Family::Pebbling => "fft (pebbling bound)",
        Family::Generic => "generic (Eq. 1/2 pricing)",
    }
}

fn bound_solve(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&["kernel"])?;
    let (kernel, cost, derived) = kernel_from(args)?;
    match derived {
        Derived::Pebbling => {
            let _ = writeln!(
                out,
                "kernel    : {} (bound = fft-pebbling escape hatch)",
                kernel.name
            );
            let _ = writeln!(out, "family    : {}", family_str(cost.family()));
            let _ = writeln!(
                out,
                "bound     : W = n·log2(p)/p per processor (hand-derived pebbling bound)"
            );
        }
        Derived::Hbl(a) => {
            let _ = writeln!(
                out,
                "kernel    : {} ({} loops over 0..n, {} array references)",
                kernel.name,
                kernel.depth(),
                kernel.refs.len()
            );
            let _ = writeln!(
                out,
                "sigma     : {} (= {:.4}, exact rational)",
                a.sigma,
                a.sigma.to_f64()
            );
            let exps: Vec<String> = kernel
                .refs
                .iter()
                .zip(&a.exponents)
                .map(|(r, s)| format!("s({}) = {s}", r.render(&kernel.indices)))
                .collect();
            let _ = writeln!(out, "exponents : {}", exps.join(", "));
            let _ = writeln!(out, "family    : {}", family_str(cost.family()));
            let _ = writeln!(
                out,
                "bound     : {}",
                a.bound_string(kernel.depth()).map_err(|e| e.to_string())?
            );
        }
    }
    Ok(())
}

fn bound_price(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&allowed(&[&MACHINE_KEYS, &["kernel", "n", "p"]]))?;
    let (_, cost, _) = kernel_from(args)?;
    let (mp, mname) = machine_from(args)?;
    let n = args.req_u64("n")?;
    if args.has("p") {
        // Explicit processor count: numeric argmin over M — the only
        // route for kernels outside the closed-form families, and a
        // cross-check for those inside them.
        let p = args.req_u64("p")?;
        let cfg = argmin_energy_memory(&cost, &mp, n, p).map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "kernel    : {} on `{mname}` (n = {n}, p = {p})",
            cost.kernel_name()
        );
        let _ = writeln!(out, "family    : {}", family_str(cost.family()));
        let _ = writeln!(out, "numeric argmin over M at p = {p}:");
        let _ = writeln!(out, "  M = {} words/processor", fmt(cfg.mem));
        let _ = writeln!(out, "  T = {} s   (Eq. 1)", fmt(cfg.time));
        let _ = writeln!(out, "  E = {} J   (Eq. 2)", fmt(cfg.energy));
        return Ok(());
    }
    let opt = cost.energy_optimum(&mp, n).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "kernel    : {} on `{mname}` (n = {n})",
        cost.kernel_name()
    );
    let _ = writeln!(out, "family    : {}", family_str(cost.family()));
    let _ = writeln!(
        out,
        "M0 = {} words/processor (energy-optimal, any p)",
        fmt(opt.m0)
    );
    let _ = writeln!(
        out,
        "E* = {} J, attainable for p in [{}, {}]",
        fmt(opt.e_star),
        fmt(opt.p_lo),
        fmt(opt.p_hi)
    );
    Ok(())
}

fn bound_range(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&["kernel", "n", "mem", "csv"])?;
    let (_, cost, _) = kernel_from(args)?;
    let n = args.req_u64("n")?;
    let mem = args.req_f64("mem")?;
    let range = psse_core::costs::Algorithm::strong_scaling_range(&cost, n, mem);
    if args.has("csv") {
        // One machine-readable row per invocation: full-precision
        // Display floats, `na` when no range exists. CI diffs these
        // against golden files, so the format is a compatibility
        // surface.
        let (p_min, p_max) = match &range {
            Some(r) => (r.p_min.to_string(), r.p_max.to_string()),
            None => ("na".into(), "na".into()),
        };
        let _ = writeln!(
            out,
            "{},{},{n},{mem},{p_min},{p_max}",
            cost.kernel_name(),
            cost.sigma
        );
        return Ok(());
    }
    let _ = writeln!(
        out,
        "kernel    : {} (sigma = {})",
        cost.kernel_name(),
        cost.sigma
    );
    let _ = writeln!(out, "n = {n}, M = {} words/processor (fixed)", fmt(mem));
    match range {
        Some(r) => {
            let _ = writeln!(out, "p_min = {}  (one copy of the data)", fmt(r.p_min));
            let _ = writeln!(out, "p_max = {}  (replication saturates)", fmt(r.p_max));
            let _ = writeln!(
                out,
                "headroom = {}x: scale processors by that factor for the same\n\
                 energy and proportionally less time.",
                fmt(r.headroom())
            );
        }
        None => {
            let _ = writeln!(
                out,
                "{}: no perfect strong scaling range exists (see paper §IV).",
                cost.kernel_name()
            );
        }
    }
    Ok(())
}

fn bound_explain(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&["kernel"])?;
    let (kernel, cost, derived) = kernel_from(args)?;
    let a = match derived {
        Derived::Pebbling => {
            let _ = writeln!(
                out,
                "kernel    : {} (bound = fft-pebbling escape hatch)",
                kernel.name
            );
            let _ = writeln!(
                out,
                "FFT butterflies index bit positions, not affine forms, so the\n\
                 HBL linear program does not apply; the kernel delegates to the\n\
                 hand-derived pebbling bound W = n·log2(p)/p with M = n/p."
            );
            return Ok(());
        }
        Derived::Hbl(a) => a,
    };
    let _ = writeln!(out, "kernel    : {}", kernel.name);
    let _ = writeln!(out, "references:");
    for (j, r) in kernel.refs.iter().enumerate() {
        let _ = writeln!(out, "  s{} = {}", j + 1, r.render(&kernel.indices));
    }
    let terms: Vec<String> = (1..=kernel.refs.len()).map(|j| format!("s{j}")).collect();
    let _ = writeln!(out, "linear program: minimize {}", terms.join(" + "));
    let _ = writeln!(
        out,
        "subject to 0 ≤ s_j ≤ 1 and, for every subgroup H in the lattice\n\
         generated by the subscript kernels ({} subspaces enumerated),\n\
         rank(H) ≤ Σ_j s_j·rank(φ_j(H)):",
        a.subspaces_enumerated
    );
    let width = a
        .constraints
        .iter()
        .map(|c| c.label.chars().count())
        .max()
        .unwrap_or(0);
    for (i, c) in a.constraints.iter().enumerate() {
        let lhs: Vec<String> = c
            .coeffs
            .iter()
            .enumerate()
            .map(|(j, k)| format!("{k}·s{}", j + 1))
            .collect();
        let pad = " ".repeat(width - c.label.chars().count());
        let _ = writeln!(
            out,
            "  {}{pad} : {} ≤ {}   [dual y = {}]",
            c.label,
            c.rhs,
            lhs.join(" + "),
            a.duals[i]
        );
    }
    let box_duals: Vec<String> = a.duals[a.constraints.len()..]
        .iter()
        .map(|d| d.to_string())
        .collect();
    let _ = writeln!(
        out,
        "box rows s_j ≤ 1: duals y_box = [{}]",
        box_duals.join(", ")
    );
    let _ = writeln!(
        out,
        "certificate: Σ y·rank(H) − Σ y_box = {} = σ (exact strong duality)",
        a.sigma
    );
    let sols: Vec<String> = a.exponents.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(
        out,
        "optimum    : σ_HBL = {}, s = [{}]",
        a.sigma,
        sols.join(", ")
    );
    let _ = writeln!(
        out,
        "bound      : {}",
        a.bound_string(kernel.depth()).map_err(|e| e.to_string())?
    );
    let _ = writeln!(out, "family     : {}", family_str(cost.family()));
    Ok(())
}

fn lab_expand(args: &Args, out: &mut String) -> CmdResult {
    args.expect_keys(&["spec"])?;
    let (spec, path) = lab_spec_from(args)?;
    let keys = spec.expand();
    let _ = writeln!(out, "spec      : {path} expands to {} runs", keys.len());
    for key in &keys {
        let _ = writeln!(out, "{}  {}", key.digest(), key.label());
    }
    Ok(())
}
