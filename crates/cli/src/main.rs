//! The `psse` binary: thin wrapper around [`psse_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match psse_cli::run(&argv, &mut out) {
        Ok(()) => print!("{out}"),
        Err(e) => {
            print!("{out}");
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
