//! The event backend's fidelity contract: byte-identical output to the
//! thread-per-rank machine, including traces and fault counters, and
//! byte-identical serial vs work-stealing execution.

use psse_event::prelude::*;
use psse_faults::{CheckpointPolicy, CrashEvent, FaultPlan, FaultSpec, RecoveryPolicy};
use psse_sim::machine::Hierarchy;
use psse_sim::{Machine, SimError};

fn cfg(backend: Backend) -> SimConfig {
    SimConfig {
        gamma_t: 1e-9,
        beta_t: 1e-6,
        alpha_t: 1e-3,
        max_message_words: 37, // force multi-chunk transfers
        record_trace: true,
        backend,
        ..SimConfig::default()
    }
}

fn busy_plan() -> FaultPlan {
    FaultPlan {
        spec: FaultSpec {
            seed: 42,
            drop_rate: 0.2,
            corrupt_rate: 0.1,
            duplicate_rate: 0.1,
            delay_rate: 0.1,
            delay_seconds: 2e-3,
            crashes: vec![CrashEvent { rank: 1, at: 0.004 }],
        },
        recovery: RecoveryPolicy {
            max_retries: 10,
            retry_backoff: 1e-4,
            checkpoint: Some(CheckpointPolicy {
                interval: 0.05,
                words: 256,
                restart_seconds: 0.01,
            }),
        },
    }
}

/// The anchor test: the resumable [`BinomialAllreduce`] program driven
/// through the *thread* backend must be bit-identical — profile, trace,
/// per-rank results — to the native `Rank::allreduce_sum` collective.
/// If this holds, the program is a faithful transliteration, and the
/// cross-backend tests below then pin the event executor to it.
#[test]
fn binomial_program_matches_native_collective_on_threads() {
    for p in [1, 2, 3, 5, 8, 13, 16] {
        let data: Vec<f64> = (0..96).map(|i| i as f64 * 0.5).collect();
        let native = {
            let d = data.clone();
            Machine::run(p, cfg(Backend::Threads), move |rank| {
                rank.allreduce_sum(Tag(9), d.clone())
            })
            .unwrap()
        };
        let program = run_programs(
            p,
            &cfg(Backend::Threads),
            BinomialAllreduce::with_data(Tag(9), data.clone()),
        )
        .unwrap();
        assert_eq!(native.profile, program.profile, "p={p}");
        for (r, prog) in program.programs.iter().enumerate() {
            assert_eq!(
                native.results[r],
                prog.result().unwrap().to_vec(),
                "p={p} rank {r}"
            );
        }
    }
}

/// Thread and event backends produce byte-identical profiles (traces
/// on, multi-chunk transfers) for every built-in allreduce program.
#[test]
fn backends_bit_identical_clean_runs() {
    let data: Vec<f64> = (0..80).map(|i| (i as f64).sin()).collect();
    for p in [1, 2, 6, 16, 24] {
        let a = run_programs(
            p,
            &cfg(Backend::Threads),
            BinomialAllreduce::with_data(Tag(0), data.clone()),
        )
        .unwrap();
        let b = run_programs(
            p,
            &cfg(Backend::Events),
            BinomialAllreduce::with_data(Tag(0), data.clone()),
        )
        .unwrap();
        assert_eq!(a.profile, b.profile, "binomial p={p}");
        for (x, y) in a.programs.iter().zip(&b.programs) {
            assert_eq!(x.result().unwrap(), y.result().unwrap(), "binomial p={p}");
        }

        let a = run_programs(
            p,
            &cfg(Backend::Threads),
            RingAllreduce::with_data(Tag(0), data.clone()),
        )
        .unwrap();
        let b = run_programs(
            p,
            &cfg(Backend::Events),
            RingAllreduce::with_data(Tag(0), data.clone()),
        )
        .unwrap();
        assert_eq!(a.profile, b.profile, "ring p={p}");
    }
    for p in [2, 8, 32] {
        let a = run_programs(
            p,
            &cfg(Backend::Threads),
            RecursiveDoublingAllreduce::with_data(Tag(0), data.clone()),
        )
        .unwrap();
        let b = run_programs(
            p,
            &cfg(Backend::Events),
            RecursiveDoublingAllreduce::with_data(Tag(0), data.clone()),
        )
        .unwrap();
        assert_eq!(a.profile, b.profile, "rd p={p}");
    }
}

/// Fault injection — drops with retries, corruption, duplicates,
/// delays, a crash absorbed by checkpoint/restart — prices identically
/// on both backends, down to the trace and the resilience counters.
#[test]
fn backends_bit_identical_under_faults() {
    let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
    for p in [2, 5, 12] {
        let faulted = |backend| SimConfig {
            faults: Some(busy_plan()),
            ..cfg(backend)
        };
        let a = run_programs(
            p,
            &faulted(Backend::Threads),
            BinomialAllreduce::with_data(Tag(3), data.clone()),
        )
        .unwrap();
        let b = run_programs(
            p,
            &faulted(Backend::Events),
            BinomialAllreduce::with_data(Tag(3), data.clone()),
        )
        .unwrap();
        assert_eq!(a.profile, b.profile, "p={p}");
        if p >= 12 {
            assert!(a.profile.total_retries() > 0, "plan must actually fire");
        }
    }
}

/// Hierarchical (intra/inter-node) pricing is mirrored too.
#[test]
fn backends_bit_identical_with_hierarchy() {
    let mk = |backend| SimConfig {
        hierarchy: Some(Hierarchy {
            cores_per_node: 4,
            intra_alpha_t: 1e-5,
            intra_beta_t: 1e-8,
        }),
        ..cfg(backend)
    };
    let data: Vec<f64> = vec![1.0; 50];
    let a = run_programs(
        12,
        &mk(Backend::Threads),
        RingAllreduce::with_data(Tag(0), data.clone()),
    )
    .unwrap();
    let b = run_programs(
        12,
        &mk(Backend::Events),
        RingAllreduce::with_data(Tag(0), data.clone()),
    )
    .unwrap();
    assert_eq!(a.profile, b.profile);
    assert!(a.profile.total_words_intra() > 0);
}

/// The counted 2.5D matmul skeleton matches across backends (the
/// thread backend materializes zero-filled payloads of the same
/// lengths, so all pricing is equal).
#[test]
fn backends_bit_identical_matmul_skeleton() {
    let mk = |backend| SimConfig {
        max_message_words: 1 << 16,
        ..cfg(backend)
    };
    let (q, c, b) = (4, 2, 5);
    let a = run_programs(
        q * q * c,
        &mk(Backend::Threads),
        Matmul25D::counted(q, c, b),
    )
    .unwrap();
    let ev = run_programs(q * q * c, &mk(Backend::Events), Matmul25D::counted(q, c, b)).unwrap();
    assert_eq!(a.profile, ev.profile);
    let t = Matmul25D::expected_totals(q as u64, c as u64, b);
    assert_eq!(ev.profile.total_msgs_sent(), t.msgs);
    assert_eq!(ev.profile.total_words_sent(), t.words);
    assert_eq!(ev.profile.total_flops(), t.flops);
}

/// The work-stealing executor must not change one observable byte
/// relative to the serial scheduler.
#[test]
fn parallel_executor_is_byte_identical_to_serial() {
    let data: Vec<f64> = (0..70).map(|i| (i as f64).cos()).collect();
    for p in [1, 7, 24] {
        let c = SimConfig {
            faults: Some(busy_plan()),
            ..cfg(Backend::Events)
        };
        let serial =
            EventMachine::run(p, &c, BinomialAllreduce::with_data(Tag(1), data.clone())).unwrap();
        for workers in [2, 4, 9] {
            let par = EventMachine::run_parallel(
                p,
                &c,
                BinomialAllreduce::with_data(Tag(1), data.clone()),
                workers,
            )
            .unwrap();
            assert_eq!(serial.profile, par.profile, "p={p} workers={workers}");
            for (x, y) in serial.programs.iter().zip(&par.programs) {
                assert_eq!(x.result().unwrap(), y.result().unwrap());
            }
        }
    }
}

/// A program that receives a message nobody sends is reported as a
/// proven deadlock with the full blocked set — no timeout, no sleep.
#[test]
fn deadlock_is_proven_with_blocked_set() {
    struct RecvForever;
    impl RankProgram for RecvForever {
        fn next(&mut self, _d: Option<Delivered>) -> Step {
            Step::Recv {
                src: 0,
                tag: Tag(77),
            }
        }
    }
    let t0 = std::time::Instant::now();
    let err = EventMachine::run(3, &cfg(Backend::Events), |_r, _p| RecvForever).unwrap_err();
    match err {
        SimError::Deadlock { rank, blocked } => {
            assert_eq!(rank, 0);
            assert_eq!(blocked, vec![0, 1, 2]);
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
    assert!(t0.elapsed().as_secs() < 2, "deadlock proof must not sleep");
}

/// A partial deadlock — some ranks finish, the rest wait on each other
/// — still reports exactly the blocked ranks.
#[test]
fn partial_deadlock_reports_only_blocked_ranks() {
    struct Half {
        me: usize,
        st: u8,
    }
    impl RankProgram for Half {
        fn next(&mut self, _d: Option<Delivered>) -> Step {
            // Even ranks finish immediately; odd ranks wait for a
            // message their (even) left neighbour never sends.
            if self.me.is_multiple_of(2) {
                return Step::Done;
            }
            match self.st {
                0 => {
                    self.st = 1;
                    Step::Recv {
                        src: self.me - 1,
                        tag: Tag(5),
                    }
                }
                _ => Step::Done,
            }
        }
    }
    let err = EventMachine::run(4, &cfg(Backend::Events), |me, _p| Half { me, st: 0 }).unwrap_err();
    match err {
        SimError::Deadlock { rank, blocked } => {
            assert_eq!(rank, 1);
            assert_eq!(blocked, vec![1, 3]);
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

/// Self-sends are free and immediately receivable on the event backend,
/// exactly like the thread backend.
#[test]
fn self_send_is_free_and_receivable() {
    struct SelfSend {
        st: u8,
    }
    impl RankProgram for SelfSend {
        fn next(&mut self, d: Option<Delivered>) -> Step {
            self.st += 1;
            match self.st {
                1 => Step::Send {
                    dest: 0,
                    tag: Tag(5),
                    payload: Payload::Data(std::sync::Arc::new(vec![42.0])),
                },
                2 => Step::Recv {
                    src: 0,
                    tag: Tag(5),
                },
                _ => {
                    let d = d.expect("delivery");
                    assert_eq!(d.values(), &[42.0]);
                    Step::Done
                }
            }
        }
    }
    let out = EventMachine::run(1, &cfg(Backend::Events), |_m, _p| SelfSend { st: 0 }).unwrap();
    assert_eq!(out.profile.per_rank[0].msgs_sent, 0);
    assert_eq!(out.profile.per_rank[0].words_sent, 0);
    assert_eq!(out.profile.makespan, 0.0);
}

/// Errors surface like the thread backend's triage: the lowest-ranked
/// real failure wins.
#[test]
fn lowest_ranked_error_wins() {
    struct BadPeer {
        me: usize,
        st: u8,
    }
    impl RankProgram for BadPeer {
        fn next(&mut self, _d: Option<Delivered>) -> Step {
            if self.st == 0 {
                self.st = 1;
                if self.me <= 1 {
                    // Ranks 0 and 1 both address an out-of-range peer.
                    return Step::Send {
                        dest: 99,
                        tag: Tag(0),
                        payload: Payload::Counted(4),
                    };
                }
            }
            Step::Done
        }
    }
    let err =
        EventMachine::run(3, &cfg(Backend::Events), |me, _p| BadPeer { me, st: 0 }).unwrap_err();
    assert!(
        matches!(err, SimError::RankOutOfRange { rank: 99, size: 3 }),
        "{err:?}"
    );
}

/// Sample sort — data mode with real keys, data-dependent bucket sizes
/// — is byte-identical across backends, and the counted skeleton
/// matches its closed form.
#[test]
fn backends_bit_identical_samplesort() {
    let keys: Vec<f64> = (0..240).map(|i| ((i * 37) % 240) as f64 - 120.0).collect();
    for p in [1usize, 4, 8] {
        let a = run_programs(
            p,
            &cfg(Backend::Threads),
            SampleSort::with_data(keys.clone()),
        )
        .unwrap();
        let b = run_programs(
            p,
            &cfg(Backend::Events),
            SampleSort::with_data(keys.clone()),
        )
        .unwrap();
        assert_eq!(a.profile, b.profile, "samplesort p={p}");
        let mut sorted = Vec::new();
        for (x, y) in a.programs.iter().zip(&b.programs) {
            assert_eq!(x.result().unwrap(), y.result().unwrap(), "p={p}");
            sorted.extend_from_slice(x.result().unwrap());
        }
        let mut expect = keys.clone();
        expect.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(sorted, expect, "p={p}: concatenated buckets are sorted");
    }
    let skel = run_programs(8, &cfg(Backend::Events), SampleSort::counted(64)).unwrap();
    let t = SampleSort::expected_totals(8, 64, 37);
    assert_eq!(skel.profile.total_msgs_sent(), t.msgs);
    assert_eq!(skel.profile.total_words_sent(), t.words);
    assert_eq!(skel.profile.total_flops(), t.flops);
}

/// The halo stencil — data mode — is byte-identical across backends
/// and under faults, and matches the closed form exactly.
#[test]
fn backends_bit_identical_stencil() {
    let n = 16usize;
    let grid: Vec<f64> = (0..n * n).map(|i| (i as f64).sin()).collect();
    for p in [1usize, 2, 4, 8] {
        let mk = || Stencil1D::with_data(grid.clone(), n, 1, 3);
        let a = run_programs(p, &cfg(Backend::Threads), mk()).unwrap();
        let b = run_programs(p, &cfg(Backend::Events), mk()).unwrap();
        assert_eq!(a.profile, b.profile, "stencil p={p}");
        for (x, y) in a.programs.iter().zip(&b.programs) {
            assert_eq!(x.result().unwrap(), y.result().unwrap(), "p={p}");
        }
        let t = Stencil1D::expected_totals(p as u64, n as u64, 1, 3, 37);
        assert_eq!(a.profile.total_words_sent(), t.words, "p={p}");
        assert_eq!(a.profile.total_flops(), t.flops, "p={p}");
    }
}

/// Both new workloads under the full fault plan (drops, corruption,
/// duplicates, delays, crash + checkpoint/restart): thread and event
/// backends price identically, and the recovered numerics equal the
/// fault-free run bit-for-bit.
#[test]
fn new_workloads_bit_identical_under_faults() {
    let keys: Vec<f64> = (0..120).map(|i| ((i * 53) % 120) as f64).collect();
    let n = 12usize;
    let grid: Vec<f64> = (0..n * n).map(|i| (i as f64).cos()).collect();
    let faulted = |backend| SimConfig {
        faults: Some(busy_plan()),
        ..cfg(backend)
    };
    for p in [4usize, 6] {
        let a = run_programs(
            p,
            &faulted(Backend::Threads),
            SampleSort::with_data(keys.clone()),
        )
        .unwrap();
        let b = run_programs(
            p,
            &faulted(Backend::Events),
            SampleSort::with_data(keys.clone()),
        )
        .unwrap();
        let clean = run_programs(
            p,
            &cfg(Backend::Threads),
            SampleSort::with_data(keys.clone()),
        )
        .unwrap();
        assert_eq!(a.profile, b.profile, "samplesort faulted p={p}");
        for ((x, y), z) in a.programs.iter().zip(&b.programs).zip(&clean.programs) {
            assert_eq!(x.result().unwrap(), y.result().unwrap());
            assert_eq!(
                x.result().unwrap(),
                z.result().unwrap(),
                "faults change bits"
            );
        }

        let mk = || Stencil1D::with_data(grid.clone(), n, 1, 2);
        let a = run_programs(p, &faulted(Backend::Threads), mk()).unwrap();
        let b = run_programs(p, &faulted(Backend::Events), mk()).unwrap();
        let clean = run_programs(p, &cfg(Backend::Threads), mk()).unwrap();
        assert_eq!(a.profile, b.profile, "stencil faulted p={p}");
        for ((x, y), z) in a.programs.iter().zip(&b.programs).zip(&clean.programs) {
            assert_eq!(x.result().unwrap(), y.result().unwrap());
            assert_eq!(
                x.result().unwrap(),
                z.result().unwrap(),
                "faults change bits"
            );
        }
    }
}
