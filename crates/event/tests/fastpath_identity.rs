//! Differential enforcement of the analytic fast path: for every
//! machine and chunking, [`EventMachine::run`] (fast path eligible) and
//! [`EventMachine::run_general`] (fast path forced off) must produce
//! **byte-identical** profiles — same counters, same `f64` bits in
//! every clock. The fast path's claim is not "close", it is "the same
//! arithmetic in the same order"; these tests hold it to that.
//!
//! Engagement itself (that `run` really does take the fast path on the
//! headline workload) is pinned by unit tests inside `fastpath.rs`;
//! here a fixed `p = 10^5` fixture additionally pins the makespan to
//! exact bits so any silent arithmetic change — in either path — fails
//! loudly.

use proptest::prelude::*;
use psse_event::prelude::*;

/// Bit-exact profile comparison: `PartialEq` on `Profile` covers every
/// counter, but compares clocks with `f64 ==`; chase it with `to_bits`
/// so the assertion really is byte identity.
fn assert_profiles_identical(fast: &psse_sim::Profile, general: &psse_sim::Profile) {
    assert_eq!(fast, general);
    assert_eq!(fast.makespan.to_bits(), general.makespan.to_bits());
    for (a, b) in fast.per_rank.iter().zip(&general.per_rank) {
        assert_eq!(a.finish_time.to_bits(), b.finish_time.to_bits());
    }
}

/// Machines spanning the pricing space: zero prices (the degenerate
/// counters-only calendar), defaults, and adversarially lopsided
/// latency/bandwidth ratios; `m` down to 1 exercises heavy chunking.
fn arb_cfg() -> impl Strategy<Value = SimConfig> {
    (
        prop::sample::select(vec![0.0f64, 1e-9, 3.5e-8]),
        prop::sample::select(vec![0.0f64, 1e-8, 7e-7]),
        prop::sample::select(vec![0.0f64, 1e-6, 1e-3]),
        1usize..129,
    )
        .prop_map(|(gamma_t, beta_t, alpha_t, max_message_words)| SimConfig {
            backend: Backend::Events,
            gamma_t,
            beta_t,
            alpha_t,
            max_message_words,
            ..SimConfig::default()
        })
}

proptest! {
    #[test]
    fn binomial_fast_path_is_byte_identical(
        cfg in arb_cfg(),
        p in 1usize..161,
        words in 0usize..301,
    ) {
        let fast = EventMachine::run(p, &cfg, BinomialAllreduce::counted(Tag(3), words)).unwrap();
        let general =
            EventMachine::run_general(p, &cfg, BinomialAllreduce::counted(Tag(3), words)).unwrap();
        assert_profiles_identical(&fast.profile, &general.profile);
    }

    #[test]
    fn recursive_doubling_fast_path_is_byte_identical(
        cfg in arb_cfg(),
        logp in 0u32..8,
        words in 0usize..301,
    ) {
        let p = 1usize << logp;
        let fast =
            EventMachine::run(p, &cfg, RecursiveDoublingAllreduce::counted(Tag(5), words)).unwrap();
        let general =
            EventMachine::run_general(p, &cfg, RecursiveDoublingAllreduce::counted(Tag(5), words))
                .unwrap();
        assert_profiles_identical(&fast.profile, &general.profile);
    }

    #[test]
    fn ring_fast_path_is_byte_identical(
        cfg in arb_cfg(),
        p in 1usize..49,
        words in 0usize..301,
    ) {
        let fast = EventMachine::run(p, &cfg, RingAllreduce::counted(Tag(9), words)).unwrap();
        let general =
            EventMachine::run_general(p, &cfg, RingAllreduce::counted(Tag(9), words)).unwrap();
        assert_profiles_identical(&fast.profile, &general.profile);
    }
}

/// The parallel executor must dispatch to the same fast path (and the
/// general parallel executor must still agree) — one fixed spot check.
#[test]
fn parallel_entry_point_agrees() {
    let cfg = SimConfig {
        backend: Backend::Events,
        max_message_words: 37,
        ..SimConfig::default()
    };
    let fast =
        EventMachine::run_parallel(96, &cfg, BinomialAllreduce::counted(Tag(0), 100), 4).unwrap();
    let general =
        EventMachine::run_general(96, &cfg, BinomialAllreduce::counted(Tag(0), 100)).unwrap();
    assert_profiles_identical(&fast.profile, &general.profile);
}

/// The pinned `p = 10^5` fixture: exact totals, fast ≡ general, and the
/// makespan's exact bit pattern. The pinned bits guard *both* paths
/// against silent arithmetic drift (a change to either shows up as a
/// mismatch here before it shows up anywhere else).
#[test]
fn pinned_fixture_p100k() {
    const P: usize = 100_000;
    const WORDS: usize = 8;
    // Default machine: α = 1e-6, β = 1e-8, γ = 1e-9, m = 2^16.
    let cfg = SimConfig {
        backend: Backend::Events,
        ..SimConfig::default()
    };
    let fast = EventMachine::run(P, &cfg, BinomialAllreduce::counted(Tag(0), WORDS)).unwrap();
    let t = BinomialAllreduce::expected_totals(P as u64, WORDS as u64, 1 << 16);
    assert_eq!(fast.profile.total_msgs_sent(), t.msgs);
    assert_eq!(fast.profile.total_words_sent(), t.words);
    assert_eq!(fast.profile.total_flops(), t.flops);
    assert_eq!(
        fast.profile.makespan.to_bits(),
        PINNED_MAKESPAN_BITS,
        "makespan drifted: got {:e} (bits {:#018x})",
        fast.profile.makespan,
        fast.profile.makespan.to_bits()
    );
    let general =
        EventMachine::run_general(P, &cfg, BinomialAllreduce::counted(Tag(0), WORDS)).unwrap();
    assert_profiles_identical(&fast.profile, &general.profile);
}

/// `f64::to_bits` of the fixture's makespan (3.5776…e-5 s), captured
/// from the general (scheduled) executor.
const PINNED_MAKESPAN_BITS: u64 = 0x3f02_c1c5_fff6_674a;
