//! Mega-scale smoke tests: real algorithms at `p = 10^5`–`10^6` ranks
//! in one process, with every Eq. 1 count verified **exactly** against
//! the closed form.
//!
//! The non-`#[ignore]` tests are sized for ordinary CI (`p = 10^5`
//! allreduce, `p = 2^14` recursive doubling — a couple of hundred
//! thousand priced transfers each). The `#[ignore]` tests push to
//! `p = 2^17` and the `p = 10^6` 2.5D matmul skeleton (~19 M priced
//! transfers); the CI `mega-scale` job runs them in release mode.

use psse_event::prelude::*;

fn counted_cfg() -> SimConfig {
    SimConfig {
        backend: Backend::Events,
        max_message_words: 1 << 16,
        ..SimConfig::default()
    }
}

fn check_allreduce_totals(out: &EventOutcome<BinomialAllreduce>, p: u64, n: u64, m: u64) {
    let t = BinomialAllreduce::expected_totals(p, n, m);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs, "S mismatch");
    assert_eq!(out.profile.total_words_sent(), t.words, "W mismatch");
    assert_eq!(out.profile.total_flops(), t.flops, "F mismatch");
    let (sent, recvd) = out.profile.words_balance();
    assert_eq!(sent, recvd, "every word sent must be received");
    assert!(out.profile.makespan > 0.0);
    // The reduce+broadcast critical path crosses at least ⌈log₂p⌉
    // sequential links each way.
    let depth = (64 - (p - 1).leading_zeros()) as f64;
    let link = 1e-6 + 1e-8 * n as f64; // default alpha_t, beta_t
    assert!(
        out.profile.makespan >= depth * link,
        "makespan {} below tree-depth lower bound {}",
        out.profile.makespan,
        depth * link
    );
}

/// A real binomial allreduce over one hundred thousand ranks,
/// in-process, counted payloads — exact S/W/F against the closed form.
#[test]
fn allreduce_100k_ranks_counts_exact() {
    let (p, n) = (100_000u64, 8u64);
    let out = run_programs(
        p as usize,
        &counted_cfg(),
        BinomialAllreduce::counted(Tag(0), n as usize),
    )
    .unwrap();
    check_allreduce_totals(&out, p, n, 1 << 16);
}

/// Recursive doubling at `p = 2^14`: every rank sends in all 14 rounds.
#[test]
fn recursive_doubling_16k_ranks_counts_exact() {
    let (p, n) = (1u64 << 14, 16u64);
    let out = run_programs(
        p as usize,
        &counted_cfg(),
        RecursiveDoublingAllreduce::counted(Tag(0), n as usize),
    )
    .unwrap();
    let t = RecursiveDoublingAllreduce::expected_totals(p, n, 1 << 16);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs);
    assert_eq!(out.profile.total_words_sent(), t.words);
    assert_eq!(out.profile.total_flops(), t.flops);
    // Latency-optimal: every rank finishes after exactly log₂p rounds,
    // so per-rank sent messages are uniform.
    assert!(out
        .profile
        .per_rank
        .iter()
        .all(|r| r.msgs_sent == p.trailing_zeros() as u64));
}

/// Chunked mega-run: transfers longer than `m` split into `⌈n/m⌉`
/// messages, still exactly as the closed form predicts.
#[test]
fn allreduce_chunked_counts_exact() {
    let (p, n, m) = (10_000u64, 1000u64, 64u64);
    let cfg = SimConfig {
        max_message_words: m as usize,
        ..counted_cfg()
    };
    let out = run_programs(
        p as usize,
        &cfg,
        BinomialAllreduce::counted(Tag(0), n as usize),
    )
    .unwrap();
    check_allreduce_totals(&out, p, n, m);
}

/// `p = 2^17` recursive doubling (~2.3 M priced transfers). Run by the
/// CI mega-scale job in release mode: `cargo test -p psse-event
/// --release -- --ignored`.
#[test]
#[ignore = "mega-scale: run in release (CI mega-scale job)"]
fn recursive_doubling_131k_ranks_counts_exact() {
    let (p, n) = (1u64 << 17, 8u64);
    let out = run_programs(
        p as usize,
        &counted_cfg(),
        RecursiveDoublingAllreduce::counted(Tag(0), n as usize),
    )
    .unwrap();
    let t = RecursiveDoublingAllreduce::expected_totals(p, n, 1 << 16);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs);
    assert_eq!(out.profile.total_words_sent(), t.words);
    assert_eq!(out.profile.total_flops(), t.flops);
}

/// The priced 2.5D matmul skeleton at `p = 10^5` (`q = 100, c = 10`,
/// ~2.3 M transfers).
#[test]
#[ignore = "mega-scale: run in release (CI mega-scale job)"]
fn matmul_25d_100k_ranks_counts_exact() {
    let (q, c, b) = (100usize, 10usize, 8u64);
    let out = run_programs(q * q * c, &counted_cfg(), Matmul25D::counted(q, c, b)).unwrap();
    let t = Matmul25D::expected_totals(q as u64, c as u64, b);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs);
    assert_eq!(out.profile.total_words_sent(), t.words);
    assert_eq!(out.profile.total_flops(), t.flops);
    let (sent, recvd) = out.profile.words_balance();
    assert_eq!(sent, recvd);
}

/// The headline scale: one million ranks (`q = 200, c = 25`, ~19 M
/// priced transfers), exact to the word.
#[test]
#[ignore = "mega-scale: run in release (CI mega-scale job)"]
fn matmul_25d_1m_ranks_counts_exact() {
    let (q, c, b) = (200usize, 25usize, 8u64);
    let out = run_programs(q * q * c, &counted_cfg(), Matmul25D::counted(q, c, b)).unwrap();
    let t = Matmul25D::expected_totals(q as u64, c as u64, b);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs);
    assert_eq!(out.profile.total_words_sent(), t.words);
    assert_eq!(out.profile.total_flops(), t.flops);
}

/// The stencil at `p = 10^5` slabs (`n = 10^5`, 2 sweeps — ~400 k halo
/// transfers): exact surface words and volume flops.
#[test]
fn stencil_100k_ranks_counts_exact() {
    let (p, n, h, iters) = (100_000usize, 100_000usize, 1usize, 2usize);
    let out = run_programs(p, &counted_cfg(), Stencil1D::counted(n, h, iters)).unwrap();
    let t = Stencil1D::expected_totals(p as u64, n as u64, h as u64, iters as u64, 1 << 16);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs);
    assert_eq!(out.profile.total_words_sent(), t.words);
    assert_eq!(out.profile.total_flops(), t.flops);
    let (sent, recvd) = out.profile.words_balance();
    assert_eq!(sent, recvd);
}

/// Sample sort at `p = 2^10` (the all-to-all is quadratic in p — ~2 M
/// priced transfers): exact against the uniform-bucket closed form, and
/// the S = Θ(p) scaling-breaker is visible in the per-rank counters.
#[test]
#[ignore = "mega-scale: run in release (CI mega-scale job)"]
fn samplesort_1k_ranks_counts_exact() {
    let (p, bs) = (1usize << 10, 1usize << 12);
    let out = run_programs(p, &counted_cfg(), SampleSort::counted(bs)).unwrap();
    let t = SampleSort::expected_totals(p as u64, bs as u64, 1 << 16);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs);
    assert_eq!(out.profile.total_words_sent(), t.words);
    assert_eq!(out.profile.total_flops(), t.flops);
    // Every rank pays 2(p−1) messages: latency grows linearly with p.
    assert!(out
        .profile
        .per_rank
        .iter()
        .all(|r| r.msgs_sent == 2 * (p as u64 - 1)));
}

/// The stencil at `p = 10^6` slabs — perfect-scaling workload at the
/// paper's headline rank count (~8 M halo transfers).
#[test]
#[ignore = "mega-scale: run in release (CI mega-scale job)"]
fn stencil_1m_ranks_counts_exact() {
    let (p, n, h, iters) = (1_000_000usize, 1_000_000usize, 1usize, 2usize);
    let out = run_programs(p, &counted_cfg(), Stencil1D::counted(n, h, iters)).unwrap();
    let t = Stencil1D::expected_totals(p as u64, n as u64, h as u64, iters as u64, 1 << 16);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs);
    assert_eq!(out.profile.total_words_sent(), t.words);
    assert_eq!(out.profile.total_flops(), t.flops);
}
