//! Backend dispatch: run the same rank programs on the thread-per-rank
//! machine (the bit-identity oracle) or the discrete-event executor.

use crate::exec::{EventMachine, EventOutcome, ExecStats};
use crate::program::RankProgram;
use crate::step::{Delivered, Step};
use psse_sim::error::SimResult;
use psse_sim::{Backend, Machine, SimConfig};

/// Environment variable selecting the event backend's worker count:
/// `1` (or unset) runs the serial virtual-time scheduler, `> 1` the
/// round-based work-stealing executor. Output is byte-identical either
/// way; the knob only trades wall-clock for cores.
pub const EVENT_WORKERS_ENV: &str = "PSSE_EVENT_WORKERS";

fn event_workers() -> usize {
    std::env::var(EVENT_WORKERS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(1)
}

/// Run one program per rank on the backend selected by
/// [`SimConfig::backend`]:
///
/// * [`Backend::Threads`] — each program's steps are replayed through a
///   `psse_sim::Rank` on its own pooled OS thread. Every step maps to
///   the exact `Rank` call the closure API would make (`Compute` →
///   `compute`, `Send` → `send_shared`, `Recv` → `recv_shared`,
///   markers → `mark_collective_begin`/`end`), so this is the oracle
///   the event backend is checked against.
/// * [`Backend::Events`] — [`EventMachine`] prices the same steps in
///   one process, scheduled by virtual time; byte-identical profiles,
///   traces, and fault counters, feasible to `p = 10^6`.
///
/// `make(rank, p)` constructs rank `rank`'s program.
pub fn run_programs<P, F>(p: usize, cfg: &SimConfig, make: F) -> SimResult<EventOutcome<P>>
where
    P: RankProgram + Send,
    F: Fn(usize, usize) -> P + Sync,
{
    match cfg.backend {
        Backend::Threads => {
            let outcome = Machine::run(p, cfg.clone(), |rank| {
                let mut prog = make(rank.rank(), rank.size());
                let mut delivered: Option<Delivered> = None;
                loop {
                    match prog.next(delivered.take()) {
                        Step::Compute { flops } => rank.compute(flops),
                        Step::Send { dest, tag, payload } => {
                            rank.send_shared(dest, tag, payload.into_shared())?;
                        }
                        Step::Recv { src, tag } => {
                            let data = rank.recv_shared(src, tag)?;
                            delivered = Some(Delivered {
                                words: data.len(),
                                data: Some(data),
                            });
                        }
                        Step::CollBegin { op } => rank.mark_collective_begin(op),
                        Step::CollEnd { op } => rank.mark_collective_end(op),
                        Step::Done => break,
                    }
                }
                Ok(prog)
            })?;
            Ok(EventOutcome {
                programs: outcome.results,
                profile: outcome.profile,
                // Thread backend: nothing is scheduled or parked.
                stats: ExecStats::default(),
            })
        }
        Backend::Events => {
            let workers = event_workers();
            if workers > 1 {
                EventMachine::run_parallel(p, cfg, make, workers)
            } else {
                EventMachine::run(p, cfg, make)
            }
        }
    }
}
