//! Built-in rank programs: the paper's real algorithms in resumable
//! form, with closed-form Eq. 1 count helpers for exact verification.
//!
//! [`BinomialAllreduce`] replays `psse-sim`'s
//! `Rank::allreduce_sum` (binomial reduce to rank 0, binomial
//! broadcast back, including the nested collective trace markers)
//! step-for-step, so on the thread backend it is bit-identical to the
//! native collective — that test is the anchor of the whole backend's
//! fidelity. [`RecursiveDoublingAllreduce`] and [`RingAllreduce`] are
//! the classic alternatives with different S/W trade-offs, and
//! [`Matmul25D`] is the communication skeleton of the paper's 2.5D
//! matrix multiply (replication, Cannon-style shifts, layer reduction)
//! in counted form for `p = 10^5`–`10^6` runs. Beyond linear algebra,
//! [`SampleSort`] is the regular-sampling distributed sort (the
//! Scquizzato–Silvestri bound family: `W = Θ(n/p)` attained, but
//! `S = Θ(p)` — the scaling-breaker) and [`Stencil1D`] the iterated
//! periodic halo-exchange stencil (surface `W = Θ(h·n)` per slab,
//! `S = 2` per sweep).
//!
//! Every program supports *counted* payloads (words priced, no buffers
//! allocated — mandatory at mega-scale) and the allreduces, the sort
//! and the stencil also run in *data* mode carrying real values (used
//! by the cross-backend identity tests, where results must match too).

use crate::program::{AnalyticOp, RankProgram};
use crate::step::{Delivered, Payload, Step};
use psse_sim::{SharedPayload, Tag};
use std::sync::Arc;

/// Exact Eq. 1 operation totals for a program over the whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTotals {
    /// Total messages sent across links (after splitting at `m` words).
    pub msgs: u64,
    /// Total words sent across links.
    pub words: u64,
    /// Total flops charged.
    pub flops: u64,
}

/// Messages for one transfer of `words` words under message cap `m` —
/// the `⌈k/m⌉` of Eq. 1 (an empty transfer still costs one message).
fn chunks(words: u64, m: u64) -> u64 {
    if words == 0 {
        1
    } else {
        words.div_ceil(m)
    }
}

/// The payload a program sends: real data when it has any, counted
/// words otherwise.
#[derive(Debug, Clone)]
enum Buf {
    Counted(usize),
    Data(SharedPayload),
}

impl Buf {
    fn words(&self) -> usize {
        match self {
            Buf::Counted(w) => *w,
            Buf::Data(d) => d.len(),
        }
    }

    fn payload(&self) -> Payload {
        match self {
            Buf::Counted(w) => Payload::Counted(*w),
            Buf::Data(d) => Payload::Data(Arc::clone(d)),
        }
    }

    /// Merge a delivered contribution elementwise (data mode only; the
    /// arithmetic itself is free — the matching `Compute` step prices
    /// the adds, exactly like `reduce_sum_impl`).
    fn merge(&mut self, d: &Delivered) {
        assert_eq!(
            d.words,
            self.words(),
            "reduce contributions disagree in length"
        );
        if let Buf::Data(acc) = self {
            let acc = Arc::make_mut(acc);
            for (a, b) in acc.iter_mut().zip(d.values()) {
                *a += b;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Binomial allreduce (the native collective, resumable)
// ---------------------------------------------------------------------

enum ArState {
    Begin,
    BeginReduce,
    Reduce,
    ReduceMerge,
    EndReduce,
    BeginBcast,
    BcastRoot,
    BcastFan,
    EndBcast,
    End,
    Done,
}

/// `Rank::allreduce_sum` as a resumable program: binomial-tree reduce
/// to rank 0 (`⌈log₂p⌉` rounds, one `n`-flop merge per child), then
/// binomial-tree broadcast back at tag offset 64 — the exact step and
/// trace-marker sequence of the thread backend's native collective.
pub struct BinomialAllreduce {
    tag: Tag,
    acc: Buf,
    st: ArState,
    p: usize,
    me: usize,
    mask: usize,
    round: u64,
    fan_mask: usize,
}

impl BinomialAllreduce {
    /// Counted mode: price an allreduce of `words` words per rank
    /// without allocating payloads (the mega-scale form).
    pub fn counted(tag: Tag, words: usize) -> impl Fn(usize, usize) -> Self + Sync {
        move |me, p| Self::new(tag, Buf::Counted(words), me, p)
    }

    /// Data mode: really sum `data` across all ranks (every rank ends
    /// with the elementwise global sum, retrievable via
    /// [`BinomialAllreduce::result`]).
    pub fn with_data(tag: Tag, data: Vec<f64>) -> impl Fn(usize, usize) -> Self + Sync {
        move |me, p| Self::new(tag, Buf::Data(Arc::new(data.clone())), me, p)
    }

    fn new(tag: Tag, acc: Buf, me: usize, p: usize) -> Self {
        BinomialAllreduce {
            tag,
            acc,
            st: ArState::Begin,
            p,
            me,
            mask: 1,
            round: 0,
            fan_mask: 0,
        }
    }

    /// The reduced values (data mode, after the run completes).
    pub fn result(&self) -> Option<&[f64]> {
        match &self.acc {
            Buf::Data(d) => Some(d),
            Buf::Counted(_) => None,
        }
    }

    /// Closed-form Eq. 1 totals: the reduce and broadcast trees each
    /// have `p − 1` edges carrying `n` words, and every reduce edge
    /// costs one `n`-flop merge at its head.
    pub fn expected_totals(p: u64, n: u64, m: u64) -> OpTotals {
        let edges = 2 * (p - 1);
        OpTotals {
            msgs: edges * chunks(n, m),
            words: edges * n,
            flops: (p - 1) * n,
        }
    }
}

impl RankProgram for BinomialAllreduce {
    /// Counted runs are analytically priceable; data mode must step so
    /// payloads actually merge.
    fn analytic(&self) -> Option<AnalyticOp> {
        match self.acc {
            Buf::Counted(words) => Some(AnalyticOp::BinomialAllreduce { words }),
            Buf::Data(_) => None,
        }
    }

    fn next(&mut self, delivered: Option<Delivered>) -> Step {
        let (g, v) = (self.p, self.me); // world group, root 0: v == me
        loop {
            match self.st {
                ArState::Begin => {
                    self.st = ArState::BeginReduce;
                    return Step::CollBegin {
                        op: "allreduce_sum",
                    };
                }
                ArState::BeginReduce => {
                    self.st = ArState::Reduce;
                    return Step::CollBegin { op: "reduce_sum" };
                }
                ArState::Reduce => {
                    if self.mask >= g {
                        self.st = ArState::EndReduce;
                        continue;
                    }
                    if v & self.mask != 0 {
                        // Child: one send to the parent ends my reduce.
                        let parent = v - self.mask;
                        let tag = self.tag.offset(self.round);
                        self.st = ArState::EndReduce;
                        return Step::Send {
                            dest: parent,
                            tag,
                            payload: self.acc.payload(),
                        };
                    }
                    let child = v + self.mask;
                    if child < g {
                        let tag = self.tag.offset(self.round);
                        self.st = ArState::ReduceMerge;
                        return Step::Recv { src: child, tag };
                    }
                    self.mask <<= 1;
                    self.round += 1;
                }
                ArState::ReduceMerge => {
                    let d = delivered.as_ref().expect("recv step delivers");
                    let flops = self.acc.words() as u64;
                    self.acc.merge(d);
                    self.mask <<= 1;
                    self.round += 1;
                    self.st = ArState::Reduce;
                    return Step::Compute { flops };
                }
                ArState::EndReduce => {
                    self.st = ArState::BeginBcast;
                    return Step::CollEnd { op: "reduce_sum" };
                }
                ArState::BeginBcast => {
                    self.st = ArState::BcastRoot;
                    return Step::CollBegin { op: "broadcast" };
                }
                ArState::BcastRoot => {
                    if v == 0 {
                        self.fan_mask = g.next_power_of_two() >> 1;
                        self.st = ArState::BcastFan;
                        continue;
                    }
                    let lowbit = v & v.wrapping_neg();
                    let round = lowbit.trailing_zeros() as u64;
                    self.st = ArState::BcastFan; // fan starts after recv
                    self.fan_mask = lowbit >> 1;
                    return Step::Recv {
                        src: v - lowbit,
                        tag: self.tag.offset(64 + round),
                    };
                }
                ArState::BcastFan => {
                    if let Some(d) = delivered.as_ref() {
                        // The broadcast payload replaces my buffer
                        // (zero-copy: the same Arc fans out below).
                        self.acc = match &d.data {
                            Some(data) => Buf::Data(Arc::clone(data)),
                            None => Buf::Counted(d.words),
                        };
                    }
                    while self.fan_mask > 0 {
                        let mask = self.fan_mask;
                        self.fan_mask >>= 1;
                        let child = v + mask;
                        if child < g {
                            let round = mask.trailing_zeros() as u64;
                            return Step::Send {
                                dest: child,
                                tag: self.tag.offset(64 + round),
                                payload: self.acc.payload(),
                            };
                        }
                    }
                    self.st = ArState::EndBcast;
                }
                ArState::EndBcast => {
                    self.st = ArState::End;
                    return Step::CollEnd { op: "broadcast" };
                }
                ArState::End => {
                    self.st = ArState::Done;
                    return Step::CollEnd {
                        op: "allreduce_sum",
                    };
                }
                ArState::Done => return Step::Done,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Recursive-doubling allreduce
// ---------------------------------------------------------------------

enum RdState {
    Begin,
    Round,
    Sent,
    Merge,
    End,
    Done,
}

/// Recursive-doubling allreduce (`p` a power of two): `log₂p` rounds of
/// pairwise exchange with partner `me ⊕ 2^k`, each followed by an
/// `n`-flop merge. Latency-optimal: every rank is done after `log₂p`
/// sends, at the cost of `p·log₂p` total messages.
pub struct RecursiveDoublingAllreduce {
    tag: Tag,
    acc: Buf,
    st: RdState,
    p: usize,
    me: usize,
    k: u64,
}

impl RecursiveDoublingAllreduce {
    /// Counted mode (see [`BinomialAllreduce::counted`]).
    pub fn counted(tag: Tag, words: usize) -> impl Fn(usize, usize) -> Self + Sync {
        move |me, p| Self::new(tag, Buf::Counted(words), me, p)
    }

    /// Data mode: every rank ends with the elementwise global sum.
    pub fn with_data(tag: Tag, data: Vec<f64>) -> impl Fn(usize, usize) -> Self + Sync {
        move |me, p| Self::new(tag, Buf::Data(Arc::new(data.clone())), me, p)
    }

    fn new(tag: Tag, acc: Buf, me: usize, p: usize) -> Self {
        assert!(
            p.is_power_of_two(),
            "recursive doubling requires p to be a power of two, got {p}"
        );
        RecursiveDoublingAllreduce {
            tag,
            acc,
            st: RdState::Begin,
            p,
            me,
            k: 0,
        }
    }

    /// The reduced values (data mode, after the run completes).
    pub fn result(&self) -> Option<&[f64]> {
        match &self.acc {
            Buf::Data(d) => Some(d),
            Buf::Counted(_) => None,
        }
    }

    /// Closed-form totals: every rank sends `n` words in each of the
    /// `log₂p` rounds and merges once per round.
    pub fn expected_totals(p: u64, n: u64, m: u64) -> OpTotals {
        let rounds = p.trailing_zeros() as u64;
        OpTotals {
            msgs: p * rounds * chunks(n, m),
            words: p * rounds * n,
            flops: p * rounds * n,
        }
    }
}

impl RankProgram for RecursiveDoublingAllreduce {
    /// Counted runs are analytically priceable; data mode must step.
    fn analytic(&self) -> Option<AnalyticOp> {
        match self.acc {
            Buf::Counted(words) => Some(AnalyticOp::RecursiveDoublingAllreduce { words }),
            Buf::Data(_) => None,
        }
    }

    fn next(&mut self, delivered: Option<Delivered>) -> Step {
        loop {
            match self.st {
                RdState::Begin => {
                    self.st = RdState::Round;
                    return Step::CollBegin { op: "allreduce_rd" };
                }
                RdState::Round => {
                    if 1usize << self.k >= self.p {
                        self.st = RdState::End;
                        continue;
                    }
                    let partner = self.me ^ (1usize << self.k);
                    self.st = RdState::Sent;
                    return Step::Send {
                        dest: partner,
                        tag: self.tag.offset(self.k),
                        payload: self.acc.payload(),
                    };
                }
                RdState::Sent => {
                    let partner = self.me ^ (1usize << self.k);
                    self.st = RdState::Merge;
                    return Step::Recv {
                        src: partner,
                        tag: self.tag.offset(self.k),
                    };
                }
                RdState::Merge => {
                    let d = delivered.as_ref().expect("recv step delivers");
                    let flops = self.acc.words() as u64;
                    self.acc.merge(d);
                    self.k += 1;
                    self.st = RdState::Round;
                    return Step::Compute { flops };
                }
                RdState::End => {
                    self.st = RdState::Done;
                    return Step::CollEnd { op: "allreduce_rd" };
                }
                RdState::Done => return Step::Done,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Ring allreduce
// ---------------------------------------------------------------------

enum RingState {
    Begin,
    Round,
    Sent,
    Merge,
    End,
    Done,
}

/// Naive ring allreduce: in each of `p − 1` rounds every rank forwards
/// the block it last received (initially its own contribution) to its
/// right neighbour and accumulates the block arriving from the left.
/// After `p − 1` rounds every original block has visited every rank, so
/// all ranks hold the global sum. `O(p²)` total messages — the
/// bandwidth-hungry baseline the tree algorithms beat.
pub struct RingAllreduce {
    tag: Tag,
    /// The accumulated sum.
    acc: Buf,
    /// The block to forward next (the last one received).
    fwd: Buf,
    st: RingState,
    p: usize,
    me: usize,
    round: u64,
}

impl RingAllreduce {
    /// Counted mode (see [`BinomialAllreduce::counted`]).
    pub fn counted(tag: Tag, words: usize) -> impl Fn(usize, usize) -> Self + Sync {
        move |me, p| Self::new(tag, Buf::Counted(words), me, p)
    }

    /// Data mode: every rank ends with the elementwise global sum.
    pub fn with_data(tag: Tag, data: Vec<f64>) -> impl Fn(usize, usize) -> Self + Sync {
        move |me, p| Self::new(tag, Buf::Data(Arc::new(data.clone())), me, p)
    }

    fn new(tag: Tag, acc: Buf, me: usize, p: usize) -> Self {
        let fwd = acc.clone();
        RingAllreduce {
            tag,
            acc,
            fwd,
            st: RingState::Begin,
            p,
            me,
            round: 0,
        }
    }

    /// The reduced values (data mode, after the run completes).
    pub fn result(&self) -> Option<&[f64]> {
        match &self.acc {
            Buf::Data(d) => Some(d),
            Buf::Counted(_) => None,
        }
    }

    /// Closed-form totals: `p` ranks each send `n` words and merge once
    /// in each of the `p − 1` rounds.
    pub fn expected_totals(p: u64, n: u64, m: u64) -> OpTotals {
        let rounds = p - 1;
        OpTotals {
            msgs: p * rounds * chunks(n, m),
            words: p * rounds * n,
            flops: p * rounds * n,
        }
    }
}

impl RankProgram for RingAllreduce {
    /// Counted runs are analytically priceable; data mode must step.
    fn analytic(&self) -> Option<AnalyticOp> {
        match self.acc {
            Buf::Counted(words) => Some(AnalyticOp::RingAllreduce { words }),
            Buf::Data(_) => None,
        }
    }

    fn next(&mut self, delivered: Option<Delivered>) -> Step {
        loop {
            match self.st {
                RingState::Begin => {
                    self.st = RingState::Round;
                    return Step::CollBegin {
                        op: "allreduce_ring",
                    };
                }
                RingState::Round => {
                    if self.round as usize >= self.p - 1 {
                        self.st = RingState::End;
                        continue;
                    }
                    let right = (self.me + 1) % self.p;
                    self.st = RingState::Sent;
                    return Step::Send {
                        dest: right,
                        tag: self.tag.offset(self.round),
                        payload: self.fwd.payload(),
                    };
                }
                RingState::Sent => {
                    let left = (self.me + self.p - 1) % self.p;
                    self.st = RingState::Merge;
                    return Step::Recv {
                        src: left,
                        tag: self.tag.offset(self.round),
                    };
                }
                RingState::Merge => {
                    let d = delivered.as_ref().expect("recv step delivers");
                    let flops = self.acc.words() as u64;
                    self.acc.merge(d);
                    // Forward the received block onward next round.
                    self.fwd = match &d.data {
                        Some(data) => Buf::Data(Arc::clone(data)),
                        None => Buf::Counted(d.words),
                    };
                    self.round += 1;
                    self.st = RingState::Round;
                    return Step::Compute { flops };
                }
                RingState::End => {
                    self.st = RingState::Done;
                    return Step::CollEnd {
                        op: "allreduce_ring",
                    };
                }
                RingState::Done => return Step::Done,
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2.5D matmul (counted communication skeleton)
// ---------------------------------------------------------------------

/// Tag offsets for the matmul's three phases (Tag is a flat `u64`
/// namespace; these programs own their whole tag window).
const MM_REP_A: u64 = 0;
const MM_REP_B: u64 = 1;
const MM_SHIFT: u64 = 16;
const MM_REDUCE: u64 = 1 << 40;

enum MmState {
    Begin,
    RepSend,
    RepRecvA,
    RepRecvB,
    RoundCompute,
    ShiftSendA,
    ShiftSendB,
    ShiftRecvA,
    ShiftRecvB,
    Reduce,
    ReduceMerge,
    End,
    Done,
}

/// The communication skeleton of the paper's 2.5D matrix multiply on a
/// `q × q × c` grid (`p = q²c`, `c | q`), counted payloads only:
///
/// 1. **Replication** — layer 0 sends its A and B blocks (`b²` words
///    each) up to the `c − 1` other layers;
/// 2. **Shift-multiply** — `s = q/c` Cannon rounds per layer, each
///    `2b³` flops then an A-shift right and B-shift down of `b²` words;
/// 3. **Layer reduction** — binomial reduce of the `b²`-word C block
///    across the `c` layers of each `(i, j)`, one `b²`-flop merge per
///    edge.
///
/// [`Matmul25D::expected_totals`] gives the exact Eq. 1 counts, so a
/// `p = 10^6` run can be verified word-for-word against the closed
/// form.
pub struct Matmul25D {
    q: usize,
    c: usize,
    /// Block words: `b²`.
    bw: usize,
    /// Block dimension `b`.
    b: u64,
    st: MmState,
    /// Grid coordinates: row, column, layer.
    i: usize,
    j: usize,
    k: usize,
    /// Replication fan-out cursor (layer-0 ranks): next layer, phase.
    rep_layer: usize,
    rep_b: bool,
    /// Shift round cursor.
    round: usize,
    /// Layer-reduce mask walk.
    mask: usize,
    red_round: u64,
}

impl Matmul25D {
    /// Build the per-rank constructor for a `q × q × c` grid with block
    /// dimension `b` (so blocks are `b²` words). Panics unless
    /// `c >= 1`, `q % c == 0`.
    pub fn counted(q: usize, c: usize, b: u64) -> impl Fn(usize, usize) -> Self + Sync {
        assert!(c >= 1, "2.5D grid needs c >= 1");
        assert_eq!(q % c, 0, "2.5D grid needs c | q (got q={q}, c={c})");
        move |me, p| {
            assert_eq!(p, q * q * c, "p must equal q*q*c");
            let k = me / (q * q);
            let i = (me % (q * q)) / q;
            let j = me % q;
            Matmul25D {
                q,
                c,
                bw: (b * b) as usize,
                b,
                st: MmState::Begin,
                i,
                j,
                k,
                rep_layer: 1,
                rep_b: false,
                round: 0,
                mask: 1,
                red_round: 0,
            }
        }
    }

    fn id(&self, i: usize, j: usize, k: usize) -> usize {
        k * self.q * self.q + i * self.q + j
    }

    /// Shift rounds per layer: `s = q / c`.
    fn s(&self) -> usize {
        self.q / self.c
    }

    /// Closed-form Eq. 1 totals for the whole machine (blocks of `b²`
    /// words assumed not to split, i.e. `b² ≤ m`):
    ///
    /// * replication: `q² · 2(c−1)` sends;
    /// * shifts: `p · s · 2` sends and `p · s · 2b³` flops;
    /// * reduction: `q² · (c−1)` sends and `q² · (c−1) · b²` flops.
    pub fn expected_totals(q: u64, c: u64, b: u64) -> OpTotals {
        let p = q * q * c;
        let s = q / c;
        let bw = b * b;
        let sends = q * q * 2 * (c - 1) + p * s * 2 + q * q * (c - 1);
        OpTotals {
            msgs: sends,
            words: sends * bw,
            flops: p * s * 2 * b * b * b + q * q * (c - 1) * bw,
        }
    }
}

impl RankProgram for Matmul25D {
    fn next(&mut self, delivered: Option<Delivered>) -> Step {
        let (q, c, bw) = (self.q, self.c, self.bw);
        loop {
            match self.st {
                MmState::Begin => {
                    self.st = if c == 1 {
                        MmState::RoundCompute
                    } else if self.k == 0 {
                        MmState::RepSend
                    } else {
                        MmState::RepRecvA
                    };
                    return Step::CollBegin { op: "matmul_25d" };
                }
                MmState::RepSend => {
                    if self.rep_layer >= c {
                        self.st = MmState::RoundCompute;
                        continue;
                    }
                    let dest = self.id(self.i, self.j, self.rep_layer);
                    let tag = if self.rep_b {
                        self.rep_layer += 1;
                        Tag(MM_REP_B)
                    } else {
                        Tag(MM_REP_A)
                    };
                    self.rep_b = !self.rep_b;
                    return Step::Send {
                        dest,
                        tag,
                        payload: Payload::Counted(bw),
                    };
                }
                MmState::RepRecvA => {
                    self.st = MmState::RepRecvB;
                    return Step::Recv {
                        src: self.id(self.i, self.j, 0),
                        tag: Tag(MM_REP_A),
                    };
                }
                MmState::RepRecvB => {
                    self.st = MmState::RoundCompute;
                    return Step::Recv {
                        src: self.id(self.i, self.j, 0),
                        tag: Tag(MM_REP_B),
                    };
                }
                MmState::RoundCompute => {
                    let _ = delivered; // replication payload is counted
                    if self.round >= self.s() {
                        self.st = MmState::Reduce;
                        continue;
                    }
                    self.st = MmState::ShiftSendA;
                    return Step::Compute {
                        flops: 2 * self.b * self.b * self.b,
                    };
                }
                MmState::ShiftSendA => {
                    let right = self.id(self.i, (self.j + 1) % q, self.k);
                    self.st = MmState::ShiftSendB;
                    return Step::Send {
                        dest: right,
                        tag: Tag(MM_SHIFT + 2 * self.round as u64),
                        payload: Payload::Counted(bw),
                    };
                }
                MmState::ShiftSendB => {
                    let down = self.id((self.i + 1) % q, self.j, self.k);
                    self.st = MmState::ShiftRecvA;
                    return Step::Send {
                        dest: down,
                        tag: Tag(MM_SHIFT + 2 * self.round as u64 + 1),
                        payload: Payload::Counted(bw),
                    };
                }
                MmState::ShiftRecvA => {
                    let left = self.id(self.i, (self.j + q - 1) % q, self.k);
                    self.st = MmState::ShiftRecvB;
                    return Step::Recv {
                        src: left,
                        tag: Tag(MM_SHIFT + 2 * self.round as u64),
                    };
                }
                MmState::ShiftRecvB => {
                    let up = self.id((self.i + q - 1) % q, self.j, self.k);
                    self.round += 1;
                    self.st = MmState::RoundCompute;
                    return Step::Recv {
                        src: up,
                        tag: Tag(MM_SHIFT + 2 * (self.round as u64 - 1) + 1),
                    };
                }
                MmState::Reduce => {
                    // Binomial reduce of C across layers, root layer 0.
                    let v = self.k;
                    if self.mask >= c {
                        self.st = MmState::End;
                        continue;
                    }
                    if v & self.mask != 0 {
                        let parent = self.id(self.i, self.j, v - self.mask);
                        let tag = Tag(MM_REDUCE + self.red_round);
                        self.st = MmState::End;
                        return Step::Send {
                            dest: parent,
                            tag,
                            payload: Payload::Counted(bw),
                        };
                    }
                    let child_v = v + self.mask;
                    if child_v < c {
                        let child = self.id(self.i, self.j, child_v);
                        let tag = Tag(MM_REDUCE + self.red_round);
                        self.st = MmState::ReduceMerge;
                        return Step::Recv { src: child, tag };
                    }
                    self.mask <<= 1;
                    self.red_round += 1;
                }
                MmState::ReduceMerge => {
                    debug_assert!(delivered.is_some(), "recv step delivers");
                    self.mask <<= 1;
                    self.red_round += 1;
                    self.st = MmState::Reduce;
                    return Step::Compute { flops: bw as u64 };
                }
                MmState::End => {
                    self.st = MmState::Done;
                    return Step::CollEnd { op: "matmul_25d" };
                }
                MmState::Done => return Step::Done,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Distributed sample sort (regular sampling, direct exchanges)
// ---------------------------------------------------------------------

/// Tag for the splitter-sample exchange.
const SS_SAMPLE: u64 = 1 << 20;
/// Tag for the bucket all-to-all.
const SS_EXCHANGE: u64 = 1 << 21;

/// `⌈log₂ x⌉` for comparison accounting (0 for `x ≤ 1`).
fn ceil_log2(x: usize) -> u64 {
    if x < 2 {
        0
    } else {
        (usize::BITS - (x - 1).leading_zeros()) as u64
    }
}

/// Comparisons charged for sorting `x` keys: `x·⌈log₂ x⌉`.
fn sort_flops(x: usize) -> u64 {
    x as u64 * ceil_log2(x)
}

enum SsState {
    Begin,
    LocalSort,
    SampleSend,
    SampleRecv,
    SplitterCompute,
    Partition,
    ExchangeSend,
    ExchangeRecv,
    Merge,
    End,
    Done,
}

/// Distributed sample sort as a resumable program: local sort, direct
/// exchange of `p − 1` regular samples per rank, deterministic splitter
/// agreement, bucket all-to-all, local merge. The same shape as
/// `psse-algos`' `sample_sort` (identical per-rank `W = (p−1)·(p−1) +
/// (exchange)` and `S = 2(p−1)`, so the `S = Θ(p)` scaling-breaker
/// shows up at mega-scale too); in data mode the per-rank results equal
/// the closure algorithm's buckets exactly.
///
/// Counted mode assumes perfectly uniform buckets (`bs/p` words each,
/// requiring `p | bs`), which makes [`SampleSort::expected_totals`] an
/// exact closed form; data mode carries the real keys with
/// data-dependent bucket sizes.
pub struct SampleSort {
    me: usize,
    p: usize,
    /// Keys per rank.
    bs: usize,
    st: SsState,
    /// `None` in counted mode; the sorted local block in data mode.
    block: Option<Vec<f64>>,
    /// Sample sets by source rank (data mode).
    candidates: Vec<Vec<f64>>,
    /// Outgoing buckets (data mode), indexed by destination.
    buckets: Vec<Vec<f64>>,
    /// Received buckets by source rank (data mode).
    received: Vec<Vec<f64>>,
    /// Words received (all modes; drives the merge charge).
    recv_words: usize,
    /// Final sorted bucket (data mode).
    out: Option<Vec<f64>>,
    /// Destination / source cursor within a phase.
    cursor: usize,
    /// Source whose delivery the next resumption carries.
    pending: Option<usize>,
    /// Shared sample payload (data mode, sent to every peer).
    sample_buf: Option<SharedPayload>,
}

impl SampleSort {
    /// Counted-mode constructor: `bs` keys per rank, uniform buckets.
    /// Panics (per rank) unless `p | bs` and `bs ≥ p`.
    pub fn counted(bs: usize) -> impl Fn(usize, usize) -> Self + Sync {
        move |me, p| {
            assert!(bs >= p, "samplesort: need bs >= p (bs={bs}, p={p})");
            assert_eq!(bs % p, 0, "counted samplesort needs p | bs");
            Self::new(me, p, bs, None)
        }
    }

    /// Data-mode constructor: sorts `keys` (length a multiple of `p`,
    /// block size at least `p`).
    pub fn with_data(keys: Vec<f64>) -> impl Fn(usize, usize) -> Self + Sync {
        move |me, p| {
            let n = keys.len();
            assert_eq!(n % p, 0, "samplesort: p must divide the key count");
            let bs = n / p;
            assert!(bs >= p, "samplesort: need n >= p²");
            let block = keys[me * bs..(me + 1) * bs].to_vec();
            Self::new(me, p, bs, Some(block))
        }
    }

    fn new(me: usize, p: usize, bs: usize, block: Option<Vec<f64>>) -> Self {
        SampleSort {
            me,
            p,
            bs,
            st: SsState::Begin,
            block,
            candidates: vec![Vec::new(); p],
            buckets: Vec::new(),
            received: vec![Vec::new(); p],
            recv_words: 0,
            out: None,
            cursor: 0,
            pending: None,
            sample_buf: None,
        }
    }

    /// The rank's sorted bucket (data mode, after completion); the
    /// concatenation across ranks is the globally sorted sequence.
    pub fn result(&self) -> Option<&[f64]> {
        self.out.as_deref()
    }

    /// Exact Eq. 1 totals for the counted skeleton (`s = p − 1` samples
    /// per rank, uniform `bs/p`-word buckets):
    ///
    /// * samples: `p(p−1)` transfers of `s` words;
    /// * exchange: `p(p−1)` transfers of `bs/p` words;
    /// * flops: local sorts + splitter sorts + `p−1` binary-search cuts
    ///   + `⌈log₂p⌉`-level merges.
    pub fn expected_totals(p: u64, bs: u64, m: u64) -> OpTotals {
        let s = p - 1;
        let per = bs / p;
        let msgs = p * s * (chunks(s, m) + chunks(per, m));
        let words = p * s * (s + per);
        let flops = p
            * (sort_flops(bs as usize)
                + sort_flops((p * s) as usize)
                + s * ceil_log2(bs as usize)
                + bs * ceil_log2(p as usize));
        OpTotals { msgs, words, flops }
    }

    /// Advance the peer cursor past `me`; returns the next peer or
    /// `None` when the phase is exhausted.
    fn next_peer(&mut self) -> Option<usize> {
        if self.cursor == self.me {
            self.cursor += 1;
        }
        if self.cursor < self.p {
            let d = self.cursor;
            self.cursor += 1;
            Some(d)
        } else {
            None
        }
    }
}

impl RankProgram for SampleSort {
    fn next(&mut self, delivered: Option<Delivered>) -> Step {
        let mut delivered = delivered;
        let (p, bs, s) = (self.p, self.bs, self.p - 1);
        loop {
            match self.st {
                SsState::Begin => {
                    self.st = SsState::LocalSort;
                    return Step::CollBegin { op: "samplesort" };
                }
                SsState::LocalSort => {
                    if let Some(block) = &mut self.block {
                        block.sort_by(|a, b| a.total_cmp(b));
                        // Regular samples at positions (i+1)·bs/p.
                        let samples: Vec<f64> = (1..p).map(|i| block[i * bs / p]).collect();
                        self.candidates[self.me] = samples.clone();
                        self.sample_buf = Some(Arc::new(samples));
                    }
                    self.cursor = 0;
                    self.st = SsState::SampleSend;
                    return Step::Compute {
                        flops: sort_flops(bs),
                    };
                }
                SsState::SampleSend => match self.next_peer() {
                    Some(dest) => {
                        let payload = match &self.sample_buf {
                            Some(buf) => Payload::Data(Arc::clone(buf)),
                            None => Payload::Counted(s),
                        };
                        return Step::Send {
                            dest,
                            tag: Tag(SS_SAMPLE),
                            payload,
                        };
                    }
                    None => {
                        self.cursor = 0;
                        self.st = SsState::SampleRecv;
                    }
                },
                SsState::SampleRecv => {
                    if let (Some(src), Some(d)) = (self.pending.take(), delivered.take()) {
                        if self.block.is_some() {
                            self.candidates[src] = d.values().to_vec();
                        }
                    }
                    match self.next_peer() {
                        Some(src) => {
                            self.pending = Some(src);
                            return Step::Recv {
                                src,
                                tag: Tag(SS_SAMPLE),
                            };
                        }
                        None => self.st = SsState::SplitterCompute,
                    }
                }
                SsState::SplitterCompute => {
                    self.st = SsState::Partition;
                    return Step::Compute {
                        flops: sort_flops(p * s),
                    };
                }
                SsState::Partition => {
                    if let Some(block) = &self.block {
                        // All ranks sort the identical candidate
                        // multiset (rank order), so all agree on the
                        // p − 1 splitters — same rule as the closure
                        // algorithm.
                        let mut cand: Vec<f64> =
                            self.candidates.iter().flatten().copied().collect();
                        cand.sort_by(|a, b| a.total_cmp(b));
                        let splitters: Vec<f64> = (0..s).map(|j| cand[(j + 1) * s]).collect();
                        let mut cuts = vec![0usize];
                        for sp in &splitters {
                            cuts.push(block.partition_point(|x| x.total_cmp(sp).is_le()));
                        }
                        cuts.push(bs);
                        self.buckets = (0..p)
                            .map(|d| block[cuts[d]..cuts[d + 1]].to_vec())
                            .collect();
                        self.received[self.me] = self.buckets[self.me].clone();
                        self.recv_words += self.buckets[self.me].len();
                    } else {
                        self.recv_words += bs / p; // own uniform bucket
                    }
                    self.cursor = 0;
                    self.st = SsState::ExchangeSend;
                    return Step::Compute {
                        flops: s as u64 * ceil_log2(bs),
                    };
                }
                SsState::ExchangeSend => match self.next_peer() {
                    Some(dest) => {
                        let payload = if self.block.is_some() {
                            Payload::Data(Arc::new(std::mem::take(&mut self.buckets[dest])))
                        } else {
                            Payload::Counted(bs / p)
                        };
                        return Step::Send {
                            dest,
                            tag: Tag(SS_EXCHANGE),
                            payload,
                        };
                    }
                    None => {
                        self.cursor = 0;
                        self.st = SsState::ExchangeRecv;
                    }
                },
                SsState::ExchangeRecv => {
                    if let (Some(src), Some(d)) = (self.pending.take(), delivered.take()) {
                        self.recv_words += d.words;
                        if self.block.is_some() {
                            self.received[src] = d.values().to_vec();
                        }
                    }
                    match self.next_peer() {
                        Some(src) => {
                            self.pending = Some(src);
                            return Step::Recv {
                                src,
                                tag: Tag(SS_EXCHANGE),
                            };
                        }
                        None => self.st = SsState::Merge,
                    }
                }
                SsState::Merge => {
                    if self.block.is_some() {
                        let mut bucket: Vec<f64> =
                            self.received.iter().flatten().copied().collect();
                        bucket.sort_by(|a, b| a.total_cmp(b));
                        self.out = Some(bucket);
                    }
                    self.st = SsState::End;
                    return Step::Compute {
                        flops: self.recv_words as u64 * ceil_log2(p),
                    };
                }
                SsState::End => {
                    self.st = SsState::Done;
                    return Step::CollEnd { op: "samplesort" };
                }
                SsState::Done => return Step::Done,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Iterated halo-exchange stencil (1-D slab decomposition)
// ---------------------------------------------------------------------

/// Tag base for halo exchanges (4 tags per sweep).
const ST_HALO: u64 = 1 << 22;

enum StState {
    Begin,
    IterStart,
    SendTop,
    SendBottom,
    RecvBottom,
    RecvTop,
    Update,
    End,
    Done,
}

/// The iterated periodic box stencil on `p` row slabs as a resumable
/// program: each sweep sends the `h` top rows north and the `h` bottom
/// rows south (`2` messages of `h·n` words per rank — the halo
/// *surface*), then updates the `(n/p)·n` interior (the *volume*). In
/// data mode the update sums the neighbourhood in the same `(di, dj)`
/// order as `psse-algos`' `serial_stencil`, so per-rank results are
/// bit-identical to the serial reference at any `p`.
///
/// [`Stencil1D::expected_totals`] is exact for both modes (the halo
/// sizes are data-independent, unlike [`SampleSort`]'s buckets).
pub struct Stencil1D {
    me: usize,
    p: usize,
    /// Grid side.
    n: usize,
    /// Halo width.
    h: usize,
    iters: usize,
    /// Rows per rank: `n/p`.
    rows: usize,
    st: StState,
    /// Sweep counter.
    t: usize,
    /// `None` in counted mode; the local row slab in data mode.
    block: Option<Vec<f64>>,
    halo_top: Vec<f64>,
    halo_bottom: Vec<f64>,
}

impl Stencil1D {
    /// Counted-mode constructor. Panics (per rank) unless `p | n`,
    /// `1 ≤ h ≤ n/p`.
    pub fn counted(n: usize, h: usize, iters: usize) -> impl Fn(usize, usize) -> Self + Sync {
        move |me, p| Self::new(me, p, n, h, iters, None)
    }

    /// Data-mode constructor over a row-major `n × n` grid.
    pub fn with_data(
        grid: Vec<f64>,
        n: usize,
        h: usize,
        iters: usize,
    ) -> impl Fn(usize, usize) -> Self + Sync {
        move |me, p| {
            assert_eq!(grid.len(), n * n, "stencil: grid must be n×n");
            let rows = n / p;
            let block = grid[me * rows * n..(me + 1) * rows * n].to_vec();
            Self::new(me, p, n, h, iters, Some(block))
        }
    }

    fn new(me: usize, p: usize, n: usize, h: usize, iters: usize, block: Option<Vec<f64>>) -> Self {
        assert!(p >= 1 && n.is_multiple_of(p), "stencil: p must divide n");
        assert!(h >= 1 && h <= n / p, "stencil: need 1 <= h <= n/p");
        Stencil1D {
            me,
            p,
            n,
            h,
            iters,
            rows: n / p,
            st: StState::Begin,
            t: 0,
            block,
            halo_top: Vec::new(),
            halo_bottom: Vec::new(),
        }
    }

    /// The rank's final row slab (data mode, after completion).
    pub fn result(&self) -> Option<&[f64]> {
        self.block.as_deref()
    }

    /// Exact Eq. 1 totals: `2` halo transfers of `h·n` words per rank
    /// and sweep (none at `p = 1` — self-halos wrap locally), and
    /// `(n/p)·n·(2h+1)²` flops per rank and sweep.
    pub fn expected_totals(p: u64, n: u64, h: u64, iters: u64, m: u64) -> OpTotals {
        let k = 2 * h + 1;
        let (msgs, words) = if p == 1 {
            (0, 0)
        } else {
            (p * iters * 2 * chunks(h * n, m), p * iters * 2 * h * n)
        };
        OpTotals {
            msgs,
            words,
            flops: p * iters * (n / p) * n * k * k,
        }
    }

    fn tag(&self, off: u64) -> Tag {
        Tag(ST_HALO + 4 * self.t as u64 + off)
    }

    /// One periodic sweep of the local slab using the received halos —
    /// ascending `(di, dj)` order, bit-identical to the serial kernel.
    fn update(&mut self) {
        let (n, h, rows) = (self.n, self.h, self.rows);
        let Some(block) = &mut self.block else { return };
        let vr = rows + 2 * h;
        let mut vert = Vec::with_capacity(vr * n);
        vert.extend_from_slice(&self.halo_top);
        vert.extend_from_slice(block);
        vert.extend_from_slice(&self.halo_bottom);
        let inv = 1.0 / ((2 * h + 1) * (2 * h + 1)) as f64;
        for i in 0..rows {
            for j in 0..n {
                let mut acc = 0.0;
                for di in 0..=2 * h {
                    let base = (i + di) * n;
                    for dj in 0..=2 * h {
                        acc += vert[base + (j + n + dj - h) % n];
                    }
                }
                block[i * n + j] = acc * inv;
            }
        }
    }
}

impl RankProgram for Stencil1D {
    fn next(&mut self, delivered: Option<Delivered>) -> Step {
        let mut delivered = delivered;
        let (p, n, h, rows) = (self.p, self.n, self.h, self.rows);
        let north = (self.me + p - 1) % p;
        let south = (self.me + 1) % p;
        loop {
            match self.st {
                StState::Begin => {
                    self.st = StState::IterStart;
                    return Step::CollBegin { op: "stencil" };
                }
                StState::IterStart => {
                    if self.t >= self.iters {
                        self.st = StState::End;
                        continue;
                    }
                    if p == 1 {
                        // Periodic self-halos, no traffic.
                        if let Some(block) = &self.block {
                            self.halo_top = block[(rows - h) * n..].to_vec();
                            self.halo_bottom = block[..h * n].to_vec();
                        }
                        self.st = StState::Update;
                    } else {
                        self.st = StState::SendTop;
                    }
                }
                StState::SendTop => {
                    let payload = match &self.block {
                        Some(block) => Payload::Data(Arc::new(block[..h * n].to_vec())),
                        None => Payload::Counted(h * n),
                    };
                    self.st = StState::SendBottom;
                    return Step::Send {
                        dest: north,
                        tag: self.tag(0),
                        payload,
                    };
                }
                StState::SendBottom => {
                    let payload = match &self.block {
                        Some(block) => Payload::Data(Arc::new(block[(rows - h) * n..].to_vec())),
                        None => Payload::Counted(h * n),
                    };
                    self.st = StState::RecvBottom;
                    return Step::Send {
                        dest: south,
                        tag: self.tag(1),
                        payload,
                    };
                }
                StState::RecvBottom => {
                    // South's top rows are my bottom halo.
                    self.st = StState::RecvTop;
                    return Step::Recv {
                        src: south,
                        tag: self.tag(0),
                    };
                }
                StState::RecvTop => {
                    if let Some(d) = delivered.take() {
                        self.halo_bottom = d.values().to_vec();
                    }
                    // North's bottom rows are my top halo.
                    self.st = StState::Update;
                    return Step::Recv {
                        src: north,
                        tag: self.tag(1),
                    };
                }
                StState::Update => {
                    if let Some(d) = delivered.take() {
                        self.halo_top = d.values().to_vec();
                    }
                    self.update();
                    self.t += 1;
                    self.st = StState::IterStart;
                    let k = 2 * h as u64 + 1;
                    return Step::Compute {
                        flops: (rows * n) as u64 * k * k,
                    };
                }
                StState::End => {
                    self.st = StState::Done;
                    return Step::CollEnd { op: "stencil" };
                }
                StState::Done => return Step::Done,
            }
        }
    }
}
