//! The per-rank pricing context: a faithful mirror of `psse-sim`'s
//! `Rank` accounting, detached from any thread.
//!
//! Every clock update, counter increment, fault decision, and trace
//! record here performs the **same floating-point operations in the
//! same order** as `crates/sim/src/rank.rs`. That is the whole
//! contract: profiles are pure functions of the message DAG, so an
//! event-driven executor that prices operations identically produces
//! byte-identical profiles to the thread-per-rank machine (enforced by
//! the cross-backend tests and the repo-level backend proptest).
//!
//! The one deliberate divergence is representation, not arithmetic:
//! per-link fault sequence numbers live in a tiny sorted arena instead
//! of a `vec![0; p]`, because at `p = 10^6` a dense vector per rank
//! would be 8 MB × p of dead weight while real algorithms talk to
//! `O(log p)` peers. The arena is a peer-sorted `Vec<(peer, seq)>`
//! probed by binary search: ~12 bytes per *distinct* peer actually
//! talked to (so whole-machine fault state is `O(edges)`, not `O(p²)`),
//! no hashing on the send path, and cache-resident at `O(log p)` peers.

use crate::step::{Delivered, Payload};
use psse_faults::{FaultPlan, LinkFaultKind};
use psse_sim::error::SimResult;
use psse_sim::record::{EventKind, TimedEvent};
use psse_sim::{RankStats, SharedPayload, SimConfig, SimError, Tag};
use std::sync::Arc;

/// Per-rank fault-injection state; mirrors `rank.rs`'s `FaultState`
/// with a sparse per-link sequence arena (see module docs).
struct FaultCtx {
    plan: FaultPlan,
    /// Transfers initiated per outgoing link (indexes the plan), sorted
    /// by peer rank; one entry per distinct peer ever sent to.
    link_seq: Vec<(u32, u64)>,
    /// Virtual time of the next coordinated checkpoint boundary.
    next_cp: f64,
    /// Last checkpoint boundary crossed.
    last_cp: f64,
    /// This rank's scheduled crash, not yet triggered.
    crash_at: Option<f64>,
    /// A crash with no checkpoint to restart from; surfaced by the next
    /// fallible operation (or at program end).
    pending_crash: Option<SimError>,
}

impl FaultCtx {
    /// Post-increment the sequence number of the link to `dest`,
    /// creating its arena entry on first contact.
    fn next_link_seq(&mut self, dest: usize) -> u64 {
        let peer = dest as u32;
        match self.link_seq.binary_search_by_key(&peer, |&(d, _)| d) {
            Ok(i) => {
                let seq = self.link_seq[i].1;
                self.link_seq[i].1 += 1;
                seq
            }
            Err(i) => {
                self.link_seq.insert(i, (peer, 1));
                0
            }
        }
    }
}

/// Deterministic corruption perturbation — identical to `rank.rs`.
fn corrupt_word(x: f64) -> f64 {
    x + 1.0 + x.abs()
}

/// One transfer on the virtual wire: everything the receiver needs to
/// price the matching receive. The event analogue of `psse-sim`'s
/// `Envelope`, with the payload optional so counted transfers carry no
/// allocation.
#[derive(Debug)]
pub(crate) struct Wire {
    /// Messages (chunks) the transfer was split into.
    pub n_chunks: usize,
    /// Sender's clock after all chunk pricing.
    pub depart_time: f64,
    /// Total payload words.
    pub words: usize,
    /// The payload, when it was a real buffer.
    pub data: Option<SharedPayload>,
}

/// The detached accounting state of one rank: virtual clock, Eq. 1/2
/// counters, trace log, and fault state.
pub(crate) struct RankCtx {
    id: usize,
    p: usize,
    time: f64,
    stats: RankStats,
    events: Vec<TimedEvent>,
    fault: Option<Box<FaultCtx>>,
}

impl RankCtx {
    pub(crate) fn new(id: usize, p: usize, cfg: &SimConfig) -> Self {
        let fault = cfg.faults.as_ref().map(|plan| {
            Box::new(FaultCtx {
                plan: plan.clone(),
                link_seq: Vec::new(),
                next_cp: plan
                    .recovery
                    .checkpoint
                    .map_or(f64::INFINITY, |cp| cp.interval),
                last_cp: 0.0,
                crash_at: plan.crash_at(id),
                pending_crash: None,
            })
        });
        RankCtx {
            id,
            p,
            time: 0.0,
            stats: RankStats::default(),
            events: Vec::new(),
            fault,
        }
    }

    pub(crate) fn now(&self) -> f64 {
        self.time
    }

    pub(crate) fn into_parts(mut self) -> (RankStats, Vec<TimedEvent>) {
        self.stats.finish_time = self.time;
        (self.stats, self.events)
    }

    #[inline]
    fn record(&mut self, cfg: &SimConfig, t_start: f64, kind: EventKind) {
        if cfg.record_trace {
            self.events.push(TimedEvent {
                t_start,
                t_end: self.time,
                kind,
            });
        }
    }

    pub(crate) fn mark_collective_begin(&mut self, cfg: &SimConfig, op: &str) {
        if cfg.record_trace {
            let t = self.time;
            self.record(cfg, t, EventKind::CollBegin { op: op.to_string() });
        }
    }

    pub(crate) fn mark_collective_end(&mut self, cfg: &SimConfig, op: &str) {
        if cfg.record_trace {
            let t = self.time;
            self.record(cfg, t, EventKind::CollEnd { op: op.to_string() });
        }
    }

    fn fail_if_crashed(&mut self) -> SimResult<()> {
        if let Some(fs) = self.fault.as_deref_mut() {
            if let Some(e) = fs.pending_crash.take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// A crash no fallible operation surfaced; checked at program end
    /// (the analogue of `Machine::run`'s rank-exit check).
    pub(crate) fn take_fault_error(&mut self) -> Option<SimError> {
        self.fault
            .as_deref_mut()
            .and_then(|fs| fs.pending_crash.take())
    }

    fn check_peer(&self, peer: usize) -> SimResult<()> {
        if peer >= self.p {
            return Err(SimError::RankOutOfRange {
                rank: peer,
                size: self.p,
            });
        }
        Ok(())
    }

    fn same_node(&self, cfg: &SimConfig, peer: usize) -> bool {
        match &cfg.hierarchy {
            Some(h) => self.id / h.cores_per_node == peer / h.cores_per_node,
            None => false,
        }
    }

    fn charge_wasted_transfer(&mut self, cfg: &SimConfig, total: usize, alpha: f64, beta: f64) {
        let m = cfg.max_message_words;
        let mut left = total;
        loop {
            let k = left.min(m);
            self.time += alpha + beta * k as f64;
            self.stats.retrans_msgs += 1;
            self.stats.retrans_words += k as u64;
            if left <= m {
                break;
            }
            left -= m;
        }
    }

    fn charge_checkpoint_write(&mut self, cfg: &SimConfig, words: u64) {
        let m = cfg.max_message_words as u64;
        let (alpha, beta) = (cfg.alpha_t, cfg.beta_t);
        let mut left = words;
        loop {
            let k = left.min(m);
            self.time += alpha + beta * k as f64;
            self.stats.checkpoint_msgs += 1;
            self.stats.checkpoint_words += k;
            if left <= m {
                break;
            }
            left -= m;
        }
    }

    fn fault_epilogue(&mut self, cfg: &SimConfig) {
        let Some(mut fs) = self.fault.take() else {
            return;
        };
        if let Some(cp) = fs.plan.recovery.checkpoint {
            let t_op = self.time;
            while fs.next_cp <= t_op {
                let t0 = self.time;
                self.charge_checkpoint_write(cfg, cp.words);
                fs.last_cp = fs.next_cp;
                fs.next_cp += cp.interval;
                self.record(cfg, t0, EventKind::Checkpoint { words: cp.words });
            }
        }
        if let Some(at) = fs.crash_at {
            if self.time >= at {
                fs.crash_at = None;
                if let Some(cp) = fs.plan.recovery.checkpoint {
                    let t0 = self.time;
                    let lost = self.time - fs.last_cp;
                    self.time += lost + cp.restart_seconds;
                    self.stats.crashes_recovered += 1;
                    self.record(
                        cfg,
                        t0,
                        EventKind::CrashRecovery {
                            lost,
                            restart: cp.restart_seconds,
                        },
                    );
                } else {
                    fs.pending_crash = Some(SimError::RankCrashed { rank: self.id, at });
                }
            }
        }
        self.fault = Some(fs);
    }

    /// Mirror of `rank.rs::inject_send_faults`. Counted payloads carry
    /// no bytes, so a retry-less corruption perturbs nothing — the
    /// clock and counters (the observable profile) are still identical
    /// to the thread backend, which corrupts one word of the zero-fill.
    fn inject_send_faults(
        &mut self,
        cfg: &SimConfig,
        dest: usize,
        tag: Tag,
        payload: &mut Payload,
        alpha: f64,
        beta: f64,
    ) -> SimResult<bool> {
        let Some(mut fs) = self.fault.take() else {
            return Ok(false);
        };
        let seq = fs.next_link_seq(dest);
        let primary = fs.plan.link_fault(self.id, dest, seq);
        let res = match primary {
            None => Ok(false),
            Some(LinkFaultKind::Duplicate) => Ok(true),
            Some(LinkFaultKind::Delay) => {
                let t0 = self.time;
                let seconds = fs.plan.spec.delay_seconds;
                self.time += seconds;
                self.record(cfg, t0, EventKind::LinkDelay { seconds });
                Ok(false)
            }
            Some(LinkFaultKind::Corrupt) if fs.plan.recovery.max_retries == 0 => {
                if let Payload::Data(data) = payload {
                    if !data.is_empty() {
                        let i = fs.plan.corrupt_index(self.id, dest, seq, data.len());
                        let words = Arc::make_mut(data);
                        words[i] = corrupt_word(words[i]);
                    }
                }
                Ok(false)
            }
            Some(LinkFaultKind::Drop) | Some(LinkFaultKind::Corrupt) => {
                let words = payload.words();
                let max_retries = fs.plan.recovery.max_retries;
                let mut attempt: u32 = 0;
                loop {
                    let t0 = self.time;
                    self.charge_wasted_transfer(cfg, words, alpha, beta);
                    let backoff = fs.plan.recovery.retry_backoff * f64::powi(2.0, attempt as i32);
                    self.time += backoff;
                    self.stats.retries += 1;
                    self.record(
                        cfg,
                        t0,
                        EventKind::Retry {
                            dest,
                            tag: tag.0,
                            attempt: attempt as usize,
                            words,
                            backoff,
                        },
                    );
                    attempt += 1;
                    if attempt > max_retries {
                        break Err(SimError::RetriesExhausted {
                            rank: self.id,
                            dest,
                            attempts: attempt,
                        });
                    }
                    match fs.plan.attempt_fault(self.id, dest, seq, attempt) {
                        Some(LinkFaultKind::Drop) | Some(LinkFaultKind::Corrupt) => continue,
                        _ => break Ok(false),
                    }
                }
            }
        };
        self.fault = Some(fs);
        res
    }

    /// Mirror of `Rank::compute`.
    pub(crate) fn compute(&mut self, cfg: &SimConfig, flops: u64) {
        let t0 = self.time;
        self.stats.flops += flops;
        self.time += cfg.gamma_t * flops as f64;
        self.record(cfg, t0, EventKind::Compute { flops });
        if self.fault.is_some() {
            self.fault_epilogue(cfg);
        }
    }

    /// Mirror of `Rank::send_shared`, returning the wire message for
    /// the executor to deliver instead of pushing to a mailbox.
    pub(crate) fn price_send(
        &mut self,
        cfg: &SimConfig,
        dest: usize,
        tag: Tag,
        payload: Payload,
    ) -> SimResult<Wire> {
        self.check_peer(dest)?;
        self.fail_if_crashed()?;
        let t0 = self.time;
        if dest == self.id {
            // A self-send is free: no link crossed, no counters, and the
            // payload is immediately receivable.
            let words = payload.words();
            let wire = Wire {
                n_chunks: 1,
                depart_time: self.time,
                words,
                data: payload_data(payload),
            };
            self.record(
                cfg,
                t0,
                EventKind::Send {
                    dest,
                    tag: tag.0,
                    words,
                },
            );
            return Ok(wire);
        }
        let intra = self.same_node(cfg, dest);
        let (alpha, beta) = match (&cfg.hierarchy, intra) {
            (Some(h), true) => (h.intra_alpha_t, h.intra_beta_t),
            _ => (cfg.alpha_t, cfg.beta_t),
        };
        let m = cfg.max_message_words;
        let mut payload = payload;
        let duplicate = if self.fault.is_some() {
            self.inject_send_faults(cfg, dest, tag, &mut payload, alpha, beta)?
        } else {
            false
        };
        let t_send = self.time;
        let total = payload.words();
        let n_chunks = if total == 0 { 1 } else { total.div_ceil(m) };
        // Arithmetic chunk pricing — the exact clock/counter updates of
        // `rank.rs`, in the same f64 operand order.
        let mut left = total;
        loop {
            let k = left.min(m);
            self.time += alpha + beta * k as f64;
            self.stats.msgs_sent += 1;
            self.stats.words_sent += k as u64;
            if intra {
                self.stats.msgs_sent_intra += 1;
                self.stats.words_sent_intra += k as u64;
            }
            if left <= m {
                break;
            }
            left -= m;
        }
        let wire = Wire {
            n_chunks,
            depart_time: self.time,
            words: total,
            data: payload_data(payload),
        };
        self.record(
            cfg,
            t_send,
            EventKind::Send {
                dest,
                tag: tag.0,
                words: total,
            },
        );
        if duplicate {
            let td = self.time;
            self.charge_wasted_transfer(cfg, total, alpha, beta);
            self.stats.retries += 1;
            self.record(
                cfg,
                td,
                EventKind::Retry {
                    dest,
                    tag: tag.0,
                    attempt: 0,
                    words: total,
                    backoff: 0.0,
                },
            );
        }
        if self.fault.is_some() {
            self.fault_epilogue(cfg);
        }
        Ok(wire)
    }

    /// The fallible prologue of a receive (peer check, pending-crash
    /// surfacing) — runs when the program *issues* the `Recv` step,
    /// before any blocking, exactly where `rank.rs` runs it.
    pub(crate) fn begin_recv(&mut self, src: usize) -> SimResult<f64> {
        self.check_peer(src)?;
        self.fail_if_crashed()?;
        Ok(self.time)
    }

    /// Mirror of the delivery half of `Rank::recv_shared`: advance to
    /// the transfer's departure time, count it, record it.
    pub(crate) fn price_recv(
        &mut self,
        cfg: &SimConfig,
        t0: f64,
        src: usize,
        tag: Tag,
        wire: Wire,
    ) -> Delivered {
        self.time = self.time.max(wire.depart_time);
        let words = wire.words;
        if src != self.id {
            self.stats.words_recvd += words as u64;
            self.stats.msgs_recvd += wire.n_chunks as u64;
        }
        self.record(
            cfg,
            t0,
            EventKind::Recv {
                src,
                tag: tag.0,
                words,
                msgs: wire.n_chunks,
            },
        );
        if self.fault.is_some() {
            self.fault_epilogue(cfg);
        }
        Delivered {
            words,
            data: wire.data,
        }
    }
}

fn payload_data(payload: Payload) -> Option<SharedPayload> {
    match payload {
        Payload::Counted(_) => None,
        Payload::Data(d) => Some(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_faults::{FaultSpec, RecoveryPolicy};

    /// Regression for the fault-state memory bound: the per-link
    /// sequence arena must be sized by *distinct peers talked to*, not
    /// by world size and not by transfer count — that is what keeps a
    /// faulted run's memory `O(p + live wires + edges)` at `p = 10^6`.
    #[test]
    fn fault_link_seq_grows_with_distinct_peers_only() {
        let p = 1 << 20;
        let cfg = SimConfig {
            faults: Some(FaultPlan {
                spec: FaultSpec {
                    seed: 7,
                    ..FaultSpec::default()
                },
                recovery: RecoveryPolicy {
                    max_retries: 3,
                    retry_backoff: 1e-9,
                    checkpoint: None,
                },
            }),
            ..SimConfig::default()
        };
        let mut ctx = RankCtx::new(0, p, &cfg);
        let peers = [1usize, 1 << 10, 1 << 19];
        for round in 0..100 {
            let dest = peers[round % peers.len()];
            ctx.price_send(&cfg, dest, Tag(round as u64), Payload::Counted(8))
                .expect("send");
        }
        let fs = ctx.fault.as_deref().expect("fault state");
        assert_eq!(
            fs.link_seq.len(),
            peers.len(),
            "arena must hold one entry per distinct peer, not per transfer"
        );
        // ...and the entries really are per-link transfer counts.
        for &(peer, seq) in &fs.link_seq {
            assert!(peers.contains(&(peer as usize)));
            assert!(seq == 34 || seq == 33, "100 sends over 3 links");
        }
        assert!(fs.link_seq.is_sorted_by_key(|&(d, _)| d));
    }
}
