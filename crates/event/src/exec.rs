//! The discrete-event executors: serial (virtual-time calendar queue)
//! and parallel (round-based work stealing), byte-identical by
//! construction, plus the analytic fast path for native counted
//! collectives.
//!
//! ## Why the executors cannot disagree
//!
//! A rank's profile is a pure function of its own operation sequence
//! plus, for each receive, the `(depart_time, n_chunks, words)` of the
//! matching transfer. Matching is per-`(src, tag)` FIFO, and each
//! `(src, tag)` key has a single sender whose sends are totally ordered
//! by its own program — so *which* wire matches *which* receive is
//! fixed by the programs alone, independent of executor scheduling.
//! The serial executor orders runnable ranks by `(virtual time, rank,
//! seq)` from a deterministic calendar queue; the parallel executor
//! runs every runnable rank in a round concurrently and merges
//! deliveries between rounds, preserving per-sender order; the fast
//! path (`crate::fastpath`) prices a known DAG in closed form. All
//! three walk the same message DAG, so every priced number is
//! bit-identical (tested in this module, in `tests/`, and against the
//! thread backend).
//!
//! ## The hot path
//!
//! Three structures keep the per-event constant small at `p = 10^6`:
//! the scheduler is a bucketed calendar queue (`crate::calq`, amortized
//! `O(1)` versus the heap's `O(log p)`), each mailbox is a slab of
//! recycled wire cells indexed by `(src, tag)` chains (`crate::slab`,
//! no steady-state allocation), and a delivery to a rank parked on
//! exactly that `(src, tag)` is priced on the spot — the wire never
//! touches a mailbox at all. Direct delivery is sound because a parked
//! rank's queue for its awaited key is empty by construction (it parked
//! on `pop() == None` and every later matching wire would have been
//! delivered directly), and pricing early is invisible because the
//! receiver is parked and its context depends only on its own state
//! and the wire.
//!
//! ## Deadlock
//!
//! Sends are eager, so a rank can only block in `Recv`. When no rank is
//! runnable and some are still live, every live rank is blocked on an
//! empty `(src, tag)` queue that no future send can fill — a *proven*
//! deadlock, reported as [`SimError::Deadlock`] with the full blocked
//! set, in zero wall-clock time.

use crate::calq::{CalendarQueue, SchedKey};
use crate::ctx::RankCtx;
use crate::fastpath;
use crate::program::RankProgram;
use crate::slab::Mailbox;
use crate::step::Step;
use psse_sim::error::SimResult;
use psse_sim::{Profile, SimConfig, SimError, Tag};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Executor health counters for one run: how hard the hot-path
/// structures worked. Zero on the analytic fast path and on the thread
/// backend (nothing is scheduled or parked there). Exported process-wide
/// as `event.*` metrics via [`crate::export_health`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Sum over ranks of the peak number of wires parked in the rank's
    /// mailbox slab (an upper bound on the global in-flight peak).
    pub slab_live_peak: u64,
    /// Deliveries that reused a freed slab cell instead of growing.
    pub slab_recycled: u64,
    /// Scheduler keys that detoured through the calendar queue's
    /// overflow heap (far-future events; should be rare).
    pub calq_overflow: u64,
}

/// The result of running programs on the event backend: the finished
/// programs (which carry any algorithm results) plus the run's profile.
pub struct EventOutcome<P> {
    /// The per-rank programs after completion, indexed by rank id.
    pub programs: Vec<P>,
    /// Per-rank counters, traces, and the virtual makespan — the same
    /// `Profile` the thread backend produces, byte-identical.
    pub profile: Profile,
    /// Executor health counters (not part of the byte-identity
    /// contract; they describe the engine, not the simulated machine).
    pub stats: ExecStats,
}

// Manual impl so `P` needs no `Debug` bound (programs are elided).
impl<P> std::fmt::Debug for EventOutcome<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventOutcome")
            .field("p", &self.profile.p())
            .field("profile", &self.profile)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked,
    Done,
    /// Failed with an error collected in the executor's error list.
    Dead,
}

/// A receive the rank is parked on: `(src, tag, t0)`.
type Waiting = (usize, Tag, f64);

struct Slot<P> {
    program: P,
    ctx: RankCtx,
    status: Status,
    /// Undelivered transfers, held in per-`(src, tag)` FIFO chains
    /// threaded through a recycling slab (see `crate::slab`).
    inbox: Mailbox,
    waiting: Option<Waiting>,
    pending: Option<crate::step::Delivered>,
}

/// An outgoing transfer buffered during a rank's turn:
/// `(dest, src, tag, wire)`.
type Outgoing = (usize, usize, Tag, crate::ctx::Wire);

/// Run one rank until it blocks, completes, or fails. Outgoing
/// transfers to other ranks are buffered in `out` (delivery is the
/// caller's job); self-sends land in the rank's own inbox immediately,
/// mirroring the thread backend's "self-send is instantly receivable".
fn advance<P: RankProgram>(
    r: usize,
    slot: &mut Slot<P>,
    cfg: &SimConfig,
    out: &mut Vec<Outgoing>,
) -> SimResult<()> {
    // Complete the receive we were parked on, if any. (Deliveries to a
    // parked rank are normally priced at delivery time — see the
    // executors — so this mailbox probe is a belt-and-braces fallback.)
    if let Some((src, tag, t0)) = slot.waiting.take() {
        match slot.inbox.pop(src, tag.0) {
            Some(wire) => {
                let d = slot.ctx.price_recv(cfg, t0, src, tag, wire);
                slot.pending = Some(d);
            }
            None => {
                // Spurious wake: still nothing for us.
                slot.waiting = Some((src, tag, t0));
                slot.status = Status::Blocked;
                return Ok(());
            }
        }
    }
    loop {
        let delivered = slot.pending.take();
        match slot.program.next(delivered) {
            Step::Compute { flops } => slot.ctx.compute(cfg, flops),
            Step::CollBegin { op } => slot.ctx.mark_collective_begin(cfg, op),
            Step::CollEnd { op } => slot.ctx.mark_collective_end(cfg, op),
            Step::Send { dest, tag, payload } => {
                let wire = slot.ctx.price_send(cfg, dest, tag, payload)?;
                if dest == r {
                    slot.inbox.push(r, tag.0, wire);
                } else {
                    out.push((dest, r, tag, wire));
                }
            }
            Step::Recv { src, tag } => {
                let t0 = slot.ctx.begin_recv(src)?;
                match slot.inbox.pop(src, tag.0) {
                    Some(wire) => {
                        let d = slot.ctx.price_recv(cfg, t0, src, tag, wire);
                        slot.pending = Some(d);
                    }
                    None => {
                        slot.waiting = Some((src, tag, t0));
                        slot.status = Status::Blocked;
                        return Ok(());
                    }
                }
            }
            Step::Done => {
                if let Some(e) = slot.ctx.take_fault_error() {
                    return Err(e);
                }
                slot.status = Status::Done;
                return Ok(());
            }
        }
    }
}

fn make_slots<P>(programs: Vec<P>, cfg: &SimConfig) -> Vec<Slot<P>> {
    let p = programs.len();
    programs
        .into_iter()
        .enumerate()
        .map(|(r, program)| Slot {
            program,
            ctx: RankCtx::new(r, p, cfg),
            status: Status::Runnable,
            inbox: Mailbox::new(),
            waiting: None,
            pending: None,
        })
        .collect()
}

/// Collapse a finished run into its outcome, or the error the thread
/// backend's triage would surface: the lowest-ranked real failure wins;
/// otherwise all-blocked is a proven deadlock.
fn finish<P>(
    slots: Vec<Slot<P>>,
    errors: Vec<(usize, SimError)>,
    calq_overflow: u64,
) -> SimResult<EventOutcome<P>> {
    if let Some((_, err)) = errors.into_iter().min_by_key(|(r, _)| *r) {
        return Err(err);
    }
    let blocked: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.status == Status::Blocked)
        .map(|(r, _)| r)
        .collect();
    if !blocked.is_empty() {
        return Err(SimError::Deadlock {
            rank: blocked[0],
            blocked,
        });
    }
    let mut stats = ExecStats {
        calq_overflow,
        ..ExecStats::default()
    };
    let mut programs = Vec::with_capacity(slots.len());
    let mut per_rank = Vec::with_capacity(slots.len());
    let mut all_events = Vec::with_capacity(slots.len());
    for slot in slots {
        stats.slab_live_peak += slot.inbox.peak_live() as u64;
        stats.slab_recycled += slot.inbox.recycled();
        programs.push(slot.program);
        let (rank_stats, events) = slot.ctx.into_parts();
        per_rank.push(rank_stats);
        all_events.push(events);
    }
    // With tracing off each rank's event vec is simply empty — the
    // thread backend still reports one (empty) vec per rank, so mirror
    // that shape exactly for byte identity.
    let profile = Profile::with_events(per_rank, all_events);
    #[cfg(debug_assertions)]
    profile.assert_balanced()?;
    crate::health::accumulate(&stats);
    Ok(EventOutcome {
        programs,
        profile,
        stats,
    })
}

fn check_world(p: usize, cfg: &SimConfig) -> SimResult<()> {
    if p == 0 {
        return Err(SimError::InvalidConfig("world size p must be >= 1".into()));
    }
    cfg.validate()
}

/// The discrete-event machine.
pub struct EventMachine;

impl EventMachine {
    /// Run `p` rank programs under the serial virtual-time scheduler.
    ///
    /// When every program claims the same analytic collective and
    /// nothing observes individual events, the run is priced in closed
    /// form (`crate::fastpath`) — byte-identical output, no scheduling.
    /// Otherwise runnable ranks are dispatched in ascending
    /// `(time, rank, seq)` order from a calendar queue; each rank runs
    /// greedily until it blocks in `Recv` or finishes. Deterministic by
    /// construction; byte-identical to the thread backend and to
    /// [`EventMachine::run_parallel`].
    pub fn run<P, F>(p: usize, cfg: &SimConfig, mut make: F) -> SimResult<EventOutcome<P>>
    where
        P: RankProgram,
        F: FnMut(usize, usize) -> P,
    {
        check_world(p, cfg)?;
        let programs: Vec<P> = (0..p).map(|r| make(r, p)).collect();
        if let Some(profile) = fastpath::try_run(p, cfg, &programs) {
            return Ok(EventOutcome {
                programs,
                profile,
                stats: ExecStats::default(),
            });
        }
        Self::run_serial(cfg, make_slots(programs, cfg))
    }

    /// [`EventMachine::run`] with the analytic fast path disabled: the
    /// general scheduled executor, unconditionally. This is the oracle
    /// half of the fast-path differential tests (`fastpath_identity`),
    /// and what `PSSE_EVENT_NO_FASTPATH=1` forces process-wide.
    pub fn run_general<P, F>(p: usize, cfg: &SimConfig, mut make: F) -> SimResult<EventOutcome<P>>
    where
        P: RankProgram,
        F: FnMut(usize, usize) -> P,
    {
        check_world(p, cfg)?;
        let programs: Vec<P> = (0..p).map(|r| make(r, p)).collect();
        Self::run_serial(cfg, make_slots(programs, cfg))
    }

    fn run_serial<P: RankProgram>(
        cfg: &SimConfig,
        mut slots: Vec<Slot<P>>,
    ) -> SimResult<EventOutcome<P>> {
        let p = slots.len();
        // Width heuristic: one max-size chunk latency per bucket. With
        // zero prices (counters-only runs) this is 0 and the calendar
        // degenerates to exactly the old single binary heap.
        let width = cfg.alpha_t + cfg.beta_t * cfg.max_message_words as f64;
        let mut queue = CalendarQueue::new(width);
        let mut seq: u64 = 0;
        for rank in 0..p {
            queue.push(SchedKey {
                time: 0.0,
                rank,
                seq,
            });
            seq += 1;
        }
        let mut errors: Vec<(usize, SimError)> = Vec::new();
        let mut out: Vec<Outgoing> = Vec::new();
        while let Some(key) = queue.pop() {
            // Cooperative cancellation: a watchdog can abandon a hung
            // sweep between scheduler turns (the loop never sleeps, so
            // one check per pop is cheap and prompt).
            if let Some(flag) = &cfg.cancel {
                if flag.is_cancelled() {
                    return Err(SimError::Cancelled);
                }
            }
            let r = key.rank;
            if slots[r].status != Status::Runnable {
                continue;
            }
            if let Err(e) = advance(r, &mut slots[r], cfg, &mut out) {
                slots[r].status = Status::Dead;
                errors.push((r, e));
            }
            // Deliver this turn's sends. A receiver parked on exactly
            // this (src, tag) gets the wire priced on the spot (its
            // queue for the key is provably empty; `price_recv` lands
            // its clock on max(now, depart), which is also the wake
            // time the old mailbox route would have scheduled).
            for (dest, src, tag, wire) in out.drain(..) {
                let slot = &mut slots[dest];
                if slot.status == Status::Blocked {
                    if let Some((wsrc, wtag, t0)) = slot.waiting {
                        if wsrc == src && wtag == tag {
                            slot.waiting = None;
                            let d = slot.ctx.price_recv(cfg, t0, src, tag, wire);
                            slot.pending = Some(d);
                            slot.status = Status::Runnable;
                            queue.push(SchedKey {
                                time: slot.ctx.now(),
                                rank: dest,
                                seq,
                            });
                            seq += 1;
                            continue;
                        }
                    }
                }
                slot.inbox.push(src, tag.0, wire);
            }
        }
        let overflow = queue.overflow_pushes();
        finish(slots, errors, overflow)
    }

    /// Run `p` rank programs on `workers` threads with round-based work
    /// stealing. Observable output (profiles, traces, results, errors)
    /// is byte-identical to [`EventMachine::run`] — see the module docs
    /// for the argument, and the tests for the enforcement. The
    /// analytic fast path applies exactly as in [`EventMachine::run`].
    ///
    /// Each round, every runnable rank is advanced to its next block
    /// (workers steal ranks from a shared cursor); deliveries are
    /// merged between rounds in worker order, which preserves the
    /// per-sender FIFO the matching depends on.
    pub fn run_parallel<P, F>(
        p: usize,
        cfg: &SimConfig,
        mut make: F,
        workers: usize,
    ) -> SimResult<EventOutcome<P>>
    where
        P: RankProgram + Send,
        F: FnMut(usize, usize) -> P,
    {
        check_world(p, cfg)?;
        let programs: Vec<P> = (0..p).map(|r| make(r, p)).collect();
        if let Some(profile) = fastpath::try_run(p, cfg, &programs) {
            return Ok(EventOutcome {
                programs,
                profile,
                stats: ExecStats::default(),
            });
        }
        let workers = workers.max(1);
        let slots: Vec<Mutex<Slot<P>>> = make_slots(programs, cfg)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let mut runnable: Vec<usize> = (0..p).collect();
        let mut errors: Vec<(usize, SimError)> = Vec::new();
        while !runnable.is_empty() {
            // Same cooperative cancellation point as the serial loop,
            // checked once per round.
            if let Some(flag) = &cfg.cancel {
                if flag.is_cancelled() {
                    return Err(SimError::Cancelled);
                }
            }
            let cursor = AtomicUsize::new(0);
            let n_workers = workers.min(runnable.len());
            // One delivery buffer per worker; merged in worker order
            // below. A rank runs on exactly one worker per round, so a
            // sender's wires stay contiguous and in program order.
            type WorkerBuf = (Vec<Outgoing>, Vec<(usize, SimError)>);
            let mut buffers: Vec<WorkerBuf> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_workers)
                    .map(|_| {
                        let cursor = &cursor;
                        let runnable = &runnable;
                        let slots = &slots;
                        scope.spawn(move || {
                            let mut out: Vec<Outgoing> = Vec::new();
                            let mut errs: Vec<(usize, SimError)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&r) = runnable.get(i) else { break };
                                let mut slot = slots[r].lock().expect("slot lock");
                                if let Err(e) = advance(r, &mut slot, cfg, &mut out) {
                                    slot.status = Status::Dead;
                                    errs.push((r, e));
                                }
                            }
                            (out, errs)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("event worker panicked"))
                    .collect()
            });
            // Merge: deliveries in worker order (direct-priced when the
            // receiver is parked on exactly this key, as in the serial
            // loop), then the next round's runnable set in ascending
            // rank order for determinism.
            let mut woken: Vec<usize> = Vec::new();
            for (out, errs) in &mut buffers {
                errors.append(errs);
                for (dest, src, tag, wire) in out.drain(..) {
                    let mut slot = slots[dest].lock().expect("slot lock");
                    if slot.status == Status::Blocked {
                        if let Some((wsrc, wtag, t0)) = slot.waiting {
                            if wsrc == src && wtag == tag {
                                slot.waiting = None;
                                let d = slot.ctx.price_recv(cfg, t0, src, tag, wire);
                                slot.pending = Some(d);
                                slot.status = Status::Runnable;
                                woken.push(dest);
                                continue;
                            }
                        }
                    }
                    slot.inbox.push(src, tag.0, wire);
                }
            }
            woken.sort_unstable();
            woken.dedup();
            runnable = woken;
        }
        let slots: Vec<Slot<P>> = slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot lock"))
            .collect();
        finish(slots, errors, 0)
    }
}
