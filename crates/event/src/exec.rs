//! The discrete-event executors: serial (virtual-time priority queue)
//! and parallel (round-based work stealing), byte-identical by
//! construction.
//!
//! ## Why the two executors cannot disagree
//!
//! A rank's profile is a pure function of its own operation sequence
//! plus, for each receive, the `(depart_time, n_chunks, words)` of the
//! matching transfer. Matching is per-`(src, tag)` FIFO, and each
//! `(src, tag)` key has a single sender whose sends are totally ordered
//! by its own program — so *which* wire matches *which* receive is
//! fixed by the programs alone, independent of executor scheduling.
//! The serial executor orders runnable ranks by `(virtual time, rank,
//! seq)` from a deterministic priority queue; the parallel executor
//! runs every runnable rank in a round concurrently and merges
//! deliveries between rounds, preserving per-sender order. Both walk
//! the same message DAG, so every priced number is bit-identical
//! (tested in this module and against the thread backend).
//!
//! ## Deadlock
//!
//! Sends are eager, so a rank can only block in `Recv`. When no rank is
//! runnable and some are still live, every live rank is blocked on an
//! empty `(src, tag)` queue that no future send can fill — a *proven*
//! deadlock, reported as [`SimError::Deadlock`] with the full blocked
//! set, in zero wall-clock time.

use crate::ctx::{RankCtx, Wire};
use crate::program::RankProgram;
use crate::step::Step;
use psse_sim::error::SimResult;
use psse_sim::{Profile, SimConfig, SimError, Tag};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The result of running programs on the event backend: the finished
/// programs (which carry any algorithm results) plus the run's profile.
pub struct EventOutcome<P> {
    /// The per-rank programs after completion, indexed by rank id.
    pub programs: Vec<P>,
    /// Per-rank counters, traces, and the virtual makespan — the same
    /// `Profile` the thread backend produces, byte-identical.
    pub profile: Profile,
}

// Manual impl so `P` needs no `Debug` bound (programs are elided).
impl<P> std::fmt::Debug for EventOutcome<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventOutcome")
            .field("p", &self.profile.p())
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked,
    Done,
    /// Failed with an error collected in the executor's error list.
    Dead,
}

/// A receive the rank is parked on: `(src, tag, t0)`.
type Waiting = (usize, Tag, f64);

struct Slot<P> {
    program: P,
    ctx: RankCtx,
    status: Status,
    /// Per-`(src, tag)` FIFO queues of undelivered transfers. Empty
    /// queues are removed so the map stays `O(active keys)` at `p = 10^6`.
    inbox: HashMap<(usize, u64), VecDeque<Wire>>,
    waiting: Option<Waiting>,
    pending: Option<crate::step::Delivered>,
}

/// An outgoing transfer buffered during a rank's turn:
/// `(dest, src, tag, wire)`.
type Outgoing = (usize, usize, Tag, Wire);

/// Scheduler key: ranks are dispatched in ascending `(time, rank, seq)`
/// order; `total_cmp` makes the f64 ordering total and deterministic.
#[derive(PartialEq)]
struct SchedKey {
    time: f64,
    rank: usize,
    seq: u64,
}

impl Eq for SchedKey {}

impl PartialOrd for SchedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SchedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.rank.cmp(&other.rank))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Run one rank until it blocks, completes, or fails. Outgoing
/// transfers to other ranks are buffered in `out` (delivery is the
/// caller's job); self-sends land in the rank's own inbox immediately,
/// mirroring the thread backend's "self-send is instantly receivable".
fn advance<P: RankProgram>(
    r: usize,
    slot: &mut Slot<P>,
    cfg: &SimConfig,
    out: &mut Vec<Outgoing>,
) -> SimResult<()> {
    // Complete the receive we were parked on, if any.
    if let Some((src, tag, t0)) = slot.waiting.take() {
        match pop_inbox(&mut slot.inbox, src, tag) {
            Some(wire) => {
                let d = slot.ctx.price_recv(cfg, t0, src, tag, wire);
                slot.pending = Some(d);
            }
            None => {
                // Spurious wake: still nothing for us.
                slot.waiting = Some((src, tag, t0));
                slot.status = Status::Blocked;
                return Ok(());
            }
        }
    }
    loop {
        let delivered = slot.pending.take();
        match slot.program.next(delivered) {
            Step::Compute { flops } => slot.ctx.compute(cfg, flops),
            Step::CollBegin { op } => slot.ctx.mark_collective_begin(cfg, op),
            Step::CollEnd { op } => slot.ctx.mark_collective_end(cfg, op),
            Step::Send { dest, tag, payload } => {
                let wire = slot.ctx.price_send(cfg, dest, tag, payload)?;
                if dest == r {
                    slot.inbox.entry((r, tag.0)).or_default().push_back(wire);
                } else {
                    out.push((dest, r, tag, wire));
                }
            }
            Step::Recv { src, tag } => {
                let t0 = slot.ctx.begin_recv(src)?;
                match pop_inbox(&mut slot.inbox, src, tag) {
                    Some(wire) => {
                        let d = slot.ctx.price_recv(cfg, t0, src, tag, wire);
                        slot.pending = Some(d);
                    }
                    None => {
                        slot.waiting = Some((src, tag, t0));
                        slot.status = Status::Blocked;
                        return Ok(());
                    }
                }
            }
            Step::Done => {
                if let Some(e) = slot.ctx.take_fault_error() {
                    return Err(e);
                }
                slot.status = Status::Done;
                return Ok(());
            }
        }
    }
}

fn pop_inbox(
    inbox: &mut HashMap<(usize, u64), VecDeque<Wire>>,
    src: usize,
    tag: Tag,
) -> Option<Wire> {
    let key = (src, tag.0);
    let q = inbox.get_mut(&key)?;
    let wire = q.pop_front();
    if q.is_empty() {
        inbox.remove(&key);
    }
    wire
}

fn make_slots<P, F>(p: usize, cfg: &SimConfig, mut make: F) -> Vec<Slot<P>>
where
    F: FnMut(usize, usize) -> P,
{
    (0..p)
        .map(|r| Slot {
            program: make(r, p),
            ctx: RankCtx::new(r, p, cfg),
            status: Status::Runnable,
            inbox: HashMap::new(),
            waiting: None,
            pending: None,
        })
        .collect()
}

/// Collapse a finished run into its outcome, or the error the thread
/// backend's triage would surface: the lowest-ranked real failure wins;
/// otherwise all-blocked is a proven deadlock.
fn finish<P>(slots: Vec<Slot<P>>, errors: Vec<(usize, SimError)>) -> SimResult<EventOutcome<P>> {
    if let Some((_, err)) = errors.into_iter().min_by_key(|(r, _)| *r) {
        return Err(err);
    }
    let blocked: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.status == Status::Blocked)
        .map(|(r, _)| r)
        .collect();
    if !blocked.is_empty() {
        return Err(SimError::Deadlock {
            rank: blocked[0],
            blocked,
        });
    }
    let mut programs = Vec::with_capacity(slots.len());
    let mut per_rank = Vec::with_capacity(slots.len());
    let mut all_events = Vec::with_capacity(slots.len());
    for slot in slots {
        programs.push(slot.program);
        let (stats, events) = slot.ctx.into_parts();
        per_rank.push(stats);
        all_events.push(events);
    }
    // With tracing off each rank's event vec is simply empty — the
    // thread backend still reports one (empty) vec per rank, so mirror
    // that shape exactly for byte identity.
    let profile = Profile::with_events(per_rank, all_events);
    #[cfg(debug_assertions)]
    profile.assert_balanced()?;
    Ok(EventOutcome { programs, profile })
}

/// The discrete-event machine.
pub struct EventMachine;

impl EventMachine {
    /// Run `p` rank programs under the serial virtual-time scheduler.
    ///
    /// Runnable ranks are dispatched in ascending `(time, rank, seq)`
    /// order from a binary heap; each rank runs greedily until it
    /// blocks in `Recv` or finishes. Deterministic by construction;
    /// byte-identical to the thread backend and to
    /// [`EventMachine::run_parallel`].
    pub fn run<P, F>(p: usize, cfg: &SimConfig, make: F) -> SimResult<EventOutcome<P>>
    where
        P: RankProgram,
        F: FnMut(usize, usize) -> P,
    {
        if p == 0 {
            return Err(SimError::InvalidConfig("world size p must be >= 1".into()));
        }
        cfg.validate()?;
        let mut slots = make_slots(p, cfg, make);
        let mut heap: BinaryHeap<Reverse<SchedKey>> = BinaryHeap::with_capacity(p);
        let mut seq: u64 = 0;
        for rank in 0..p {
            heap.push(Reverse(SchedKey {
                time: 0.0,
                rank,
                seq,
            }));
            seq += 1;
        }
        let mut errors: Vec<(usize, SimError)> = Vec::new();
        let mut out: Vec<Outgoing> = Vec::new();
        while let Some(Reverse(key)) = heap.pop() {
            // Cooperative cancellation: a watchdog can abandon a hung
            // sweep between scheduler turns (the loop never sleeps, so
            // one check per pop is cheap and prompt).
            if let Some(flag) = &cfg.cancel {
                if flag.is_cancelled() {
                    return Err(SimError::Cancelled);
                }
            }
            let r = key.rank;
            if slots[r].status != Status::Runnable {
                continue;
            }
            if let Err(e) = advance(r, &mut slots[r], cfg, &mut out) {
                slots[r].status = Status::Dead;
                errors.push((r, e));
            }
            // Deliver this turn's sends; wake matching blocked receivers.
            for (dest, src, tag, wire) in out.drain(..) {
                let depart = wire.depart_time;
                let slot = &mut slots[dest];
                slot.inbox.entry((src, tag.0)).or_default().push_back(wire);
                if slot.status == Status::Blocked {
                    if let Some((wsrc, wtag, _)) = slot.waiting {
                        if wsrc == src && wtag == tag {
                            slot.status = Status::Runnable;
                            heap.push(Reverse(SchedKey {
                                time: slot.ctx.now().max(depart),
                                rank: dest,
                                seq,
                            }));
                            seq += 1;
                        }
                    }
                }
            }
        }
        finish(slots, errors)
    }

    /// Run `p` rank programs on `workers` threads with round-based work
    /// stealing. Observable output (profiles, traces, results, errors)
    /// is byte-identical to [`EventMachine::run`] — see the module docs
    /// for the argument, and the tests for the enforcement.
    ///
    /// Each round, every runnable rank is advanced to its next block
    /// (workers steal ranks from a shared cursor); deliveries are
    /// merged between rounds in worker order, which preserves the
    /// per-sender FIFO the matching depends on.
    pub fn run_parallel<P, F>(
        p: usize,
        cfg: &SimConfig,
        make: F,
        workers: usize,
    ) -> SimResult<EventOutcome<P>>
    where
        P: RankProgram + Send,
        F: FnMut(usize, usize) -> P,
    {
        if p == 0 {
            return Err(SimError::InvalidConfig("world size p must be >= 1".into()));
        }
        cfg.validate()?;
        let workers = workers.max(1);
        let slots: Vec<Mutex<Slot<P>>> = make_slots(p, cfg, make)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let mut runnable: Vec<usize> = (0..p).collect();
        let mut errors: Vec<(usize, SimError)> = Vec::new();
        while !runnable.is_empty() {
            // Same cooperative cancellation point as the serial loop,
            // checked once per round.
            if let Some(flag) = &cfg.cancel {
                if flag.is_cancelled() {
                    return Err(SimError::Cancelled);
                }
            }
            let cursor = AtomicUsize::new(0);
            let n_workers = workers.min(runnable.len());
            // One delivery buffer per worker; merged in worker order
            // below. A rank runs on exactly one worker per round, so a
            // sender's wires stay contiguous and in program order.
            type WorkerBuf = (Vec<Outgoing>, Vec<(usize, SimError)>);
            let mut buffers: Vec<WorkerBuf> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_workers)
                    .map(|_| {
                        let cursor = &cursor;
                        let runnable = &runnable;
                        let slots = &slots;
                        scope.spawn(move || {
                            let mut out: Vec<Outgoing> = Vec::new();
                            let mut errs: Vec<(usize, SimError)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&r) = runnable.get(i) else { break };
                                let mut slot = slots[r].lock().expect("slot lock");
                                if let Err(e) = advance(r, &mut slot, cfg, &mut out) {
                                    slot.status = Status::Dead;
                                    errs.push((r, e));
                                }
                            }
                            (out, errs)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("event worker panicked"))
                    .collect()
            });
            // Merge: deliveries in worker order, then compute the next
            // round's runnable set (ranks whose parked receive now has
            // a matching wire), in ascending rank order for determinism.
            let mut woken: Vec<usize> = Vec::new();
            for (out, errs) in &mut buffers {
                errors.append(errs);
                for (dest, src, tag, wire) in out.drain(..) {
                    let mut slot = slots[dest].lock().expect("slot lock");
                    slot.inbox.entry((src, tag.0)).or_default().push_back(wire);
                    if slot.status == Status::Blocked {
                        if let Some((wsrc, wtag, _)) = slot.waiting {
                            if wsrc == src && wtag == tag {
                                slot.status = Status::Runnable;
                                woken.push(dest);
                            }
                        }
                    }
                }
            }
            woken.sort_unstable();
            woken.dedup();
            runnable = woken;
        }
        let slots: Vec<Slot<P>> = slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot lock"))
            .collect();
        finish(slots, errors)
    }
}
