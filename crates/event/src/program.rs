//! The resumable rank-program trait.

use crate::step::{Delivered, Step};

/// A collective whose per-rank step sequence is known in closed form.
///
/// When every rank of a run reports the same `AnalyticOp` (and no
/// feature that observes individual events — tracing, faults,
/// hierarchy, data payloads — is active), the event executor prices the
/// whole collective analytically instead of scheduling its `O(p log p)`
/// messages one by one. The fast path replays the *identical* sequence
/// of Eq. 1/2 pricing operations per rank, in the same f64 operand
/// order, so profiles stay byte-identical with the general path; see
/// `crate::fastpath`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyticOp {
    /// Binomial-tree reduce to rank 0 followed by binomial broadcast,
    /// `words` per edge (`programs::BinomialAllreduce`, counted mode).
    BinomialAllreduce {
        /// Payload words per tree edge.
        words: usize,
    },
    /// Recursive-doubling allreduce, `words` per exchange, `p` a power
    /// of two (`programs::RecursiveDoublingAllreduce`, counted mode).
    RecursiveDoublingAllreduce {
        /// Payload words per pairwise exchange.
        words: usize,
    },
    /// `p − 1` ring shifts with elementwise merge
    /// (`programs::RingAllreduce`, counted mode).
    RingAllreduce {
        /// Payload words per ring hop.
        words: usize,
    },
}

/// A rank's algorithm as a resumable state machine.
///
/// The executor repeatedly calls [`RankProgram::next`]; the program
/// returns its next visible action as a [`Step`] and keeps whatever
/// private state it needs between calls. `delivered` is `Some` exactly
/// when the *previous* step was [`Step::Recv`] and carries that
/// transfer's payload; it is `None` otherwise.
///
/// The same program runs unchanged on either backend via
/// [`crate::run_programs`]: on `Backend::Threads` each step is replayed
/// through a `psse_sim::Rank` on its own pooled thread (the bit-identity
/// oracle); on `Backend::Events` steps are priced by the event
/// executor's rank context and scheduled by virtual time —
/// byte-identical profiles, six orders of magnitude more ranks per
/// process.
///
/// Contract:
/// * `next` is called until it returns [`Step::Done`], never after;
/// * a program must consume every transfer it is sent (unreceived
///   transfers fail the debug-build balance check, like the thread
///   backend);
/// * all sim-visible behavior must go through steps — a program that
///   does hidden work is still deterministic but prices nothing.
pub trait RankProgram {
    /// Produce the next step. See the trait docs for the `delivered`
    /// contract.
    fn next(&mut self, delivered: Option<Delivered>) -> Step;

    /// Declare this (not-yet-started) program as an analytically priced
    /// collective. `None` (the default) always takes the general
    /// stepped path. Returning `Some` is a *claim* that the program's
    /// full step sequence is exactly the named collective's — the
    /// executor cross-checks only that all ranks agree, and the
    /// `fastpath_identity` differential tests hold the two paths
    /// byte-equal.
    fn analytic(&self) -> Option<AnalyticOp> {
        None
    }
}

impl<T: RankProgram + ?Sized> RankProgram for Box<T> {
    fn next(&mut self, delivered: Option<Delivered>) -> Step {
        (**self).next(delivered)
    }

    fn analytic(&self) -> Option<AnalyticOp> {
        (**self).analytic()
    }
}
