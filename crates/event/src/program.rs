//! The resumable rank-program trait.

use crate::step::{Delivered, Step};

/// A rank's algorithm as a resumable state machine.
///
/// The executor repeatedly calls [`RankProgram::next`]; the program
/// returns its next visible action as a [`Step`] and keeps whatever
/// private state it needs between calls. `delivered` is `Some` exactly
/// when the *previous* step was [`Step::Recv`] and carries that
/// transfer's payload; it is `None` otherwise.
///
/// The same program runs unchanged on either backend via
/// [`crate::run_programs`]: on `Backend::Threads` each step is replayed
/// through a `psse_sim::Rank` on its own pooled thread (the bit-identity
/// oracle); on `Backend::Events` steps are priced by the event
/// executor's rank context and scheduled by virtual time —
/// byte-identical profiles, six orders of magnitude more ranks per
/// process.
///
/// Contract:
/// * `next` is called until it returns [`Step::Done`], never after;
/// * a program must consume every transfer it is sent (unreceived
///   transfers fail the debug-build balance check, like the thread
///   backend);
/// * all sim-visible behavior must go through steps — a program that
///   does hidden work is still deterministic but prices nothing.
pub trait RankProgram {
    /// Produce the next step. See the trait docs for the `delivered`
    /// contract.
    fn next(&mut self, delivered: Option<Delivered>) -> Step;
}

impl<T: RankProgram + ?Sized> RankProgram for Box<T> {
    fn next(&mut self, delivered: Option<Delivered>) -> Step {
        (**self).next(delivered)
    }
}
