//! Process-global event-engine health counters and their export into a
//! `psse-metrics` registry.
//!
//! Every completed event-backend run folds its [`ExecStats`] into these
//! atomics (see `exec::finish`); a harness that assembles a metrics
//! registry — notably `psse-lab`'s sweep runner — calls
//! [`export_health`] once at snapshot time to surface them as:
//!
//! * `event.slab.live` (gauge) — the largest per-run sum of per-rank
//!   peak parked wires seen so far (a memory high-water mark);
//! * `event.slab.recycled` (counter) — mailbox deliveries served from
//!   the slab free list across all runs;
//! * `event.calq.overflow` (counter) — scheduler keys that detoured
//!   through the calendar queue's overflow heap across all runs.
//!
//! The counters describe the *engine*, not the simulated machine: they
//! are deliberately outside the byte-identity contract, and runs that
//! end in a simulation error contribute nothing (their slots never
//! reach `finish`).

use crate::exec::ExecStats;
use psse_metrics::Registry;
use std::sync::atomic::{AtomicU64, Ordering};

static SLAB_LIVE_PEAK: AtomicU64 = AtomicU64::new(0);
static SLAB_RECYCLED: AtomicU64 = AtomicU64::new(0);
static CALQ_OVERFLOW: AtomicU64 = AtomicU64::new(0);

/// Fold one completed run's counters into the process totals.
pub(crate) fn accumulate(stats: &ExecStats) {
    SLAB_LIVE_PEAK.fetch_max(stats.slab_live_peak, Ordering::Relaxed);
    SLAB_RECYCLED.fetch_add(stats.slab_recycled, Ordering::Relaxed);
    CALQ_OVERFLOW.fetch_add(stats.calq_overflow, Ordering::Relaxed);
}

/// Current process totals as an [`ExecStats`] (peak is the max across
/// runs, the counters are sums).
pub fn health_totals() -> ExecStats {
    ExecStats {
        slab_live_peak: SLAB_LIVE_PEAK.load(Ordering::Relaxed),
        slab_recycled: SLAB_RECYCLED.load(Ordering::Relaxed),
        calq_overflow: CALQ_OVERFLOW.load(Ordering::Relaxed),
    }
}

/// Publish the process totals into `reg` under the `event.*` names
/// listed in the module docs.
pub fn export_health(reg: &Registry) -> Result<(), String> {
    let totals = health_totals();
    reg.gauge("event.slab.live")?
        .set(totals.slab_live_peak as i64);
    reg.counter("event.slab.recycled")?
        .add(totals.slab_recycled);
    reg.counter("event.calq.overflow")?
        .add(totals.calq_overflow);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `accumulate` maxes the gauge and sums the counters; `export`
    /// lands them in a registry snapshot under the `event.*` names.
    #[test]
    fn accumulate_and_export() {
        accumulate(&ExecStats {
            slab_live_peak: 7,
            slab_recycled: 3,
            calq_overflow: 1,
        });
        accumulate(&ExecStats {
            slab_live_peak: 5, // below the peak: must not lower it
            slab_recycled: 2,
            calq_overflow: 0,
        });
        let totals = health_totals();
        assert!(totals.slab_live_peak >= 7);
        assert!(totals.slab_recycled >= 5);
        assert!(totals.calq_overflow >= 1);

        let reg = Registry::new();
        export_health(&reg).unwrap();
        let snap = reg.snapshot();
        assert!(snap.get("event.slab.live").is_some());
        assert!(snap.get("event.slab.recycled").is_some());
        assert!(snap.get("event.calq.overflow").is_some());
    }
}
