//! Per-rank mailbox: a slab of in-flight [`Wire`]s with free-list
//! recycling, plus an index of `(src, tag)` FIFO chains threaded
//! through the slab.
//!
//! The previous mailbox was `HashMap<(usize, u64), VecDeque<Wire>>` per
//! rank: every delivery paid a SipHash of the key, a map probe, and —
//! on a fresh key — a `VecDeque` allocation, all on the scheduler's
//! critical path. At `p = 10^5` a single binomial allreduce pushes
//! ~2·10^5 wires through those maps.
//!
//! Here a delivery is: grab a node from the slab free list (an index
//! bump in steady state — no allocation once the high-water mark is
//! reached), thread it onto the tail of its `(src, tag)` chain, done.
//! The chain index is still a hash map — workloads like sample sort
//! legitimately hold `O(p)` live keys per rank, so any linear scan
//! would be quadratic — but it is keyed by a fixed-width `(u32, u64)`
//! pair under a cheap multiplicative hash (the Firefox/rustc "Fx"
//! function) instead of tuple-of-`usize` under SipHash, and its values
//! are two `u32` indices, not owning containers.
//!
//! Matching order is untouched: chains are per-`(src, tag)` FIFO, which
//! is exactly the `VecDeque` semantics, and the simulator's no-wildcard
//! matching rule means FIFO-per-key is the whole ordering contract.

use crate::ctx::Wire;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplicative hash (as used by rustc): fast, fixed-width,
/// and deterministic — no per-process random state, so mailbox
/// iteration order could never vary across runs even if we iterated
/// (we don't; all reads are keyed).
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Slab sentinel: "no node".
const NIL: u32 = u32::MAX;

/// One slab cell: a parked wire plus the link to the next wire in its
/// `(src, tag)` chain (or the next free cell, when on the free list).
struct WireNode {
    wire: Wire,
    next: u32,
}

/// Head and tail of one `(src, tag)` FIFO chain in the slab.
struct Chain {
    head: u32,
    tail: u32,
}

/// A rank's mailbox: slab + chain index. See the module docs.
pub(crate) struct Mailbox {
    nodes: Vec<WireNode>,
    /// Head of the free list (`NIL` when the slab must grow).
    free: u32,
    chains: HashMap<(u32, u64), Chain, FxBuildHasher>,
    /// Wires currently parked here.
    live: usize,
    /// High-water mark of `live`.
    peak_live: usize,
    /// Deliveries served from the free list (steady-state recycling).
    recycled: u64,
}

/// A wire-shaped hole left in a slab cell while its real wire is out.
fn placeholder() -> Wire {
    Wire {
        n_chunks: 0,
        depart_time: 0.0,
        words: 0,
        data: None,
    }
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Mailbox {
            nodes: Vec::new(),
            free: NIL,
            chains: HashMap::default(),
            live: 0,
            peak_live: 0,
            recycled: 0,
        }
    }

    /// Wires currently parked in this mailbox.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of parked wires (health metric `event.slab.live`).
    pub(crate) fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Deliveries that reused a freed slab cell (`event.slab.recycled`).
    pub(crate) fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Park `wire` at the back of the `(src, tag)` chain.
    pub(crate) fn push(&mut self, src: usize, tag: u64, wire: Wire) {
        let idx = match self.free {
            NIL => {
                self.nodes.push(WireNode { wire, next: NIL });
                (self.nodes.len() - 1) as u32
            }
            idx => {
                let node = &mut self.nodes[idx as usize];
                self.free = node.next;
                node.wire = wire;
                node.next = NIL;
                self.recycled += 1;
                idx
            }
        };
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        match self.chains.entry((src as u32, tag)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let chain = e.get_mut();
                self.nodes[chain.tail as usize].next = idx;
                chain.tail = idx;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Chain {
                    head: idx,
                    tail: idx,
                });
            }
        }
    }

    /// Take the front wire of the `(src, tag)` chain, freeing its cell.
    pub(crate) fn pop(&mut self, src: usize, tag: u64) -> Option<Wire> {
        let key = (src as u32, tag);
        let chain = self.chains.get_mut(&key)?;
        let idx = chain.head;
        let node = &mut self.nodes[idx as usize];
        let wire = std::mem::replace(&mut node.wire, placeholder());
        let next = node.next;
        if next == NIL {
            self.chains.remove(&key);
        } else {
            chain.head = next;
        }
        self.nodes[idx as usize].next = self.free;
        self.free = idx;
        self.live -= 1;
        Some(wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(words: usize) -> Wire {
        Wire {
            n_chunks: 1,
            depart_time: 0.5,
            words,
            data: None,
        }
    }

    /// Per-key FIFO order survives interleaved keys and recycling.
    #[test]
    fn per_key_fifo_with_recycling() {
        let mut mb = Mailbox::new();
        mb.push(3, 7, wire(10));
        mb.push(3, 7, wire(11));
        mb.push(4, 7, wire(20));
        mb.push(3, 8, wire(30));
        assert_eq!(mb.live(), 4);
        assert_eq!(mb.pop(3, 7).unwrap().words, 10);
        assert_eq!(mb.pop(4, 7).unwrap().words, 20);
        assert!(mb.pop(4, 7).is_none());
        assert_eq!(mb.pop(3, 7).unwrap().words, 11);
        // Freed cells get reused: no slab growth for the next pushes.
        let cap = mb.nodes.len();
        mb.push(5, 9, wire(40));
        mb.push(5, 9, wire(41));
        mb.push(5, 9, wire(42));
        assert_eq!(mb.nodes.len(), cap);
        assert_eq!(mb.recycled(), 3);
        assert_eq!(mb.pop(5, 9).unwrap().words, 40);
        assert_eq!(mb.pop(5, 9).unwrap().words, 41);
        assert_eq!(mb.pop(5, 9).unwrap().words, 42);
        assert_eq!(mb.pop(3, 8).unwrap().words, 30);
        assert_eq!(mb.live(), 0);
        assert_eq!(mb.peak_live(), 4);
    }
}
