//! The continuation vocabulary of a rank program.
//!
//! A rank program is a resumable state machine: the executor calls
//! [`crate::program::RankProgram::next`] and gets back one [`Step`] —
//! the program's next visible action. Everything between two steps is
//! private program state; everything the simulator prices or records is
//! a step. This is the explicit-continuation form of the closure-based
//! `psse-sim` rank program: instead of blocking inside `recv`, the
//! program *returns* `Step::Recv` and is resumed with the delivery.

use psse_sim::{SharedPayload, Tag};
use std::sync::Arc;

/// What a send puts on the wire.
#[derive(Debug, Clone)]
pub enum Payload {
    /// `words` words, priced and counted but never materialized — the
    /// mega-scale mode (a million-rank run cannot afford real buffers).
    Counted(usize),
    /// Real words, shared zero-copy exactly like the thread backend's
    /// [`psse_sim::SharedPayload`] wire format.
    Data(SharedPayload),
}

impl Payload {
    /// Payload length in words.
    pub fn words(&self) -> usize {
        match self {
            Payload::Counted(w) => *w,
            Payload::Data(d) => d.len(),
        }
    }

    /// Materialize for the thread backend's wire (counted payloads
    /// become zero-filled buffers of the same length, so pricing and
    /// counters are unchanged).
    pub fn into_shared(self) -> SharedPayload {
        match self {
            Payload::Counted(w) => Arc::new(vec![0.0; w]),
            Payload::Data(d) => d,
        }
    }
}

/// A completed receive, handed to the program's next resumption.
#[derive(Debug, Clone)]
pub struct Delivered {
    /// Payload length in words.
    pub words: usize,
    /// The received buffer; `None` when the transfer was counted-only.
    pub data: Option<SharedPayload>,
}

impl Delivered {
    /// The received words, or an empty slice for counted transfers.
    pub fn values(&self) -> &[f64] {
        self.data.as_deref().map(Vec::as_slice).unwrap_or(&[])
    }
}

/// One visible action of a rank program. Mirrors the `psse-sim` rank
/// API one-to-one so a program can run on either backend byte-for-byte
/// (see `crate::run_programs`).
#[derive(Debug, Clone)]
pub enum Step {
    /// Execute `flops` floating-point operations (`γt·flops` seconds).
    Compute {
        /// Operations charged.
        flops: u64,
    },
    /// Send `payload` to `dest` under `tag` (eager, never blocks).
    Send {
        /// Destination rank.
        dest: usize,
        /// Transfer tag.
        tag: Tag,
        /// The payload.
        payload: Payload,
    },
    /// Block until the transfer from `src` under `tag` arrives; the
    /// program is resumed with `Some(`[`Delivered`]`)`.
    Recv {
        /// Source rank.
        src: usize,
        /// Transfer tag.
        tag: Tag,
    },
    /// Trace marker: a collective began (no cost; recorded only when
    /// tracing, exactly like the built-in collectives' markers).
    CollBegin {
        /// Collective name, e.g. `"allreduce_sum"`.
        op: &'static str,
    },
    /// Trace marker: the matching collective completed.
    CollEnd {
        /// Collective name.
        op: &'static str,
    },
    /// The program finished; `next` will not be called again.
    Done,
}
