//! A bucketed calendar queue for the serial virtual-time scheduler.
//!
//! The classic PDES result (Brown's calendar queue, and the ladder-queue
//! family after it) is that at large event counts the scheduler — not
//! the model — dominates: a binary heap pays `O(log n)` `f64`
//! comparisons per operation, a calendar pays amortized `O(1)` by
//! hashing each event's timestamp into a bucket of the current "year"
//! and walking the buckets in order.
//!
//! ## Why this is safe here
//!
//! The event executor has a *monotone push* property: a key is only
//! pushed when a rank is woken by a delivery, at `max(receiver clock,
//! depart time)`, and both are `≥` the time of the key being processed
//! — so no push ever lands before the last pop. That makes a
//! non-wrapping calendar valid: buckets strictly before the cursor are
//! dead, and when the year drains the queue re-bases on the overflow
//! heap's minimum.
//!
//! ## Determinism
//!
//! Every bucket is itself a tiny binary heap ordered by the full
//! `(time, rank, seq)` key (`f64::total_cmp`), and events with equal
//! times always hash to the same bucket, so pops come out in exactly
//! the same total order as one big heap. Bucket width and count are
//! pure *speed* heuristics: they decide how events spread across
//! buckets, never the pop order. In the degenerate case (all prices
//! zero, so every event sits at `t = 0.0` — the `counters_only()`
//! benches) the width is `0`, every event lands in one bucket, and the
//! structure *is* the old binary heap, with no regression.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Scheduler key: ranks are dispatched in ascending `(time, rank, seq)`
/// order; `total_cmp` makes the f64 ordering total and deterministic.
#[derive(PartialEq, Debug, Clone, Copy)]
pub(crate) struct SchedKey {
    pub time: f64,
    pub rank: usize,
    pub seq: u64,
}

impl Eq for SchedKey {}

impl PartialOrd for SchedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SchedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.rank.cmp(&other.rank))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Buckets per year. Power of two, sized so a year of typical
/// collective traffic (hundreds of `α`-spaced wavefronts) fits without
/// touching the overflow heap, while the empty calendar stays a few KB.
const NBUCKETS: usize = 1024;

/// The calendar queue: `NBUCKETS` buckets of width `width` starting at
/// `base`, each a min-heap on the full key; events beyond the year go
/// to the `overflow` heap and re-enter when the year drains.
pub(crate) struct CalendarQueue {
    /// Start of the current year (virtual seconds).
    base: f64,
    /// Bucket width in virtual seconds; `0.0` = degenerate single-heap
    /// mode (all events in bucket `0`).
    width: f64,
    /// Current bucket index (buckets before it are drained).
    cursor: usize,
    buckets: Vec<BinaryHeap<Reverse<SchedKey>>>,
    /// Events currently stored in `buckets`.
    n_bucketed: usize,
    /// Far-future events (beyond the current year).
    overflow: BinaryHeap<Reverse<SchedKey>>,
    /// Largest timestamp ever pushed to `overflow` since the last
    /// rebase (sizes the next year's width).
    overflow_max: f64,
    /// Health counter: events that took the overflow path.
    overflow_pushes: u64,
}

impl CalendarQueue {
    /// An empty calendar starting at `t = 0` with `width` seconds per
    /// bucket (use the machine's per-chunk latency `α + β·m`; `0` for
    /// an unpriced machine, which degenerates to one heap).
    pub(crate) fn new(width: f64) -> Self {
        let width = if width.is_finite() && width > 0.0 {
            width
        } else {
            0.0
        };
        CalendarQueue {
            base: 0.0,
            width,
            cursor: 0,
            buckets: (0..NBUCKETS).map(|_| BinaryHeap::new()).collect(),
            n_bucketed: 0,
            overflow: BinaryHeap::new(),
            overflow_max: f64::NEG_INFINITY,
            overflow_pushes: 0,
        }
    }

    /// Events that were routed through the overflow heap (health
    /// metric: `event.calq.overflow`).
    pub(crate) fn overflow_pushes(&self) -> u64 {
        self.overflow_pushes
    }

    fn bucket_index(&self, time: f64) -> Option<usize> {
        if self.width == 0.0 {
            // Degenerate mode: one live bucket, exact heap semantics.
            return Some(self.cursor);
        }
        // `as usize` saturates, so a far-future (or non-finite) offset
        // cleanly routes to the overflow heap.
        let idx = ((time - self.base) / self.width) as usize;
        if idx < NBUCKETS {
            // Monotone pushes guarantee `idx >= cursor` (see module
            // docs); a rounding surprise would still pop in full-key
            // order within whatever bucket it landed in.
            Some(idx)
        } else {
            None
        }
    }

    pub(crate) fn push(&mut self, key: SchedKey) {
        match self.bucket_index(key.time) {
            Some(idx) => {
                self.buckets[idx].push(Reverse(key));
                self.n_bucketed += 1;
            }
            None => {
                self.overflow_max = self.overflow_max.max(key.time);
                self.overflow.push(Reverse(key));
                self.overflow_pushes += 1;
            }
        }
    }

    pub(crate) fn pop(&mut self) -> Option<SchedKey> {
        loop {
            if self.n_bucketed > 0 {
                while self.buckets[self.cursor].is_empty() {
                    self.cursor += 1;
                }
                let Reverse(key) = self.buckets[self.cursor].pop().expect("non-empty bucket");
                self.n_bucketed -= 1;
                return Some(key);
            }
            if self.overflow.is_empty() {
                return None;
            }
            self.rebase();
        }
    }

    /// The year drained: restart it at the overflow minimum, size the
    /// width from the overflow span, and re-file the overflow events.
    fn rebase(&mut self) {
        let min_t = self.overflow.peek().expect("non-empty overflow").0.time;
        self.base = min_t;
        self.cursor = 0;
        let span = self.overflow_max - min_t;
        self.width = if span.is_finite() && span > 0.0 {
            // Spread the known events across the whole year; the last
            // bucket absorbs boundary rounding.
            span / (NBUCKETS - 1) as f64
        } else {
            0.0
        };
        self.overflow_max = f64::NEG_INFINITY;
        let drained = std::mem::take(&mut self.overflow);
        for Reverse(key) in drained {
            let idx = match self.bucket_index(key.time) {
                Some(idx) => idx,
                // Rounding pushed it past the year edge: clamp into the
                // last bucket (full-key heap order inside the bucket
                // keeps the pop sequence deterministic).
                None => NBUCKETS - 1,
            };
            self.buckets[idx].push(Reverse(key));
            self.n_bucketed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(time: f64, rank: usize, seq: u64) -> SchedKey {
        SchedKey { time, rank, seq }
    }

    /// The calendar pops in exactly the order one big heap would, for
    /// any interleave of pushes and pops with monotone push times.
    #[test]
    fn matches_heap_order_under_monotone_pushes() {
        for width in [0.0, 1e-6, 1.0, f64::INFINITY] {
            let mut cal = CalendarQueue::new(width);
            let mut heap: BinaryHeap<Reverse<SchedKey>> = BinaryHeap::new();
            // Deterministic pseudo-random times, strictly monotone floor.
            let mut state = 0x9e3779b97f4a7c15u64;
            let mut floor = 0.0f64;
            let mut pending = 0usize;
            for round in 0..2000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(round);
                let jitter = (state >> 40) as f64 * 1e-9;
                let t = floor + jitter;
                // One push per round, so the round counter doubles as
                // the scheduler sequence number.
                let k = key(t, (state >> 20) as usize % 64, round);
                cal.push(k);
                heap.push(Reverse(k));
                pending += 1;
                if state.is_multiple_of(3) && pending > 0 {
                    let a = cal.pop().unwrap();
                    let Reverse(b) = heap.pop().unwrap();
                    assert_eq!(a, b, "width={width} round={round}");
                    floor = a.time; // future pushes never go below this
                    pending -= 1;
                }
            }
            while let Some(a) = cal.pop() {
                let Reverse(b) = heap.pop().unwrap();
                assert_eq!(a, b);
            }
            assert!(heap.pop().is_none());
        }
    }

    /// Equal times break ties by `(rank, seq)` exactly like the heap.
    #[test]
    fn equal_times_pop_in_rank_seq_order() {
        let mut cal = CalendarQueue::new(1e-6);
        cal.push(key(0.0, 5, 2));
        cal.push(key(0.0, 1, 3));
        cal.push(key(0.0, 1, 1));
        cal.push(key(0.0, 0, 9));
        assert_eq!(cal.pop(), Some(key(0.0, 0, 9)));
        assert_eq!(cal.pop(), Some(key(0.0, 1, 1)));
        assert_eq!(cal.pop(), Some(key(0.0, 1, 3)));
        assert_eq!(cal.pop(), Some(key(0.0, 5, 2)));
        assert_eq!(cal.pop(), None);
    }

    /// Far-future events detour through the overflow heap and come back
    /// in order after a rebase; the health counter sees them.
    #[test]
    fn overflow_rebase_preserves_order() {
        let mut cal = CalendarQueue::new(1e-6);
        cal.push(key(0.0, 0, 0));
        cal.push(key(5.0, 1, 1)); // way past the first year
        cal.push(key(7.0, 2, 2));
        cal.push(key(5.0, 0, 3));
        assert_eq!(cal.overflow_pushes(), 3);
        assert_eq!(cal.pop(), Some(key(0.0, 0, 0)));
        assert_eq!(cal.pop(), Some(key(5.0, 0, 3)));
        assert_eq!(cal.pop(), Some(key(5.0, 1, 1)));
        assert_eq!(cal.pop(), Some(key(7.0, 2, 2)));
        assert_eq!(cal.pop(), None);
    }
}
