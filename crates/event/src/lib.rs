//! # psse-event — a deterministic discrete-event backend for
//! `p = 10^5`–`10^6` simulated ranks
//!
//! The thread-per-rank machine in `psse-sim` is the repo's ground
//! truth, but one OS thread per rank caps it around `p ≈ 10^4`. This
//! crate removes the thread: each rank becomes a **resumable state
//! machine** (a [`RankProgram`] returning explicit continuation
//! [`Step`]s — compute, send, receive, collective markers, done) and a
//! single process schedules all of them by **virtual time** from a
//! deterministic priority queue with `(time, rank, seq)` tie-breaking.
//!
//! The contract is bit-identity: the event executor prices every
//! operation with the same floating-point arithmetic, in the same
//! order, as `psse_sim::Rank` — Eq. 1 chunked sends, postal-model
//! receives, fault injection with retries/backoff/checkpoints, trace
//! recording. Profiles are pure functions of the message DAG, so both
//! backends produce byte-identical profiles, traces, and fault
//! counters (enforced by the cross-backend tests here and the
//! repo-level `proptest_backends` property test). Pick a backend with
//! [`psse_sim::SimConfig::backend`] and [`run_programs`]; the thread
//! pool stays the oracle at small `p`, the event backend runs the real
//! algorithms — binomial/recursive-doubling/ring allreduce, the 2.5D
//! matmul skeleton — at `p = 10^5`–`10^6` in one process, with counted
//! (allocation-free) payloads.
//!
//! Deadlocks are *proven*, not timed out: sends are eager, so when no
//! rank is runnable and some are live, every live rank is blocked on a
//! `(src, tag)` queue no future send can fill, and the executor
//! reports the full blocked set as [`psse_sim::SimError::Deadlock`] in
//! zero wall-clock time.
//!
//! An optional round-based work-stealing executor
//! ([`EventMachine::run_parallel`], selected by the
//! [`bridge::EVENT_WORKERS_ENV`] variable) spreads ranks across
//! threads without changing one observable byte: per-`(src, tag)`
//! matching depends only on per-sender order, which round-merging
//! preserves.
//!
//! ## The mega-scale hot path
//!
//! Three structures keep wall-clock cost `O(1)` per event at
//! `p = 10^6`: a bucketed **calendar queue** scheduler (amortized
//! constant-time versus a heap's `O(log p)`), per-rank **slab
//! mailboxes** with free-list recycling and `(src, tag)`-chained
//! indexing (steady state allocates nothing), and an **analytic fast
//! path** that prices native counted collectives in closed form when
//! nothing can observe individual events (no trace, no faults, no
//! hierarchy, no data payloads) — same f64 operations, same order,
//! byte-identical profiles, enforced by differential tests against
//! [`EventMachine::run_general`]. Set `PSSE_EVENT_NO_FASTPATH=1` to
//! force the general path process-wide. Engine health counters
//! ([`ExecStats`]) ride on every outcome and aggregate process-wide
//! for metrics export via [`export_health`].
//!
//! ## Example
//!
//! ```
//! use psse_event::{run_programs, BinomialAllreduce};
//! use psse_sim::{Backend, SimConfig, Tag};
//!
//! let cfg = SimConfig {
//!     backend: Backend::Events,
//!     ..SimConfig::default()
//! };
//! // A real allreduce over 10_000 ranks, in-process, no threads.
//! let out = run_programs(10_000, &cfg, BinomialAllreduce::counted(Tag(0), 8)).unwrap();
//! let t = BinomialAllreduce::expected_totals(10_000, 8, 1 << 16);
//! assert_eq!(out.profile.total_msgs_sent(), t.msgs);
//! assert_eq!(out.profile.total_words_sent(), t.words);
//! assert_eq!(out.profile.total_flops(), t.flops);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
mod calq;
mod ctx;
pub mod exec;
mod fastpath;
mod health;
pub mod program;
pub mod programs;
mod slab;
pub mod step;

pub use bridge::run_programs;
pub use exec::{EventMachine, EventOutcome, ExecStats};
pub use health::{export_health, health_totals};
pub use program::{AnalyticOp, RankProgram};
pub use programs::{
    BinomialAllreduce, Matmul25D, OpTotals, RecursiveDoublingAllreduce, RingAllreduce, SampleSort,
    Stencil1D,
};
pub use step::{Delivered, Payload, Step};

/// One-stop imports.
pub mod prelude {
    pub use crate::bridge::run_programs;
    pub use crate::exec::{EventMachine, EventOutcome, ExecStats};
    pub use crate::health::{export_health, health_totals};
    pub use crate::program::{AnalyticOp, RankProgram};
    pub use crate::programs::{
        BinomialAllreduce, Matmul25D, OpTotals, RecursiveDoublingAllreduce, RingAllreduce,
        SampleSort, Stencil1D,
    };
    pub use crate::step::{Delivered, Payload, Step};
    pub use psse_sim::{Backend, SimConfig, Tag};
}
