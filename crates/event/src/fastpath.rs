//! Closed-form pricing of native counted collectives.
//!
//! A counted collective moves no data — its entire observable output is
//! the per-rank Eq. 1/2 counters and virtual clocks, and those are a
//! pure function of the message DAG (see the `exec` module docs). For
//! the built-in allreduces the DAG is known in closed form, so instead
//! of scheduling `O(p log p)` wires one by one, this module replays
//! each rank's exact pricing sequence — the same `f64` operations, in
//! the same operand order, with the same `max(clock, depart)` joins —
//! directly over arrays. The result is byte-identical to the general
//! executor (enforced by the `fastpath_identity` differential tests and
//! by `EventMachine::run_general`, which forces the general path).
//!
//! The fast path refuses to engage unless nothing can observe
//! individual events:
//!
//! * `record_trace` must be off (traces list every send/recv);
//! * no fault plan (fault injection is keyed on per-link sequence
//!   numbers of real transfers);
//! * no hierarchy (intra/inter pricing needs per-edge node tests —
//!   cheap to add, but the general path is the reference until a
//!   workload needs it);
//! * every rank's program must claim the *same*
//!   [`AnalyticOp`](crate::AnalyticOp) (data-mode programs claim none);
//! * `PSSE_EVENT_NO_FASTPATH=1` is an operator override that forces
//!   the general path process-wide.

use crate::program::{AnalyticOp, RankProgram};
use psse_sim::{Profile, RankStats, SimConfig};

/// One rank's accounting lane: exactly the fields of `RankStats` the
/// general path can touch on a trace-less, fault-less, flat run.
#[derive(Clone, Copy, Default)]
struct Lane {
    time: f64,
    flops: u64,
    msgs_sent: u64,
    words_sent: u64,
    msgs_recvd: u64,
    words_recvd: u64,
}

/// The flat-machine prices the evaluators thread through every lane.
#[derive(Clone, Copy)]
struct Prices {
    alpha: f64,
    beta: f64,
    gamma: f64,
    m: usize,
    /// `⌈words/m⌉` (an empty transfer is still one message) — constant
    /// because every transfer of these collectives carries `words`.
    n_chunks: u64,
    words: usize,
}

impl Prices {
    fn new(cfg: &SimConfig, words: usize) -> Self {
        let m = cfg.max_message_words;
        Prices {
            alpha: cfg.alpha_t,
            beta: cfg.beta_t,
            gamma: cfg.gamma_t,
            m,
            n_chunks: if words == 0 {
                1
            } else {
                words.div_ceil(m) as u64
            },
            words,
        }
    }

    /// `RankCtx::price_send`'s chunk loop, verbatim; returns the depart
    /// time (the sender's clock after the last chunk).
    #[inline]
    fn send(&self, lane: &mut Lane) -> f64 {
        let mut left = self.words;
        loop {
            let k = left.min(self.m);
            lane.time += self.alpha + self.beta * k as f64;
            lane.msgs_sent += 1;
            lane.words_sent += k as u64;
            if left <= self.m {
                break;
            }
            left -= self.m;
        }
        lane.time
    }

    /// `RankCtx::price_recv`, verbatim.
    #[inline]
    fn recv(&self, lane: &mut Lane, depart: f64) {
        lane.time = lane.time.max(depart);
        lane.words_recvd += self.words as u64;
        lane.msgs_recvd += self.n_chunks;
    }

    /// `RankCtx::compute`, verbatim.
    #[inline]
    fn compute(&self, lane: &mut Lane) {
        lane.flops += self.words as u64;
        lane.time += self.gamma * self.words as f64;
    }
}

/// Price the run analytically if every guard passes; `None` falls back
/// to the general executor.
pub(crate) fn try_run<P: RankProgram>(
    p: usize,
    cfg: &SimConfig,
    programs: &[P],
) -> Option<Profile> {
    if cfg.record_trace || cfg.faults.is_some() || cfg.hierarchy.is_some() {
        return None;
    }
    if std::env::var_os("PSSE_EVENT_NO_FASTPATH").is_some_and(|v| v == "1") {
        return None;
    }
    let op = programs.first()?.analytic()?;
    if programs.iter().any(|prog| prog.analytic() != Some(op)) {
        return None;
    }
    let lanes = match op {
        AnalyticOp::BinomialAllreduce { words } => binomial(p, Prices::new(cfg, words)),
        AnalyticOp::RecursiveDoublingAllreduce { words } => {
            if !p.is_power_of_two() {
                return None; // the program would have panicked in new()
            }
            recursive_doubling(p, Prices::new(cfg, words))
        }
        AnalyticOp::RingAllreduce { words } => ring(p, Prices::new(cfg, words)),
    };
    let per_rank: Vec<RankStats> = lanes
        .into_iter()
        .map(|lane| RankStats {
            flops: lane.flops,
            msgs_sent: lane.msgs_sent,
            words_sent: lane.words_sent,
            msgs_recvd: lane.msgs_recvd,
            words_recvd: lane.words_recvd,
            finish_time: lane.time,
            ..RankStats::default()
        })
        .collect();
    // The general path reports one (empty) trace vec per rank even with
    // tracing off; mirror that shape exactly.
    let profile = Profile::with_events(per_rank, vec![Vec::new(); p]);
    debug_assert!(profile.assert_balanced().is_ok());
    Some(profile)
}

/// `BinomialAllreduce`: reduce pass in *descending* rank order — at
/// level `k` a parent `v` (with `v mod 2^(k+1) = 0`) receives from
/// child `v + 2^k > v`, and the child's single reduce send is its last
/// reduce action, so processing high ranks first has every depart time
/// ready. Broadcast pass in *ascending* order: rank `v > 0` receives
/// from parent `v − lowbit(v) < v`, then fans to children `> v`.
fn binomial(p: usize, pr: Prices) -> Vec<Lane> {
    let mut lanes = vec![Lane::default(); p];
    // depart[c] = depart time of c's reduce send (each rank sends at
    // most once in the reduce tree).
    let mut depart = vec![0.0f64; p];
    for v in (0..p).rev() {
        let mut mask = 1usize;
        while mask < p {
            if v & mask != 0 {
                depart[v] = pr.send(&mut lanes[v]);
                break;
            }
            let child = v + mask;
            if child < p {
                pr.recv(&mut lanes[v], depart[child]);
                pr.compute(&mut lanes[v]);
            }
            mask <<= 1;
        }
    }
    // depart[c] now re-used for c's *incoming* broadcast edge.
    for v in 0..p {
        let fan_start = if v == 0 {
            p.next_power_of_two() >> 1
        } else {
            let lowbit = v & v.wrapping_neg();
            pr.recv(&mut lanes[v], depart[v]);
            lowbit >> 1
        };
        let mut mask = fan_start;
        while mask > 0 {
            let child = v + mask;
            if child < p {
                depart[child] = pr.send(&mut lanes[v]);
            }
            mask >>= 1;
        }
    }
    lanes
}

/// `RecursiveDoublingAllreduce`: per round every rank sends to its
/// partner, then receives and merges — so price each round in two
/// sweeps (all sends, then all recv+computes), which is exactly each
/// rank's own program order with every partner depart time ready.
fn recursive_doubling(p: usize, pr: Prices) -> Vec<Lane> {
    let mut lanes = vec![Lane::default(); p];
    let mut depart = vec![0.0f64; p];
    let mut k = 0usize;
    while 1usize << k < p {
        for (v, lane) in lanes.iter_mut().enumerate() {
            depart[v] = pr.send(lane);
        }
        for (v, lane) in lanes.iter_mut().enumerate() {
            pr.recv(lane, depart[v ^ (1usize << k)]);
            pr.compute(lane);
        }
        k += 1;
    }
    lanes
}

/// `RingAllreduce`: same two-sweep rounds as recursive doubling, with
/// the left neighbour as the depart source. `O(p)` rounds — at ring
/// scale the general path is `O(p²)` scheduled events, so this is still
/// the cheap side, but the tree collectives are the mega-scale tools.
fn ring(p: usize, pr: Prices) -> Vec<Lane> {
    let mut lanes = vec![Lane::default(); p];
    let mut depart = vec![0.0f64; p];
    for _round in 0..p.saturating_sub(1) {
        for (v, lane) in lanes.iter_mut().enumerate() {
            depart[v] = pr.send(lane);
        }
        for (v, lane) in lanes.iter_mut().enumerate() {
            pr.recv(lane, depart[(v + p - 1) % p]);
            pr.compute(lane);
        }
    }
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::BinomialAllreduce;
    use psse_faults::{FaultPlan, FaultSpec, RecoveryPolicy};
    use psse_sim::machine::Hierarchy;
    use psse_sim::{SimConfig, Tag};

    fn counted(p: usize) -> Vec<BinomialAllreduce> {
        let make = BinomialAllreduce::counted(Tag(0), 100);
        (0..p).map(|r| make(r, p)).collect()
    }

    /// The fast path must actually engage on the headline workload —
    /// byte-identity alone can't prove that (identical output is the
    /// whole point), so pin the dispatch decision here.
    #[test]
    fn engages_for_counted_binomial() {
        let programs = counted(64);
        let profile = try_run(64, &SimConfig::default(), &programs).expect("fast path");
        let t = BinomialAllreduce::expected_totals(64, 100, 1 << 16);
        assert_eq!(profile.total_msgs_sent(), t.msgs);
        assert_eq!(profile.total_words_sent(), t.words);
        assert_eq!(profile.total_flops(), t.flops);
        assert_eq!(profile.events.len(), 64, "one (empty) trace vec per rank");
    }

    /// Every event-observing feature must force the general path.
    #[test]
    fn guards_refuse_trace_faults_hierarchy_and_data() {
        let programs = counted(8);
        let traced = SimConfig {
            record_trace: true,
            ..SimConfig::default()
        };
        assert!(try_run(8, &traced, &programs).is_none());
        let faulted = SimConfig {
            faults: Some(FaultPlan {
                spec: FaultSpec {
                    seed: 1,
                    ..FaultSpec::default()
                },
                recovery: RecoveryPolicy {
                    max_retries: 1,
                    retry_backoff: 1e-9,
                    checkpoint: None,
                },
            }),
            ..SimConfig::default()
        };
        assert!(try_run(8, &faulted, &programs).is_none());
        let hierarchical = SimConfig {
            hierarchy: Some(Hierarchy {
                cores_per_node: 4,
                intra_beta_t: 1e-9,
                intra_alpha_t: 1e-7,
            }),
            ..SimConfig::default()
        };
        assert!(try_run(8, &hierarchical, &programs).is_none());
        let make = BinomialAllreduce::with_data(Tag(0), vec![1.0; 8]);
        let data_mode: Vec<BinomialAllreduce> = (0..8).map(|r| make(r, 8)).collect();
        assert!(try_run(8, &SimConfig::default(), &data_mode).is_none());
    }
}
