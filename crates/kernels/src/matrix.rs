//! Dense row-major matrix storage with block access.
//!
//! [`Matrix`] is the unit of data in the distributed linear-algebra
//! algorithms: ranks hold local blocks, extract sub-blocks into `Vec<f64>`
//! payloads for messages, and paste received blocks back in.

use crate::rng::XorShift64;
use std::fmt;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_r = self.rows.min(6);
        let show_c = self.cols.min(6);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            if show_c < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_r < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer (length must be `rows·cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix with entries in `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = XorShift64::new(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.range_f64(-1.0, 1.0))
    }

    /// Deterministic random **diagonally dominant** matrix — safe input
    /// for LU without pivoting.
    pub fn random_diagonally_dominant(n: usize, seed: u64) -> Self {
        let mut m = Matrix::random(n, n, seed);
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying row-major buffer (for zero-copy
    /// message payloads).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy the `br × bc` block whose top-left corner is `(r0, c0)` into
    /// a fresh matrix.
    pub fn block(&self, r0: usize, c0: usize, br: usize, bc: usize) -> Matrix {
        assert!(
            r0 + br <= self.rows && c0 + bc <= self.cols,
            "block out of range"
        );
        let mut out = Matrix::zeros(br, bc);
        for i in 0..br {
            let src = &self.data[(r0 + i) * self.cols + c0..(r0 + i) * self.cols + c0 + bc];
            out.data[i * bc..(i + 1) * bc].copy_from_slice(src);
        }
        out
    }

    /// Paste `src` so its top-left corner lands at `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Matrix) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "block out of range"
        );
        for i in 0..src.rows {
            let dst_off = (r0 + i) * self.cols + c0;
            self.data[dst_off..dst_off + src.cols]
                .copy_from_slice(&src.data[i * src.cols..(i + 1) * src.cols]);
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// `self + other`, element-wise.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// `self - other`, element-wise.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scaled copy `alpha · self`.
    pub fn scale(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| alpha * x).collect(),
        }
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Relative Frobenius distance `‖self − other‖F / max(1, ‖other‖F)` —
    /// the standard residual check for our numerical tests.
    pub fn relative_error(&self, other: &Matrix) -> f64 {
        self.sub(other).frobenius_norm() / other.frobenius_norm().max(1.0)
    }

    /// Number of words (elements) stored.
    pub fn words(&self) -> usize {
        self.data.len()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
        assert_eq!(i.frobenius_norm(), 3f64.sqrt());
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn block_roundtrip() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let b = m.block(2, 3, 3, 2);
        assert_eq!(b[(0, 0)], m[(2, 3)]);
        assert_eq!(b[(2, 1)], m[(4, 4)]);
        let mut back = Matrix::zeros(6, 6);
        back.set_block(2, 3, &b);
        assert_eq!(back[(4, 4)], m[(4, 4)]);
        assert_eq!(back[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "block out of range")]
    fn block_bounds_checked() {
        let m = Matrix::zeros(4, 4);
        let _ = m.block(2, 2, 3, 3);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::random(5, 7, 3);
        let t = m.transpose();
        assert_eq!(t.rows(), 7);
        assert_eq!(t.cols(), 5);
        assert_eq!(t[(6, 4)], m[(4, 6)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Matrix::random(4, 4, 1);
        let b = Matrix::random(4, 4, 2);
        assert_eq!(a.add(&b).sub(&b).max_abs_diff(&a), 0.0);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, a.add(&b));
        assert!(a.scale(2.0).sub(&a).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn diagonally_dominant_is_dominant() {
        let m = Matrix::random_diagonally_dominant(16, 5);
        for i in 0..16 {
            let off: f64 = (0..16).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            assert!(m[(i, i)].abs() > off);
        }
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(Matrix::random(8, 8, 77), Matrix::random(8, 8, 77));
        assert_ne!(Matrix::random(8, 8, 77), Matrix::random(8, 8, 78));
    }

    #[test]
    fn relative_error_of_equal_is_zero() {
        let a = Matrix::random(6, 6, 4);
        assert_eq!(a.relative_error(&a), 0.0);
        let b = a.add(&Matrix::from_fn(6, 6, |_, _| 1e-12));
        assert!(b.relative_error(&a) < 1e-10);
    }

    #[test]
    fn into_vec_roundtrip() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let v = m.clone().into_vec();
        assert_eq!(Matrix::from_vec(3, 3, v), m);
        assert_eq!(m.words(), 9);
    }

    #[test]
    fn debug_output_is_bounded() {
        let m = Matrix::random(100, 100, 1);
        let s = format!("{m:?}");
        assert!(
            s.len() < 2000,
            "debug output should truncate large matrices"
        );
        assert!(s.contains("Matrix 100x100"));
    }
}
