//! Strassen's matrix multiplication (the `ω0 = log₂7` fast algorithm of
//! paper §IV) with a classical-GEMM cutoff.
//!
//! This is the local kernel used at the leaves of the CAPS-style
//! distributed algorithm in `psse-algos`; it also serves as the
//! sequential baseline for the classical-vs-Strassen benchmarks.

use crate::gemm;
use crate::matrix::Matrix;

/// Below this edge length the recursion falls back to classical blocked
/// GEMM; Strassen's lower flop constant only pays off above it.
pub const DEFAULT_CUTOFF: usize = 64;

/// `C = A·B` via Strassen's algorithm. Handles arbitrary square sizes by
/// padding odd dimensions at each level (peeling); non-square inputs are
/// rejected.
pub fn strassen(a: &Matrix, b: &Matrix) -> Matrix {
    strassen_with_cutoff(a, b, DEFAULT_CUTOFF)
}

/// [`strassen`] with an explicit recursion cutoff (cutoff ≥ 1).
pub fn strassen_with_cutoff(a: &Matrix, b: &Matrix, cutoff: usize) -> Matrix {
    assert_eq!(a.rows(), a.cols(), "Strassen requires square A");
    assert_eq!(b.rows(), b.cols(), "Strassen requires square B");
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(cutoff >= 1);
    let n = a.rows();
    if n <= cutoff {
        return gemm::matmul(a, b);
    }
    if n % 2 == 1 {
        // Pad by one row/column of zeros and strip afterwards.
        let mut ap = Matrix::zeros(n + 1, n + 1);
        ap.set_block(0, 0, a);
        let mut bp = Matrix::zeros(n + 1, n + 1);
        bp.set_block(0, 0, b);
        let cp = strassen_with_cutoff(&ap, &bp, cutoff);
        return cp.block(0, 0, n, n);
    }
    let h = n / 2;
    let a11 = a.block(0, 0, h, h);
    let a12 = a.block(0, h, h, h);
    let a21 = a.block(h, 0, h, h);
    let a22 = a.block(h, h, h, h);
    let b11 = b.block(0, 0, h, h);
    let b12 = b.block(0, h, h, h);
    let b21 = b.block(h, 0, h, h);
    let b22 = b.block(h, h, h, h);

    let m1 = strassen_with_cutoff(&a11.add(&a22), &b11.add(&b22), cutoff);
    let m2 = strassen_with_cutoff(&a21.add(&a22), &b11, cutoff);
    let m3 = strassen_with_cutoff(&a11, &b12.sub(&b22), cutoff);
    let m4 = strassen_with_cutoff(&a22, &b21.sub(&b11), cutoff);
    let m5 = strassen_with_cutoff(&a11.add(&a12), &b22, cutoff);
    let m6 = strassen_with_cutoff(&a21.sub(&a11), &b11.add(&b12), cutoff);
    let m7 = strassen_with_cutoff(&a12.sub(&a22), &b21.add(&b22), cutoff);

    let c11 = m1.add(&m4).sub(&m5).add(&m7);
    let c12 = m3.add(&m5);
    let c21 = m2.add(&m4);
    let c22 = m1.sub(&m2).add(&m3).add(&m6);

    let mut c = Matrix::zeros(n, n);
    c.set_block(0, 0, &c11);
    c.set_block(0, h, &c12);
    c.set_block(h, 0, &c21);
    c.set_block(h, h, &c22);
    c
}

/// `C = A·B` via the **Winograd variant** of Strassen's algorithm: the
/// same 7 recursive multiplications but only 15 block additions (vs 18),
/// the best known constant for a 7-multiplication scheme. Same
/// asymptotics (`ω0 = log₂7`), smaller constant — an ablation knob for
/// the fast-matmul benches.
pub fn strassen_winograd(a: &Matrix, b: &Matrix, cutoff: usize) -> Matrix {
    assert_eq!(a.rows(), a.cols(), "Strassen requires square A");
    assert_eq!(b.rows(), b.cols(), "Strassen requires square B");
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(cutoff >= 1);
    let n = a.rows();
    if n <= cutoff {
        return gemm::matmul(a, b);
    }
    if n % 2 == 1 {
        let mut ap = Matrix::zeros(n + 1, n + 1);
        ap.set_block(0, 0, a);
        let mut bp = Matrix::zeros(n + 1, n + 1);
        bp.set_block(0, 0, b);
        let cp = strassen_winograd(&ap, &bp, cutoff);
        return cp.block(0, 0, n, n);
    }
    let h = n / 2;
    let a11 = a.block(0, 0, h, h);
    let a12 = a.block(0, h, h, h);
    let a21 = a.block(h, 0, h, h);
    let a22 = a.block(h, h, h, h);
    let b11 = b.block(0, 0, h, h);
    let b12 = b.block(0, h, h, h);
    let b21 = b.block(h, 0, h, h);
    let b22 = b.block(h, h, h, h);

    // 8 pre-additions.
    let s1 = a21.add(&a22);
    let s2 = s1.sub(&a11);
    let s3 = a11.sub(&a21);
    let s4 = a12.sub(&s2);
    let t1 = b12.sub(&b11);
    let t2 = b22.sub(&t1);
    let t3 = b22.sub(&b12);
    let t4 = t2.sub(&b21);

    // 7 recursive multiplications.
    let m1 = strassen_winograd(&a11, &b11, cutoff);
    let m2 = strassen_winograd(&a12, &b21, cutoff);
    let m3 = strassen_winograd(&s4, &b22, cutoff);
    let m4 = strassen_winograd(&a22, &t4, cutoff);
    let m5 = strassen_winograd(&s1, &t1, cutoff);
    let m6 = strassen_winograd(&s2, &t2, cutoff);
    let m7 = strassen_winograd(&s3, &t3, cutoff);

    // 7 post-additions.
    let u2 = m1.add(&m6);
    let u3 = u2.add(&m7);
    let u4 = u2.add(&m5);
    let c11 = m1.add(&m2);
    let c12 = u4.add(&m3);
    let c21 = u3.sub(&m4);
    let c22 = u3.add(&m5);

    let mut c = Matrix::zeros(n, n);
    c.set_block(0, 0, &c11);
    c.set_block(0, h, &c12);
    c.set_block(h, 0, &c21);
    c.set_block(h, h, &c22);
    c
}

/// Flop count of the Winograd variant with the given cutoff:
/// `7^k` leaf GEMMs plus `15·(n/2^level)²` additions per internal node
/// (vs Strassen's 18).
pub fn strassen_winograd_flops(n: u64, cutoff: u64) -> u64 {
    if n <= cutoff {
        return 2 * n * n * n;
    }
    let h = n / 2;
    7 * strassen_winograd_flops(h, cutoff) + 15 * h * h
}

/// The seven quadrant products `M1..M7` of one Strassen step, computed
/// with a caller-supplied multiplier. Exposed so the distributed CAPS
/// algorithm can form the linear combinations locally and delegate the
/// products to remote subtrees.
pub fn strassen_operands(a: &Matrix, b: &Matrix) -> [(Matrix, Matrix); 7] {
    assert_eq!(a.rows(), a.cols());
    assert_eq!(b.rows(), b.cols());
    assert_eq!(a.rows() % 2, 0, "one Strassen step needs an even size");
    let h = a.rows() / 2;
    let a11 = a.block(0, 0, h, h);
    let a12 = a.block(0, h, h, h);
    let a21 = a.block(h, 0, h, h);
    let a22 = a.block(h, h, h, h);
    let b11 = b.block(0, 0, h, h);
    let b12 = b.block(0, h, h, h);
    let b21 = b.block(h, 0, h, h);
    let b22 = b.block(h, h, h, h);
    [
        (a11.add(&a22), b11.add(&b22)),
        (a21.add(&a22), b11.clone()),
        (a11.clone(), b12.sub(&b22)),
        (a22.clone(), b21.sub(&b11)),
        (a11.add(&a12), b22.clone()),
        (a21.sub(&a11), b11.add(&b12)),
        (a12.sub(&a22), b21.add(&b22)),
    ]
}

/// Reassemble `C` from the seven products of [`strassen_operands`].
pub fn strassen_combine(ms: &[Matrix; 7]) -> Matrix {
    let h = ms[0].rows();
    let c11 = ms[0].add(&ms[3]).sub(&ms[4]).add(&ms[6]);
    let c12 = ms[2].add(&ms[4]);
    let c21 = ms[1].add(&ms[3]);
    let c22 = ms[0].sub(&ms[1]).add(&ms[2]).add(&ms[5]);
    let mut c = Matrix::zeros(2 * h, 2 * h);
    c.set_block(0, 0, &c11);
    c.set_block(0, h, &c12);
    c.set_block(h, 0, &c21);
    c.set_block(h, h, &c22);
    c
}

/// Flop count of Strassen with the given cutoff on an `n×n` problem
/// (`n` a power of two times the cutoff): `7^k` leaf GEMMs of size
/// `n/2^k` plus `18·(n/2^level)²` additions per internal node.
pub fn strassen_flops(n: u64, cutoff: u64) -> u64 {
    if n <= cutoff {
        return 2 * n * n * n;
    }
    let h = n / 2;
    7 * strassen_flops(h, cutoff) + 18 * h * h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_naive;

    #[test]
    fn matches_naive_power_of_two() {
        let a = Matrix::random(128, 128, 1);
        let b = Matrix::random(128, 128, 2);
        let s = strassen_with_cutoff(&a, &b, 16);
        let c = matmul_naive(&a, &b);
        assert!(s.max_abs_diff(&c) < 1e-10);
    }

    #[test]
    fn matches_naive_odd_sizes() {
        for n in [1usize, 3, 17, 30, 65, 100] {
            let a = Matrix::random(n, n, n as u64);
            let b = Matrix::random(n, n, (n + 1) as u64);
            let s = strassen_with_cutoff(&a, &b, 8);
            let c = matmul_naive(&a, &b);
            assert!(s.max_abs_diff(&c) < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn cutoff_one_still_correct() {
        let a = Matrix::random(32, 32, 5);
        let b = Matrix::random(32, 32, 6);
        let s = strassen_with_cutoff(&a, &b, 1);
        assert!(s.max_abs_diff(&matmul_naive(&a, &b)) < 1e-10);
    }

    #[test]
    fn operands_and_combine_equal_one_step() {
        let a = Matrix::random(64, 64, 7);
        let b = Matrix::random(64, 64, 8);
        let ops = strassen_operands(&a, &b);
        let ms: Vec<Matrix> = ops.iter().map(|(x, y)| matmul_naive(x, y)).collect();
        let ms: [Matrix; 7] = ms.try_into().unwrap();
        let c = strassen_combine(&ms);
        assert!(c.max_abs_diff(&matmul_naive(&a, &b)) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let a = Matrix::zeros(4, 6);
        let b = Matrix::zeros(6, 4);
        let _ = strassen(&a, &b);
    }

    #[test]
    fn flops_match_omega() {
        // strassen_flops(2n)/strassen_flops(n) → 7 as n grows.
        let r = strassen_flops(4096, 1) as f64 / strassen_flops(2048, 1) as f64;
        assert!((r - 7.0).abs() < 0.05, "ratio {r}");
        // And with cutoff = n it's exactly classical.
        assert_eq!(strassen_flops(64, 64), 2 * 64 * 64 * 64);
    }

    #[test]
    fn strassen_saves_flops_vs_classical() {
        let n = 1 << 12;
        assert!(strassen_flops(n, 64) < 2 * n * n * n);
    }

    #[test]
    fn winograd_matches_naive() {
        for n in [1usize, 2, 16, 30, 65, 128] {
            let a = Matrix::random(n, n, n as u64 + 100);
            let b = Matrix::random(n, n, n as u64 + 200);
            let w = strassen_winograd(&a, &b, 8);
            let c = matmul_naive(&a, &b);
            assert!(w.max_abs_diff(&c) < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn winograd_matches_strassen() {
        let a = Matrix::random(96, 96, 1);
        let b = Matrix::random(96, 96, 2);
        let w = strassen_winograd(&a, &b, 16);
        let s = strassen_with_cutoff(&a, &b, 16);
        assert!(w.max_abs_diff(&s) < 1e-10);
    }

    #[test]
    fn winograd_uses_fewer_adds() {
        let n = 1 << 10;
        let s = strassen_flops(n, 32);
        let w = strassen_winograd_flops(n, 32);
        assert!(w < s, "winograd {w} vs strassen {s}");
        // Same leaf count: the gap is exactly the add savings
        // (3 additions per internal node).
        let gap = s - w;
        assert!(gap > 0);
        // And both still beat classical.
        assert!(s < 2 * n * n * n);
    }
}
