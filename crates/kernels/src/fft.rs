//! Radix-2 Cooley–Tukey FFT over a self-contained complex type.
//!
//! The paper's FFT analysis (§IV) prices the standard parallel algorithm:
//! local FFT work interleaved with data exchanges. This module supplies
//! the *local* pieces — an iterative in-place radix-2 transform, twiddle
//! application, and a naive DFT used as the test oracle — which
//! `psse-algos::fft` composes into the distributed transform.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components. Self-contained to keep the
/// workspace dependency-free (`num-complex` is out of scope).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Construct from rectangular components.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex64 = Complex64::new(0.0, 0.0);

    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64::new(1.0, 0.0);

    /// `e^(iθ)`.
    pub fn from_polar(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, o: Complex64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re - o.re, self.im - o.im)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT (negative exponent convention).
    Forward,
    /// Inverse DFT (positive exponent, **including** the `1/n` scaling).
    Inverse,
}

/// Whether `n` is a power of two (the radix-2 requirement).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place bit-reversal permutation (length must be a power of two).
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    assert!(is_power_of_two(n), "length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// In-place iterative radix-2 FFT. `data.len()` must be a power of two.
pub fn fft_in_place(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    assert!(is_power_of_two(n), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::from_polar(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    if dir == Direction::Inverse {
        let inv_n = 1.0 / n as f64;
        for x in data.iter_mut() {
            *x = x.scale(inv_n);
        }
    }
}

/// Out-of-place forward FFT convenience wrapper.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut v = input.to_vec();
    fft_in_place(&mut v, Direction::Forward);
    v
}

/// Out-of-place inverse FFT convenience wrapper (includes `1/n`).
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let mut v = input.to_vec();
    fft_in_place(&mut v, Direction::Inverse);
    v
}

/// Naive `O(n²)` DFT — the correctness oracle.
pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        for (j, &x) in input.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64;
            *o += x * Complex64::from_polar(ang);
        }
    }
    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for o in out.iter_mut() {
            *o = o.scale(inv);
        }
    }
    out
}

/// Flop count of a radix-2 FFT of length `n`: `5·n·log₂n` (the standard
/// real-operation count: each butterfly is one complex multiply (6 real
/// flops) and two complex adds (4), i.e. 10 per 2 points per stage).
pub fn fft_flops(n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    5 * n * n.ilog2() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = XorShift64::new(seed);
        (0..n)
            .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0)); // (1+2i)(3-i) = 5+5i
        assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
        assert!((a.abs() - 5f64.sqrt()).abs() < 1e-15);
        assert_eq!(a.norm_sqr(), 5.0);
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let x = random_signal(n, n as u64);
            let fast = fft(&x);
            let slow = dft_naive(&x, Direction::Forward);
            assert!(max_err(&fast, &slow) < 1e-9 * n as f64, "n = {n}");
        }
    }

    #[test]
    fn inverse_recovers_input() {
        let x = random_signal(1024, 3);
        let y = ifft(&fft(&x));
        assert!(max_err(&x, &y) < 1e-11);
    }

    #[test]
    fn parseval_energy_conservation() {
        let x = random_signal(512, 4);
        let y = fft(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / 512.0;
        assert!((ex - ey).abs() / ex < 1e-12);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        for c in fft(&x) {
            assert!((c - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let x = vec![Complex64::ONE; 16];
        let y = fft(&x);
        assert!((y[0] - Complex64::new(16.0, 0.0)).abs() < 1e-12);
        for c in &y[1..] {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn linearity() {
        let x = random_signal(128, 5);
        let y = random_signal(128, 6);
        let sum: Vec<Complex64> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        let lhs = fft(&sum);
        let fx = fft(&x);
        let fy = fft(&y);
        let rhs: Vec<Complex64> = fx.iter().zip(&fy).map(|(&a, &b)| a + b).collect();
        assert!(max_err(&lhs, &rhs) < 1e-11);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut v = vec![Complex64::ZERO; 12];
        fft_in_place(&mut v, Direction::Forward);
    }

    #[test]
    fn bit_reverse_is_involution() {
        let mut v: Vec<usize> = (0..64).collect();
        bit_reverse_permute(&mut v);
        let mut w = v.clone();
        bit_reverse_permute(&mut w);
        assert_eq!(w, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>());
        // Spot check: index 1 (000001) maps to 32 (100000) for 64 points.
        assert_eq!(v[1], 32);
    }

    #[test]
    fn flop_count_shape() {
        assert_eq!(fft_flops(1), 0);
        assert_eq!(fft_flops(8), 5 * 8 * 3);
        // n log n growth: doubling n slightly more than doubles flops.
        assert!(fft_flops(2048) > 2 * fft_flops(1024));
    }
}
