//! LU factorization and triangular solves.
//!
//! Provides the local kernels of the distributed LU algorithm
//! (`psse-algos::lu`): unpivoted in-place LU (used on diagonally dominant
//! blocks, where it is backward stable), partially pivoted LU (the
//! general-purpose sequential reference), and the triangular solves used
//! for panel updates and for verifying factorizations.

#[cfg(test)]
use crate::gemm;
use crate::matrix::Matrix;

/// Error type for singular or near-singular pivots.
#[derive(Debug, Clone, PartialEq)]
pub struct SingularError {
    /// Index of the failing pivot.
    pub pivot: usize,
    /// Magnitude of the failing pivot.
    pub value: f64,
}

impl std::fmt::Display for SingularError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "singular pivot {} at index {}", self.value, self.pivot)
    }
}

impl std::error::Error for SingularError {}

const PIVOT_TOL: f64 = 1e-300;

/// In-place unpivoted LU: on return `a` holds `U` in its upper triangle
/// (inclusive of the diagonal) and the strictly-lower part of `L`
/// (whose diagonal is implicitly 1). Safe for diagonally dominant or
/// otherwise well-conditioned inputs.
pub fn lu_nopivot_inplace(a: &mut Matrix) -> Result<(), SingularError> {
    assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
    let n = a.rows();
    for k in 0..n {
        let akk = a[(k, k)];
        if akk.abs() < PIVOT_TOL {
            return Err(SingularError {
                pivot: k,
                value: akk,
            });
        }
        for i in (k + 1)..n {
            let lik = a[(i, k)] / akk;
            a[(i, k)] = lik;
            for j in (k + 1)..n {
                let u = a[(k, j)];
                a[(i, j)] -= lik * u;
            }
        }
    }
    Ok(())
}

/// LU with partial (row) pivoting: returns the permutation as a vector
/// `perm` such that row `i` of the factored matrix corresponds to row
/// `perm[i]` of the input (i.e. `P·A = L·U` with `P` scattering by
/// `perm`).
pub fn lu_partial_pivot_inplace(a: &mut Matrix) -> Result<Vec<usize>, SingularError> {
    assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
    let n = a.rows();
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Find the largest pivot in column k.
        let (mut best, mut best_val) = (k, a[(k, k)].abs());
        for i in (k + 1)..n {
            let v = a[(i, k)].abs();
            if v > best_val {
                best = i;
                best_val = v;
            }
        }
        if best_val < PIVOT_TOL {
            return Err(SingularError {
                pivot: k,
                value: best_val,
            });
        }
        if best != k {
            for j in 0..n {
                let tmp = a[(k, j)];
                a[(k, j)] = a[(best, j)];
                a[(best, j)] = tmp;
            }
            perm.swap(k, best);
        }
        let akk = a[(k, k)];
        for i in (k + 1)..n {
            let lik = a[(i, k)] / akk;
            a[(i, k)] = lik;
            for j in (k + 1)..n {
                let u = a[(k, j)];
                a[(i, j)] -= lik * u;
            }
        }
    }
    Ok(perm)
}

/// Split a packed LU result into explicit `(L, U)` factors.
pub fn split_lu(packed: &Matrix) -> (Matrix, Matrix) {
    let n = packed.rows();
    let mut l = Matrix::identity(n);
    let mut u = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i > j {
                l[(i, j)] = packed[(i, j)];
            } else {
                u[(i, j)] = packed[(i, j)];
            }
        }
    }
    (l, u)
}

/// Solve `L·X = B` where `L` is unit lower triangular (diagonal assumed
/// 1, strictly-lower part taken from `l`). `B` may have many columns.
pub fn solve_unit_lower(l: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(l.rows(), l.cols());
    assert_eq!(l.rows(), b.rows());
    let n = l.rows();
    let m = b.cols();
    let mut x = b.clone();
    for i in 0..n {
        for k in 0..i {
            let lik = l[(i, k)];
            if lik != 0.0 {
                for j in 0..m {
                    let xkj = x[(k, j)];
                    x[(i, j)] -= lik * xkj;
                }
            }
        }
    }
    x
}

/// Solve `U·X = B` where `U` is upper triangular (diagonal from `u`).
pub fn solve_upper(u: &Matrix, b: &Matrix) -> Result<Matrix, SingularError> {
    assert_eq!(u.rows(), u.cols());
    assert_eq!(u.rows(), b.rows());
    let n = u.rows();
    let m = b.cols();
    let mut x = b.clone();
    for i in (0..n).rev() {
        let uii = u[(i, i)];
        if uii.abs() < PIVOT_TOL {
            return Err(SingularError {
                pivot: i,
                value: uii,
            });
        }
        for k in (i + 1)..n {
            let uik = u[(i, k)];
            if uik != 0.0 {
                for j in 0..m {
                    let xkj = x[(k, j)];
                    x[(i, j)] -= uik * xkj;
                }
            }
        }
        for j in 0..m {
            x[(i, j)] /= uii;
        }
    }
    Ok(x)
}

/// Solve `X·U = B` for `X` (right-solve with upper triangular `U`);
/// used for the `L21 = A21·U11⁻¹` panel update of blocked/distributed LU.
pub fn solve_upper_right(b: &Matrix, u: &Matrix) -> Result<Matrix, SingularError> {
    // X·U = B  ⇔  Uᵀ·Xᵀ = Bᵀ with Uᵀ lower triangular (non-unit).
    assert_eq!(u.rows(), u.cols());
    assert_eq!(b.cols(), u.rows());
    let n = u.rows();
    let m = b.rows();
    let mut x = b.clone();
    for j in 0..n {
        let ujj = u[(j, j)];
        if ujj.abs() < PIVOT_TOL {
            return Err(SingularError {
                pivot: j,
                value: ujj,
            });
        }
        for i in 0..m {
            let mut s = x[(i, j)];
            for k in 0..j {
                s -= x[(i, k)] * u[(k, j)];
            }
            x[(i, j)] = s / ujj;
        }
    }
    Ok(x)
}

/// Solve `A·x = b` for a single right-hand side via partially pivoted LU.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SingularError> {
    assert_eq!(a.rows(), b.len());
    let mut packed = a.clone();
    let perm = lu_partial_pivot_inplace(&mut packed)?;
    let n = b.len();
    let pb = Matrix::from_fn(n, 1, |i, _| b[perm[i]]);
    let (l, u) = split_lu(&packed);
    let y = solve_unit_lower(&l, &pb);
    let x = solve_upper(&u, &y)?;
    Ok((0..n).map(|i| x[(i, 0)]).collect())
}

/// Blocked (panel) right-looking LU without pivoting: factors `a`
/// in place using panels of width `block`, with the trailing update done
/// by GEMM — the cache-friendly formulation whose communication the
/// paper's sequential bound (Eq. 3) governs. Numerically identical to
/// [`lu_nopivot_inplace`] in exact arithmetic.
pub fn lu_blocked_inplace(a: &mut Matrix, block: usize) -> Result<(), SingularError> {
    assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
    assert!(block >= 1, "panel width must be positive");
    let n = a.rows();
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + block).min(n);
        let w = k1 - k0;
        let rest = n - k1;

        // 1. Factor the diagonal block.
        let mut akk = a.block(k0, k0, w, w);
        lu_nopivot_inplace(&mut akk)?;
        a.set_block(k0, k0, &akk);
        let (l11, u11) = split_lu(&akk);

        if rest > 0 {
            // 2. U12 = L11⁻¹ · A12.
            let a12 = a.block(k0, k1, w, rest);
            let u12 = solve_unit_lower(&l11, &a12);
            a.set_block(k0, k1, &u12);

            // 3. L21 = A21 · U11⁻¹.
            let a21 = a.block(k1, k0, rest, w);
            let l21 = solve_upper_right(&a21, &u11)?;
            a.set_block(k1, k0, &l21);

            // 4. Trailing update A22 -= L21 · U12.
            let mut a22 = a.block(k1, k1, rest, rest);
            let mut update = crate::gemm::matmul(&l21, &u12);
            update = update.scale(-1.0);
            a22.add_assign(&update);
            a.set_block(k1, k1, &a22);
        }
        k0 = k1;
    }
    Ok(())
}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix, in place: on return the lower triangle holds `L` and the
/// strict upper triangle is zeroed. The paper lists Cholesky among the
/// direct factorizations its bounds cover; its distributed cost shape is
/// LU's with half the flops.
pub fn cholesky_inplace(a: &mut Matrix) -> Result<(), SingularError> {
    assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
    let n = a.rows();
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            let ljk = a[(j, k)];
            d -= ljk * ljk;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(SingularError { pivot: j, value: d });
        }
        let ljj = d.sqrt();
        a[(j, j)] = ljj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            a[(i, j)] = s / ljj;
        }
    }
    // Zero the strict upper triangle so the result is exactly L.
    for i in 0..n {
        for j in (i + 1)..n {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Flop count of Cholesky on an `n×n` matrix: `n³/3` to leading order.
pub fn cholesky_flops(n: u64) -> u64 {
    n * n * n / 3 + n * n / 2
}

/// Flop count of dense LU on an `n×n` matrix: `(2/3)·n³` to leading
/// order (exact: `n·(n−1)·(4n+1)/6`).
pub fn lu_flops(n: u64) -> u64 {
    n * (n - 1) * (4 * n + 1) / 6
}

/// Reconstruct `P·A` from a pivoted factorization for verification.
pub fn apply_permutation(a: &Matrix, perm: &[usize]) -> Matrix {
    assert_eq!(a.rows(), perm.len());
    Matrix::from_fn(a.rows(), a.cols(), |i, j| a[(perm[i], j)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nopivot_reconstructs_diag_dominant() {
        let a = Matrix::random_diagonally_dominant(32, 1);
        let mut packed = a.clone();
        lu_nopivot_inplace(&mut packed).unwrap();
        let (l, u) = split_lu(&packed);
        let recon = gemm::matmul(&l, &u);
        assert!(recon.relative_error(&a) < 1e-12, "‖LU − A‖ too large");
    }

    #[test]
    fn partial_pivot_reconstructs_general() {
        let a = Matrix::random(40, 40, 2);
        let mut packed = a.clone();
        let perm = lu_partial_pivot_inplace(&mut packed).unwrap();
        let (l, u) = split_lu(&packed);
        let recon = gemm::matmul(&l, &u);
        let pa = apply_permutation(&a, &perm);
        assert!(recon.relative_error(&pa) < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let mut packed = a.clone();
        assert!(lu_nopivot_inplace(&mut packed.clone()).is_err());
        let perm = lu_partial_pivot_inplace(&mut packed).unwrap();
        assert_eq!(perm, vec![1, 0]);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0; // rank 1
        assert!(lu_partial_pivot_inplace(&mut a).is_err());
    }

    #[test]
    fn unit_lower_solve() {
        let l = Matrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 2.0, 1.0, 0.0, 3.0, 4.0, 1.0]);
        let x_true = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = gemm::matmul(&l, &x_true);
        let x = solve_unit_lower(&l, &b);
        assert!(x.max_abs_diff(&x_true) < 1e-12);
    }

    #[test]
    fn upper_solve() {
        let u = Matrix::from_vec(3, 3, vec![2.0, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 6.0]);
        let x_true = Matrix::from_vec(3, 1, vec![1.0, -2.0, 0.5]);
        let b = gemm::matmul(&u, &x_true);
        let x = solve_upper(&u, &b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-12);
    }

    #[test]
    fn upper_right_solve() {
        let u = Matrix::from_vec(3, 3, vec![2.0, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 6.0]);
        let x_true = Matrix::random(4, 3, 3);
        let b = gemm::matmul(&x_true, &u);
        let x = solve_upper_right(&b, &u).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-12);
    }

    #[test]
    fn full_solve_recovers_solution() {
        let a = Matrix::random(25, 25, 4);
        let x_true: Vec<f64> = (0..25).map(|i| (i as f64) - 12.0).collect();
        let b: Vec<f64> = (0..25)
            .map(|i| (0..25).map(|j| a[(i, j)] * x_true[j]).sum())
            .collect();
        let x = solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }

    #[test]
    fn blocked_lu_matches_scalar() {
        for (n, block) in [(16usize, 4usize), (20, 7), (32, 32), (9, 2), (8, 1)] {
            let a = Matrix::random_diagonally_dominant(n, n as u64);
            let mut scalar = a.clone();
            lu_nopivot_inplace(&mut scalar).unwrap();
            let mut blocked = a.clone();
            lu_blocked_inplace(&mut blocked, block).unwrap();
            assert!(
                blocked.max_abs_diff(&scalar) < 1e-9,
                "n = {n}, block = {block}"
            );
        }
    }

    #[test]
    fn blocked_lu_reconstructs() {
        let a = Matrix::random_diagonally_dominant(24, 77);
        let mut packed = a.clone();
        lu_blocked_inplace(&mut packed, 6).unwrap();
        let (l, u) = split_lu(&packed);
        assert!(gemm::matmul(&l, &u).relative_error(&a) < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs_spd() {
        // Build an SPD matrix A = BᵀB + n·I.
        let n = 20;
        let b = Matrix::random(n, n, 5);
        let mut a = gemm::matmul(&b.transpose(), &b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let mut l = a.clone();
        cholesky_inplace(&mut l).unwrap();
        let recon = gemm::matmul(&l, &l.transpose());
        assert!(recon.relative_error(&a) < 1e-12);
        // Upper triangle is zeroed.
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = Matrix::identity(4);
        a[(2, 2)] = -1.0;
        assert!(cholesky_inplace(&mut a).is_err());
    }

    #[test]
    fn cholesky_flops_leading_order() {
        let n = 1000u64;
        let ratio = cholesky_flops(n) as f64 / ((n as f64).powi(3) / 3.0);
        assert!((ratio - 1.0).abs() < 0.01);
        // Cholesky is half of LU (to leading order).
        let half_ratio = 2.0 * cholesky_flops(n) as f64 / lu_flops(n) as f64;
        assert!((half_ratio - 1.0).abs() < 0.02, "ratio {half_ratio}");
    }

    #[test]
    fn lu_flops_leading_order() {
        let n = 1000u64;
        let exact = lu_flops(n) as f64;
        let asymptotic = 2.0 / 3.0 * (n as f64).powi(3);
        assert!((exact / asymptotic - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn lu_rejects_rectangular() {
        let mut a = Matrix::zeros(3, 4);
        let _ = lu_nopivot_inplace(&mut a);
    }
}
