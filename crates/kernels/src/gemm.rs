//! Cache-blocked dense matrix multiplication.
//!
//! The workhorse kernel of the distributed matmul algorithms. The blocked
//! `i-k-j` loop order keeps the innermost loop a unit-stride
//! multiply-accumulate over rows of `B` and `C`, which LLVM vectorizes.

use crate::matrix::Matrix;

/// Block edge used by [`matmul_add_into`]; 64×64 f64 panels (32 KiB per
/// operand) fit comfortably in L1/L2 on current hardware.
const BLOCK: usize = 64;

/// Reference implementation: naive triple loop, `C = A·B`. Used as the
/// test oracle for every other multiplication routine in the workspace.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for l in 0..k {
            let ail = a[(i, l)];
            for j in 0..n {
                c[(i, j)] += ail * b[(l, j)];
            }
        }
    }
    c
}

/// Blocked `C += A·B`.
pub fn matmul_add_into(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "C rows must match A rows");
    assert_eq!(c.cols(), b.cols(), "C cols must match B cols");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (a_buf, b_buf) = (a.as_slice(), b.as_slice());
    let c_buf = c.as_mut_slice();
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for l0 in (0..k).step_by(BLOCK) {
            let l1 = (l0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    for l in l0..l1 {
                        let ail = a_buf[i * k + l];
                        let b_row = &b_buf[l * n + j0..l * n + j1];
                        let c_row = &mut c_buf[i * n + j0..i * n + j1];
                        for (cj, bj) in c_row.iter_mut().zip(b_row) {
                            *cj += ail * bj;
                        }
                    }
                }
            }
        }
    }
}

/// Blocked `C = A·B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_add_into(&mut c, a, b);
    c
}

/// Flop count of a dense `m×k · k×n` multiply-accumulate
/// (`2·m·k·n`: one multiply and one add per inner iteration).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_on_square() {
        let a = Matrix::random(33, 33, 1);
        let b = Matrix::random(33, 33, 2);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-12);
    }

    #[test]
    fn matches_naive_on_rectangular() {
        // Shapes straddling the block size in every dimension.
        for (m, k, n) in [
            (1, 1, 1),
            (5, 7, 3),
            (64, 64, 64),
            (65, 63, 130),
            (200, 1, 9),
        ] {
            let a = Matrix::random(m, k, 3);
            let b = Matrix::random(k, n, 4);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(fast.max_abs_diff(&slow) < 1e-12, "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(50, 50, 9);
        let i = Matrix::identity(50);
        assert!(matmul(&a, &i).max_abs_diff(&a) < 1e-14);
        assert!(matmul(&i, &a).max_abs_diff(&a) < 1e-14);
    }

    #[test]
    fn add_into_accumulates() {
        let a = Matrix::random(20, 20, 5);
        let b = Matrix::random(20, 20, 6);
        let mut c = matmul(&a, &b);
        matmul_add_into(&mut c, &a, &b);
        let twice = matmul(&a, &b).scale(2.0);
        assert!(c.max_abs_diff(&twice) < 1e-12);
    }

    #[test]
    fn associativity_within_tolerance() {
        let a = Matrix::random(24, 24, 1);
        let b = Matrix::random(24, 24, 2);
        let c = Matrix::random(24, 24, 3);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "inner dimensions must agree")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 3);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(100, 100, 100), 2_000_000);
    }
}
