//! Cache-blocked dense matrix multiplication.
//!
//! The workhorse kernel of the distributed matmul algorithms. The blocked
//! `i-k-j` loop order keeps the innermost loop a unit-stride
//! multiply-accumulate over rows of `B` and `C`, which LLVM vectorizes.

use crate::matrix::Matrix;

/// Block edge used by [`matmul_add_into`]; 64×64 f64 panels (32 KiB per
/// operand) fit comfortably in L1/L2 on current hardware.
const BLOCK: usize = 64;

/// Reference implementation: naive triple loop, `C = A·B`. Used as the
/// test oracle for every other multiplication routine in the workspace.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for l in 0..k {
            let ail = a[(i, l)];
            for j in 0..n {
                c[(i, j)] += ail * b[(l, j)];
            }
        }
    }
    c
}

/// Register-tile width (columns of `C` held in registers across the
/// `l` loop) and height (rows per micro-kernel invocation).
const NR: usize = 4;
const MR: usize = 2;

/// Blocked `C += A·B` with an `MR×NR` register-tiled micro-kernel.
///
/// Inside each cache block the interior is walked in `MR = 2` row by
/// `NR = 4` column tiles whose `C` entries live in accumulator
/// registers across the whole `l` loop — one load and one store per
/// entry per block instead of one per `l`. The accumulators start from
/// `C`'s current values and receive one `+= a[i,l]·b[l,j]` per `l` in
/// ascending order, i.e. the *same* f64 operation sequence per `(i,j)`
/// as the plain loop — results are bit-identical to the scalar path
/// (asserted by the `register_tile_is_bit_identical_to_scalar` test),
/// which the deterministic-simulation layers above rely on.
pub fn matmul_add_into(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "C rows must match A rows");
    assert_eq!(c.cols(), b.cols(), "C cols must match B cols");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let op = Operands {
        a: a.as_slice(),
        b: b.as_slice(),
        k,
        n,
    };
    let c_buf = c.as_mut_slice();
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for l0 in (0..k).step_by(BLOCK) {
            let l1 = (l0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                let mut i = i0;
                while i + MR <= i1 {
                    let mut j = j0;
                    while j + NR <= j1 {
                        op.microkernel(c_buf, i, j, l0, l1);
                        j += NR;
                    }
                    // Column remainder: plain scalar loop, row by row.
                    if j < j1 {
                        for r in i..i + MR {
                            op.scalar_tail(c_buf, r, j, j1, l0, l1);
                        }
                    }
                    i += MR;
                }
                // Row remainder.
                for r in i..i1 {
                    op.scalar_tail(c_buf, r, j0, j1, l0, l1);
                }
            }
        }
    }
}

/// Read-side operands of one multiply: `A` (`…×k`, row stride `k`) and
/// `B` (`k×n`, row stride `n`).
struct Operands<'m> {
    a: &'m [f64],
    b: &'m [f64],
    k: usize,
    n: usize,
}

impl Operands<'_> {
    /// `MR×NR` register tile: `C[i..i+MR, j..j+NR] += A[i..i+MR, l0..l1]
    /// · B[l0..l1, j..j+NR]`, accumulating in registers, adds in
    /// ascending `l` order.
    #[inline]
    fn microkernel(&self, c_buf: &mut [f64], i: usize, j: usize, l0: usize, l1: usize) {
        let n = self.n;
        let mut acc = [[0.0_f64; NR]; MR];
        for (r, row) in acc.iter_mut().enumerate() {
            row.copy_from_slice(&c_buf[(i + r) * n + j..(i + r) * n + j + NR]);
        }
        for l in l0..l1 {
            let b_row = &self.b[l * n + j..l * n + j + NR];
            for (r, row) in acc.iter_mut().enumerate() {
                let arl = self.a[(i + r) * self.k + l];
                for (acc_j, b_j) in row.iter_mut().zip(b_row) {
                    *acc_j += arl * b_j;
                }
            }
        }
        for (r, row) in acc.iter().enumerate() {
            c_buf[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(row);
        }
    }

    /// One row's remainder columns `[j, j1)`, plain scalar multiply-add
    /// in ascending `l` order (identical to the untiled inner loop).
    #[inline]
    fn scalar_tail(&self, c_buf: &mut [f64], i: usize, j: usize, j1: usize, l0: usize, l1: usize) {
        let n = self.n;
        for l in l0..l1 {
            let ail = self.a[i * self.k + l];
            let b_row = &self.b[l * n + j..l * n + j1];
            let c_row = &mut c_buf[i * n + j..i * n + j1];
            for (cj, bj) in c_row.iter_mut().zip(b_row) {
                *cj += ail * bj;
            }
        }
    }
}

/// Blocked `C = A·B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_add_into(&mut c, a, b);
    c
}

/// Flop count of a dense `m×k · k×n` multiply-accumulate
/// (`2·m·k·n`: one multiply and one add per inner iteration).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_on_square() {
        let a = Matrix::random(33, 33, 1);
        let b = Matrix::random(33, 33, 2);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-12);
    }

    #[test]
    fn matches_naive_on_rectangular() {
        // Shapes straddling the block size in every dimension.
        for (m, k, n) in [
            (1, 1, 1),
            (5, 7, 3),
            (64, 64, 64),
            (65, 63, 130),
            (200, 1, 9),
        ] {
            let a = Matrix::random(m, k, 3);
            let b = Matrix::random(k, n, 4);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(fast.max_abs_diff(&slow) < 1e-12, "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn register_tile_is_bit_identical_to_scalar() {
        // Per (i,j), both the naive loop and the tiled kernel add the
        // products a[i,l]·b[l,j] in ascending l order starting from the
        // same value — so the results must match to the last bit, not
        // just to a tolerance. Shapes straddle MR, NR and BLOCK in every
        // dimension (including all-remainder and empty-ish edges).
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (2, 4, 4),
            (3, 5, 6),
            (1, 64, 3),
            (2, 64, 5),
            (5, 1, 4),
            (63, 65, 66),
            (64, 64, 64),
            (65, 67, 129),
            (130, 3, 67),
        ] {
            let a = Matrix::random(m, k, 17);
            let b = Matrix::random(k, n, 18);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert_eq!(
                fast.as_slice(),
                slow.as_slice(),
                "bitwise mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn accumulation_is_bit_identical_too() {
        // C += A·B from a non-zero C: the accumulators start from C's
        // current values, so repeated add_into must equal the naive
        // sequence bit for bit as well.
        let (m, k, n) = (33, 65, 34);
        let a = Matrix::random(m, k, 19);
        let b = Matrix::random(k, n, 20);
        let mut c_tiled = Matrix::random(m, n, 21);
        let mut c_ref = c_tiled.clone();
        matmul_add_into(&mut c_tiled, &a, &b);
        matmul_add_into(&mut c_tiled, &a, &b);
        for _ in 0..2 {
            for i in 0..m {
                for l in 0..k {
                    let ail = a[(i, l)];
                    for j in 0..n {
                        c_ref[(i, j)] += ail * b[(l, j)];
                    }
                }
            }
        }
        assert_eq!(c_tiled.as_slice(), c_ref.as_slice());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(50, 50, 9);
        let i = Matrix::identity(50);
        assert!(matmul(&a, &i).max_abs_diff(&a) < 1e-14);
        assert!(matmul(&i, &a).max_abs_diff(&a) < 1e-14);
    }

    #[test]
    fn add_into_accumulates() {
        let a = Matrix::random(20, 20, 5);
        let b = Matrix::random(20, 20, 6);
        let mut c = matmul(&a, &b);
        matmul_add_into(&mut c, &a, &b);
        let twice = matmul(&a, &b).scale(2.0);
        assert!(c.max_abs_diff(&twice) < 1e-12);
    }

    #[test]
    fn associativity_within_tolerance() {
        let a = Matrix::random(24, 24, 1);
        let b = Matrix::random(24, 24, 2);
        let c = Matrix::random(24, 24, 3);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "inner dimensions must agree")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 3);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(100, 100, 100), 2_000_000);
    }
}
