//! Direct n-body force evaluation (the `O(n²)` interaction kernel of
//! paper §IV).
//!
//! The paper's requirement is only that pairwise results combine
//! associatively; we use softened gravity as the concrete interaction.
//! [`accumulate_forces`] computes the partial forces exerted by one block
//! of *source* particles on one block of *target* particles — exactly the
//! unit of work a rank performs between communication steps in the
//! replicated distributed algorithm.

/// A particle: position, velocity and mass. Velocities participate only
/// in [`integrate_step`]; the force kernel reads positions and masses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Position (x, y, z).
    pub pos: [f64; 3],
    /// Velocity (vx, vy, vz).
    pub vel: [f64; 3],
    /// Mass (must be ≥ 0).
    pub mass: f64,
}

impl Particle {
    /// A stationary particle at `pos` with mass `mass`.
    pub fn at(pos: [f64; 3], mass: f64) -> Self {
        Particle {
            pos,
            vel: [0.0; 3],
            mass,
        }
    }
}

/// Softening length: keeps the force finite when particles coincide
/// (standard Plummer softening).
pub const SOFTENING: f64 = 1e-9;

/// Flops per pairwise interaction charged by the cost model: 3 subs,
/// 3 mults + 3 adds (r² accumulation incl. softening), ~4 for the
/// rsqrt/cube, 1 scale, 3 mults + 3 adds for the accumulate — 20 in
/// round numbers, matching `DirectNBody::default()` in `psse-core`.
pub const FLOPS_PER_INTERACTION: u64 = 20;

/// Accumulate into `acc[i]` the gravitational acceleration exerted on
/// `targets[i]` by every particle in `sources` (skipping exact
/// self-pairs). `acc` must have `targets.len()` entries.
///
/// Associativity: calling this repeatedly with disjoint source blocks
/// sums to the full interaction — the property the replicating algorithm
/// relies on (verified by tests and by `psse-algos`).
pub fn accumulate_forces(targets: &[Particle], sources: &[Particle], acc: &mut [[f64; 3]]) {
    assert_eq!(targets.len(), acc.len(), "one accumulator per target");
    for (t, a) in targets.iter().zip(acc.iter_mut()) {
        for s in sources {
            let dx = s.pos[0] - t.pos[0];
            let dy = s.pos[1] - t.pos[1];
            let dz = s.pos[2] - t.pos[2];
            let r2 = dx * dx + dy * dy + dz * dz + SOFTENING * SOFTENING;
            if r2 <= 2.0 * SOFTENING * SOFTENING {
                // Same position (self-interaction under block replication).
                continue;
            }
            let inv_r = 1.0 / r2.sqrt();
            let inv_r3 = inv_r * inv_r * inv_r;
            let f = s.mass * inv_r3;
            a[0] += f * dx;
            a[1] += f * dy;
            a[2] += f * dz;
        }
    }
}

/// Total gravitational potential energy of a particle set (pairwise,
/// `O(n²)`; used to sanity-check force consistency in tests).
pub fn potential_energy(particles: &[Particle]) -> f64 {
    let mut e = 0.0;
    for i in 0..particles.len() {
        for j in (i + 1)..particles.len() {
            let a = &particles[i];
            let b = &particles[j];
            let dx = a.pos[0] - b.pos[0];
            let dy = a.pos[1] - b.pos[1];
            let dz = a.pos[2] - b.pos[2];
            let r = (dx * dx + dy * dy + dz * dz + SOFTENING * SOFTENING).sqrt();
            e -= a.mass * b.mass / r;
        }
    }
    e
}

/// One leapfrog (kick-drift) step with timestep `dt` given precomputed
/// accelerations.
pub fn integrate_step(particles: &mut [Particle], acc: &[[f64; 3]], dt: f64) {
    assert_eq!(particles.len(), acc.len());
    for (p, a) in particles.iter_mut().zip(acc) {
        for d in 0..3 {
            p.vel[d] += a[d] * dt;
            p.pos[d] += p.vel[d] * dt;
        }
    }
}

/// Deterministic random particle cloud in the unit cube with unit total
/// mass.
pub fn random_particles(n: usize, seed: u64) -> Vec<Particle> {
    let mut rng = crate::rng::XorShift64::new(seed);
    let m = 1.0 / n as f64;
    (0..n)
        .map(|_| {
            Particle::at(
                [
                    rng.range_f64(0.0, 1.0),
                    rng.range_f64(0.0, 1.0),
                    rng.range_f64(0.0, 1.0),
                ],
                m,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_force(particles: &[Particle]) -> Vec<[f64; 3]> {
        let mut acc = vec![[0.0; 3]; particles.len()];
        accumulate_forces(particles, particles, &mut acc);
        acc
    }

    #[test]
    fn two_body_attraction_is_symmetric() {
        let ps = vec![
            Particle::at([0.0, 0.0, 0.0], 1.0),
            Particle::at([1.0, 0.0, 0.0], 1.0),
        ];
        let acc = total_force(&ps);
        // Accelerations point at each other with magnitude m/r² = 1.
        assert!((acc[0][0] - 1.0).abs() < 1e-6);
        assert!((acc[1][0] + 1.0).abs() < 1e-6);
        assert!(acc[0][1].abs() < 1e-12 && acc[0][2].abs() < 1e-12);
    }

    #[test]
    fn momentum_is_conserved_for_equal_masses() {
        let ps = random_particles(64, 1);
        let acc = total_force(&ps);
        // Equal masses: sum of accelerations vanishes (Newton's third law).
        for d in 0..3 {
            let sum: f64 = acc.iter().map(|a| a[d]).sum();
            assert!(sum.abs() < 1e-9, "axis {d}: net {sum}");
        }
    }

    #[test]
    fn block_decomposition_matches_monolithic() {
        // The associativity property the replicating algorithm depends
        // on: summing partial forces from source blocks equals the full
        // computation.
        let ps = random_particles(48, 2);
        let full = total_force(&ps);
        let mut partial = vec![[0.0; 3]; ps.len()];
        for chunk in ps.chunks(7) {
            accumulate_forces(&ps, chunk, &mut partial);
        }
        for (f, p) in full.iter().zip(&partial) {
            for d in 0..3 {
                assert!((f[d] - p[d]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn self_interaction_is_skipped() {
        let ps = vec![Particle::at([0.5, 0.5, 0.5], 3.0)];
        let acc = total_force(&ps);
        assert_eq!(acc[0], [0.0; 3]);
    }

    #[test]
    fn coincident_distinct_particles_do_not_blow_up() {
        let ps = vec![
            Particle::at([0.1, 0.2, 0.3], 1.0),
            Particle::at([0.1, 0.2, 0.3], 1.0),
        ];
        let acc = total_force(&ps);
        assert!(acc.iter().flatten().all(|x| x.is_finite()));
    }

    #[test]
    fn inverse_square_falloff() {
        let probe = |r: f64| {
            let ps = [
                Particle::at([0.0; 3], 0.0),
                Particle::at([r, 0.0, 0.0], 1.0),
            ];
            let mut acc = vec![[0.0; 3]; 1];
            accumulate_forces(&ps[..1], &ps[1..], &mut acc);
            acc[0][0]
        };
        let f1 = probe(1.0);
        let f2 = probe(2.0);
        assert!((f1 / f2 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn integration_moves_particles() {
        let mut ps = vec![
            Particle::at([0.0, 0.0, 0.0], 1.0),
            Particle::at([1.0, 0.0, 0.0], 1.0),
        ];
        let acc = total_force(&ps);
        integrate_step(&mut ps, &acc, 0.01);
        assert!(ps[0].pos[0] > 0.0, "left particle pulled right");
        assert!(ps[1].pos[0] < 1.0, "right particle pulled left");
    }

    #[test]
    fn potential_energy_is_negative_and_scales() {
        let ps = random_particles(32, 3);
        let e = potential_energy(&ps);
        assert!(e < 0.0);
        // Doubling masses quadruples |E|.
        let heavy: Vec<Particle> = ps
            .iter()
            .map(|p| Particle {
                mass: 2.0 * p.mass,
                ..*p
            })
            .collect();
        let e2 = potential_energy(&heavy);
        assert!((e2 / e - 4.0).abs() < 1e-9);
    }

    #[test]
    fn random_particles_deterministic_unit_mass() {
        let a = random_particles(100, 7);
        let b = random_particles(100, 7);
        assert_eq!(a, b);
        let total: f64 = a.iter().map(|p| p.mass).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
