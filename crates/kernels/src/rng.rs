//! A tiny deterministic pseudo-random generator (xorshift64*).
//!
//! Used to build reproducible workloads (matrices, particle sets, FFT
//! inputs) without pulling `rand` into the library's dependency graph.
//! Not cryptographic; statistical quality is ample for test data.

/// xorshift64* generator. Identical seeds produce identical streams on
/// every platform.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator. A zero seed is remapped (xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut g = XorShift64::new(0);
        assert_ne!(g.next_u64(), 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut g = XorShift64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut g = XorShift64::new(123);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut g = XorShift64::new(9);
        for _ in 0..1000 {
            let x = g.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut g = XorShift64::new(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[g.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}
