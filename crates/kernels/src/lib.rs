//! # psse-kernels — local compute kernels
//!
//! Sequential building blocks used by the distributed algorithms of
//! `psse-algos`:
//!
//! * [`matrix`] — a dense row-major [`matrix::Matrix`] with block
//!   extraction/insertion (the unit of communication in the distributed
//!   matmul/LU algorithms);
//! * [`gemm`] — cache-blocked matrix multiplication (`C += A·B`);
//! * [`strassen`] — Strassen's recursive matrix multiplication with a
//!   classical-GEMM cutoff;
//! * [`lu`] — LU factorization (with and without partial pivoting) and
//!   triangular solves;
//! * [`fft`] — an iterative radix-2 Cooley–Tukey FFT over our own
//!   [`fft::Complex64`], plus a naive DFT reference;
//! * [`nbody`] — softened gravitational pairwise force accumulation;
//! * [`rng`] — a tiny deterministic xorshift generator for reproducible
//!   workload construction without external dependencies.
//!
//! Everything here is deterministic and dependency-free; `rand` and
//! `proptest` appear only in dev-dependencies for testing.

#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN alongside non-positive values;
// `partial_cmp` would obscure that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Index-based loops are kept where the index participates in the math
// (grid coordinates, butterfly strides); iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod fft;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod nbody;
pub mod qr;
pub mod rng;
pub mod strassen;

pub use fft::Complex64;
pub use matrix::Matrix;
