//! Householder QR factorization.
//!
//! QR is on the paper's §III list of factorizations covered by the
//! communication lower bounds; the distributed counterpart
//! (`psse-algos::tsqr`) is the communication-avoiding TSQR whose
//! `log p` latency the CA-algorithms literature highlights. This module
//! provides the local kernel: thin Householder QR with explicit `Q`
//! formation and a sign convention (non-negative `R` diagonal) that
//! makes the factorization unique — so distributed and sequential
//! results can be compared elementwise.

use crate::matrix::Matrix;

/// Thin QR of an `m × n` matrix with `m ≥ n`: returns `(Q, R)` with
/// `Q` of shape `m × n` (orthonormal columns), `R` upper triangular
/// `n × n` with non-negative diagonal, and `Q·R = A`.
///
/// # Panics
/// If `m < n`.
pub fn householder_qr(a: &Matrix) -> (Matrix, Matrix) {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "thin QR requires m >= n (got {m} x {n})");
    let mut r = a.clone();
    // Accumulate reflectors: Q starts as the m×n identity pad and has
    // every reflector applied from the left, in reverse.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
    for k in 0..n {
        // Build the Householder vector for column k.
        let mut norm2 = 0.0;
        for i in k..m {
            norm2 += r[(i, k)] * r[(i, k)];
        }
        let norm = norm2.sqrt();
        let mut v = vec![0.0; m - k];
        if norm == 0.0 {
            vs.push(v);
            continue;
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        v[0] = r[(k, k)] - alpha;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 > 0.0 {
            // Apply I − 2vvᵀ/‖v‖² to R[k.., k..].
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i - k] * r[(i, j)];
                }
                let scale = 2.0 * dot / vnorm2;
                for i in k..m {
                    r[(i, j)] -= scale * v[i - k];
                }
            }
        }
        vs.push(v);
    }
    // Form thin Q by applying the reflectors to the first n columns of
    // the identity, in reverse order.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        q[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * q[(i, j)];
            }
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                q[(i, j)] -= scale * v[i - k];
            }
        }
    }
    // Zero R's subdiagonal (numerically tiny but not exactly zero) and
    // normalize signs so diag(R) ≥ 0.
    let mut r_thin = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_thin[(i, j)] = r[(i, j)];
        }
    }
    for i in 0..n {
        if r_thin[(i, i)] < 0.0 {
            for j in i..n {
                r_thin[(i, j)] = -r_thin[(i, j)];
            }
            for row in 0..m {
                q[(row, i)] = -q[(row, i)];
            }
        }
    }
    (q, r_thin)
}

/// Flop count of thin Householder QR on `m × n`: `2mn² − (2/3)n³` to
/// leading order (R only; forming thin Q costs about the same again).
pub fn qr_flops(m: u64, n: u64) -> u64 {
    2 * m * n * n - 2 * n * n * n / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn check_qr(a: &Matrix) {
        let (q, r) = householder_qr(a);
        let m = a.rows();
        let n = a.cols();
        assert_eq!(q.rows(), m);
        assert_eq!(q.cols(), n);
        assert_eq!(r.rows(), n);
        assert_eq!(r.cols(), n);
        // Q·R = A.
        assert!(
            matmul(&q, &r).relative_error(a) < 1e-10,
            "QR should reconstruct A"
        );
        // QᵀQ = I.
        let qtq = matmul(&q.transpose(), &q);
        assert!(qtq.relative_error(&Matrix::identity(n)) < 1e-10);
        // R upper triangular, non-negative diagonal.
        for i in 0..n {
            assert!(r[(i, i)] >= 0.0);
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_of_random_shapes() {
        for (m, n) in [
            (1usize, 1usize),
            (4, 4),
            (10, 3),
            (32, 8),
            (17, 17),
            (64, 5),
        ] {
            check_qr(&Matrix::random(m, n, (m * 31 + n) as u64));
        }
    }

    #[test]
    fn qr_of_identity_is_identity() {
        let (q, r) = householder_qr(&Matrix::identity(5));
        assert!(q.relative_error(&Matrix::identity(5)) < 1e-12);
        assert!(r.relative_error(&Matrix::identity(5)) < 1e-12);
    }

    #[test]
    fn qr_handles_rank_deficiency() {
        // A zero column: still a valid factorization, just R with a zero
        // on the diagonal.
        let mut a = Matrix::random(8, 3, 9);
        for i in 0..8 {
            a[(i, 1)] = 0.0;
        }
        let (q, r) = householder_qr(&a);
        assert!(matmul(&q, &r).relative_error(&a) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn qr_rejects_wide_matrices() {
        let _ = householder_qr(&Matrix::random(3, 5, 1));
    }

    #[test]
    fn unique_factorization_for_full_rank() {
        // With diag(R) ≥ 0 the thin QR of a full-rank matrix is unique:
        // factoring twice (or after a benign round trip) agrees.
        let a = Matrix::random(20, 6, 11);
        let (q1, r1) = householder_qr(&a);
        let recon = matmul(&q1, &r1);
        let (q2, r2) = householder_qr(&recon);
        assert!(q1.max_abs_diff(&q2) < 1e-9);
        assert!(r1.max_abs_diff(&r2) < 1e-9);
    }

    #[test]
    fn flop_count_leading_order() {
        let (m, n) = (10_000u64, 100u64);
        let exact = qr_flops(m, n) as f64;
        let asymptotic = 2.0 * (m as f64) * (n as f64) * (n as f64);
        assert!((exact / asymptotic - 1.0).abs() < 0.01);
    }
}
