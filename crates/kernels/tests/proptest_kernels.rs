//! Property-based tests of the local kernels: algebraic identities over
//! random inputs and shapes.

use proptest::prelude::*;
use psse_kernels::fft::{dft_naive, fft, fft_in_place, ifft, Complex64, Direction};
use psse_kernels::gemm::{matmul, matmul_naive};
use psse_kernels::lu::{
    apply_permutation, lu_partial_pivot_inplace, solve, solve_unit_lower, solve_upper, split_lu,
};
use psse_kernels::matrix::Matrix;
use psse_kernels::qr::householder_qr;
use psse_kernels::rng::XorShift64;
use psse_kernels::strassen::{strassen_winograd, strassen_with_cutoff};

fn signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = XorShift64::new(seed);
    (0..n)
        .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Blocked GEMM equals the naive triple loop on arbitrary shapes.
    #[test]
    fn gemm_matches_naive(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-11);
    }

    /// Distributivity: A(B + C) = AB + AC.
    #[test]
    fn gemm_distributes(n in 1usize..24, seed in 0u64..1000) {
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let c = Matrix::random(n, n, seed + 2);
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-11);
    }

    /// Transpose reverses products: (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn transpose_reverses_products(m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000) {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 7);
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-11);
    }

    /// Both Strassen variants agree with the classical product for any
    /// square size and cutoff.
    #[test]
    fn strassen_variants_match(n in 1usize..48, cutoff in 1usize..16, seed in 0u64..1000) {
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 3);
        let reference = matmul_naive(&a, &b);
        prop_assert!(strassen_with_cutoff(&a, &b, cutoff).max_abs_diff(&reference) < 1e-9);
        prop_assert!(strassen_winograd(&a, &b, cutoff).max_abs_diff(&reference) < 1e-9);
    }

    /// Pivoted LU reconstructs P·A, and `solve` inverts it.
    #[test]
    fn lu_reconstructs_and_solves(n in 1usize..24, seed in 0u64..1000) {
        let a = Matrix::random(n, n, seed);
        let mut packed = a.clone();
        // Random matrices are almost surely nonsingular; skip the rare
        // failure rather than fail the property.
        let Ok(perm) = lu_partial_pivot_inplace(&mut packed) else {
            return Ok(());
        };
        let (l, u) = split_lu(&packed);
        let pa = apply_permutation(&a, &perm);
        prop_assert!(matmul(&l, &u).relative_error(&pa) < 1e-8);

        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 3.0).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[(i, j)] * x_true[j]).sum())
            .collect();
        if let Ok(x) = solve(&a, &b) {
            // Verify the residual rather than x itself (the matrix may
            // be ill-conditioned).
            for i in 0..n {
                let ax: f64 = (0..n).map(|j| a[(i, j)] * x[j]).sum();
                prop_assert!((ax - b[i]).abs() < 1e-6 * (1.0 + b[i].abs()));
            }
        }
    }

    /// Triangular solves invert triangular products.
    #[test]
    fn triangular_solves_invert(n in 1usize..20, cols in 1usize..6, seed in 0u64..1000) {
        let mut l = Matrix::random(n, n, seed);
        for i in 0..n {
            l[(i, i)] = 1.0;
            for j in (i + 1)..n {
                l[(i, j)] = 0.0;
            }
        }
        let x = Matrix::random(n, cols, seed + 5);
        let b = matmul(&l, &x);
        prop_assert!(solve_unit_lower(&l, &b).max_abs_diff(&x) < 1e-8);

        let mut u = Matrix::random(n, n, seed + 9);
        for i in 0..n {
            u[(i, i)] = 2.0 + u[(i, i)].abs(); // well-conditioned diagonal
            for j in 0..i {
                u[(i, j)] = 0.0;
            }
        }
        let b = matmul(&u, &x);
        prop_assert!(solve_upper(&u, &b).unwrap().max_abs_diff(&x) < 1e-8);
    }

    /// FFT: inverse and naive-DFT agreement, linearity and time-shift.
    #[test]
    fn fft_identities(log_n in 1u32..9, seed in 0u64..1000) {
        let n = 1usize << log_n;
        let x = signal(n, seed);

        // Roundtrip.
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }

        // Against the O(n²) oracle (small sizes only).
        if n <= 128 {
            let slow = dft_naive(&x, Direction::Forward);
            for (a, b) in fft(&x).iter().zip(&slow) {
                prop_assert!((*a - *b).abs() < 1e-8);
            }
        }

        // Time-shift theorem: rotating the input multiplies bin k by
        // e^(-2πik/n).
        let mut shifted = x.clone();
        shifted.rotate_left(1);
        let fs = fft(&shifted);
        let fx = fft(&x);
        for (k, (s, o)) in fs.iter().zip(&fx).enumerate() {
            let w = Complex64::from_polar(2.0 * std::f64::consts::PI * k as f64 / n as f64);
            prop_assert!((*s - *o * w).abs() < 1e-8, "bin {k}");
        }
    }

    /// Parseval for any power-of-two length.
    #[test]
    fn fft_parseval(log_n in 1u32..12, seed in 0u64..1000) {
        let n = 1usize << log_n;
        let mut x = signal(n, seed);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        fft_in_place(&mut x, Direction::Forward);
        let ey: f64 = x.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((ex - ey).abs() < 1e-9 * ex.max(1.0));
    }

    /// QR: reconstruction, orthonormality and triangularity for random
    /// tall shapes.
    #[test]
    fn qr_identities(m in 1usize..40, n_frac in 0.0..1.0f64, seed in 0u64..1000) {
        let n = 1 + ((m - 1) as f64 * n_frac) as usize; // 1 <= n <= m
        let a = Matrix::random(m, n, seed);
        let (q, r) = householder_qr(&a);
        prop_assert!(matmul(&q, &r).relative_error(&a) < 1e-9);
        let qtq = matmul(&q.transpose(), &q);
        prop_assert!(qtq.relative_error(&Matrix::identity(n)) < 1e-9);
        for i in 0..n {
            prop_assert!(r[(i, i)] >= 0.0);
            for j in 0..i {
                prop_assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    /// Matrix block extraction/insertion roundtrips for any geometry.
    #[test]
    fn block_roundtrip(
        rows in 1usize..30,
        cols in 1usize..30,
        seed in 0u64..1000,
        r0f in 0.0..1.0f64,
        c0f in 0.0..1.0f64,
    ) {
        let m = Matrix::random(rows, cols, seed);
        let r0 = ((rows - 1) as f64 * r0f) as usize;
        let c0 = ((cols - 1) as f64 * c0f) as usize;
        let br = rows - r0;
        let bc = cols - c0;
        let blk = m.block(r0, c0, br, bc);
        let mut back = Matrix::zeros(rows, cols);
        back.set_block(r0, c0, &blk);
        for i in 0..br {
            for j in 0..bc {
                prop_assert_eq!(back[(r0 + i, c0 + j)], m[(r0 + i, c0 + j)]);
            }
        }
    }
}
