//! Iterated halo-exchange stencil (paper §V applied beyond linear
//! algebra).
//!
//! A periodic `n × n` grid is advanced `iters` sweeps of a
//! `(2h+1) × (2h+1)` box stencil (`h` = halo width): every cell becomes
//! the average of its Chebyshev-radius-`h` neighbourhood. The grid is
//! block-decomposed across `p` ranks ([`Decomp::OneD`]: `p` row slabs;
//! [`Decomp::TwoD`]: a `√p × √p` tile grid) and each sweep exchanges
//! `h`-deep halos with the neighbouring ranks before updating the
//! interior.
//!
//! Cost shape per rank and sweep (2-D tiles of side `b = n/√p`):
//! `F = (2h+1)²·b²` (volume), `W = Θ(h·b) = Θ(h·n/√p)` (surface),
//! `S = 4` (north/south, then east/west carrying the corners). Volume
//! shrinks like `1/p` while surface shrinks like `1/√p` — the classic
//! surface-to-volume law. Unlike sample sort's all-to-all, *both* `W`
//! and `S` per sweep stay bounded (S is constant, W falls), so the
//! stencil **does** admit a perfect strong scaling range; `psse-core`'s
//! `HaloStencilModel` derives its `[pmin, pmax]` band.
//!
//! Determinism: the distributed update sums the neighbourhood in the
//! same `(di, dj)` order as [`serial_stencil`], so the two are
//! **bit-identical** — the tests assert equality of f64 bit patterns,
//! not approximate closeness.

use psse_kernels::rng::XorShift64;
use psse_sim::prelude::*;

/// How the grid is split across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decomp {
    /// `p` horizontal slabs of `n/p` rows (halo exchange north/south
    /// only; surface `Θ(h·n)` per rank, independent of `p`).
    OneD,
    /// `√p × √p` square tiles (surface `Θ(h·n/√p)` — the
    /// communication-optimal layout).
    TwoD,
}

/// Deterministic seeded initial grid values in `[-1, 1)`.
pub fn random_grid(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift64::new(seed);
    (0..n * n).map(|_| rng.range_f64(-1.0, 1.0)).collect()
}

/// Flops charged per cell and sweep: `(2h+1)² − 1` adds plus one
/// multiply by the normalization constant.
pub fn stencil_flops_per_cell(halo: usize) -> u64 {
    let k = 2 * halo as u64 + 1;
    k * k
}

/// Reference sweep: one periodic box-average pass over the full grid,
/// summing the neighbourhood in ascending `(di, dj)` order — the same
/// order the distributed kernel uses, so results match bit-for-bit.
fn serial_sweep(grid: &[f64], n: usize, h: usize) -> Vec<f64> {
    let inv = 1.0 / ((2 * h + 1) * (2 * h + 1)) as f64;
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for di in 0..=2 * h {
                let r = (i + n + di - h) % n;
                for dj in 0..=2 * h {
                    let c = (j + n + dj - h) % n;
                    acc += grid[r * n + c];
                }
            }
            out[i * n + j] = acc * inv;
        }
    }
    out
}

/// Apply `iters` sweeps of the radius-`halo` box stencil serially.
pub fn serial_stencil(grid: &[f64], n: usize, halo: usize, iters: usize) -> Vec<f64> {
    let mut g = grid.to_vec();
    for _ in 0..iters {
        g = serial_sweep(&g, n, halo);
    }
    g
}

/// Validate and return `(rows of rank grid, cols of rank grid)` — the
/// process-grid shape for a decomposition.
fn process_grid(
    n: usize,
    halo: usize,
    decomp: Decomp,
    p: usize,
) -> Result<(usize, usize), SimError> {
    if p == 0 {
        return Err(SimError::Algorithm("stencil: p must be >= 1".into()));
    }
    if halo == 0 {
        return Err(SimError::Algorithm(
            "stencil: halo width must be >= 1".into(),
        ));
    }
    let (pr, pc) = match decomp {
        Decomp::OneD => (p, 1),
        Decomp::TwoD => {
            let q = (p as f64).sqrt().round() as usize;
            if q * q != p {
                return Err(SimError::Algorithm(format!(
                    "stencil: 2-D decomposition needs a square rank count, got p = {p}"
                )));
            }
            (q, q)
        }
    };
    if !n.is_multiple_of(pr) || !n.is_multiple_of(pc) {
        return Err(SimError::Algorithm(format!(
            "stencil: process grid {pr}×{pc} must divide the {n}×{n} domain"
        )));
    }
    if halo > n / pr || halo > n / pc {
        return Err(SimError::Algorithm(format!(
            "stencil: halo {halo} exceeds the local block \
             ({}/{} rows/cols per rank) — neighbours only hold one halo",
            n / pr,
            n / pc
        )));
    }
    Ok((pr, pc))
}

/// Advance the periodic `n × n` grid `iters` sweeps of the radius-`halo`
/// box stencil on `p` ranks. Returns the final grid (row-major) and the
/// execution profile. Requires the process grid to divide `n` and
/// `halo ≤` block side.
pub fn halo_stencil(
    grid: &[f64],
    n: usize,
    halo: usize,
    iters: usize,
    decomp: Decomp,
    p: usize,
    cfg: SimConfig,
) -> Result<(Vec<f64>, Profile), SimError> {
    if grid.len() != n * n || n == 0 {
        return Err(SimError::Algorithm(format!(
            "stencil: grid must hold n² = {} values, got {}",
            n * n,
            grid.len()
        )));
    }
    let (pr, pc) = process_grid(n, halo, decomp, p)?;
    let br = n / pr; // block rows per rank
    let bc = n / pc; // block cols per rank
    let h = halo;

    let out = Machine::run(p, cfg, |rank| {
        let me = rank.rank();
        let (bi, bj) = (me / pc, me % pc);
        let (r0, c0) = (bi * br, bj * bc);
        // Working set: the local block plus the halo-extended buffer.
        let ext_words = ((br + 2 * h) * (bc + 2 * h)) as u64;
        let words = (br * bc) as u64 + ext_words;
        rank.alloc(words)?;

        let mut block: Vec<f64> = (0..br)
            .flat_map(|i| {
                grid[(r0 + i) * n + c0..(r0 + i) * n + c0 + bc]
                    .iter()
                    .copied()
            })
            .collect();

        let north = ((bi + pr - 1) % pr) * pc + bj;
        let south = ((bi + 1) % pr) * pc + bj;
        let west = bi * pc + (bj + pc - 1) % pc;
        let east = bi * pc + (bj + 1) % pc;
        let inv = 1.0 / ((2 * h + 1) * (2 * h + 1)) as f64;

        for t in 0..iters {
            let tag = Tag(4 * t as u64);
            // Phase A (rows): my top h rows go north, my bottom h rows
            // go south; the reverse transfers fill my row halos. A
            // self-neighbour (pr = 1) wraps locally — no traffic.
            let top: Vec<f64> = block[..h * bc].to_vec();
            let bottom: Vec<f64> = block[(br - h) * bc..].to_vec();
            let (halo_top, halo_bottom) = if north == me {
                (bottom.clone(), top.clone())
            } else {
                let hb = rank.sendrecv(north, tag, top, south, tag)?;
                let ht = rank.sendrecv(south, tag.offset(1), bottom, north, tag.offset(1))?;
                (ht, hb)
            };

            // Vertically extended block: (br + 2h) × bc.
            let vr = br + 2 * h;
            let mut vert = Vec::with_capacity(vr * bc);
            vert.extend_from_slice(&halo_top);
            vert.extend_from_slice(&block);
            vert.extend_from_slice(&halo_bottom);

            // Phase B (cols): h-wide edge columns of the *extended*
            // block travel west/east, carrying the corner halos.
            let col_slab = |cs: usize| -> Vec<f64> {
                let mut v = Vec::with_capacity(vr * h);
                for r in 0..vr {
                    v.extend_from_slice(&vert[r * bc + cs..r * bc + cs + h]);
                }
                v
            };
            let left = col_slab(0);
            let right = col_slab(bc - h);
            let (halo_left, halo_right) = if west == me {
                (right.clone(), left.clone())
            } else {
                let hr = rank.sendrecv(west, tag.offset(2), left, east, tag.offset(2))?;
                let hl = rank.sendrecv(east, tag.offset(3), right, west, tag.offset(3))?;
                (hl, hr)
            };

            // Fully extended block: (br + 2h) × (bc + 2h).
            let ec = bc + 2 * h;
            let mut ext = vec![0.0; vr * ec];
            for r in 0..vr {
                ext[r * ec..r * ec + h].copy_from_slice(&halo_left[r * h..(r + 1) * h]);
                ext[r * ec + h..r * ec + h + bc].copy_from_slice(&vert[r * bc..(r + 1) * bc]);
                ext[r * ec + h + bc..(r + 1) * ec].copy_from_slice(&halo_right[r * h..(r + 1) * h]);
            }

            // Update: ascending (di, dj) sum — bit-identical to
            // `serial_sweep`'s order.
            for i in 0..br {
                for j in 0..bc {
                    let mut acc = 0.0;
                    for di in 0..=2 * h {
                        let base = (i + di) * ec + j;
                        for dj in 0..=2 * h {
                            acc += ext[base + dj];
                        }
                    }
                    block[i * bc + j] = acc * inv;
                }
            }
            rank.compute((br * bc) as u64 * stencil_flops_per_cell(h));
        }

        rank.free(words)?;
        Ok(block)
    })?;

    // Reassemble the row-major global grid from the rank tiles.
    let mut result = vec![0.0; n * n];
    for (me, block) in out.results.iter().enumerate() {
        let (bi, bj) = (me / pc, me % pc);
        for i in 0..br {
            let row = (bi * br + i) * n + bj * bc;
            result[row..row + bc].copy_from_slice(&block[i * bc..(i + 1) * bc]);
        }
    }
    Ok((result, out.profile))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bits_equal(a: &[f64], b: &[f64], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: cell {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_serial_bit_identically_1d() {
        for (n, p, h, iters) in [
            (16usize, 1usize, 1usize, 2usize),
            (16, 4, 1, 3),
            (24, 8, 2, 2),
        ] {
            let grid = random_grid(n, 3 + n as u64);
            let (out, _) = halo_stencil(
                &grid,
                n,
                h,
                iters,
                Decomp::OneD,
                p,
                SimConfig::counters_only(),
            )
            .unwrap();
            let reference = serial_stencil(&grid, n, h, iters);
            assert_bits_equal(&out, &reference, &format!("1d n={n} p={p} h={h}"));
        }
    }

    #[test]
    fn matches_serial_bit_identically_2d() {
        for (n, p, h, iters) in [
            (16usize, 4usize, 1usize, 2usize),
            (16, 16, 2, 2),
            (24, 9, 3, 1),
        ] {
            let grid = random_grid(n, 7 + n as u64);
            let (out, _) = halo_stencil(
                &grid,
                n,
                h,
                iters,
                Decomp::TwoD,
                p,
                SimConfig::counters_only(),
            )
            .unwrap();
            let reference = serial_stencil(&grid, n, h, iters);
            assert_bits_equal(&out, &reference, &format!("2d n={n} p={p} h={h}"));
        }
    }

    #[test]
    fn words_match_surface_closed_form_2d() {
        // Per rank and sweep: rows 2·h·b words + extended cols
        // 2·h·(b + 2h) words — every rank symmetric under periodicity.
        let (n, p, h, iters) = (32usize, 16usize, 2usize, 3usize);
        let grid = random_grid(n, 5);
        let (_, profile) = halo_stencil(
            &grid,
            n,
            h,
            iters,
            Decomp::TwoD,
            p,
            SimConfig::counters_only(),
        )
        .unwrap();
        let b = n / 4;
        let per_sweep = 2 * h * b + 2 * h * (b + 2 * h);
        assert_eq!(profile.max_words_sent(), (iters * per_sweep) as u64);
        // And exactly 4 messages per sweep.
        assert_eq!(profile.max_msgs_sent(), (4 * iters) as u64);
    }

    #[test]
    fn surface_to_volume_scaling() {
        // Doubling the process-grid edge halves W per rank (surface ~
        // h·n/√p) and quarters F per rank (volume ~ n²/p).
        let n = 64;
        let grid = random_grid(n, 9);
        let (_, p4) =
            halo_stencil(&grid, n, 1, 2, Decomp::TwoD, 4, SimConfig::counters_only()).unwrap();
        let (_, p16) =
            halo_stencil(&grid, n, 1, 2, Decomp::TwoD, 16, SimConfig::counters_only()).unwrap();
        let w_ratio = p4.max_words_sent() as f64 / p16.max_words_sent() as f64;
        let f_ratio = p4.max_flops() as f64 / p16.max_flops() as f64;
        assert!((1.8..=2.2).contains(&w_ratio), "surface ratio {w_ratio}");
        assert!((f_ratio - 4.0).abs() < 1e-12, "volume ratio {f_ratio}");
    }

    #[test]
    fn one_d_slabs_exchange_full_rows() {
        // 1-D: W per rank and sweep is 2·h·n — independent of p (the
        // reason 2-D wins at scale).
        let n = 32;
        let grid = random_grid(n, 11);
        for p in [2usize, 4, 8] {
            let (_, profile) =
                halo_stencil(&grid, n, 1, 1, Decomp::OneD, p, SimConfig::counters_only()).unwrap();
            assert_eq!(profile.max_words_sent(), 2 * n as u64, "p={p}");
        }
    }

    #[test]
    fn zero_iterations_is_identity() {
        let n = 16;
        let grid = random_grid(n, 13);
        let (out, profile) =
            halo_stencil(&grid, n, 1, 0, Decomp::TwoD, 4, SimConfig::counters_only()).unwrap();
        assert_bits_equal(&out, &grid, "identity");
        assert_eq!(profile.total_words_sent(), 0);
    }

    #[test]
    fn rejects_bad_configurations() {
        let grid = random_grid(16, 1);
        let cfg = SimConfig::counters_only;
        // Non-square p for 2-D.
        assert!(halo_stencil(&grid, 16, 1, 1, Decomp::TwoD, 8, cfg()).is_err());
        // Process grid does not divide n.
        assert!(halo_stencil(&grid, 16, 1, 1, Decomp::OneD, 5, cfg()).is_err());
        // Halo exceeds the block.
        assert!(halo_stencil(&grid, 16, 3, 1, Decomp::OneD, 8, cfg()).is_err());
        // Zero halo.
        assert!(halo_stencil(&grid, 16, 0, 1, Decomp::OneD, 4, cfg()).is_err());
        // Grid length mismatch.
        assert!(halo_stencil(&grid, 8, 1, 1, Decomp::OneD, 2, cfg()).is_err());
    }
}
