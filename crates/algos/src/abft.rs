//! Algorithm-based fault tolerance (ABFT) for the distributed matmuls.
//!
//! Huang–Abraham style checksum protection adapted to the simulator's
//! fault layer: corruption injected by a `FaultPlan` with no retry
//! policy silently perturbs one word of a transfer, and these wrappers
//! catch it at two levels:
//!
//! 1. **In-flight panel checksums** ([`summa_matmul_abft`]): every
//!    broadcast panel carries one extra word — the sender's sum of the
//!    panel — and every receiver re-sums the payload and compares. A
//!    single-element perturbation moves the panel sum by at least
//!    `1 + |x|` (the injector's corruption function), many orders of
//!    magnitude above the floating-point tolerance, so detection is
//!    deterministic.
//! 2. **End-to-end column-sum identity** ([`verify_matmul`],
//!    [`matmul_25d_abft`]): for `C = A·B` the identity
//!    `eᵀC = (eᵀA)·B` holds, so comparing the column sums of the
//!    gathered product against the `O(n²)` host-side evaluation of
//!    `(eᵀA)·B` catches corruption that slipped through (or runs whose
//!    algorithm carries no per-panel checksums, like the 2.5D shifts).
//!
//! Checksum arithmetic is priced: each rank pays one flop per summed
//! word via `Rank::compute`, so the resilience overhead of ABFT shows
//! up in the Eq. 1/Eq. 2 accounting like any other work.

use crate::bridge::gather_blocks_2d;
use crate::mm25d::matmul_25d;
use psse_kernels::gemm;
use psse_kernels::matrix::Matrix;
use psse_sim::collectives::TAG_WINDOW;
use psse_sim::error::SimResult;
use psse_sim::prelude::*;

/// Default relative tolerance for checksum comparisons: far above
/// round-off for the problem sizes the simulator runs, far below the
/// injector's `≥ 1.0` single-word perturbation.
pub const ABFT_REL_TOL: f64 = 1e-8;

/// Sum of a payload, the one-word checksum appended to protected panels.
fn checksum(data: &[f64]) -> f64 {
    data.iter().sum()
}

/// Magnitude scale for a tolerance comparison over `data`: never below
/// one, at least the total absolute mass of the payload.
fn mass(data: &[f64]) -> f64 {
    data.iter().map(|x| x.abs()).sum::<f64>().max(1.0)
}

/// Verify a received panel against its carried checksum; `what` names
/// the panel in the error detail.
fn verify_panel(
    rank: usize,
    what: &str,
    data: &[f64],
    carried: f64,
    rel_tol: f64,
) -> SimResult<()> {
    let local = checksum(data);
    let tol = rel_tol * mass(data).max(carried.abs());
    if !((local - carried).abs() <= tol) {
        return Err(SimError::CorruptPayload {
            rank,
            detail: format!("{what}: checksum {local:e} vs carried {carried:e} (tol {tol:e})"),
        });
    }
    Ok(())
}

/// Check the end-to-end column-sum identity `eᵀ(A·B) = (eᵀA)·B` on a
/// gathered product. Returns the list of violated columns in the error
/// string. Pure host-side arithmetic, `O(n²)`.
pub fn verify_matmul(a: &Matrix, b: &Matrix, c: &Matrix, rel_tol: f64) -> Result<(), String> {
    let n = a.rows();
    // eᵀA: column sums of A.
    let mut eta = vec![0.0_f64; n];
    for i in 0..n {
        for (j, v) in a.row(i).iter().enumerate() {
            eta[j] += v;
        }
    }
    // (eᵀA)·B and eᵀC.
    let mut expect = vec![0.0_f64; n];
    let mut got = vec![0.0_f64; n];
    for k in 0..n {
        let brow = b.row(k);
        for j in 0..n {
            expect[j] += eta[k] * brow[j];
        }
    }
    for i in 0..n {
        for (j, v) in c.row(i).iter().enumerate() {
            got[j] += v;
        }
    }
    // The identity sums n³ products; scale the tolerance by the mass of
    // the expected column sums.
    let scale = mass(&expect) * (n as f64).max(1.0);
    let bad: Vec<usize> = (0..n)
        .filter(|&j| !((got[j] - expect[j]).abs() <= rel_tol * scale))
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "column-sum identity violated in {} of {n} columns (first: col {}, got {:e}, expected {:e})",
            bad.len(),
            bad[0],
            got[bad[0]],
            expect[bad[0]]
        ))
    }
}

/// SUMMA matmul with checksum-protected panel broadcasts: structurally
/// identical to [`crate::summa::summa_matmul`], but every broadcast
/// payload carries a trailing checksum word verified by each receiver,
/// and the gathered product is re-verified end to end. Detected
/// corruption fails the run with [`SimError::CorruptPayload`].
pub fn summa_matmul_abft(
    a: &Matrix,
    b: &Matrix,
    p: usize,
    panel: usize,
    cfg: SimConfig,
) -> Result<(Matrix, Profile), SimError> {
    let grid = Grid2::from_p(p)?;
    let q = grid.q();
    let n = a.rows();
    if a.cols() != n || b.rows() != n || b.cols() != n {
        return Err(SimError::Algorithm(format!(
            "summa-abft: need square n×n inputs, got A {}x{}, B {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    if !n.is_multiple_of(q) {
        return Err(SimError::Algorithm(format!(
            "summa-abft: grid edge q = {q} must divide n = {n}"
        )));
    }
    let bs = n / q;
    if panel == 0 || !bs.is_multiple_of(panel) {
        return Err(SimError::Algorithm(format!(
            "summa-abft: panel width {panel} must divide the block size {bs}"
        )));
    }

    let out = Machine::run(p, cfg, |rank| {
        let (r, c) = grid.coords(rank.rank());
        let block_words = (bs * bs) as u64;
        let panel_words = (bs * panel) as u64;
        // One extra word per in-flight panel for the checksum.
        rank.alloc(3 * block_words + 2 * (panel_words + 1))?;
        let la = a.block(r * bs, c * bs, bs, bs);
        let lb = b.block(r * bs, c * bs, bs, bs);
        let mut lc = Matrix::zeros(bs, bs);
        let row = grid.row_group(r);
        let col = grid.col_group(c);

        // Broadcast a panel with an appended checksum word; verify on
        // receipt and strip the checksum before use. Summing k words
        // costs k flops on the root (computing) and on every receiver
        // (re-checking).
        let protected = |rank: &mut Rank,
                         tag: Tag,
                         group: &Group,
                         root: usize,
                         payload: Option<Vec<f64>>,
                         what: &str| {
            let payload = payload.map(|mut v| {
                let s = checksum(&v);
                rank.compute(v.len() as u64);
                v.push(s);
                v
            });
            let mut got = rank.broadcast(tag, group, root, payload)?;
            let carried = got
                .pop()
                .ok_or_else(|| SimError::Algorithm("summa-abft: empty protected panel".into()))?;
            if rank.rank() != root {
                rank.compute(got.len() as u64);
                verify_panel(rank.rank(), what, &got, carried, ABFT_REL_TOL)?;
            }
            Ok::<Vec<f64>, SimError>(got)
        };

        for k in 0..n / panel {
            let owner = k * panel / bs;
            let offset = (k * panel) % bs;
            let base = 2 * TAG_WINDOW * k as u64;

            let a_panel = if owner == c {
                Some(la.block(0, offset, bs, panel).into_vec())
            } else {
                None
            };
            let a_panel = protected(
                rank,
                Tag(base),
                &row,
                grid.rank_of(r, owner),
                a_panel,
                "A panel",
            )?;
            let a_panel = Matrix::from_vec(bs, panel, a_panel);

            let b_panel = if owner == r {
                Some(lb.block(offset, 0, panel, bs).into_vec())
            } else {
                None
            };
            let b_panel = protected(
                rank,
                Tag(base + TAG_WINDOW),
                &col,
                grid.rank_of(owner, c),
                b_panel,
                "B panel",
            )?;
            let b_panel = Matrix::from_vec(panel, bs, b_panel);

            gemm::matmul_add_into(&mut lc, &a_panel, &b_panel);
            rank.compute(gemm::gemm_flops(bs, panel, bs));
        }
        rank.free(3 * block_words + 2 * (panel_words + 1))?;
        Ok(lc.into_vec())
    })?;

    let c_mat = gather_blocks_2d(&out.results, n, q);
    verify_matmul(a, b, &c_mat, ABFT_REL_TOL).map_err(|detail| SimError::CorruptPayload {
        rank: 0,
        detail: format!("summa-abft end-to-end check: {detail}"),
    })?;
    Ok((c_mat, out.profile))
}

/// 2.5D matmul with an end-to-end ABFT verification of the gathered
/// product (the column-sum identity). The in-simulator communication is
/// unchanged — corruption that the recovery policy does not catch is
/// detected here, after the gather, and fails the run with
/// [`SimError::CorruptPayload`] (reported against rank 0, where the
/// result is assembled).
pub fn matmul_25d_abft(
    a: &Matrix,
    b: &Matrix,
    p: usize,
    c: usize,
    cfg: SimConfig,
) -> Result<(Matrix, Profile), SimError> {
    let (c_mat, profile) = matmul_25d(a, b, p, c, cfg)?;
    verify_matmul(a, b, &c_mat, ABFT_REL_TOL).map_err(|detail| SimError::CorruptPayload {
        rank: 0,
        detail: format!("2.5D end-to-end check: {detail}"),
    })?;
    Ok((c_mat, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_kernels::gemm::matmul;

    fn fault_cfg(plan: FaultPlan) -> SimConfig {
        SimConfig {
            faults: Some(plan),
            ..SimConfig::counters_only()
        }
    }

    #[test]
    fn clean_run_matches_sequential_product() {
        for (n, p, panel) in [(8usize, 4usize, 4usize), (12, 9, 2)] {
            let a = Matrix::random(n, n, 1);
            let b = Matrix::random(n, n, 2);
            let (c, _) = summa_matmul_abft(&a, &b, p, panel, SimConfig::counters_only()).unwrap();
            assert!(
                c.max_abs_diff(&matmul(&a, &b)) < 1e-10,
                "n={n}, p={p}, panel={panel}"
            );
        }
    }

    #[test]
    fn checksums_cost_flops_but_same_numerics() {
        let n = 16;
        let a = Matrix::random(n, n, 3);
        let b = Matrix::random(n, n, 4);
        let (c0, plain) =
            crate::summa::summa_matmul(&a, &b, 4, 8, SimConfig::counters_only()).unwrap();
        let (c1, abft) = summa_matmul_abft(&a, &b, 4, 8, SimConfig::counters_only()).unwrap();
        assert_eq!(c0.as_slice(), c1.as_slice(), "identical arithmetic");
        assert!(abft.total_flops() > plain.total_flops(), "checksums priced");
        assert!(abft.total_words_sent() > plain.total_words_sent());
    }

    #[test]
    fn summa_abft_detects_injected_corruption() {
        let a = Matrix::random(16, 16, 5);
        let b = Matrix::random(16, 16, 6);
        // Silent corruption: no retries, so the perturbed word is
        // delivered and the panel checksum must catch it.
        let plan = FaultPlan {
            spec: FaultSpec {
                seed: 7,
                corrupt_rate: 1.0,
                ..FaultSpec::default()
            },
            recovery: RecoveryPolicy::default(),
        };
        let err = summa_matmul_abft(&a, &b, 4, 8, fault_cfg(plan)).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::CorruptPayload { .. } | SimError::PeerFailed(_)
            ),
            "{err}"
        );
    }

    #[test]
    fn verify_matmul_accepts_true_product_and_rejects_corruption() {
        let n = 12;
        let a = Matrix::random(n, n, 8);
        let b = Matrix::random(n, n, 9);
        let c = matmul(&a, &b);
        verify_matmul(&a, &b, &c, ABFT_REL_TOL).unwrap();
        for (i, j) in [(0usize, 0usize), (5, 7), (n - 1, n - 1)] {
            let mut bad = c.clone();
            let x = bad.row(i)[j];
            bad.as_mut_slice()[i * n + j] = x + 1.0 + x.abs();
            let msg = verify_matmul(&a, &b, &bad, ABFT_REL_TOL).unwrap_err();
            assert!(msg.contains(&format!("col {j}")), "{msg}");
        }
    }

    #[test]
    fn mm25d_abft_passes_clean_and_catches_silent_corruption() {
        let n = 16;
        let a = Matrix::random(n, n, 10);
        let b = Matrix::random(n, n, 11);
        let (c, _) = matmul_25d_abft(&a, &b, 8, 2, SimConfig::counters_only()).unwrap();
        assert!(c.max_abs_diff(&matmul(&a, &b)) < 1e-10);

        let plan = FaultPlan {
            spec: FaultSpec {
                seed: 3,
                corrupt_rate: 0.5,
                ..FaultSpec::default()
            },
            recovery: RecoveryPolicy::default(),
        };
        let err = matmul_25d_abft(&a, &b, 8, 2, fault_cfg(plan)).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::CorruptPayload { .. } | SimError::PeerFailed(_)
            ),
            "{err}"
        );
    }

    #[test]
    fn mm25d_abft_with_retry_recovers_clean_numerics() {
        let n = 16;
        let a = Matrix::random(n, n, 12);
        let b = Matrix::random(n, n, 13);
        let plan = FaultPlan {
            spec: FaultSpec {
                seed: 4,
                drop_rate: 0.2,
                corrupt_rate: 0.2,
                ..FaultSpec::default()
            },
            recovery: RecoveryPolicy {
                max_retries: 32,
                retry_backoff: 0.0,
                checkpoint: None,
            },
        };
        let (c, profile) = matmul_25d_abft(&a, &b, 8, 2, fault_cfg(plan)).unwrap();
        assert!(c.max_abs_diff(&matmul(&a, &b)) < 1e-10);
        assert!(profile.total_retries() > 0, "faults were actually injected");
    }
}
