//! Distributed FFT (paper §IV, "Fast Fourier transform").
//!
//! The transpose ("six-step") algorithm: view the length-`N = n1·n2`
//! signal as an `n1 × n2` matrix (`x[j1·n2 + j2] = X[j1][j2]`), then
//!
//! 1. `n1`-point FFTs down the columns (local: each rank owns `n2/p`
//!    complete columns),
//! 2. twiddle scaling by `ω_N^(±j2·k1)`,
//! 3. a **global transpose** — the all-to-all that dominates
//!    communication,
//! 4. `n2`-point FFTs along the rows (local: each rank owns `n1/p` rows).
//!
//! The output element `X̂[k1 + n1·k2]` lands on the rank owning row `k1`.
//!
//! The all-to-all comes in the two flavours the paper prices:
//! [`AllToAllKind::Pairwise`] (`W = Θ(N/p)`, `S = Θ(p)`) and
//! [`AllToAllKind::Hypercube`] (`W = Θ((N/p)·log p)`, `S = Θ(log p)` —
//! the "tree-based" variant). Neither has a perfect strong scaling
//! range: the FFT has no use for extra memory, and one of `S` or `W·p`
//! always grows with `p` — the paper's counterexample algorithm.

use psse_kernels::fft::{fft_flops, fft_in_place, Complex64, Direction};
use psse_sim::prelude::*;

/// Which all-to-all implementation carries the transpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllToAllKind {
    /// Pairwise exchange: `p − 1` rounds, minimal words, `Θ(p)` messages.
    Pairwise,
    /// Hypercube store-and-forward: `log₂ p` rounds, `Θ(log p)` messages,
    /// each word forwarded `log p / 2` times on average.
    Hypercube,
}

/// Compute the DFT of `input` (length a power of two) on `p` ranks
/// (power of two, `p² ≤ n`). Returns the spectrum in natural order plus
/// the execution profile.
pub fn distributed_fft(
    input: &[Complex64],
    p: usize,
    kind: AllToAllKind,
    cfg: SimConfig,
) -> Result<(Vec<Complex64>, Profile), SimError> {
    let n = input.len();
    if !n.is_power_of_two() || n < 2 {
        return Err(SimError::Algorithm(format!(
            "fft: length must be a power of two >= 2, got {n}"
        )));
    }
    if !p.is_power_of_two() {
        return Err(SimError::Algorithm(format!(
            "fft: rank count must be a power of two, got {p}"
        )));
    }
    // Factor N = n1·n2 with both factors divisible by p.
    let log_n = n.trailing_zeros();
    let log_n1 = log_n.div_ceil(2);
    let n1 = 1usize << log_n1;
    let n2 = n / n1;
    if !n1.is_multiple_of(p) || !n2.is_multiple_of(p) {
        return Err(SimError::Algorithm(format!(
            "fft: need p | n1 and p | n2 (n1 = {n1}, n2 = {n2}, p = {p}); \
             use p² ≤ n"
        )));
    }
    let cols_per = n2 / p;
    let rows_per = n1 / p;

    let out = Machine::run(p, cfg, |rank| {
        let me = rank.rank();
        // Local working set: n/p complex values (2 words each), twice
        // (input + transpose buffers).
        rank.alloc((4 * n / p) as u64)?;

        // Phase 1: local column FFTs. Rank owns columns
        // j2 ∈ [me·cols_per, (me+1)·cols_per); column j2 is
        // x[j1·n2 + j2], j1 = 0..n1.
        let mut cols: Vec<Vec<Complex64>> = (0..cols_per)
            .map(|jc| {
                let j2 = me * cols_per + jc;
                (0..n1).map(|j1| input[j1 * n2 + j2]).collect()
            })
            .collect();
        for col in cols.iter_mut() {
            fft_in_place(col, Direction::Forward);
        }
        rank.compute(cols_per as u64 * fft_flops(n1 as u64));

        // Phase 2: twiddles — entry (k1, j2) scales by ω_N^(−j2·k1).
        for (jc, col) in cols.iter_mut().enumerate() {
            let j2 = me * cols_per + jc;
            for (k1, v) in col.iter_mut().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j2 as f64) * (k1 as f64) / (n as f64);
                *v = *v * Complex64::from_polar(ang);
            }
        }
        rank.compute((cols_per * n1) as u64 * 6);

        // Phase 3: global transpose. Block for destination d: rows
        // k1 ∈ [d·rows_per, (d+1)·rows_per) of my columns, flattened
        // (k1-major, then j2, re/im interleaved).
        let group = Group::world(p);
        let blocks: Vec<Vec<f64>> = (0..p)
            .map(|d| {
                let mut blk = Vec::with_capacity(rows_per * cols_per * 2);
                for kr in 0..rows_per {
                    let k1 = d * rows_per + kr;
                    for col in cols.iter() {
                        blk.push(col[k1].re);
                        blk.push(col[k1].im);
                    }
                }
                blk
            })
            .collect();
        let received = match kind {
            AllToAllKind::Pairwise => rank.alltoall(Tag(0), &group, blocks)?,
            AllToAllKind::Hypercube => rank.alltoall_hypercube(Tag(0), &group, blocks)?,
        };

        // Reassemble rows: row k1 (owned: k1 ∈ me·rows_per..) over all
        // j2. Block from source s carries columns s·cols_per.. of my
        // rows.
        let mut rows: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; n2]; rows_per];
        for (s, blk) in received.iter().enumerate() {
            for kr in 0..rows_per {
                for jc in 0..cols_per {
                    let off = (kr * cols_per + jc) * 2;
                    rows[kr][s * cols_per + jc] = Complex64::new(blk[off], blk[off + 1]);
                }
            }
        }

        // Phase 4: local row FFTs (over j2 → k2).
        for row in rows.iter_mut() {
            fft_in_place(row, Direction::Forward);
        }
        rank.compute(rows_per as u64 * fft_flops(n2 as u64));

        // Flatten result: rank holds X̂[k1 + n1·k2] for its k1 range.
        let mut flat = Vec::with_capacity(rows_per * n2 * 2);
        for row in rows {
            for v in row {
                flat.push(v.re);
                flat.push(v.im);
            }
        }
        rank.free((4 * n / p) as u64)?;
        Ok(flat)
    })?;

    // Gather: rank me holds rows k1 = me·rows_per.. ; X̂[k1 + n1·k2] =
    // rows[k1][k2].
    let mut spectrum = vec![Complex64::ZERO; n];
    for (me, flat) in out.results.iter().enumerate() {
        for kr in 0..rows_per {
            let k1 = me * rows_per + kr;
            for k2 in 0..n2 {
                let off = (kr * n2 + k2) * 2;
                spectrum[k1 + n1 * k2] = Complex64::new(flat[off], flat[off + 1]);
            }
        }
    }
    Ok((spectrum, out.profile))
}

/// Inverse distributed FFT via the conjugation identity
/// `ifft(x) = conj(fft(conj(x))) / n` — same communication structure and
/// costs as [`distributed_fft`].
pub fn distributed_ifft(
    input: &[Complex64],
    p: usize,
    kind: AllToAllKind,
    cfg: SimConfig,
) -> Result<(Vec<Complex64>, Profile), SimError> {
    let conjugated: Vec<Complex64> = input.iter().map(|z| z.conj()).collect();
    let (spec, profile) = distributed_fft(&conjugated, p, kind, cfg)?;
    let inv_n = 1.0 / input.len() as f64;
    Ok((
        spec.iter().map(|z| z.conj().scale(inv_n)).collect(),
        profile,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_kernels::fft::{fft, ifft};
    use psse_kernels::rng::XorShift64;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = XorShift64::new(seed);
        (0..n)
            .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect()
    }

    fn assert_spectra_match(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "bin {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_sequential_fft_pairwise() {
        for (n, p) in [(16usize, 1usize), (16, 2), (64, 4), (256, 8), (256, 16)] {
            let x = random_signal(n, n as u64);
            let (spec, _) =
                distributed_fft(&x, p, AllToAllKind::Pairwise, SimConfig::counters_only()).unwrap();
            assert_spectra_match(&spec, &fft(&x), 1e-9 * n as f64);
        }
    }

    #[test]
    fn matches_sequential_fft_hypercube() {
        for (n, p) in [(64usize, 4usize), (256, 8), (1024, 16)] {
            let x = random_signal(n, 7 * n as u64);
            let (spec, _) =
                distributed_fft(&x, p, AllToAllKind::Hypercube, SimConfig::counters_only())
                    .unwrap();
            assert_spectra_match(&spec, &fft(&x), 1e-9 * n as f64);
        }
    }

    #[test]
    fn message_counts_match_paper_costs() {
        // Pairwise: S = Θ(p); hypercube: S = Θ(log p).
        let n = 1024;
        let p = 16;
        let x = random_signal(n, 3);
        let (_, naive) =
            distributed_fft(&x, p, AllToAllKind::Pairwise, SimConfig::counters_only()).unwrap();
        let (_, tree) =
            distributed_fft(&x, p, AllToAllKind::Hypercube, SimConfig::counters_only()).unwrap();
        assert_eq!(naive.max_msgs_sent(), (p - 1) as u64);
        assert_eq!(tree.max_msgs_sent(), (p as f64).log2() as u64);
        // And the word trade-off: the tree moves more words.
        assert!(tree.max_words_sent() > naive.max_words_sent());
    }

    #[test]
    fn words_scale_as_n_over_p() {
        // Pairwise all-to-all: W per rank ≈ 2·(n/p)·(p−1)/p complex
        // words... in plain words: ~2n/p·(1 − 1/p) values × 2 f64 each.
        let n = 4096;
        let x = random_signal(n, 4);
        let (_, p8) =
            distributed_fft(&x, 8, AllToAllKind::Pairwise, SimConfig::counters_only()).unwrap();
        let (_, p16) =
            distributed_fft(&x, 16, AllToAllKind::Pairwise, SimConfig::counters_only()).unwrap();
        let w8 = p8.max_words_sent() as f64;
        let w16 = p16.max_words_sent() as f64;
        let ratio = w8 / w16;
        assert!((1.6..=2.4).contains(&ratio), "W should halve: {ratio}");
    }

    #[test]
    fn flops_scale_perfectly() {
        let n = 4096;
        let x = random_signal(n, 5);
        let (_, p4) =
            distributed_fft(&x, 4, AllToAllKind::Pairwise, SimConfig::counters_only()).unwrap();
        let (_, p16) =
            distributed_fft(&x, 16, AllToAllKind::Pairwise, SimConfig::counters_only()).unwrap();
        let ratio = p4.max_flops() as f64 / p16.max_flops() as f64;
        assert!((3.9..=4.1).contains(&ratio), "flop ratio {ratio}");
    }

    #[test]
    fn rejects_bad_configurations() {
        let x = random_signal(96, 1); // not a power of two
        assert!(
            distributed_fft(&x, 4, AllToAllKind::Pairwise, SimConfig::counters_only()).is_err()
        );
        let x = random_signal(64, 2);
        assert!(
            distributed_fft(&x, 3, AllToAllKind::Pairwise, SimConfig::counters_only()).is_err()
        );
        // p too large: p² > n.
        assert!(
            distributed_fft(&x, 16, AllToAllKind::Pairwise, SimConfig::counters_only()).is_err()
        );
    }

    #[test]
    fn inverse_recovers_signal() {
        let n = 512;
        let x = random_signal(n, 12);
        let (spec, _) =
            distributed_fft(&x, 8, AllToAllKind::Pairwise, SimConfig::counters_only()).unwrap();
        let (back, _) = distributed_ifft(
            &spec,
            8,
            AllToAllKind::Hypercube,
            SimConfig::counters_only(),
        )
        .unwrap();
        assert_spectra_match(&back, &x, 1e-9);
        // And the distributed inverse matches the kernel inverse.
        let kernel_back = ifft(&spec);
        assert_spectra_match(&back, &kernel_back, 1e-9);
    }

    #[test]
    fn distributed_convolution_via_fft_roundtrip() {
        // Circular convolution through the distributed transform: a
        // realistic end-to-end use of forward + pointwise + inverse.
        let n = 256;
        let a = random_signal(n, 13);
        let b = random_signal(n, 14);
        let cfg = SimConfig::counters_only;
        let (fa, _) = distributed_fft(&a, 4, AllToAllKind::Pairwise, cfg()).unwrap();
        let (fb, _) = distributed_fft(&b, 4, AllToAllKind::Pairwise, cfg()).unwrap();
        let prod: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
        let (conv, _) = distributed_ifft(&prod, 4, AllToAllKind::Pairwise, cfg()).unwrap();
        // Direct O(n²) circular convolution reference.
        for k in [0usize, 1, 17, 255] {
            let mut direct = Complex64::ZERO;
            for j in 0..n {
                direct += a[j] * b[(n + k - j) % n];
            }
            assert!((conv[k] - direct).abs() < 1e-8, "bin {k}");
        }
    }

    #[test]
    fn impulse_spectrum_is_flat() {
        let n = 256;
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        let (spec, _) =
            distributed_fft(&x, 4, AllToAllKind::Pairwise, SimConfig::counters_only()).unwrap();
        for v in spec {
            assert!((v - Complex64::ONE).abs() < 1e-10);
        }
    }
}
