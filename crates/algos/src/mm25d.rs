//! 2.5D matrix multiplication (Solomonik & Demmel; paper §III–IV) — the
//! data-replicating algorithm behind the headline theorem.
//!
//! Ranks form a `q × q × c` cuboid (`p = q²·c`, replication factor `c`,
//! `c | q`). Layer 0 owns the canonical 2D block layout; the algorithm:
//!
//! 1. **replicates** `A_rc` and `B_rc` along each `(r, c)` fiber
//!    (broadcast over the `c` layers) — this is the "use all available
//!    memory to replicate data" of the title;
//! 2. each layer `l` performs `q/c` Cannon-style multiply-shift steps,
//!    covering the contraction indices `k ∈ r+c+[l·q/c, (l+1)·q/c)`
//!    (mod `q`), after a layer-specific initial skew;
//! 3. partial `C` blocks are **sum-reduced** along fibers back to
//!    layer 0.
//!
//! Per-rank costs with `b = n/q` (so `M = Θ(b²) = Θ(c·n²/p)`):
//! `F = 2n³/p`, `W = Θ(b²·q/c) = Θ(n²/√(p·c))`, matching Eq. 7 — at
//! `c = 1` this is Cannon (2D); at `c = q` it is the 3D algorithm of
//! Agarwal et al. Perfect strong scaling: multiplying `p` by `c` while
//! keeping `M` fixed divides `T` by `c` and leaves `E` unchanged —
//! verified end-to-end in the integration tests and the
//! `validate_strong_scaling` bench.

use crate::bridge::gather_blocks_2d;
use psse_kernels::gemm;
use psse_kernels::matrix::Matrix;
use psse_sim::collectives::TAG_WINDOW;
use psse_sim::prelude::*;

const TAG_REPL_A: Tag = Tag(0);
const TAG_REPL_B: Tag = Tag(TAG_WINDOW);
const TAG_SKEW_A: Tag = Tag(2 * TAG_WINDOW);
const TAG_SKEW_B: Tag = Tag(2 * TAG_WINDOW + 1);
const TAG_REDUCE_C: Tag = Tag(3 * TAG_WINDOW);
const TAG_SHIFT_BASE: u64 = 4 * TAG_WINDOW;

/// Collective strategy for the replication broadcast and the final
/// reduction along fibers — an ablation knob (see the
/// `ablation_collectives` bench): binomial trees cost the root
/// `Θ(b²·log c)` words; scatter+allgather (van de Geijn) costs every
/// rank `Θ(b²)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FiberCollectives {
    /// Binomial broadcast/reduce trees (latency-optimal).
    #[default]
    Binomial,
    /// Scatter+allgather broadcast and reduce-scatter+gather reduction
    /// (bandwidth-optimal for large blocks).
    ScatterAllgather,
}

/// Multiply `a · b` with the 2.5D algorithm on `p = q²·c` ranks with
/// replication factor `c` (binomial fiber collectives).
///
/// Requirements: `p/c` a perfect square `q²`, `c | q`, inputs square with
/// `q | n`. Returns the product and the execution profile.
pub fn matmul_25d(
    a: &Matrix,
    b: &Matrix,
    p: usize,
    c: usize,
    cfg: SimConfig,
) -> Result<(Matrix, Profile), SimError> {
    matmul_25d_opts(a, b, p, c, FiberCollectives::Binomial, cfg)
}

/// [`matmul_25d`] with an explicit [`FiberCollectives`] strategy.
pub fn matmul_25d_opts(
    a: &Matrix,
    b: &Matrix,
    p: usize,
    c: usize,
    fiber_colls: FiberCollectives,
    cfg: SimConfig,
) -> Result<(Matrix, Profile), SimError> {
    let grid = Grid3::from_p(p, c)?;
    let q = grid.q();
    if c > 1 && q % c != 0 {
        return Err(SimError::Algorithm(format!(
            "2.5D: replication factor c = {c} must divide the grid edge q = {q}"
        )));
    }
    let n = a.rows();
    if a.cols() != n || b.rows() != n || b.cols() != n {
        return Err(SimError::Algorithm(format!(
            "2.5D: need square n×n inputs, got A {}x{}, B {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    if !n.is_multiple_of(q) {
        return Err(SimError::Algorithm(format!(
            "2.5D: grid edge q = {q} must divide n = {n}"
        )));
    }
    let bs = n / q;
    let steps = q / c;

    let out = Machine::run(p, cfg, |rank| {
        let (r, col, layer) = grid.coords(rank.rank());
        let block_words = (bs * bs) as u64;
        // A, B, C resident + one transient shift buffer.
        rank.alloc(4 * block_words)?;

        // 1. Replicate inputs along the fiber (layer 0 is the owner).
        let fiber = grid.fiber_group(r, col);
        let root = grid.rank_of(r, col, 0);
        let bcast = |rank: &mut Rank, tag: Tag, data: Option<Vec<f64>>| match fiber_colls {
            FiberCollectives::Binomial => rank.broadcast(tag, &fiber, root, data),
            FiberCollectives::ScatterAllgather => rank.broadcast_large(tag, &fiber, root, data),
        };
        let (mut la, mut lb) = if layer == 0 {
            let la = a.block(r * bs, col * bs, bs, bs);
            let lb = b.block(r * bs, col * bs, bs, bs);
            (
                Matrix::from_vec(bs, bs, bcast(rank, TAG_REPL_A, Some(la.into_vec()))?),
                Matrix::from_vec(bs, bs, bcast(rank, TAG_REPL_B, Some(lb.into_vec()))?),
            )
        } else {
            (
                Matrix::from_vec(bs, bs, bcast(rank, TAG_REPL_A, None)?),
                Matrix::from_vec(bs, bs, bcast(rank, TAG_REPL_B, None)?),
            )
        };

        // 2. Layer-specific skew. Layer l covers contraction offsets
        //    s ∈ [l·q/c, (l+1)·q/c): bring A_{r, r+col+s0} and
        //    B_{r+col+s0, col} into place (all mod q), where s0 = l·q/c.
        let s0 = layer * steps;
        let shift_a = (r + s0) % q; // A moves left by r + s0 within its row
        let shift_b = (col + s0) % q; // B moves up by col + s0 within its column
        if shift_a != 0 {
            let to = grid.rank_of(r, (col + q - shift_a) % q, layer);
            let from = grid.rank_of(r, (col + shift_a) % q, layer);
            la = Matrix::from_vec(
                bs,
                bs,
                rank.sendrecv(to, TAG_SKEW_A, la.into_vec(), from, TAG_SKEW_A)?,
            );
        }
        if shift_b != 0 {
            let to = grid.rank_of((r + q - shift_b) % q, col, layer);
            let from = grid.rank_of((r + shift_b) % q, col, layer);
            lb = Matrix::from_vec(
                bs,
                bs,
                rank.sendrecv(to, TAG_SKEW_B, lb.into_vec(), from, TAG_SKEW_B)?,
            );
        }

        // 3. q/c Cannon steps within the layer.
        let mut lc = Matrix::zeros(bs, bs);
        for step in 0..steps {
            gemm::matmul_add_into(&mut lc, &la, &lb);
            rank.compute(gemm::gemm_flops(bs, bs, bs));
            if step + 1 < steps {
                let tag_a = Tag(TAG_SHIFT_BASE + 2 * step as u64);
                let tag_b = Tag(TAG_SHIFT_BASE + 2 * step as u64 + 1);
                let (to_a, from_a) = (
                    grid.rank_of(r, (col + q - 1) % q, layer),
                    grid.rank_of(r, (col + 1) % q, layer),
                );
                la = Matrix::from_vec(
                    bs,
                    bs,
                    rank.sendrecv(to_a, tag_a, la.into_vec(), from_a, tag_a)?,
                );
                let (to_b, from_b) = (
                    grid.rank_of((r + q - 1) % q, col, layer),
                    grid.rank_of((r + 1) % q, col, layer),
                );
                lb = Matrix::from_vec(
                    bs,
                    bs,
                    rank.sendrecv(to_b, tag_b, lb.into_vec(), from_b, tag_b)?,
                );
            }
        }

        // 4. Reduce partial C blocks along the fiber to layer 0.
        let reduced = match fiber_colls {
            FiberCollectives::Binomial => {
                rank.reduce_sum(TAG_REDUCE_C, &fiber, root, lc.into_vec())?
            }
            FiberCollectives::ScatterAllgather => {
                rank.reduce_sum_large(TAG_REDUCE_C, &fiber, root, lc.into_vec())?
            }
        };
        rank.free(4 * block_words)?;
        Ok(reduced.unwrap_or_default())
    })?;

    // Layer-0 ranks (the first q² ids) hold the result blocks.
    let c_mat = gather_blocks_2d(&out.results[..q * q], n, q);
    Ok((c_mat, out.profile))
}

/// 3D matrix multiplication (Agarwal et al.): the `c = p^(1/3)` limit of
/// the 2.5D algorithm. `p` must be a perfect cube `q³` with `q | n`.
pub fn matmul_3d(
    a: &Matrix,
    b: &Matrix,
    p: usize,
    cfg: SimConfig,
) -> Result<(Matrix, Profile), SimError> {
    let q = (p as f64).cbrt().round() as usize;
    if q * q * q != p {
        return Err(SimError::Algorithm(format!(
            "3D matmul needs a cubic rank count, got p = {p}"
        )));
    }
    matmul_25d(a, b, p, q, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_kernels::gemm::matmul;

    #[test]
    fn matches_sequential_product_across_c() {
        // p = q²c: (q=4, c=1) p=16; (q=4, c=2) p=32; (q=4, c=4) p=64;
        // (q=3, c=3) p=27 (3D); (q=2, c=2) p=8 (3D).
        for (n, p, c) in [
            (16usize, 16usize, 1usize),
            (16, 32, 2),
            (16, 64, 4),
            (12, 27, 3),
            (8, 8, 2),
        ] {
            let a = Matrix::random(n, n, 1);
            let b = Matrix::random(n, n, 2);
            let (cm, _) = matmul_25d(&a, &b, p, c, SimConfig::counters_only()).unwrap();
            assert!(
                cm.max_abs_diff(&matmul(&a, &b)) < 1e-10,
                "n={n}, p={p}, c={c}"
            );
        }
    }

    #[test]
    fn c_equal_one_matches_cannon_result() {
        let n = 20;
        let p = 4;
        let a = Matrix::random(n, n, 3);
        let b = Matrix::random(n, n, 4);
        let (c25, _) = matmul_25d(&a, &b, p, 1, SimConfig::counters_only()).unwrap();
        let (cc, _) = crate::cannon::cannon_matmul(&a, &b, p, SimConfig::counters_only()).unwrap();
        assert!(c25.max_abs_diff(&cc) < 1e-10);
    }

    #[test]
    fn matmul_3d_is_the_cubic_limit() {
        let n = 16;
        let p = 64; // q = 4 = c
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        let (c3, _) = matmul_3d(&a, &b, p, SimConfig::counters_only()).unwrap();
        assert!(c3.max_abs_diff(&matmul(&a, &b)) < 1e-10);
        assert!(matmul_3d(&a, &b, 10, SimConfig::counters_only()).is_err());
    }

    #[test]
    fn replication_reduces_critical_path_words() {
        // Same q (same M per rank is NOT held fixed here — this checks
        // the other axis: at fixed n and growing p = q²c, words per rank
        // fall as 1/c of the shift phase).
        // q = 8 both times so the shift phase dominates: c = 1 does
        // 2(q−1) block shifts, c = 4 only 2(q/c−1) plus replication
        // overhead.
        let n = 32;
        let a = Matrix::random(n, n, 7);
        let b = Matrix::random(n, n, 8);
        let (_, c1) = matmul_25d(&a, &b, 64, 1, SimConfig::counters_only()).unwrap();
        let (_, c4) = matmul_25d(&a, &b, 256, 4, SimConfig::counters_only()).unwrap();
        let w1 = c1.max_words_sent() as f64;
        let w4 = c4.max_words_sent() as f64;
        assert!(
            w4 < 0.65 * w1,
            "replication should cut critical-path words: c=1 {w1}, c=4 {w4}"
        );
    }

    #[test]
    fn flops_strong_scale_perfectly() {
        let n = 16;
        let a = Matrix::random(n, n, 9);
        let b = Matrix::random(n, n, 10);
        let (_, p16) = matmul_25d(&a, &b, 16, 1, SimConfig::counters_only()).unwrap();
        let (_, p64) = matmul_25d(&a, &b, 64, 4, SimConfig::counters_only()).unwrap();
        // GEMM flops per rank drop exactly 4x; reductions add O(b²·log c)
        // extra adds on some ranks, bounded by 2 blocks' worth here.
        let f16 = p16.max_flops() as f64;
        let f64_ = p64.max_flops() as f64;
        let ratio = f16 / f64_;
        assert!((3.0..=4.5).contains(&ratio), "flop ratio {ratio}");
    }

    #[test]
    fn total_flops_are_preserved_up_to_reduction_adds() {
        let n = 16;
        let p = 32;
        let c = 2;
        let a = Matrix::random(n, n, 11);
        let b = Matrix::random(n, n, 12);
        let (_, profile) = matmul_25d(&a, &b, p, c, SimConfig::counters_only()).unwrap();
        let gemm_total = 2 * (n as u64).pow(3);
        let total = profile.total_flops();
        assert!(total >= gemm_total);
        // Reduction adds: (c−1)·q²·b² = (c−1)·n² per layer pair.
        let max_extra = (c as u64 - 1) * (n as u64) * (n as u64);
        assert!(total <= gemm_total + max_extra, "{total}");
    }

    #[test]
    fn memory_per_rank_grows_with_c() {
        // M = Θ(c·n²/p): at fixed p... here fixed q, so block size is
        // constant and replication means each of the q²c ranks holds a
        // full block set — total memory grows by c.
        let n = 16;
        let a = Matrix::random(n, n, 13);
        let b = Matrix::random(n, n, 14);
        let (_, c1) = matmul_25d(&a, &b, 16, 1, SimConfig::counters_only()).unwrap();
        let (_, c4) = matmul_25d(&a, &b, 64, 4, SimConfig::counters_only()).unwrap();
        // Same per-rank peak (same q ⇒ same block size)...
        assert_eq!(c1.max_mem_peak(), c4.max_mem_peak());
        // ...but 4× the ranks ⇒ 4× the aggregate memory (replication).
        let agg1: u64 = c1.per_rank.iter().map(|s| s.mem_peak).sum();
        let agg4: u64 = c4.per_rank.iter().map(|s| s.mem_peak).sum();
        assert_eq!(agg4, 4 * agg1);
    }

    #[test]
    fn scatter_allgather_fiber_collectives_agree() {
        let n = 16;
        let a = Matrix::random(n, n, 21);
        let b = Matrix::random(n, n, 22);
        let reference = matmul(&a, &b);
        for (p, c) in [(32usize, 2usize), (64, 4)] {
            let (cm, _) = matmul_25d_opts(
                &a,
                &b,
                p,
                c,
                FiberCollectives::ScatterAllgather,
                SimConfig::counters_only(),
            )
            .unwrap();
            assert!(cm.max_abs_diff(&reference) < 1e-10, "p={p} c={c}");
        }
    }

    #[test]
    fn scatter_allgather_reduces_critical_path_traffic() {
        // In the 3D limit (q = c = 4) the fiber collectives dominate
        // communication: the binomial broadcast costs the root log₂c
        // block copies per input, scatter+allgather ~2·(c−1)/c.
        let n = 32;
        let a = Matrix::random(n, n, 23);
        let b = Matrix::random(n, n, 24);
        let (_, bin) = matmul_25d_opts(
            &a,
            &b,
            64,
            4,
            FiberCollectives::Binomial,
            SimConfig::counters_only(),
        )
        .unwrap();
        let (_, sag) = matmul_25d_opts(
            &a,
            &b,
            64,
            4,
            FiberCollectives::ScatterAllgather,
            SimConfig::counters_only(),
        )
        .unwrap();
        assert!(
            sag.max_words_sent() < bin.max_words_sent(),
            "scatter+allgather {} vs binomial {}",
            sag.max_words_sent(),
            bin.max_words_sent()
        );
    }

    #[test]
    fn rejects_invalid_configurations() {
        let a = Matrix::random(16, 16, 1);
        let b = Matrix::random(16, 16, 2);
        // c does not divide q: p = 18, c = 2 → q = 3.
        assert!(matmul_25d(&a, &b, 18, 2, SimConfig::counters_only()).is_err());
        // p/c not a square.
        assert!(matmul_25d(&a, &b, 24, 2, SimConfig::counters_only()).is_err());
        // q does not divide n.
        let a9 = Matrix::random(9, 9, 1);
        let b9 = Matrix::random(9, 9, 2);
        assert!(matmul_25d(&a9, &b9, 16, 1, SimConfig::counters_only()).is_err());
    }
}
