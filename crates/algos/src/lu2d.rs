//! Distributed 2D block LU factorization (right-looking, unpivoted).
//!
//! The executable counterpart of the paper's LU discussion (§IV, "LU
//! factorization"). The paper's 2.5D LU is bandwidth-optimal but its
//! latency term `S = Ω(√(c·p))` grows with `p` because of the critical
//! path; here we execute the classical 2D variant (`c = 1`) on the
//! simulator — blocked right-looking LU on a `q × q` grid — and leave the
//! 2.5D cost analysis to `psse-core::costs::Lu25d` (exactly as the paper
//! itself does: it derives LU's costs but reports no LU experiments).
//!
//! Pivoting is omitted (the paper's 2.5D LU uses tournament pivoting; our
//! inputs are diagonally dominant, where unpivoted LU is backward
//! stable). The step structure still exhibits LU's defining critical
//! path: `q` sequential panel factorizations, each followed by row/column
//! broadcasts and a trailing update — which is why its message count
//! cannot strong-scale.

use crate::bridge::gather_blocks_2d;
use psse_kernels::gemm;
use psse_kernels::lu::{
    lu_flops, lu_nopivot_inplace, solve_unit_lower, solve_upper_right, split_lu,
};
use psse_kernels::matrix::Matrix;
use psse_sim::collectives::TAG_WINDOW;
use psse_sim::prelude::*;

/// Factor `a = L·U` on `p = q²` ranks (unpivoted; `a` should be
/// diagonally dominant or otherwise safely factorable). Returns the
/// packed factors (unit-lower `L` below the diagonal, `U` on and above)
/// and the execution profile.
pub fn lu_2d(a: &Matrix, p: usize, cfg: SimConfig) -> Result<(Matrix, Profile), SimError> {
    let grid = Grid2::from_p(p)?;
    let q = grid.q();
    let n = a.rows();
    if a.cols() != n {
        return Err(SimError::Algorithm(format!(
            "lu: need a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if !n.is_multiple_of(q) {
        return Err(SimError::Algorithm(format!(
            "lu: grid edge q = {q} must divide n = {n}"
        )));
    }
    let bs = n / q;

    let out = Machine::run(p, cfg, |rank| {
        let (r, c) = grid.coords(rank.rank());
        let block_words = (bs * bs) as u64;
        rank.alloc(3 * block_words)?;
        let mut la = a.block(r * bs, c * bs, bs, bs);
        let row = grid.row_group(r);
        let col = grid.col_group(c);

        for k in 0..q {
            let base = 4 * TAG_WINDOW * k as u64 + 10_000;
            // 1. Diagonal owner factors its block and broadcasts the
            //    packed LU along its row and column.
            let packed_kk = if r == k && c == k {
                lu_nopivot_inplace(&mut la).map_err(|e| {
                    SimError::Algorithm(format!("singular diagonal block {k}: {e}"))
                })?;
                rank.compute(lu_flops(bs as u64));
                Some(la.clone().into_vec())
            } else {
                None
            };
            // Row k ranks need U_kk (for L panel solves happen on column
            // k); column k ranks need L_kk. Broadcast the packed block to
            // both the row and the column of the diagonal owner.
            let lu_kk_row = if r == k {
                Some(Matrix::from_vec(
                    bs,
                    bs,
                    rank.broadcast(Tag(base), &row, grid.rank_of(k, k), packed_kk.clone())?,
                ))
            } else {
                None
            };
            let lu_kk_col = if c == k {
                Some(Matrix::from_vec(
                    bs,
                    bs,
                    rank.broadcast(Tag(base + TAG_WINDOW), &col, grid.rank_of(k, k), packed_kk)?,
                ))
            } else {
                None
            };

            // 2. Panel solves.
            //    Row k, right of diagonal: U_kj = L_kk⁻¹ · A_kj.
            if r == k && c > k {
                let (l_kk, _) = split_lu(lu_kk_row.as_ref().expect("row k has LU_kk"));
                la = solve_unit_lower(&l_kk, &la);
                rank.compute((bs * bs * bs) as u64);
            }
            //    Column k, below diagonal: L_ik = A_ik · U_kk⁻¹.
            if c == k && r > k {
                let (_, u_kk) = split_lu(lu_kk_col.as_ref().expect("col k has LU_kk"));
                la = solve_upper_right(&la, &u_kk)
                    .map_err(|e| SimError::Algorithm(format!("singular U_kk at {k}: {e}")))?;
                rank.compute((bs * bs * bs) as u64);
            }

            // 3. Broadcast the panels into the trailing submatrix and
            //    update: A_ij -= L_ik · U_kj for i, j > k.
            //    L_ik travels along row i (root: column k); U_kj along
            //    column j (root: row k). Ranks at or before step k only
            //    participate where needed.
            if r > k {
                let l_panel = if c == k {
                    Some(la.clone().into_vec())
                } else {
                    None
                };
                let l_ik = Matrix::from_vec(
                    bs,
                    bs,
                    rank.broadcast(
                        Tag(base + 2 * TAG_WINDOW),
                        &row,
                        grid.rank_of(r, k),
                        l_panel,
                    )?,
                );
                if c > k {
                    let u_kj = Matrix::from_vec(
                        bs,
                        bs,
                        rank.broadcast(Tag(base + 3 * TAG_WINDOW), &col, grid.rank_of(k, c), None)?,
                    );
                    // Trailing update.
                    let mut update = Matrix::zeros(bs, bs);
                    gemm::matmul_add_into(&mut update, &l_ik, &u_kj);
                    rank.compute(gemm::gemm_flops(bs, bs, bs));
                    la = la.sub(&update);
                    rank.compute(block_words);
                }
            }
            if r == k && c > k {
                // Row k ranks are the roots of the U_kj column broadcasts.
                rank.broadcast(
                    Tag(base + 3 * TAG_WINDOW),
                    &col,
                    grid.rank_of(k, c),
                    Some(la.clone().into_vec()),
                )?;
            } else if r < k && c > k {
                // Finished ranks above the diagonal are still members of
                // the column group and must take part in the broadcast
                // tree (with no data of their own).
                rank.broadcast(Tag(base + 3 * TAG_WINDOW), &col, grid.rank_of(k, c), None)?;
            }
        }
        rank.free(3 * block_words)?;
        Ok(la.into_vec())
    })?;

    let packed = gather_blocks_2d(&out.results, n, q);
    Ok((packed, out.profile))
}

/// Distributed triangular solves: given the packed LU factors (as
/// produced by [`lu_2d`], block-distributed on the same `q × q` grid)
/// and a right-hand side `bvec`, solve `L·y = b` (forward) then
/// `U·x = y` (backward). Returns `x` and the execution profile.
///
/// Layout: block `k` of every vector lives at the diagonal rank
/// `(k, k)`; computed solution blocks are broadcast down their column so
/// off-diagonal ranks can form their `L_kj·y_j` / `U_kj·x_j`
/// contributions, which are sum-reduced along block rows. This is the
/// textbook 2D substitution with its `Θ(q)`-deep critical path — like
/// factorization, it cannot strong-scale in latency.
pub fn triangular_solve_2d(
    packed: &Matrix,
    bvec: &[f64],
    p: usize,
    cfg: SimConfig,
) -> Result<(Vec<f64>, Profile), SimError> {
    let grid = Grid2::from_p(p)?;
    let q = grid.q();
    let n = packed.rows();
    if packed.cols() != n {
        return Err(SimError::Algorithm(format!(
            "solve: need square factors, got {}x{}",
            packed.rows(),
            packed.cols()
        )));
    }
    if bvec.len() != n {
        return Err(SimError::Algorithm(format!(
            "solve: rhs length {} must equal n = {n}",
            bvec.len()
        )));
    }
    if !n.is_multiple_of(q) {
        return Err(SimError::Algorithm(format!(
            "solve: grid edge q = {q} must divide n = {n}"
        )));
    }
    let bs = n / q;

    let out = Machine::run(p, cfg, |rank| {
        let (r, c) = grid.coords(rank.rank());
        let block_words = (bs * bs) as u64;
        rank.alloc(block_words + 3 * bs as u64)?;
        let my_block = packed.block(r * bs, c * bs, bs, bs);
        // Off-diagonal blocks belong wholly to one factor (L below the
        // diagonal, U above); only the diagonal block is packed.
        let (l_diag, u_diag) = if r == c {
            split_lu(&my_block)
        } else {
            (Matrix::zeros(0, 0), Matrix::zeros(0, 0))
        };

        // --- forward substitution: L·y = b ---
        // Column-k broadcast delivers y_k to every rank of column k;
        // rank (r, c) with c < r contributes L_rc·y_c to row r's sum.
        let mut my_y: Option<Matrix> = None; // held by diagonal ranks
        let mut col_y: Option<Matrix> = None; // y_c, held by column-c ranks
        for k in 0..q {
            let base = 2 * TAG_WINDOW * k as u64 + 500_000;
            if r == k {
                // Row k: reduce Σ_{j<k} L_kj·y_j over columns 0..=k.
                let members: Vec<usize> = (0..=k).map(|j| grid.rank_of(k, j)).collect();
                let row_group = Group::new(members)?;
                let contribution = if c < k {
                    // L_kj is the whole off-diagonal block.
                    let yj = col_y.as_ref().expect("column j received y_j earlier");
                    let prod = gemm::matmul(&my_block, yj);
                    rank.compute(gemm::gemm_flops(bs, bs, 1));
                    prod.into_vec()
                } else {
                    vec![0.0; bs]
                };
                if c <= k {
                    let sum =
                        rank.reduce_sum(Tag(base), &row_group, grid.rank_of(k, k), contribution)?;
                    if c == k {
                        // y_k = L_kk⁻¹ (b_k − sum).
                        let sum = sum.expect("diagonal rank is the reduce root");
                        let rhs = Matrix::from_fn(bs, 1, |i, _| bvec[k * bs + i] - sum[i]);
                        let yk = solve_unit_lower(&l_diag, &rhs);
                        rank.compute((bs * bs) as u64);
                        my_y = Some(yk);
                    }
                }
            }
            // Broadcast y_k down column k (all rows need it for later
            // contributions).
            if c == k {
                let data = my_y
                    .as_ref()
                    .filter(|_| r == k)
                    .map(|m| m.clone().into_vec());
                let col_group = grid.col_group(k);
                let yk =
                    rank.broadcast(Tag(base + TAG_WINDOW), &col_group, grid.rank_of(k, k), data)?;
                col_y = Some(Matrix::from_vec(bs, 1, yk));
            }
        }

        // --- backward substitution: U·x = y ---
        let mut my_x: Option<Matrix> = None;
        let mut col_x: Option<Matrix> = None;
        for k in (0..q).rev() {
            let base = 2 * TAG_WINDOW * k as u64 + 900_000;
            if r == k {
                let members: Vec<usize> = (k..q).map(|j| grid.rank_of(k, j)).collect();
                let row_group = Group::new(members)?;
                let contribution = if c > k {
                    // U_kj is the whole off-diagonal block.
                    let xj = col_x.as_ref().expect("column j received x_j earlier");
                    let prod = gemm::matmul(&my_block, xj);
                    rank.compute(gemm::gemm_flops(bs, bs, 1));
                    prod.into_vec()
                } else {
                    vec![0.0; bs]
                };
                if c >= k {
                    let sum =
                        rank.reduce_sum(Tag(base), &row_group, grid.rank_of(k, k), contribution)?;
                    if c == k {
                        let sum = sum.expect("diagonal rank is the reduce root");
                        let yk = my_y.as_ref().expect("diagonal holds y_k");
                        let rhs = Matrix::from_fn(bs, 1, |i, _| yk[(i, 0)] - sum[i]);
                        let xk = psse_kernels::lu::solve_upper(&u_diag, &rhs)
                            .map_err(|e| SimError::Algorithm(format!("singular U_kk: {e}")))?;
                        rank.compute((bs * bs) as u64);
                        my_x = Some(xk);
                    }
                }
            }
            if c == k {
                let data = my_x
                    .as_ref()
                    .filter(|_| r == k)
                    .map(|m| m.clone().into_vec());
                let col_group = grid.col_group(k);
                let xk =
                    rank.broadcast(Tag(base + TAG_WINDOW), &col_group, grid.rank_of(k, k), data)?;
                col_x = Some(Matrix::from_vec(bs, 1, xk));
            }
        }
        rank.free(block_words + 3 * bs as u64)?;
        Ok(my_x.map(|m| m.into_vec()).unwrap_or_default())
    })?;

    let mut x = Vec::with_capacity(n);
    for k in 0..q {
        x.extend_from_slice(&out.results[grid.rank_of(k, k)]);
    }
    Ok((x, out.profile))
}

/// Factor and solve in one call: `A·x = b` on `p = q²` ranks. Returns
/// the solution and the combined profile of both phases.
pub fn solve_2d(
    a: &Matrix,
    bvec: &[f64],
    p: usize,
    cfg: SimConfig,
) -> Result<(Vec<f64>, Profile), SimError> {
    let (packed, factor_profile) = lu_2d(a, p, cfg.clone())?;
    let (x, solve_profile) = triangular_solve_2d(&packed, bvec, p, cfg)?;
    Ok((x, factor_profile.then(&solve_profile)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_kernels::gemm::matmul;

    fn verify_lu(a: &Matrix, packed: &Matrix) {
        let (l, u) = split_lu(packed);
        let recon = matmul(&l, &u);
        assert!(
            recon.relative_error(a) < 1e-10,
            "‖LU − A‖/‖A‖ = {}",
            recon.relative_error(a)
        );
    }

    #[test]
    fn factors_match_sequential_lu() {
        for (n, p) in [(8usize, 4usize), (12, 9), (16, 16), (16, 1)] {
            let a = Matrix::random_diagonally_dominant(n, 42);
            let (packed, _) = lu_2d(&a, p, SimConfig::counters_only()).unwrap();
            verify_lu(&a, &packed);

            // Element-wise identical to the sequential factorization.
            let mut seq = a.clone();
            lu_nopivot_inplace(&mut seq).unwrap();
            assert!(packed.max_abs_diff(&seq) < 1e-10, "n={n}, p={p}");
        }
    }

    #[test]
    fn message_count_grows_with_p() {
        // LU's critical path: more processors mean *more* messages per
        // rank (the S = Ω(√p) lower bound's executable shadow), unlike
        // matmul where S shrinks.
        let n = 32;
        let a = Matrix::random_diagonally_dominant(n, 7);
        let (_, p4) = lu_2d(&a, 4, SimConfig::counters_only()).unwrap();
        let (_, p16) = lu_2d(&a, 16, SimConfig::counters_only()).unwrap();
        assert!(
            p16.max_msgs_sent() > p4.max_msgs_sent(),
            "p4 {} vs p16 {}",
            p4.max_msgs_sent(),
            p16.max_msgs_sent()
        );
    }

    #[test]
    fn triangular_solve_recovers_solution() {
        for (n, p) in [(12usize, 4usize), (16, 16), (18, 9), (8, 1)] {
            let a = Matrix::random_diagonally_dominant(n, 31);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - n as f64 / 2.0).collect();
            let b: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|j| a[(i, j)] * x_true[j]).sum())
                .collect();
            let (x, profile) = solve_2d(&a, &b, p, SimConfig::counters_only()).unwrap();
            for (xi, ti) in x.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-8, "n={n} p={p}: {xi} vs {ti}");
            }
            // The combined profile includes both phases' flops.
            assert!(profile.total_flops() > 0);
        }
    }

    #[test]
    fn triangular_solve_checks_inputs() {
        let packed = Matrix::random(8, 8, 1);
        assert!(triangular_solve_2d(&packed, &[0.0; 7], 4, SimConfig::counters_only()).is_err());
        let rect = Matrix::random(8, 10, 1);
        assert!(triangular_solve_2d(&rect, &[0.0; 8], 4, SimConfig::counters_only()).is_err());
        assert!(triangular_solve_2d(&packed, &[0.0; 8], 9, SimConfig::counters_only()).is_err());
    }

    #[test]
    fn solve_critical_path_grows_with_p() {
        // Substitution is latency-bound: more ranks, more messages on
        // the critical path.
        let n = 32;
        let a = Matrix::random_diagonally_dominant(n, 33);
        let b = vec![1.0; n];
        let (_, p4) = solve_2d(&a, &b, 4, SimConfig::counters_only()).unwrap();
        let (_, p16) = solve_2d(&a, &b, 16, SimConfig::counters_only()).unwrap();
        assert!(p16.max_msgs_sent() > p4.max_msgs_sent());
    }

    #[test]
    fn singular_block_is_reported() {
        let a = Matrix::zeros(8, 8);
        let r = lu_2d(&a, 4, SimConfig::counters_only());
        assert!(matches!(r, Err(SimError::Algorithm(_))));
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Matrix::random_diagonally_dominant(9, 1);
        assert!(lu_2d(&a, 4, SimConfig::counters_only()).is_err()); // 2 ∤ 9
        let rect = Matrix::random(8, 10, 1);
        assert!(lu_2d(&rect, 4, SimConfig::counters_only()).is_err());
        let a8 = Matrix::random_diagonally_dominant(8, 1);
        assert!(lu_2d(&a8, 5, SimConfig::counters_only()).is_err()); // not square p
    }
}
