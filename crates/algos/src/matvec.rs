//! Distributed matrix–vector multiplication (BLAS2) — the paper's §III
//! contrast case: an **I/O-dominated** kernel where extra memory buys no
//! communication reduction and there is no perfect strong scaling range.
//!
//! 1D row-blocked algorithm: rank `r` owns rows `[r·n/p, (r+1)·n/p)` of
//! `A` and the matching block of `x`; one ring **allgather** assembles
//! the full vector (`W ≈ n·(p−1)/p` per rank — independent of any memory
//! knob), then a local GEMV produces the owned block of `y = A·x`.

use psse_kernels::matrix::Matrix;
use psse_sim::prelude::*;

/// Multiply `y = a · x` on `p` ranks (`p | n`). Returns `y` and the
/// execution profile.
pub fn matvec_1d(
    a: &Matrix,
    x: &[f64],
    p: usize,
    cfg: SimConfig,
) -> Result<(Vec<f64>, Profile), SimError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SimError::Algorithm(format!(
            "matvec: need a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if x.len() != n {
        return Err(SimError::Algorithm(format!(
            "matvec: vector length {} must equal n = {n}",
            x.len()
        )));
    }
    if p == 0 || !n.is_multiple_of(p) {
        return Err(SimError::Algorithm(format!(
            "matvec: rank count p = {p} must divide n = {n}"
        )));
    }
    let rows = n / p;

    let out = Machine::run(p, cfg, |rank| {
        let me = rank.rank();
        // Row block + full gathered vector + output block.
        rank.alloc((rows * n + n + rows) as u64)?;
        let my_rows = a.block(me * rows, 0, rows, n);
        let my_x = x[me * rows..(me + 1) * rows].to_vec();

        // Assemble the full vector (ring allgather; the Θ(n) per-rank
        // traffic that cannot be avoided).
        let group = Group::world(rank.size());
        let blocks = rank.allgather(Tag(0), &group, my_x)?;
        let full_x: Vec<f64> = blocks.into_iter().flatten().collect();

        // Local GEMV.
        let mut y = vec![0.0; rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = my_rows.row(i);
            *yi = row.iter().zip(&full_x).map(|(aij, xj)| aij * xj).sum();
        }
        rank.compute(2 * (rows * n) as u64);
        rank.free((rows * n + n + rows) as u64)?;
        Ok(y)
    })?;

    Ok((out.results.into_iter().flatten().collect(), out.profile))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
        (0..a.rows())
            .map(|i| a.row(i).iter().zip(x).map(|(aij, xj)| aij * xj).sum())
            .collect()
    }

    #[test]
    fn matches_serial() {
        let n = 48;
        let a = Matrix::random(n, n, 1);
        let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 3.0).collect();
        let serial = serial_matvec(&a, &x);
        for p in [1usize, 2, 4, 8, 16] {
            let (y, _) = matvec_1d(&a, &x, p, SimConfig::counters_only()).unwrap();
            for (yi, si) in y.iter().zip(&serial) {
                assert!((yi - si).abs() < 1e-10 * (1.0 + si.abs()), "p = {p}");
            }
        }
    }

    #[test]
    fn per_rank_words_do_not_shrink_with_p() {
        // The defining BLAS2 behaviour: W/rank ≈ n·(p−1)/p, flat in p.
        let n = 64;
        let a = Matrix::random(n, n, 2);
        let x = vec![1.0; n];
        let (_, p4) = matvec_1d(&a, &x, 4, SimConfig::counters_only()).unwrap();
        let (_, p16) = matvec_1d(&a, &x, 16, SimConfig::counters_only()).unwrap();
        let w4 = p4.max_words_sent() as f64;
        let w16 = p16.max_words_sent() as f64;
        assert!(
            w16 > 0.8 * w4,
            "allgather words must not fall with p: {w4} vs {w16}"
        );
        // While flops do scale perfectly.
        assert_eq!(p4.max_flops(), 4 * p16.max_flops());
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Matrix::random(8, 10, 1);
        assert!(matvec_1d(&a, &[0.0; 8], 4, SimConfig::counters_only()).is_err());
        let sq = Matrix::random(8, 8, 1);
        assert!(matvec_1d(&sq, &[0.0; 7], 4, SimConfig::counters_only()).is_err());
        assert!(matvec_1d(&sq, &[0.0; 8], 3, SimConfig::counters_only()).is_err());
        assert!(matvec_1d(&sq, &[0.0; 8], 0, SimConfig::counters_only()).is_err());
    }
}
