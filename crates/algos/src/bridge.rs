//! Bridging the simulator and the analytical models.
//!
//! `psse-sim` knows nothing about energy and `psse-core` nothing about
//! threads; this module converts between them:
//!
//! * [`sim_config_from`] builds a simulator cost configuration from a
//!   machine description (`γt`, `βt`, `αt`, `m`, memory limit);
//! * [`summarize`] condenses a per-rank [`Profile`] into the
//!   [`ExecutionSummary`] that Eq. 2 prices;
//! * [`measure`] does both pricings at once, returning the `(T, E, P)`
//!   of a measured run on a given machine.

use psse_core::params::MachineParams;
use psse_core::summary::{ExecutionSummary, Measured};
use psse_kernels::matrix::Matrix;
use psse_metrics::{saturating_nanos, Registry};
use psse_sim::grid::Grid2;
use psse_sim::machine::SimConfig;
use psse_sim::profile::Profile;

/// Assemble the `q × q` grid of row-major `(n/q)²` blocks returned by the
/// ranks (indexed `rank = row·q + col`) into the global `n × n` matrix.
pub fn gather_blocks_2d(blocks: &[Vec<f64>], n: usize, q: usize) -> Matrix {
    assert_eq!(blocks.len(), q * q, "one block per rank");
    let bs = n / q;
    let grid = Grid2::from_p(q * q).expect("q² ranks");
    let mut out = Matrix::zeros(n, n);
    for (rank, data) in blocks.iter().enumerate() {
        let (r, c) = grid.coords(rank);
        let block = Matrix::from_vec(bs, bs, data.clone());
        out.set_block(r * bs, c * bs, &block);
    }
    out
}

/// Build a [`SimConfig`] whose virtual-time prices match `params`.
/// The per-rank memory limit is taken from `params.mem_words` when
/// finite.
pub fn sim_config_from(params: &MachineParams) -> SimConfig {
    SimConfig {
        gamma_t: params.gamma_t,
        beta_t: params.beta_t,
        alpha_t: params.alpha_t,
        max_message_words: if params.max_message_words.is_finite() {
            (params.max_message_words as usize).max(1)
        } else {
            usize::MAX
        },
        mem_limit_words: if params.mem_words.is_finite() {
            Some(params.mem_words as u64)
        } else {
            None
        },
        ..SimConfig::default()
    }
}

/// Build a hierarchical [`SimConfig`] (paper Fig. 2) from a two-level
/// machine description: inter-node links at `βnt`, intra-node links at
/// `βlt`, ranks grouped into nodes of `cores_per_node`. Latency is
/// elided exactly as in the paper's two-level equations.
pub fn sim_config_two_level(tl: &psse_core::twolevel::TwoLevelParams) -> SimConfig {
    SimConfig {
        gamma_t: tl.gamma_t,
        beta_t: tl.beta_n_t,
        alpha_t: 0.0,
        hierarchy: Some(psse_sim::machine::Hierarchy {
            cores_per_node: tl.cores_per_node as usize,
            intra_beta_t: tl.beta_l_t,
            intra_alpha_t: 0.0,
        }),
        ..SimConfig::default()
    }
}

/// Price a hierarchical run with the two-level energy model: flop energy
/// on total flops, word energy split by link level, and the
/// `pn·δne·Mn + p·δle·Ml + p·εe` standby power over the makespan.
pub fn measure_two_level(profile: &Profile, tl: &psse_core::twolevel::TwoLevelParams) -> Measured {
    let t = profile.makespan;
    let p = profile.p() as f64;
    let pn = p / tl.cores_per_node as f64;
    // Resilience traffic is link-agnostic in the counters; price it
    // conservatively at the inter-node word energy.
    let energy = tl.gamma_e * profile.total_flops() as f64
        + tl.beta_n_e * profile.total_words_inter() as f64
        + tl.beta_l_e * profile.total_words_intra() as f64
        + tl.beta_n_e * profile.resilience_words() as f64
        + (pn * tl.delta_n_e * tl.mem_node + p * tl.delta_l_e * tl.mem_local + p * tl.epsilon_e)
            * t;
    Measured {
        time: t,
        energy,
        power: if t > 0.0 { energy / t } else { 0.0 },
    }
}

/// Condense a simulator profile into the summary priced by Eq. 2.
/// Critical-path fields are max-over-ranks; totals are sums; `T` is the
/// simulator's message-DAG makespan. Resilience traffic
/// (retransmissions, duplicates, checkpoint writes) is folded into the
/// word/message counts so Eq. 2 prices the energy the faults cost; on a
/// fault-free run the folded counters equal the plain ones.
pub fn summarize(profile: &Profile) -> ExecutionSummary {
    ExecutionSummary {
        p: profile.p() as u64,
        flops: profile.max_flops() as f64,
        words: profile.max_words_with_resilience() as f64,
        messages: profile.max_msgs_with_resilience() as f64,
        mem_peak_words: profile.max_mem_peak() as f64,
        total_flops: profile.total_flops() as f64,
        total_words: (profile.total_words_sent() + profile.resilience_words()) as f64,
        total_messages: (profile.total_msgs_sent() + profile.resilience_msgs()) as f64,
        makespan: Some(profile.makespan),
    }
}

/// Price a measured run on `params`: returns runtime, energy and average
/// power per Eqs. 1–2 evaluated over the actual counters.
pub fn measure(profile: &Profile, params: &MachineParams) -> Measured {
    summarize(profile).price(params)
}

/// Export the Eq. 1 / Eq. 2 term-by-term breakdown of a run into a
/// metrics [`Registry`] under `prefix` — the attribution the paper's
/// whole argument rests on, as data instead of a closed form.
///
/// Per-rank **time** terms land in histograms (`{prefix}.eq1.*_ns`,
/// one sample per rank, virtual nanoseconds): `γt·F`, `βt·W`, `αt·S`
/// evaluated on that rank's own counters, so the distributions show
/// which term stops shrinking when strong scaling ends. Whole-run
/// **energy** terms accumulate in counters (`{prefix}.eq2.*_nj`,
/// nanojoules): `γe·F`, `βe·W`, `αe·S` on the totals (resilience
/// traffic folded in, as in [`summarize`]), plus the `δe·M·p·T` memory
/// and `εe·p·T` leakage terms.
///
/// Errors only on metric-kind collisions under `prefix`.
pub fn export_eq_terms(
    profile: &Profile,
    params: &MachineParams,
    reg: &Registry,
    prefix: &str,
) -> Result<(), String> {
    let h_flops = reg.histogram(&format!("{prefix}.eq1.flops_ns"))?;
    let h_words = reg.histogram(&format!("{prefix}.eq1.words_ns"))?;
    let h_msgs = reg.histogram(&format!("{prefix}.eq1.msgs_ns"))?;
    for r in &profile.per_rank {
        h_flops.record_secs(params.gamma_t * r.flops as f64);
        h_words.record_secs(params.beta_t * (r.words_sent + r.retrans_words) as f64);
        h_msgs.record_secs(params.alpha_t * (r.msgs_sent + r.retrans_msgs) as f64);
    }
    let s = summarize(profile);
    let t = profile.makespan;
    let p = profile.p() as f64;
    let mem = s.mem_peak_words;
    let nj = |joules: f64| saturating_nanos(joules); // same 1e9 scale
    for (name, joules) in [
        ("flops_nj", params.gamma_e * s.total_flops),
        ("words_nj", params.beta_e * s.total_words),
        ("msgs_nj", params.alpha_e * s.total_messages),
        ("memory_nj", params.delta_e * mem * p * t),
        ("leakage_nj", params.epsilon_e * p * t),
    ] {
        reg.counter(&format!("{prefix}.eq2.{name}"))?
            .add(nj(joules));
    }
    Ok(())
}

/// [`measure`] plus a full registry export: prices the run, then
/// records the Eq. 1/2 term breakdown ([`export_eq_terms`]) and the
/// raw per-rank accounting (`Profile::export_metrics`) under `prefix`.
pub fn measure_into(
    profile: &Profile,
    params: &MachineParams,
    reg: &Registry,
    prefix: &str,
) -> Result<Measured, String> {
    profile.export_metrics(reg, prefix)?;
    export_eq_terms(profile, params, reg, prefix)?;
    Ok(measure(profile, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_sim::prelude::*;

    fn machine() -> MachineParams {
        MachineParams::builder()
            .gamma_t(1e-9)
            .beta_t(1e-8)
            .alpha_t(1e-6)
            .gamma_e(2e-9)
            .beta_e(3e-8)
            .alpha_e(1e-6)
            .delta_e(1e-10)
            .epsilon_e(0.01)
            .max_message_words(512.0)
            .mem_words(1e9)
            .build()
            .unwrap()
    }

    #[test]
    fn sim_config_mirrors_machine() {
        let mp = machine();
        let cfg = sim_config_from(&mp);
        assert_eq!(cfg.gamma_t, 1e-9);
        assert_eq!(cfg.beta_t, 1e-8);
        assert_eq!(cfg.alpha_t, 1e-6);
        assert_eq!(cfg.max_message_words, 512);
        assert_eq!(cfg.mem_limit_words, Some(1_000_000_000));
    }

    #[test]
    fn infinite_memory_means_no_limit() {
        let mp = MachineParams::builder()
            .gamma_t(1e-9)
            .max_message_words(f64::INFINITY)
            .build()
            .unwrap();
        let cfg = sim_config_from(&mp);
        assert_eq!(cfg.mem_limit_words, None);
        assert_eq!(cfg.max_message_words, usize::MAX);
    }

    #[test]
    fn summary_and_price_from_a_real_run() {
        let mp = machine();
        let cfg = sim_config_from(&mp);
        let out = Machine::run(4, cfg, |rank| {
            rank.alloc(1000)?;
            rank.compute(10_000);
            let v = rank.allreduce_sum(Tag(0), vec![rank.rank() as f64; 100])?;
            rank.free(1000)?;
            Ok(v[0])
        })
        .unwrap();
        let s = summarize(&out.profile);
        assert_eq!(s.p, 4);
        assert_eq!(s.mem_peak_words, 1000.0);
        assert!(s.total_flops >= 4.0 * 10_000.0); // + reduction adds
        assert_eq!(s.makespan, Some(out.profile.makespan));

        let m = measure(&out.profile, &mp);
        assert_eq!(m.time, out.profile.makespan);
        assert!(m.energy > 0.0);
        assert!((m.power - m.energy / m.time).abs() / m.power < 1e-12);
    }

    #[test]
    fn two_level_pricing_splits_traffic_by_link() {
        use psse_core::twolevel::TwoLevelParams;
        let tl = TwoLevelParams {
            nodes: 2,
            cores_per_node: 2,
            gamma_t: 1e-9,
            gamma_e: 1e-9,
            beta_n_t: 1e-6,
            beta_n_e: 1e-6,
            beta_l_t: 1e-8,
            beta_l_e: 1e-8,
            delta_n_e: 0.0,
            delta_l_e: 0.0,
            epsilon_e: 0.0,
            mem_node: 1.0,
            mem_local: 1.0,
        };
        let cfg = sim_config_two_level(&tl);
        // Rank 0 sends 100 words to its node-mate (1) and 100 to a
        // remote rank (2).
        let out = Machine::run(4, cfg, |rank| {
            match rank.rank() {
                0 => {
                    rank.send(1, Tag(0), vec![0.0; 100])?;
                    rank.send(2, Tag(1), vec![0.0; 100])?;
                }
                1 => {
                    rank.recv(0, Tag(0))?;
                }
                2 => {
                    rank.recv(0, Tag(1))?;
                }
                _ => {}
            }
            Ok(())
        })
        .unwrap();
        let m = measure_two_level(&out.profile, &tl);
        // Word energy: 100 intra at 1e-8 + 100 inter at 1e-6.
        let expected = 100.0 * 1e-8 + 100.0 * 1e-6;
        assert!((m.energy - expected).abs() / expected < 1e-12);
        // Makespan: rank 0's sends, 100·(1e-8 + 1e-6).
        assert!((m.time - 100.0 * (1e-8 + 1e-6)).abs() < 1e-15);
    }

    #[test]
    fn measure_into_exports_eq_terms_and_prices_identically() {
        use psse_metrics::SnapshotValue;
        let mp = machine();
        let cfg = sim_config_from(&mp);
        let out = Machine::run(4, cfg, |rank| {
            rank.compute(10_000);
            let v = rank.allreduce_sum(Tag(0), vec![rank.rank() as f64; 100])?;
            Ok(v[0])
        })
        .unwrap();
        let reg = Registry::new();
        let m = measure_into(&out.profile, &mp, &reg, "sim").unwrap();
        // Pricing is unchanged by the export.
        let plain = measure(&out.profile, &mp);
        assert_eq!(m.time, plain.time);
        assert_eq!(m.energy, plain.energy);

        let snap = reg.snapshot();
        // Per-rank Eq. 1 terms: one sample per rank.
        match snap.get("sim.eq1.flops_ns") {
            Some(SnapshotValue::Histogram(h)) => assert_eq!(h.count(), 4),
            other => panic!("expected histogram, got {other:?}"),
        }
        // Eq. 2 terms cover every energy component and sum (in nJ,
        // up to per-term rounding) to the priced energy.
        let mut nj_sum = 0u128;
        for name in [
            "sim.eq2.flops_nj",
            "sim.eq2.words_nj",
            "sim.eq2.msgs_nj",
            "sim.eq2.memory_nj",
            "sim.eq2.leakage_nj",
        ] {
            match snap.get(name) {
                Some(SnapshotValue::Counter(v)) => nj_sum += *v as u128,
                other => panic!("missing {name}: {other:?}"),
            }
        }
        let total_nj = m.energy * 1e9;
        assert!(
            (nj_sum as f64 - total_nj).abs() <= 5.0,
            "eq2 terms {nj_sum} nJ vs priced {total_nj} nJ"
        );
        // The raw profile export rode along.
        assert!(snap.get("sim.total.flops").is_some());
    }

    #[test]
    fn sim_splitting_matches_model_message_count() {
        // A k-word transfer with m-word messages must count ceil(k/m)
        // messages — the model's S = W/m.
        let mp = machine(); // m = 512
        let cfg = sim_config_from(&mp);
        let out = Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![0.0; 2000])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(out.profile.per_rank[0].msgs_sent, 4); // ceil(2000/512)
    }
}
