//! Cannon's algorithm: the classical 2D matrix multiplication baseline
//! (paper §III, "2D algorithms").
//!
//! Ranks form a `q × q` grid (`p = q²`); rank `(r, c)` owns the
//! `(n/q) × (n/q)` blocks `A_rc`, `B_rc` and computes `C_rc`. After an
//! initial skew (A shifted left by `r`, B up by `c`), `q` multiply-shift
//! steps walk the blocks around the torus.
//!
//! Per-processor costs: `F = 2n³/p`, `W ≈ 2n²/√p` (the `M = n²/p` point
//! of the 2.5D cost model), `S ≈ 2√p` block sends — the 2D baseline that
//! the data-replicating algorithms beat.

use crate::bridge::gather_blocks_2d;
use psse_kernels::gemm;
use psse_kernels::matrix::Matrix;
use psse_sim::prelude::*;

const TAG_SKEW_A: Tag = Tag(1);
const TAG_SKEW_B: Tag = Tag(2);
const TAG_SHIFT_BASE: u64 = 16;

/// Multiply `a · b` on a `q × q` simulated grid with `p = q²` ranks.
///
/// Requirements: `a`, `b` square `n × n` with `q | n`. Returns the
/// product and the execution profile.
pub fn cannon_matmul(
    a: &Matrix,
    b: &Matrix,
    p: usize,
    cfg: SimConfig,
) -> Result<(Matrix, Profile), SimError> {
    let grid = Grid2::from_p(p)?;
    let q = grid.q();
    let n = a.rows();
    if a.cols() != n || b.rows() != n || b.cols() != n {
        return Err(SimError::Algorithm(format!(
            "cannon: need square n×n inputs, got A {}x{}, B {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    if !n.is_multiple_of(q) {
        return Err(SimError::Algorithm(format!(
            "cannon: grid edge q = {q} must divide n = {n}"
        )));
    }
    let bs = n / q;

    let out = Machine::run(p, cfg, |rank| {
        let (r, c) = grid.coords(rank.rank());
        // Resident blocks A, B, C plus one transient shift buffer.
        let block_words = (bs * bs) as u64;
        rank.alloc(4 * block_words)?;
        let mut la = a.block(r * bs, c * bs, bs, bs);
        let mut lb = b.block(r * bs, c * bs, bs, bs);
        let mut lc = Matrix::zeros(bs, bs);

        // Initial skew: A_rc ← A_{r,(c+r) mod q}; B_rc ← B_{(r+c) mod q,c}.
        if r > 0 {
            let to = grid.rank_of(r, (c + q - r) % q);
            let from = grid.rank_of(r, (c + r) % q);
            la = Matrix::from_vec(
                bs,
                bs,
                rank.sendrecv(to, TAG_SKEW_A, la.into_vec(), from, TAG_SKEW_A)?,
            );
        }
        if c > 0 {
            let to = grid.rank_of((r + q - c) % q, c);
            let from = grid.rank_of((r + c) % q, c);
            lb = Matrix::from_vec(
                bs,
                bs,
                rank.sendrecv(to, TAG_SKEW_B, lb.into_vec(), from, TAG_SKEW_B)?,
            );
        }

        for step in 0..q {
            gemm::matmul_add_into(&mut lc, &la, &lb);
            rank.compute(gemm::gemm_flops(bs, bs, bs));
            if step + 1 < q {
                // Shift A left and B up, one position each.
                let tag_a = Tag(TAG_SHIFT_BASE + 2 * step as u64);
                let tag_b = Tag(TAG_SHIFT_BASE + 2 * step as u64 + 1);
                let (to_a, from_a) = (
                    grid.rank_of(r, (c + q - 1) % q),
                    grid.rank_of(r, (c + 1) % q),
                );
                la = Matrix::from_vec(
                    bs,
                    bs,
                    rank.sendrecv(to_a, tag_a, la.into_vec(), from_a, tag_a)?,
                );
                let (to_b, from_b) = (
                    grid.rank_of((r + q - 1) % q, c),
                    grid.rank_of((r + 1) % q, c),
                );
                lb = Matrix::from_vec(
                    bs,
                    bs,
                    rank.sendrecv(to_b, tag_b, lb.into_vec(), from_b, tag_b)?,
                );
            }
        }
        rank.free(4 * block_words)?;
        Ok(lc.into_vec())
    })?;

    let c_mat = gather_blocks_2d(&out.results, n, q);
    Ok((c_mat, out.profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_kernels::gemm::matmul;

    #[test]
    fn matches_sequential_product() {
        for (n, p) in [(8usize, 4usize), (12, 9), (16, 16), (20, 1)] {
            let a = Matrix::random(n, n, 1);
            let b = Matrix::random(n, n, 2);
            let (c, _) = cannon_matmul(&a, &b, p, SimConfig::counters_only()).unwrap();
            let reference = matmul(&a, &b);
            assert!(c.max_abs_diff(&reference) < 1e-10, "n = {n}, p = {p}");
        }
    }

    #[test]
    fn flops_are_evenly_distributed() {
        let n = 16;
        let p = 16;
        let a = Matrix::random(n, n, 3);
        let b = Matrix::random(n, n, 4);
        let (_, profile) = cannon_matmul(&a, &b, p, SimConfig::counters_only()).unwrap();
        let per_rank = 2 * (n as u64).pow(3) / p as u64;
        for s in &profile.per_rank {
            assert_eq!(s.flops, per_rank);
        }
    }

    #[test]
    fn words_match_2d_cost_model_shape() {
        // W per rank ≤ skew + 2(q−1) block shifts ≤ 2q·b² = 2n²/√p.
        let n = 32;
        let p = 16; // q = 4, b = 8
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        let (_, profile) = cannon_matmul(&a, &b, p, SimConfig::counters_only()).unwrap();
        let b2 = (n * n / p) as u64;
        let upper = 2 * 4 * b2; // 2q·b²
        for s in &profile.per_rank {
            assert!(s.words_sent <= upper, "{} > {upper}", s.words_sent);
        }
        // Interior ranks do the full 2(q−1) shifts plus both skews.
        let max = profile.max_words_sent();
        assert!(max >= 2 * 3 * b2, "max {max}");
    }

    #[test]
    fn bandwidth_scales_like_inverse_sqrt_p() {
        // Quadrupling p should halve per-rank words (W = Θ(n²/√p)).
        let n = 48;
        let a = Matrix::random(n, n, 7);
        let b = Matrix::random(n, n, 8);
        let (_, p4) = cannon_matmul(&a, &b, 4, SimConfig::counters_only()).unwrap();
        let (_, p16) = cannon_matmul(&a, &b, 16, SimConfig::counters_only()).unwrap();
        let ratio = p4.max_words_sent() as f64 / p16.max_words_sent() as f64;
        assert!((1.5..=3.0).contains(&ratio), "expected ~2x, got {ratio}");
    }

    #[test]
    fn memory_peak_is_four_blocks() {
        let n = 24;
        let p = 4;
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        let (_, profile) = cannon_matmul(&a, &b, p, SimConfig::counters_only()).unwrap();
        assert_eq!(profile.max_mem_peak(), 4 * (n * n / p) as u64);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Matrix::random(10, 10, 1);
        let b = Matrix::random(10, 10, 2);
        // q = 2 does not divide 9.
        let a9 = Matrix::random(9, 9, 1);
        let b9 = Matrix::random(9, 9, 2);
        assert!(cannon_matmul(&a9, &b9, 4, SimConfig::counters_only()).is_err());
        // Non-square p.
        assert!(cannon_matmul(&a, &b, 5, SimConfig::counters_only()).is_err());
        // Rectangular inputs.
        let rect = Matrix::random(10, 12, 3);
        assert!(cannon_matmul(&rect, &b, 4, SimConfig::counters_only()).is_err());
    }

    #[test]
    fn runtime_decreases_with_more_processors() {
        let n = 48;
        let a = Matrix::random(n, n, 9);
        let b = Matrix::random(n, n, 10);
        let cfg = SimConfig {
            gamma_t: 1e-9,
            beta_t: 1e-10,
            alpha_t: 1e-8,
            ..SimConfig::default()
        };
        let (_, p1) = cannon_matmul(&a, &b, 1, cfg.clone()).unwrap();
        let (_, p16) = cannon_matmul(&a, &b, 16, cfg).unwrap();
        assert!(p16.makespan < p1.makespan);
    }
}
