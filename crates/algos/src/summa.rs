//! SUMMA: the broadcast-based 2D matrix multiplication baseline
//! (van de Geijn & Watts; paper §III).
//!
//! Like Cannon, SUMMA is a `M = n²/p` "2D" algorithm, but it communicates
//! via row/column panel **broadcasts** instead of torus shifts, and its
//! panel width `w` exposes the latency/bandwidth trade-off: narrow panels
//! mean more, smaller messages (`S ∝ n/w`), wide panels fewer, larger
//! ones — a knob the bench harness sweeps as an ablation.

use crate::bridge::gather_blocks_2d;
use psse_kernels::gemm;
use psse_kernels::matrix::Matrix;
use psse_sim::collectives::TAG_WINDOW;
use psse_sim::prelude::*;

/// Multiply `a · b` with SUMMA on `p = q²` ranks using panels of width
/// `panel` (`panel | n/q` required; `panel = n/q` broadcasts whole
/// blocks).
pub fn summa_matmul(
    a: &Matrix,
    b: &Matrix,
    p: usize,
    panel: usize,
    cfg: SimConfig,
) -> Result<(Matrix, Profile), SimError> {
    let grid = Grid2::from_p(p)?;
    let q = grid.q();
    let n = a.rows();
    if a.cols() != n || b.rows() != n || b.cols() != n {
        return Err(SimError::Algorithm(format!(
            "summa: need square n×n inputs, got A {}x{}, B {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    if !n.is_multiple_of(q) {
        return Err(SimError::Algorithm(format!(
            "summa: grid edge q = {q} must divide n = {n}"
        )));
    }
    let bs = n / q;
    if panel == 0 || !bs.is_multiple_of(panel) {
        return Err(SimError::Algorithm(format!(
            "summa: panel width {panel} must divide the block size {bs}"
        )));
    }

    let out = Machine::run(p, cfg, |rank| {
        let (r, c) = grid.coords(rank.rank());
        let block_words = (bs * bs) as u64;
        let panel_words = (bs * panel) as u64;
        rank.alloc(3 * block_words + 2 * panel_words)?;
        let la = a.block(r * bs, c * bs, bs, bs);
        let lb = b.block(r * bs, c * bs, bs, bs);
        let mut lc = Matrix::zeros(bs, bs);
        let row = grid.row_group(r);
        let col = grid.col_group(c);

        for k in 0..n / panel {
            let owner = k * panel / bs; // grid row/col owning this panel
            let offset = (k * panel) % bs; // offset within the owner block
            let base = 2 * TAG_WINDOW * k as u64;

            // A panel: columns [offset, offset+panel) of A_{r,owner},
            // broadcast along the row by the owner column.
            let a_panel = if owner == c {
                Some(la.block(0, offset, bs, panel).into_vec())
            } else {
                None
            };
            let a_panel = rank.broadcast(Tag(base), &row, grid.rank_of(r, owner), a_panel)?;
            let a_panel = Matrix::from_vec(bs, panel, a_panel);

            // B panel: rows [offset, offset+panel) of B_{owner,c},
            // broadcast along the column by the owner row.
            let b_panel = if owner == r {
                Some(lb.block(offset, 0, panel, bs).into_vec())
            } else {
                None
            };
            let b_panel = rank.broadcast(
                Tag(base + TAG_WINDOW),
                &col,
                grid.rank_of(owner, c),
                b_panel,
            )?;
            let b_panel = Matrix::from_vec(panel, bs, b_panel);

            gemm::matmul_add_into(&mut lc, &a_panel, &b_panel);
            rank.compute(gemm::gemm_flops(bs, panel, bs));
        }
        rank.free(3 * block_words + 2 * panel_words)?;
        Ok(lc.into_vec())
    })?;

    let c_mat = gather_blocks_2d(&out.results, n, q);
    Ok((c_mat, out.profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_kernels::gemm::matmul;

    #[test]
    fn matches_sequential_product() {
        for (n, p, panel) in [
            (8usize, 4usize, 4usize),
            (12, 9, 2),
            (16, 16, 4),
            (16, 4, 8),
        ] {
            let a = Matrix::random(n, n, 1);
            let b = Matrix::random(n, n, 2);
            let (c, _) = summa_matmul(&a, &b, p, panel, SimConfig::counters_only()).unwrap();
            assert!(
                c.max_abs_diff(&matmul(&a, &b)) < 1e-10,
                "n={n}, p={p}, panel={panel}"
            );
        }
    }

    #[test]
    fn agrees_with_cannon() {
        let n = 24;
        let p = 9;
        let a = Matrix::random(n, n, 3);
        let b = Matrix::random(n, n, 4);
        let (c1, _) = summa_matmul(&a, &b, p, 8, SimConfig::counters_only()).unwrap();
        let (c2, _) = crate::cannon::cannon_matmul(&a, &b, p, SimConfig::counters_only()).unwrap();
        assert!(c1.max_abs_diff(&c2) < 1e-10);
    }

    #[test]
    fn narrower_panels_mean_more_messages() {
        let n = 32;
        let p = 16;
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        let (_, wide) = summa_matmul(&a, &b, p, 8, SimConfig::counters_only()).unwrap();
        let (_, narrow) = summa_matmul(&a, &b, p, 1, SimConfig::counters_only()).unwrap();
        assert!(
            narrow.total_msgs_sent() > 2 * wide.total_msgs_sent(),
            "narrow {} vs wide {}",
            narrow.total_msgs_sent(),
            wide.total_msgs_sent()
        );
        // Total words are comparable (same panels, just sliced finer).
        let ratio = narrow.total_words_sent() as f64 / wide.total_words_sent() as f64;
        assert!((0.8..=1.2).contains(&ratio), "word ratio {ratio}");
    }

    #[test]
    fn panel_must_divide_block() {
        let a = Matrix::random(16, 16, 1);
        let b = Matrix::random(16, 16, 2);
        assert!(summa_matmul(&a, &b, 4, 3, SimConfig::counters_only()).is_err());
        assert!(summa_matmul(&a, &b, 4, 0, SimConfig::counters_only()).is_err());
    }

    #[test]
    fn flops_are_evenly_distributed() {
        let n = 16;
        let p = 4;
        let a = Matrix::random(n, n, 7);
        let b = Matrix::random(n, n, 8);
        let (_, profile) = summa_matmul(&a, &b, p, 4, SimConfig::counters_only()).unwrap();
        let per_rank = 2 * (n as u64).pow(3) / p as u64;
        for s in &profile.per_rank {
            assert_eq!(s.flops, per_rank);
        }
    }
}
