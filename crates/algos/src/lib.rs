//! # psse-algos — communication-avoiding algorithms on the simulated
//! machine
//!
//! Executable implementations of every algorithm the paper analyses,
//! running on the `psse-sim` virtual-time distributed machine with real
//! data and verified numerics:
//!
//! | paper §IV algorithm | module | notes |
//! |---|---|---|
//! | 2D classical matmul (baseline) | [`cannon`], [`summa`] | `q×q` grids |
//! | 2.5D classical matmul | [`mm25d`] | `q×q×c` grid, replication factor `c` |
//! | 3D classical matmul | [`mm25d::matmul_3d`] | the `c = q` limit |
//! | CAPS Strassen | [`strassen_dist`] | BFS over `7^k` ranks (see module docs for the simplification vs. full CAPS) |
//! | 2.5D LU | [`lu2d`] | executed as 2D right-looking LU (no pivoting); 2.5D latency analysis stays in `psse-core` |
//! | direct n-body (1D baseline) | [`nbody`] | ring algorithm |
//! | data-replicating n-body | [`nbody::nbody_replicated`] | `pr × c` layout (Driscoll et al.) |
//! | parallel FFT | [`fft`] | transpose algorithm; naive and hypercube all-to-all |
//! | distributed sample sort | [`samplesort`] | regular sampling + pairwise all-to-all (Scquizzato–Silvestri bound family) |
//! | iterated halo stencil | [`stencil`] | periodic box stencil, 1-D/2-D blocks, configurable halo width |
//!
//! Every entry point takes global inputs, distributes them logically
//! (initial layout is free, matching the paper's cost models, which
//! assume data already resides in place), runs the ranks, gathers and
//! **numerically verifies** nothing itself but returns both the
//! mathematical result and the [`psse_sim::Profile`] of counters, which
//! [`bridge`] converts into `psse-core`'s `ExecutionSummary` for pricing
//! with the paper's time/energy models.

#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN alongside non-positive values;
// `partial_cmp` would obscure that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Index-based loops are kept where the index participates in the math
// (grid coordinates, butterfly strides); iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod abft;
pub mod bridge;
pub mod cannon;
pub mod cholesky2d;
pub mod fft;
pub mod lu2d;
pub mod matvec;
pub mod mm25d;
pub mod nbody;
pub mod samplesort;
pub mod seq_matmul;
pub mod stencil;
pub mod strassen_dist;
pub mod summa;
pub mod tsqr;

/// One-stop imports.
pub mod prelude {
    pub use crate::abft::{matmul_25d_abft, summa_matmul_abft, verify_matmul, ABFT_REL_TOL};
    pub use crate::bridge::{
        export_eq_terms, measure, measure_into, measure_two_level, sim_config_from,
        sim_config_two_level, summarize,
    };
    pub use crate::cannon::cannon_matmul;
    pub use crate::cholesky2d::cholesky_2d;
    pub use crate::fft::{distributed_fft, distributed_ifft, AllToAllKind};
    pub use crate::lu2d::{lu_2d, solve_2d, triangular_solve_2d};
    pub use crate::matvec::matvec_1d;
    pub use crate::mm25d::{matmul_25d, matmul_25d_opts, matmul_3d, FiberCollectives};
    pub use crate::nbody::{nbody_replicated, nbody_ring, nbody_simulate};
    pub use crate::samplesort::{random_keys, sample_sort};
    pub use crate::seq_matmul::{choose_tile, instrumented_matmul, SeqVariant};
    pub use crate::stencil::{
        halo_stencil, random_grid, serial_stencil, stencil_flops_per_cell, Decomp,
    };
    pub use crate::strassen_dist::strassen_distributed;
    pub use crate::summa::summa_matmul;
    pub use crate::tsqr::{tsqr, tsqr_least_squares};
}
