//! TSQR: communication-avoiding QR of a tall-skinny matrix.
//!
//! QR is on the paper's §III list of factorizations its bounds cover;
//! TSQR (Demmel, Grigori, Hoemmen, Langou) is the communication-optimal
//! algorithm for the `m ≫ n` case: each rank QRs its row block locally,
//! then the `p` small `R` factors are combined up a binary tree —
//! `log₂p` messages of `n(n+1)/2`-ish words each, versus the `Θ(n²·p)`
//! of a naive gather, and a critical path that is `log p` deep instead
//! of Householder-QR's `n`.
//!
//! This implementation returns the final `R` (the common use: least
//! squares via `R`, Gram–Schmidt basis construction, etc.), normalized
//! to a non-negative diagonal so it equals the sequential
//! [`psse_kernels::qr::householder_qr`] `R` of the full matrix.

use psse_kernels::matrix::Matrix;
use psse_kernels::qr::{householder_qr, qr_flops};
use psse_sim::prelude::*;

/// Compute the `R` factor of the thin QR of `a` (`m × n`, `m ≥ n·p`) on
/// `p` ranks (`p | m`). Returns `R` (with non-negative diagonal) and the
/// execution profile.
pub fn tsqr(a: &Matrix, p: usize, cfg: SimConfig) -> Result<(Matrix, Profile), SimError> {
    let m = a.rows();
    let n = a.cols();
    if p == 0 || !m.is_multiple_of(p) {
        return Err(SimError::Algorithm(format!(
            "tsqr: rank count p = {p} must divide m = {m}"
        )));
    }
    let rows = m / p;
    if rows < n {
        return Err(SimError::Algorithm(format!(
            "tsqr: each block must be tall (rows/block = {rows} < n = {n})"
        )));
    }

    let out = Machine::run(p, cfg, |rank| {
        let me = rank.rank();
        rank.alloc((rows * n + 3 * n * n) as u64)?;
        // Local QR of my row block.
        let block = a.block(me * rows, 0, rows, n);
        let (_, mut r) = householder_qr(&block);
        rank.compute(qr_flops(rows as u64, n as u64));

        // Binary-tree combine: at level d, ranks with the (d+1) low bits
        // zero receive the partner's R, stack and re-factor.
        let mut d = 1usize;
        while d < rank.size() {
            let tag = Tag(d.trailing_zeros() as u64);
            if me % (2 * d) == 0 {
                let partner = me + d;
                if partner < rank.size() {
                    let incoming = rank.recv(partner, tag)?;
                    let r2 = Matrix::from_vec(n, n, incoming);
                    // Stack [R; R2] (2n × n) and QR it.
                    let mut stacked = Matrix::zeros(2 * n, n);
                    stacked.set_block(0, 0, &r);
                    stacked.set_block(n, 0, &r2);
                    let (_, combined) = householder_qr(&stacked);
                    rank.compute(qr_flops(2 * n as u64, n as u64));
                    r = combined;
                }
            } else if me % (2 * d) == d {
                rank.send(me - d, tag, r.clone().into_vec())?;
            }
            d *= 2;
        }
        rank.free((rows * n + 3 * n * n) as u64)?;
        Ok(if me == 0 { r.into_vec() } else { Vec::new() })
    })?;

    Ok((Matrix::from_vec(n, n, out.results[0].clone()), out.profile))
}

/// Distributed linear least squares `min ‖A·x − b‖₂` via TSQR on the
/// augmented matrix `[A | b]`: its `R` factor has the block form
/// `[R, Qᵀb; 0, ρ]`, so `x` comes from one back substitution and `ρ` is
/// the residual norm — no explicit `Q` ever formed or communicated.
///
/// Returns `(x, residual_norm, profile)`.
pub fn tsqr_least_squares(
    a: &Matrix,
    b: &[f64],
    p: usize,
    cfg: SimConfig,
) -> Result<(Vec<f64>, f64, Profile), SimError> {
    let m = a.rows();
    let n = a.cols();
    if b.len() != m {
        return Err(SimError::Algorithm(format!(
            "lsq: rhs length {} must equal m = {m}",
            b.len()
        )));
    }
    // Augment: [A | b].
    let mut aug = Matrix::zeros(m, n + 1);
    aug.set_block(0, 0, a);
    for i in 0..m {
        aug[(i, n)] = b[i];
    }
    let (r_aug, profile) = tsqr(&aug, p, cfg)?;
    // Split: R (n×n), Qᵀb (n×1), ρ (scalar).
    let r = r_aug.block(0, 0, n, n);
    let qtb = Matrix::from_fn(n, 1, |i, _| r_aug[(i, n)]);
    let rho = r_aug[(n, n)].abs();
    let x = psse_kernels::lu::solve_upper(&r, &qtb)
        .map_err(|e| SimError::Algorithm(format!("rank-deficient system: {e}")))?;
    Ok(((0..n).map(|i| x[(i, 0)]).collect(), rho, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_kernels::gemm::matmul;

    #[test]
    fn r_matches_sequential_qr() {
        for (m, n, p) in [
            (32usize, 4usize, 4usize),
            (64, 8, 8),
            (48, 6, 3),
            (40, 5, 1),
            (60, 4, 5),
        ] {
            let a = Matrix::random(m, n, (m + n) as u64);
            let (r_dist, _) = tsqr(&a, p, SimConfig::counters_only()).unwrap();
            let (_, r_seq) = householder_qr(&a);
            assert!(
                r_dist.max_abs_diff(&r_seq) < 1e-8,
                "m={m} n={n} p={p}: max diff {}",
                r_dist.max_abs_diff(&r_seq)
            );
        }
    }

    #[test]
    fn gram_identity_holds() {
        // RᵀR = AᵀA — the defining property, independent of sign
        // conventions.
        let a = Matrix::random(96, 6, 3);
        let (r, _) = tsqr(&a, 8, SimConfig::counters_only()).unwrap();
        let rtr = matmul(&r.transpose(), &r);
        let ata = matmul(&a.transpose(), &a);
        assert!(rtr.relative_error(&ata) < 1e-9);
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        // Rank 0 receives exactly log₂p partner R factors.
        let n = 4;
        for p in [2usize, 4, 8, 16] {
            let a = Matrix::random(n * p, n, p as u64);
            let (_, profile) = tsqr(&a, p, SimConfig::counters_only()).unwrap();
            assert_eq!(
                profile.per_rank[0].msgs_recvd,
                (p as f64).log2() as u64,
                "p = {p}"
            );
            // And every non-root sends exactly one R.
            for s in &profile.per_rank[1..] {
                assert_eq!(s.msgs_sent, 1);
            }
        }
    }

    #[test]
    fn words_beat_a_naive_gather() {
        // The tree moves p−1 R factors total (n² words each), same as a
        // gather — but the *critical path* (root's received words) is
        // log p · n², not (p−1)·n².
        let n = 4;
        let p = 16;
        let a = Matrix::random(n * p, n, 7);
        let (_, profile) = tsqr(&a, p, SimConfig::counters_only()).unwrap();
        let root_recv = profile.per_rank[0].words_recvd;
        assert_eq!(root_recv, (p as f64).log2() as u64 * (n * n) as u64);
        assert!(root_recv < ((p - 1) * n * n) as u64);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Matrix::random(30, 4, 1);
        assert!(tsqr(&a, 4, SimConfig::counters_only()).is_err()); // 4 ∤ 30
        let wide = Matrix::random(16, 8, 1);
        assert!(tsqr(&wide, 4, SimConfig::counters_only()).is_err()); // 4 < 8 rows/block
        assert!(tsqr(&a, 0, SimConfig::counters_only()).is_err());
    }

    #[test]
    fn least_squares_exact_system_has_zero_residual() {
        // Consistent system: b = A·x_true.
        let (m, n, p) = (64usize, 5usize, 8usize);
        let a = Matrix::random(m, n, 21);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let b: Vec<f64> = (0..m)
            .map(|i| a.row(i).iter().zip(&x_true).map(|(aij, xj)| aij * xj).sum())
            .collect();
        let (x, rho, _) = tsqr_least_squares(&a, &b, p, SimConfig::counters_only()).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
        assert!(rho < 1e-8, "residual {rho}");
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Overdetermined noisy system: compare against (AᵀA)x = Aᵀb.
        let (m, n, p) = (96usize, 4usize, 8usize);
        let a = Matrix::random(m, n, 22);
        let b: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        let (x, rho, _) = tsqr_least_squares(&a, &b, p, SimConfig::counters_only()).unwrap();

        let ata = matmul(&a.transpose(), &a);
        let atb: Vec<f64> = (0..n)
            .map(|j| (0..m).map(|i| a[(i, j)] * b[i]).sum())
            .collect();
        let x_ne = psse_kernels::lu::solve(&ata, &atb).unwrap();
        for (xi, ni) in x.iter().zip(&x_ne) {
            assert!((xi - ni).abs() < 1e-6, "{xi} vs {ni}");
        }
        // Residual norm agrees with the direct computation.
        let direct: f64 = (0..m)
            .map(|i| {
                let pred: f64 = a.row(i).iter().zip(&x).map(|(aij, xj)| aij * xj).sum();
                (pred - b[i]).powi(2)
            })
            .sum::<f64>()
            .sqrt();
        assert!((rho - direct).abs() < 1e-8, "rho {rho} vs direct {direct}");
    }

    #[test]
    fn least_squares_rejects_mismatched_rhs() {
        let a = Matrix::random(32, 4, 23);
        assert!(tsqr_least_squares(&a, &[0.0; 31], 4, SimConfig::counters_only()).is_err());
    }

    #[test]
    fn non_power_of_two_ranks_work() {
        // The tree handles stragglers (partner >= p just passes through).
        for p in [3usize, 5, 6, 7] {
            let n = 3;
            let a = Matrix::random(n * p * 2, n, p as u64);
            let (r_dist, _) = tsqr(&a, p, SimConfig::counters_only()).unwrap();
            let (_, r_seq) = householder_qr(&a);
            assert!(r_dist.max_abs_diff(&r_seq) < 1e-8, "p = {p}");
        }
    }
}
