//! Distributed sample sort (Scquizzato–Silvestri lower-bound family).
//!
//! The first priced workload outside linear algebra / n-body: sorting
//! `n` keys on `p` ranks by **regular sampling**:
//!
//! 1. each rank sorts its `n/p` local keys,
//! 2. each rank picks `p − 1` evenly spaced samples from its sorted
//!    block; an allgather shares all `p·(p − 1)` candidates and every
//!    rank deterministically selects the same `p − 1` splitters,
//! 3. the local block is partitioned into `p` buckets by splitter and a
//!    pairwise **all-to-all** redistributes every key to its bucket
//!    owner,
//! 4. each rank merges its received (sorted) runs; the concatenation of
//!    rank outputs in rank order is the globally sorted sequence.
//!
//! Cost shape: `F = Θ((n/p)·log n)`, `W = Θ(n/p)` (every key crosses the
//! network once — the Scquizzato–Silvestri sorting bandwidth bound
//! `Ω(n/p)` is attained within a small constant), but `S = Θ(p)`: the
//! all-to-all sends one message per peer, so the latency term `αt·S`
//! *grows* with `p` instead of shrinking. That is exactly the paper's
//! FFT counterexample shape — sample sort has no perfect strong scaling
//! range, and `crate::samplesort` + `psse-core`'s `SampleSortModel`
//! quantify the departure from `1/p`.

use psse_kernels::rng::XorShift64;
use psse_sim::prelude::*;

/// Tag base for the splitter allgather (ring offsets `0..p−1`).
const SS_SAMPLE: u64 = 0;
/// Tag base for the bucket all-to-all (offsets `0..TAG_WINDOW`).
const SS_EXCHANGE: u64 = 1 << 20;

/// Deterministic seeded keys in `[-1, 1)` — the canonical input of the
/// sorting workload (same generator family as the n-body particles).
pub fn random_keys(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift64::new(seed);
    (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect()
}

/// `⌈log₂ x⌉` for flop accounting (0 for `x ≤ 1`).
fn ceil_log2(x: usize) -> u64 {
    if x < 2 {
        0
    } else {
        (usize::BITS - (x - 1).leading_zeros()) as u64
    }
}

/// Comparison count charged for sorting `x` keys: `x·⌈log₂ x⌉`.
fn sort_flops(x: usize) -> u64 {
    x as u64 * ceil_log2(x)
}

/// Sort `keys` on `p` ranks by regular-sampling sample sort. Requires
/// `p | n` and `n ≥ p²` (each rank must hold enough keys to sample).
/// Returns the globally sorted keys plus the execution profile.
pub fn sample_sort(
    keys: &[f64],
    p: usize,
    cfg: SimConfig,
) -> Result<(Vec<f64>, Profile), SimError> {
    let n = keys.len();
    if p == 0 {
        return Err(SimError::Algorithm("samplesort: p must be >= 1".into()));
    }
    if !n.is_multiple_of(p) || n == 0 {
        return Err(SimError::Algorithm(format!(
            "samplesort: key count must be a positive multiple of p (n = {n}, p = {p})"
        )));
    }
    let bs = n / p;
    if bs < p {
        return Err(SimError::Algorithm(format!(
            "samplesort: need n ≥ p² so each rank can sample p − 1 keys \
             (n = {n}, p = {p})"
        )));
    }
    let s = p - 1; // samples per rank

    let out = Machine::run(p, cfg, |rank| {
        let me = rank.rank();
        // Working set: local block + bucket staging + the shared
        // splitter candidates. The received keys are allocated when
        // they arrive (their size is data-dependent).
        let base_words = (2 * bs + p * s) as u64;
        rank.alloc(base_words)?;

        // Phase 1: local sort.
        let mut block: Vec<f64> = keys[me * bs..(me + 1) * bs].to_vec();
        block.sort_by(|a, b| a.total_cmp(b));
        rank.compute(sort_flops(bs));

        // Phase 2: regular samples + splitter agreement. Sample i sits
        // at position (i+1)·bs/p of the sorted block; the ring
        // allgather shares all p·(p−1) candidates and every rank sorts
        // them identically, so all ranks agree on the p − 1 splitters.
        let group = Group::world(p);
        let samples: Vec<f64> = (1..p).map(|i| block[i * bs / p]).collect();
        let gathered = rank.allgather(Tag(SS_SAMPLE), &group, samples)?;
        let mut candidates: Vec<f64> = gathered.into_iter().flatten().collect();
        candidates.sort_by(|a, b| a.total_cmp(b));
        rank.compute(sort_flops(p * s));
        let splitters: Vec<f64> = (0..s).map(|j| candidates[(j + 1) * s]).collect();

        // Phase 3: partition the sorted block into p buckets — bucket d
        // holds the keys in (splitter[d−1], splitter[d]] — and exchange
        // all-to-all. p − 1 binary searches find the cut points.
        let mut cuts = Vec::with_capacity(p + 1);
        cuts.push(0usize);
        for sp in &splitters {
            cuts.push(block.partition_point(|x| x.total_cmp(sp).is_le()));
        }
        cuts.push(bs);
        rank.compute(s as u64 * ceil_log2(bs.max(2)));
        let blocks: Vec<Vec<f64>> = (0..p)
            .map(|d| block[cuts[d]..cuts[d + 1]].to_vec())
            .collect();
        let received = rank.alltoall(Tag(SS_EXCHANGE), &group, blocks)?;

        // Phase 4: p-way merge of the received sorted runs (charged as
        // one comparison per key per merge level, ⌈log₂ p⌉ levels).
        let total: usize = received.iter().map(Vec::len).sum();
        rank.alloc(total as u64)?;
        let mut bucket: Vec<f64> = received.into_iter().flatten().collect();
        bucket.sort_by(|a, b| a.total_cmp(b));
        rank.compute(total as u64 * ceil_log2(p));

        rank.free(base_words + total as u64)?;
        Ok(bucket)
    })?;

    // Bucket d on rank d holds exactly the keys between splitters d−1
    // and d: the concatenation in rank order is globally sorted.
    let mut sorted = Vec::with_capacity(n);
    for bucket in &out.results {
        sorted.extend_from_slice(bucket);
    }
    Ok((sorted, out.profile))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_sorted(keys: &[f64]) -> Vec<f64> {
        let mut v = keys.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        v
    }

    #[test]
    fn matches_serial_sort() {
        for (n, p) in [(64usize, 1usize), (64, 4), (256, 8), (1024, 16), (4096, 4)] {
            let keys = random_keys(n, 11 + n as u64);
            let (sorted, _) = sample_sort(&keys, p, SimConfig::counters_only()).unwrap();
            assert_eq!(sorted.len(), n, "n={n} p={p}: length preserved");
            // Bit-identical to the serial sort: same multiset, same
            // total order, no arithmetic performed on keys.
            let reference = serial_sorted(&keys);
            for (i, (a, b)) in sorted.iter().zip(&reference).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n} p={p} index {i}");
            }
        }
    }

    #[test]
    fn handles_duplicate_keys() {
        let mut keys = random_keys(512, 3);
        for i in 0..256 {
            keys[2 * i + 1] = keys[2 * i]; // every key duplicated
        }
        let (sorted, _) = sample_sort(&keys, 8, SimConfig::counters_only()).unwrap();
        assert_eq!(sorted, serial_sorted(&keys));
    }

    #[test]
    fn words_scale_as_n_over_p() {
        // The exchange moves ~(n/p)·(p−1)/p words per rank; the sample
        // allgather adds (p−1)² — lower-order while p² ≪ n.
        let n = 1 << 16;
        let keys = random_keys(n, 5);
        let (_, p8) = sample_sort(&keys, 8, SimConfig::counters_only()).unwrap();
        let (_, p16) = sample_sort(&keys, 16, SimConfig::counters_only()).unwrap();
        let ratio = p8.max_words_sent() as f64 / p16.max_words_sent() as f64;
        assert!((1.5..=2.4).contains(&ratio), "W should ~halve: {ratio}");
    }

    #[test]
    fn message_count_grows_linearly_with_p() {
        // The scaling-breaker: S = 2(p−1) per rank (allgather ring +
        // pairwise all-to-all), growing with p instead of shrinking.
        let n = 1 << 14;
        let keys = random_keys(n, 7);
        for p in [4usize, 8, 16] {
            let (_, profile) = sample_sort(&keys, p, SimConfig::counters_only()).unwrap();
            assert_eq!(
                profile.max_msgs_sent(),
                2 * (p as u64 - 1),
                "p={p}: latency cost is linear in p"
            );
        }
    }

    #[test]
    fn flops_scale_with_p() {
        let n = 1 << 14;
        let keys = random_keys(n, 9);
        let (_, p4) = sample_sort(&keys, 4, SimConfig::counters_only()).unwrap();
        let (_, p16) = sample_sort(&keys, 16, SimConfig::counters_only()).unwrap();
        let ratio = p4.max_flops() as f64 / p16.max_flops() as f64;
        // Not perfectly 4: the block shrinks by 4 but log(block) only
        // drops by 2 bits; still clearly parallel.
        assert!(ratio > 3.0, "flop ratio {ratio}");
    }

    #[test]
    fn rerun_is_bit_identical() {
        let keys = random_keys(4096, 13);
        let (s1, p1) = sample_sort(&keys, 8, SimConfig::counters_only()).unwrap();
        let (s2, p2) = sample_sort(&keys, 8, SimConfig::counters_only()).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn rejects_bad_configurations() {
        let keys = random_keys(100, 1);
        // p does not divide n.
        assert!(sample_sort(&keys, 3, SimConfig::counters_only()).is_err());
        // n < p²: not enough keys to sample.
        let keys = random_keys(64, 2);
        assert!(sample_sort(&keys, 16, SimConfig::counters_only()).is_err());
        // Empty input.
        assert!(sample_sort(&[], 1, SimConfig::counters_only()).is_err());
        // p = 0.
        assert!(sample_sort(&keys, 0, SimConfig::counters_only()).is_err());
    }
}
