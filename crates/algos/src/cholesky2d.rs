//! Distributed 2D block Cholesky factorization (`A = L·Lᵀ`, SPD input).
//!
//! Cholesky is in the family of direct factorizations the paper's bounds
//! cover (§III); its communication structure is LU's at half the
//! arithmetic, with the same `Θ(q)`-deep panel critical path (modelled by
//! `psse-core::costs::Cholesky25d`). Block algorithm on a `q × q` grid,
//! step `k`:
//!
//! 1. the diagonal rank factors `L_kk = chol(A_kk)` and broadcasts it
//!    down column `k`;
//! 2. column-`k` ranks below the diagonal form `L_ik = A_ik·L_kkᵀ⁻¹`;
//! 3. each `L_ik` is broadcast along row `i`; each diagonal rank then
//!    re-broadcasts its `L_jk` down column `j` (the standard two-hop that
//!    gets the transposed panel where the update needs it);
//! 4. trailing update `A_ij −= L_ik·L_jkᵀ` for `i ≥ j > k`.
//!
//! Only the lower triangle is computed; the returned matrix has zeros
//! above the diagonal.

use crate::bridge::gather_blocks_2d;
use psse_kernels::gemm;
use psse_kernels::lu::{cholesky_inplace, solve_upper_right};
use psse_kernels::matrix::Matrix;
use psse_sim::collectives::TAG_WINDOW;
use psse_sim::prelude::*;

/// Factor the SPD matrix `a` into `L` (lower triangular, `A = L·Lᵀ`) on
/// `p = q²` ranks. Returns `L` and the execution profile.
pub fn cholesky_2d(a: &Matrix, p: usize, cfg: SimConfig) -> Result<(Matrix, Profile), SimError> {
    let grid = Grid2::from_p(p)?;
    let q = grid.q();
    let n = a.rows();
    if a.cols() != n {
        return Err(SimError::Algorithm(format!(
            "cholesky: need a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if !n.is_multiple_of(q) {
        return Err(SimError::Algorithm(format!(
            "cholesky: grid edge q = {q} must divide n = {n}"
        )));
    }
    let bs = n / q;
    // Tag layout per step k: column-k broadcast, then q row broadcasts,
    // then q column re-broadcasts.
    let stride = TAG_WINDOW * (2 * q as u64 + 2);

    let out = Machine::run(p, cfg, |rank| {
        let (r, c) = grid.coords(rank.rank());
        let block_words = (bs * bs) as u64;
        rank.alloc(3 * block_words)?;
        let mut la = a.block(r * bs, c * bs, bs, bs);

        for k in 0..q {
            let base = k as u64 * stride;
            // 1. Factor the diagonal block and broadcast down column k.
            let mut l_kk: Option<Matrix> = None;
            if r == k && c == k {
                cholesky_inplace(&mut la).map_err(|e| {
                    SimError::Algorithm(format!("block {k} not positive definite: {e}"))
                })?;
                rank.compute(psse_kernels::lu::cholesky_flops(bs as u64));
            }
            if c == k {
                let data = (r == k).then(|| la.clone().into_vec());
                let col = grid.col_group(k);
                let v = rank.broadcast(Tag(base), &col, grid.rank_of(k, k), data)?;
                l_kk = Some(Matrix::from_vec(bs, bs, v));
            }

            // 2. Panel solves: L_ik = A_ik · (L_kkᵀ)⁻¹ for i > k.
            if c == k && r > k {
                let lkk_t = l_kk.as_ref().expect("column k has L_kk").transpose();
                la = solve_upper_right(&la, &lkk_t)
                    .map_err(|e| SimError::Algorithm(format!("singular L_kk at {k}: {e}")))?;
                rank.compute((bs * bs * bs) as u64);
            }

            // 3a. Broadcast L_rk along row r (rows r > k only; every rank
            //     of such a row participates). Rows ≥ k keep the result —
            //     the diagonal rank (r, r) needs it for the re-broadcast.
            let mut l_row: Option<Matrix> = None;
            if r > k {
                let data = (c == k).then(|| la.clone().into_vec());
                let row = grid.row_group(r);
                let v = rank.broadcast(
                    Tag(base + TAG_WINDOW * (1 + r as u64)),
                    &row,
                    grid.rank_of(r, k),
                    data,
                )?;
                l_row = Some(Matrix::from_vec(bs, bs, v));
            }

            // 3b. Diagonal ranks re-broadcast L_ck down column c (c > k),
            //     delivering the transposed panel to the update.
            let mut l_col: Option<Matrix> = None;
            if c > k {
                let data = (r == c).then(|| {
                    l_row
                        .as_ref()
                        .expect("diagonal rank received its row panel")
                        .clone()
                        .into_vec()
                });
                let col = grid.col_group(c);
                let v = rank.broadcast(
                    Tag(base + TAG_WINDOW * (1 + q as u64 + c as u64)),
                    &col,
                    grid.rank_of(c, c),
                    data,
                )?;
                l_col = Some(Matrix::from_vec(bs, bs, v));
            }

            // 4. Trailing update for the lower triangle: A_rc -= L_rk·L_ckᵀ.
            if r > k && c > k && r >= c {
                let l_rk = l_row.as_ref().expect("row panel present");
                let l_ck = l_col.as_ref().expect("column panel present");
                let mut update = Matrix::zeros(bs, bs);
                gemm::matmul_add_into(&mut update, l_rk, &l_ck.transpose());
                rank.compute(gemm::gemm_flops(bs, bs, bs));
                la = la.sub(&update);
                rank.compute(block_words);
            }
        }
        rank.free(3 * block_words)?;
        // Upper-triangle ranks report zeros (L is lower triangular).
        Ok(if r >= c {
            la.into_vec()
        } else {
            vec![0.0; bs * bs]
        })
    })?;

    let l = gather_blocks_2d(&out.results, n, q);
    Ok((l, out.profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_kernels::gemm::matmul;

    fn spd(n: usize, seed: u64) -> Matrix {
        let b = Matrix::random(n, n, seed);
        let mut a = matmul(&b.transpose(), &b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn reconstructs_spd_inputs() {
        for (n, p) in [(8usize, 4usize), (12, 9), (16, 16), (16, 1)] {
            let a = spd(n, 3);
            let (l, _) = cholesky_2d(&a, p, SimConfig::counters_only()).unwrap();
            let recon = matmul(&l, &l.transpose());
            assert!(
                recon.relative_error(&a) < 1e-10,
                "n={n}, p={p}: err {}",
                recon.relative_error(&a)
            );
            // L is lower triangular.
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(l[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn matches_sequential_cholesky() {
        let n = 16;
        let a = spd(n, 5);
        let mut seq = a.clone();
        cholesky_inplace(&mut seq).unwrap();
        let (l, _) = cholesky_2d(&a, 16, SimConfig::counters_only()).unwrap();
        assert!(l.max_abs_diff(&seq) < 1e-9);
    }

    #[test]
    fn indefinite_input_is_rejected() {
        let mut a = Matrix::identity(8);
        a[(3, 3)] = -5.0;
        let r = cholesky_2d(&a, 4, SimConfig::counters_only());
        assert!(matches!(r, Err(SimError::Algorithm(_))));
    }

    #[test]
    fn message_count_grows_with_p_like_lu() {
        let n = 32;
        let a = spd(n, 7);
        let (_, p4) = cholesky_2d(&a, 4, SimConfig::counters_only()).unwrap();
        let (_, p16) = cholesky_2d(&a, 16, SimConfig::counters_only()).unwrap();
        assert!(p16.max_msgs_sent() > p4.max_msgs_sent());
    }

    #[test]
    fn does_roughly_half_the_lu_flops() {
        let n = 32;
        let a = Matrix::random_diagonally_dominant(n, 9);
        let a_spd = spd(n, 9);
        let (_, lu) = crate::lu2d::lu_2d(&a, 16, SimConfig::counters_only()).unwrap();
        let (_, ch) = cholesky_2d(&a_spd, 16, SimConfig::counters_only()).unwrap();
        let ratio = lu.total_flops() as f64 / ch.total_flops() as f64;
        assert!(
            (1.3..=2.6).contains(&ratio),
            "Cholesky should do ~half the flops: ratio {ratio}"
        );
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = spd(9, 1);
        assert!(cholesky_2d(&a, 4, SimConfig::counters_only()).is_err());
        let rect = Matrix::random(8, 10, 1);
        assert!(cholesky_2d(&rect, 4, SimConfig::counters_only()).is_err());
    }
}
