//! Instrumented sequential matrix multiplication on the two-level
//! memory machine (paper Fig. 1(a)): every element touch goes through
//! the `psse-sim` LRU [`FastMemory`], so the measured slow↔fast traffic
//! can be compared against the paper's sequential bound
//! `W = Ω(max(I+O, F/√M))` (Eq. 3) and against the
//! `Θ(n³/√M)` model of `psse-core::sequential`.
//!
//! The address space is laid out as `A | B | C`, row-major, one word per
//! element. Arithmetic is performed for real (the product is returned
//! and verified in tests); the cache only observes the access stream.

use psse_kernels::matrix::Matrix;
use psse_sim::error::{SimError, SimResult};
use psse_sim::seqmem::{FastMemory, MemStats};

/// Which access pattern to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqVariant {
    /// The naive `i-j-k` triple loop (column reuse of `B` thrashes once
    /// the working set spills).
    Naive,
    /// Square tiling with tile edge chosen for the given fast memory
    /// (`b = sqrt(M/3)` rounded to a divisor-friendly size).
    Blocked {
        /// Tile edge in elements; use [`choose_tile`] for the
        /// capacity-fitting choice.
        tile: usize,
    },
}

/// The largest tile edge `b` such that three `b × b` tiles fit in
/// `fast_words` (at least 1).
pub fn choose_tile(fast_words: u64) -> usize {
    (((fast_words as f64) / 3.0).sqrt().floor() as usize).max(1)
}

/// Multiply `a · b` through the cache simulator. Returns the product and
/// the memory-traffic counters (including final writebacks).
pub fn instrumented_matmul(
    a: &Matrix,
    b: &Matrix,
    variant: SeqVariant,
    fast_words: u64,
    line_words: u64,
) -> SimResult<(Matrix, MemStats)> {
    let n = a.rows();
    if a.cols() != n || b.rows() != n || b.cols() != n {
        return Err(SimError::Algorithm(format!(
            "seq matmul: need square n×n inputs, got A {}x{}, B {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let nn = (n * n) as u64;
    let addr_a = |i: usize, j: usize| (i * n + j) as u64;
    let addr_b = |i: usize, j: usize| nn + (i * n + j) as u64;
    let addr_c = |i: usize, j: usize| 2 * nn + (i * n + j) as u64;

    let mut mem = FastMemory::new(fast_words, line_words);
    let mut c = Matrix::zeros(n, n);

    match variant {
        SeqVariant::Naive => {
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        mem.read(addr_a(i, k));
                        mem.read(addr_b(k, j));
                        acc += a[(i, k)] * b[(k, j)];
                    }
                    mem.write(addr_c(i, j));
                    c[(i, j)] = acc;
                }
            }
        }
        SeqVariant::Blocked { tile } => {
            if tile == 0 {
                return Err(SimError::Algorithm("tile edge must be positive".into()));
            }
            let t = tile;
            for i0 in (0..n).step_by(t) {
                for j0 in (0..n).step_by(t) {
                    for k0 in (0..n).step_by(t) {
                        for i in i0..(i0 + t).min(n) {
                            for k in k0..(k0 + t).min(n) {
                                mem.read(addr_a(i, k));
                                let aik = a[(i, k)];
                                for j in j0..(j0 + t).min(n) {
                                    mem.read(addr_b(k, j));
                                    // read-modify-write of C(i, j)
                                    mem.write(addr_c(i, j));
                                    c[(i, j)] += aik * b[(k, j)];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    mem.flush();
    Ok((c, mem.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_core::sequential::traffic_vs_lower_bound;
    use psse_kernels::gemm::matmul;

    #[test]
    fn both_variants_compute_the_product() {
        let n = 24;
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        let reference = matmul(&a, &b);
        let (c1, _) = instrumented_matmul(&a, &b, SeqVariant::Naive, 1 << 10, 8).unwrap();
        let (c2, _) =
            instrumented_matmul(&a, &b, SeqVariant::Blocked { tile: 8 }, 1 << 10, 8).unwrap();
        assert!(c1.max_abs_diff(&reference) < 1e-12);
        assert!(c2.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn blocked_moves_far_fewer_words_when_spilling() {
        let n = 64;
        let a = Matrix::random(n, n, 3);
        let b = Matrix::random(n, n, 4);
        // Fast memory holds ~3 tiles of 16x16 = 768 words << 3n² = 12288.
        let fast = 1024u64;
        let (_, naive) = instrumented_matmul(&a, &b, SeqVariant::Naive, fast, 8).unwrap();
        let tile = choose_tile(fast);
        let (_, blocked) =
            instrumented_matmul(&a, &b, SeqVariant::Blocked { tile }, fast, 8).unwrap();
        assert!(
            blocked.words_moved * 3 < naive.words_moved,
            "blocked {} vs naive {}",
            blocked.words_moved,
            naive.words_moved
        );
    }

    #[test]
    fn measured_traffic_respects_the_lower_bound() {
        let n = 48;
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        for fast in [512u64, 1024, 2048] {
            let tile = choose_tile(fast);
            let (_, stats) =
                instrumented_matmul(&a, &b, SeqVariant::Blocked { tile }, fast, 1).unwrap();
            let ratio = traffic_vs_lower_bound(n as u64, fast as f64, stats.words_moved as f64);
            assert!(
                ratio >= 1.0,
                "measured traffic below the Eq. 3 bound?! ratio {ratio}"
            );
            assert!(
                ratio < 40.0,
                "blocked matmul should sit within a modest constant: {ratio}"
            );
        }
    }

    #[test]
    fn blocked_traffic_tracks_inverse_sqrt_m() {
        // Quadrupling fast memory should roughly halve the traffic of
        // the blocked algorithm (the Θ(n³/√M) law), as long as the
        // problem still spills.
        let n = 64;
        let a = Matrix::random(n, n, 7);
        let b = Matrix::random(n, n, 8);
        let run = |fast: u64| {
            let tile = choose_tile(fast);
            instrumented_matmul(&a, &b, SeqVariant::Blocked { tile }, fast, 1)
                .unwrap()
                .1
                .words_moved as f64
        };
        let w1 = run(768);
        let w4 = run(3072);
        let ratio = w1 / w4;
        assert!((1.5..=3.0).contains(&ratio), "traffic ratio {ratio}");
    }

    #[test]
    fn everything_fits_means_compulsory_traffic_only() {
        let n = 16;
        let a = Matrix::random(n, n, 9);
        let b = Matrix::random(n, n, 10);
        let fast = (3 * n * n) as u64 + 64;
        let (_, stats) = instrumented_matmul(&a, &b, SeqVariant::Naive, fast, 1).unwrap();
        // 2n² compulsory reads + n² write-allocate fetches of C + n²
        // output writebacks (the cache is write-back/write-allocate).
        assert_eq!(stats.words_moved, (4 * n * n) as u64);
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = Matrix::random(8, 10, 1);
        let b = Matrix::random(10, 10, 2);
        assert!(instrumented_matmul(&a, &b, SeqVariant::Naive, 64, 8).is_err());
        let sq = Matrix::random(8, 8, 3);
        assert!(instrumented_matmul(&sq, &sq, SeqVariant::Blocked { tile: 0 }, 64, 8).is_err());
    }

    #[test]
    fn choose_tile_fits_three_tiles() {
        for fast in [48u64, 300, 1 << 12, 1 << 20] {
            let t = choose_tile(fast) as u64;
            assert!(3 * t * t <= fast, "3·{t}² > {fast}");
            assert!(t >= 1);
        }
    }
}
