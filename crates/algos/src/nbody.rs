//! Direct n-body algorithms: the 1D ring baseline and the
//! data-replicating "1.5D" algorithm of Driscoll et al. (paper §IV,
//! "Direct n-body problem").
//!
//! Particles are split into `pr` blocks. In the **ring** algorithm
//! (`c = 1`, `M = Θ(n/p)`) each of the `p = pr` ranks owns one target
//! block and passes source blocks around a ring for `pr` steps:
//! `W = Θ(n)` per rank... no — per rank `W = Θ((p−1)·n/p) = Θ(n)` words?
//! Each step moves one block of `n/p` particles, `p − 1` steps:
//! `W = Θ(n/p·p) = Θ(n)`. Against the model: `W = n²/(p·M)` with
//! `M = n/p` gives `n` — matching.
//!
//! In the **replicated** algorithm ranks form a `pr × c` grid
//! (`p = pr·c`, `c | pr`). The source blocks are replicated so that layer
//! `j` only walks `pr/c` of them (`M = Θ(c·n/p)`), and partial forces are
//! sum-reduced across each target's `c`-fiber: `W = Θ(n/c)` per rank —
//! the `1/c` communication saving that makes energy independent of `p`
//! in the scaling range.

use psse_kernels::nbody::{accumulate_forces, integrate_step, Particle, FLOPS_PER_INTERACTION};
use psse_sim::collectives::TAG_WINDOW;
use psse_sim::prelude::*;

/// Words per particle on the wire (x, y, z, mass).
const PARTICLE_WORDS: usize = 4;

fn encode(particles: &[Particle]) -> Vec<f64> {
    let mut v = Vec::with_capacity(particles.len() * PARTICLE_WORDS);
    for p in particles {
        v.extend_from_slice(&p.pos);
        v.push(p.mass);
    }
    v
}

fn decode(words: &[f64]) -> Vec<Particle> {
    assert_eq!(words.len() % PARTICLE_WORDS, 0);
    words
        .chunks(PARTICLE_WORDS)
        .map(|w| Particle::at([w[0], w[1], w[2]], w[3]))
        .collect()
}

/// Compute the accelerations on every particle with the 1D ring
/// algorithm on `p` ranks (`p | n`). Returns per-particle accelerations
/// (in input order) and the execution profile.
pub fn nbody_ring(
    particles: &[Particle],
    p: usize,
    cfg: SimConfig,
) -> Result<(Vec<[f64; 3]>, Profile), SimError> {
    nbody_replicated(particles, p, 1, cfg)
}

/// Compute the accelerations with the data-replicating algorithm on a
/// `pr × c` grid (`p = pr·c` ranks, `c | pr`, `pr | n`).
///
/// Rank `(i, j)` (id `= j·pr + i`) owns target block `i` and walks the
/// `pr/c` source blocks `(i + j·pr/c + t) mod pr`; partial forces are
/// reduced across each fiber `{(i, j) : j}` to layer 0.
pub fn nbody_replicated(
    particles: &[Particle],
    pr: usize,
    c: usize,
    cfg: SimConfig,
) -> Result<(Vec<[f64; 3]>, Profile), SimError> {
    let n = particles.len();
    if pr == 0 || c == 0 {
        return Err(SimError::Algorithm(
            "nbody: pr and c must be positive".into(),
        ));
    }
    if c > 1 && !pr.is_multiple_of(c) {
        return Err(SimError::Algorithm(format!(
            "nbody: replication factor c = {c} must divide the ring size pr = {pr}"
        )));
    }
    if !n.is_multiple_of(pr) || n == 0 {
        return Err(SimError::Algorithm(format!(
            "nbody: ring size pr = {pr} must divide n = {n}"
        )));
    }
    let p = pr * c;
    let bs = n / pr; // particles per block
    let steps = pr / c;

    let out = Machine::run(p, cfg, |rank| {
        let me = rank.rank();
        let (i, j) = (me % pr, me / pr);
        // Resident: target block, one source block, accumulator; plus a
        // transient shift buffer.
        rank.alloc((3 * bs * PARTICLE_WORDS + 3 * bs) as u64)?;

        let targets = &particles[i * bs..(i + 1) * bs];
        let mut acc = vec![[0.0f64; 3]; bs];

        // Initial source block for this layer (free initial layout).
        let s0 = (i + j * steps) % pr;
        let mut sources = particles[s0 * bs..(s0 + 1) * bs].to_vec();

        for t in 0..steps {
            accumulate_forces(targets, &sources, &mut acc);
            rank.compute((bs as u64) * (bs as u64) * FLOPS_PER_INTERACTION);
            if t + 1 < steps {
                // Shift: fetch the next source block from the ring
                // neighbour within this layer.
                let next = j * pr + (i + 1) % pr;
                let prev = j * pr + (i + pr - 1) % pr;
                let tag = Tag(TAG_WINDOW + t as u64);
                let incoming = rank.sendrecv(prev, tag, encode(&sources), next, tag)?;
                sources = decode(&incoming);
            }
        }

        // Reduce partial forces across the fiber to layer 0.
        let flat: Vec<f64> = acc.iter().flatten().copied().collect();
        let result = if c > 1 {
            let fiber = Group::new((0..c).map(|l| l * pr + i).collect())?;
            rank.reduce_sum(Tag(1_000_000), &fiber, i, flat)?
        } else {
            Some(flat)
        };
        rank.free((3 * bs * PARTICLE_WORDS + 3 * bs) as u64)?;
        Ok(result.unwrap_or_default())
    })?;

    // Layer-0 ranks hold the reduced accelerations for their blocks.
    let mut acc = Vec::with_capacity(n);
    for i in 0..pr {
        let flat = &out.results[i];
        debug_assert_eq!(flat.len(), bs * 3);
        for chunk in flat.chunks(3) {
            acc.push([chunk[0], chunk[1], chunk[2]]);
        }
    }
    Ok((acc, out.profile))
}

/// Run `n_steps` leapfrog (kick–drift) time steps of the system with
/// forces computed by the replicating distributed algorithm each step
/// (`pr × c` grid as in [`nbody_replicated`]). Returns the final
/// particle states (positions, velocities, masses) and the cumulative
/// execution profile.
///
/// Within a step: every rank refreshes its layer's starting source block
/// from the rank that owns it (positions move every step), walks its
/// `pr/c` source blocks, **all-reduces** the partial accelerations along
/// each target fiber (so every layer integrates identically — keeping
/// the replicas consistent without a re-broadcast), and integrates its
/// target block locally.
pub fn nbody_simulate(
    particles: &[Particle],
    pr: usize,
    c: usize,
    n_steps: usize,
    dt: f64,
    cfg: SimConfig,
) -> Result<(Vec<Particle>, Profile), SimError> {
    let n = particles.len();
    if pr == 0 || c == 0 {
        return Err(SimError::Algorithm(
            "nbody: pr and c must be positive".into(),
        ));
    }
    if c > 1 && !pr.is_multiple_of(c) {
        return Err(SimError::Algorithm(format!(
            "nbody: replication factor c = {c} must divide the ring size pr = {pr}"
        )));
    }
    if !n.is_multiple_of(pr) || n == 0 {
        return Err(SimError::Algorithm(format!(
            "nbody: ring size pr = {pr} must divide n = {n}"
        )));
    }
    let p = pr * c;
    let bs = n / pr;
    let steps = pr / c;
    // Disjoint tag space per time step: refresh, ring shifts, reduction.
    let step_tag_stride = (steps as u64 + 4) * TAG_WINDOW;

    let out = Machine::run(p, cfg, |rank| {
        let me = rank.rank();
        let (i, j) = (me % pr, me / pr);
        rank.alloc((4 * bs * PARTICLE_WORDS + 3 * bs) as u64)?;
        let mut targets: Vec<Particle> = particles[i * bs..(i + 1) * bs].to_vec();
        let fiber = Group::new((0..c).map(|l| l * pr + i).collect())?;

        for step in 0..n_steps {
            let base = Tag(step as u64 * step_tag_stride);
            // Refresh this layer's starting source block: block s0 is the
            // (updated) target block of rank (s0, j); my block i is the
            // start block for rank ((i − j·steps) mod pr, j).
            let s0 = (i + j * steps) % pr;
            let mut sources: Vec<Particle> = if s0 == i {
                targets.clone()
            } else {
                let needs_mine = j * pr + (i + pr - j * steps % pr) % pr;
                let owner = j * pr + s0;
                let incoming = rank.sendrecv(needs_mine, base, encode(&targets), owner, base)?;
                decode(&incoming)
            };

            let mut acc = vec![[0.0f64; 3]; bs];
            for t in 0..steps {
                accumulate_forces(&targets, &sources, &mut acc);
                rank.compute((bs as u64) * (bs as u64) * FLOPS_PER_INTERACTION);
                if t + 1 < steps {
                    let next = j * pr + (i + 1) % pr;
                    let prev = j * pr + (i + pr - 1) % pr;
                    let tag = base.offset(TAG_WINDOW + t as u64);
                    let incoming = rank.sendrecv(prev, tag, encode(&sources), next, tag)?;
                    sources = decode(&incoming);
                }
            }

            // Combine partial forces across the fiber; every layer gets
            // the total so all replicas integrate identically.
            let flat: Vec<f64> = acc.iter().flatten().copied().collect();
            let summed = if c > 1 {
                let tag = base.offset((steps as u64 + 1) * TAG_WINDOW);
                rank.allreduce_sum_group(tag, &fiber, flat)?
            } else {
                flat
            };
            let total_acc: Vec<[f64; 3]> =
                summed.chunks(3).map(|ch| [ch[0], ch[1], ch[2]]).collect();
            integrate_step(&mut targets, &total_acc, dt);
            // 6 flops per particle (3 kicks + 3 drifts).
            rank.compute(6 * bs as u64);
        }
        rank.free((4 * bs * PARTICLE_WORDS + 3 * bs) as u64)?;
        Ok(if j == 0 {
            let mut flat = Vec::with_capacity(bs * 7);
            for pt in &targets {
                flat.extend_from_slice(&pt.pos);
                flat.extend_from_slice(&pt.vel);
                flat.push(pt.mass);
            }
            flat
        } else {
            Vec::new()
        })
    })?;

    let mut final_particles = Vec::with_capacity(n);
    for i in 0..pr {
        for ch in out.results[i].chunks(7) {
            final_particles.push(Particle {
                pos: [ch[0], ch[1], ch[2]],
                vel: [ch[3], ch[4], ch[5]],
                mass: ch[6],
            });
        }
    }
    Ok((final_particles, out.profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_kernels::nbody::random_particles;

    fn serial_forces(particles: &[Particle]) -> Vec<[f64; 3]> {
        let mut acc = vec![[0.0; 3]; particles.len()];
        accumulate_forces(particles, particles, &mut acc);
        acc
    }

    fn assert_forces_match(a: &[[f64; 3]], b: &[[f64; 3]]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            for d in 0..3 {
                assert!(
                    (x[d] - y[d]).abs() < 1e-9 * (1.0 + y[d].abs()),
                    "{x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn ring_matches_serial() {
        let ps = random_particles(48, 1);
        let serial = serial_forces(&ps);
        for p in [1usize, 2, 4, 8, 16] {
            let (acc, _) = nbody_ring(&ps, p, SimConfig::counters_only()).unwrap();
            assert_forces_match(&acc, &serial);
        }
    }

    #[test]
    fn replicated_matches_serial() {
        let ps = random_particles(48, 2);
        let serial = serial_forces(&ps);
        for (pr, c) in [(4usize, 2usize), (4, 4), (8, 2), (8, 4), (12, 3)] {
            let (acc, _) = nbody_replicated(&ps, pr, c, SimConfig::counters_only()).unwrap();
            assert_forces_match(&acc, &serial);
        }
    }

    #[test]
    fn interaction_flops_are_exact() {
        let n = 32;
        let ps = random_particles(n, 3);
        let (_, profile) = nbody_ring(&ps, 4, SimConfig::counters_only()).unwrap();
        // Every rank computes bs·n interactions in total: bs² per step,
        // pr steps.
        let per_rank = (n as u64 / 4) * (n as u64) * FLOPS_PER_INTERACTION;
        assert_eq!(profile.max_flops(), per_rank);
        assert_eq!(profile.total_flops(), 4 * per_rank);
    }

    #[test]
    fn replication_cuts_words_per_rank() {
        // Fixed block size (same pr): layer-parallel replication divides
        // the ring traffic by c.
        let n = 64;
        let ps = random_particles(n, 4);
        let (_, c1) = nbody_replicated(&ps, 16, 1, SimConfig::counters_only()).unwrap();
        let (_, c4) = nbody_replicated(&ps, 16, 4, SimConfig::counters_only()).unwrap();
        let w1 = c1.max_words_sent() as f64;
        let w4 = c4.max_words_sent() as f64;
        assert!(
            w4 < 0.5 * w1,
            "replication should cut ring words: c=1 {w1}, c=4 {w4}"
        );
    }

    #[test]
    fn flops_strong_scale_with_c() {
        let n = 64;
        let ps = random_particles(n, 5);
        let (_, c1) = nbody_replicated(&ps, 16, 1, SimConfig::counters_only()).unwrap();
        let (_, c4) = nbody_replicated(&ps, 16, 4, SimConfig::counters_only()).unwrap();
        // 4x the ranks, same total interactions: per-rank flops drop 4x
        // (up to the small reduction adds).
        let ratio = c1.max_flops() as f64 / c4.max_flops() as f64;
        assert!((3.0..=4.2).contains(&ratio), "flop ratio {ratio}");
    }

    fn serial_simulate(particles: &[Particle], n_steps: usize, dt: f64) -> Vec<Particle> {
        let mut ps = particles.to_vec();
        for _ in 0..n_steps {
            let mut acc = vec![[0.0; 3]; ps.len()];
            accumulate_forces(&ps, &ps, &mut acc);
            integrate_step(&mut ps, &acc, dt);
        }
        ps
    }

    #[test]
    fn simulation_matches_serial_integrator() {
        let ps = random_particles(32, 11);
        let n_steps = 5;
        let dt = 1e-3;
        let serial = serial_simulate(&ps, n_steps, dt);
        for (pr, c) in [(4usize, 1usize), (8, 2), (8, 4)] {
            let (out, _) =
                nbody_simulate(&ps, pr, c, n_steps, dt, SimConfig::counters_only()).unwrap();
            for (a, b) in out.iter().zip(&serial) {
                for d in 0..3 {
                    assert!(
                        (a.pos[d] - b.pos[d]).abs() < 1e-9,
                        "(pr={pr}, c={c}) pos {:?} vs {:?}",
                        a.pos,
                        b.pos
                    );
                    assert!((a.vel[d] - b.vel[d]).abs() < 1e-9);
                }
                assert_eq!(a.mass, b.mass);
            }
        }
    }

    #[test]
    fn simulation_conserves_momentum() {
        let ps = random_particles(32, 12);
        let (out, _) = nbody_simulate(&ps, 8, 2, 10, 1e-3, SimConfig::counters_only()).unwrap();
        // Equal masses + Newton's third law: total momentum stays ~0.
        for d in 0..3 {
            let mom: f64 = out.iter().map(|p| p.mass * p.vel[d]).sum();
            assert!(mom.abs() < 1e-9, "axis {d}: momentum {mom}");
        }
    }

    #[test]
    fn simulation_replication_still_scales() {
        // Multi-step runs keep the strong-scaling property: same work,
        // c times the ranks, ~1/c the makespan.
        let ps = random_particles(128, 13);
        let cfg = SimConfig {
            gamma_t: 1e-9,
            beta_t: 1e-9,
            alpha_t: 1e-8,
            ..SimConfig::default()
        };
        let (_, c1) = nbody_simulate(&ps, 16, 1, 3, 1e-3, cfg.clone()).unwrap();
        let (_, c4) = nbody_simulate(&ps, 16, 4, 3, 1e-3, cfg).unwrap();
        let speedup = c1.makespan / c4.makespan;
        assert!(speedup > 2.3, "multi-step speedup {speedup}");
    }

    #[test]
    fn simulation_rejects_bad_configs() {
        let ps = random_particles(32, 14);
        assert!(nbody_simulate(&ps, 5, 1, 1, 1e-3, SimConfig::counters_only()).is_err());
        assert!(nbody_simulate(&ps, 8, 3, 1, 1e-3, SimConfig::counters_only()).is_err());
        assert!(nbody_simulate(&[], 1, 1, 1, 1e-3, SimConfig::counters_only()).is_err());
    }

    #[test]
    fn zero_steps_returns_input() {
        let ps = random_particles(16, 15);
        let (out, profile) =
            nbody_simulate(&ps, 4, 1, 0, 1e-3, SimConfig::counters_only()).unwrap();
        assert_eq!(out, ps);
        assert_eq!(profile.total_flops(), 0);
    }

    #[test]
    fn rejects_bad_configurations() {
        let ps = random_particles(48, 6);
        assert!(nbody_replicated(&ps, 5, 1, SimConfig::counters_only()).is_err()); // 5 ∤ 48
        assert!(nbody_replicated(&ps, 8, 3, SimConfig::counters_only()).is_err()); // 3 ∤ 8
        assert!(nbody_replicated(&ps, 0, 1, SimConfig::counters_only()).is_err());
        assert!(nbody_replicated(&[], 1, 1, SimConfig::counters_only()).is_err());
    }

    #[test]
    fn runtime_scales_down_with_c_at_fixed_block_size() {
        // The headline behaviour at the T level: same per-rank memory
        // (same pr ⇒ same block size), c times the processors, ~1/c the
        // runtime.
        let n = 128;
        let ps = random_particles(n, 7);
        let cfg = SimConfig {
            gamma_t: 1e-9,
            beta_t: 1e-9,
            alpha_t: 1e-8,
            ..SimConfig::default()
        };
        let (_, c1) = nbody_replicated(&ps, 16, 1, cfg.clone()).unwrap();
        let (_, c4) = nbody_replicated(&ps, 16, 4, cfg).unwrap();
        let speedup = c1.makespan / c4.makespan;
        assert!(
            speedup > 2.5,
            "expected ≈4x speedup from 4x replication, got {speedup}"
        );
    }
}
