//! Distributed Strassen multiplication over `7^k` ranks — the executable
//! counterpart of the paper's CAPS analysis (§IV, "Strassen's matrix
//! multiplication").
//!
//! ## What this implements (and how it relates to CAPS)
//!
//! This is the **BFS-replicated, unlimited-memory** variant: every rank
//! starts with full copies of `A` and `B` (`M = Θ(n²)` — the paper's
//! "FUM" regime taken to its endpoint), follows its own base-7 digit path
//! through `k` levels of Strassen's recursion *locally* (forming the
//! operand linear combinations for its digit at each level), computes one
//! of the `7^k` leaf products, and the products are then combined up the
//! recursion tree with 7-way gathers at subgroup leaders.
//!
//! Properties preserved from CAPS:
//! * the **flop distribution**: each rank executes exactly
//!   `Θ(n^(ω0))/p` of Strassen's arithmetic (leaf products of size
//!   `n/2^k`), so compute strong-scales perfectly in `p = 7^k`;
//! * the **leaf-level communication**: a leaf rank sends its
//!   `(n/2^k)² = n²/p^(2/ω0)` product — the memory-independent
//!   lower-bound volume per processor.
//!
//! Deviation from full CAPS (documented in `DESIGN.md`): the upward
//! combine funnels through subgroup leaders, so the *maximum* per-rank
//! traffic is `Θ(n²)` at the root leader rather than CAPS's
//! `Θ(n²/p^(2/ω0))`; full CAPS keeps every level's matrices distributed.
//! The bench harness therefore validates Strassen's *communication*
//! claims against the `psse-core` cost model and uses this executable
//! version to validate numerics and flop scaling.

use psse_kernels::gemm;
use psse_kernels::matrix::Matrix;
use psse_kernels::strassen::{strassen_combine, strassen_operands};
use psse_sim::prelude::*;

/// Multiply `a · b` on `p = 7^k` ranks with `k` BFS Strassen levels.
///
/// Requirements: inputs square `n × n` with `2^k | n`. Returns the
/// product (assembled at rank 0) and the execution profile.
pub fn strassen_distributed(
    a: &Matrix,
    b: &Matrix,
    p: usize,
    cfg: SimConfig,
) -> Result<(Matrix, Profile), SimError> {
    let k = levels_for(p).ok_or_else(|| {
        SimError::Algorithm(format!("distributed Strassen needs p = 7^k, got p = {p}"))
    })?;
    let n = a.rows();
    if a.cols() != n || b.rows() != n || b.cols() != n {
        return Err(SimError::Algorithm(format!(
            "strassen: need square n×n inputs, got A {}x{}, B {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    if !n.is_multiple_of(1 << k) {
        return Err(SimError::Algorithm(format!(
            "strassen: 2^k = {} must divide n = {n} for k = {k} BFS levels",
            1 << k
        )));
    }

    let out = Machine::run(p, cfg, |rank| {
        let me = rank.rank();
        // Full replicated inputs (unlimited-memory regime).
        rank.alloc(2 * (n * n) as u64)?;
        let mut la = a.clone();
        let mut lb = b.clone();

        // Descend: at level j (0-based from the top), my digit selects
        // which of the 7 operand pairs this subtree computes.
        let mut pow = p / 7;
        for _level in 0..k {
            let digit = (me / pow) % 7;
            let ops = strassen_operands(&la, &lb);
            let h = la.rows() / 2;
            // Each operand pair costs at most 2 block additions per side.
            rank.compute(4 * (h * h) as u64);
            rank.alloc(2 * (h * h) as u64)?;
            let (na, nb) = ops.into_iter().nth(digit).expect("digit < 7");
            rank.free(2 * (la.rows() * la.rows()) as u64)?;
            la = na;
            lb = nb;
            pow /= 7;
        }

        // Leaf product.
        let leaf = la.rows();
        rank.compute(gemm::gemm_flops(leaf, leaf, leaf));
        rank.alloc((leaf * leaf) as u64)?;
        let mut c = gemm::matmul(&la, &lb);

        // Combine upward: at level j (deepest first), ranks whose digits
        // below j are zero participate; the 7 subgroup leaders gather at
        // the group leader (digit_j = 0).
        let mut stride = 1usize; // 7^(levels below current)
        for level in (0..k).rev() {
            if me % stride != 0 {
                break; // not a subgroup leader at this level
            }
            let digit = (me / stride) % 7;
            let leader = me - digit * stride;
            let tag = Tag(1000 + level as u64);
            if digit != 0 {
                rank.send(leader, tag, c.into_vec())?;
                c = Matrix::zeros(0, 0);
                break;
            }
            // Leader: gather the 7 products and combine.
            let h = c.rows();
            let mut ms: Vec<Matrix> = Vec::with_capacity(7);
            ms.push(c);
            rank.alloc(6 * (h * h) as u64 + 4 * (h * h) as u64)?;
            for d in 1..7 {
                let v = rank.recv(leader + d * stride, tag)?;
                ms.push(Matrix::from_vec(h, h, v));
            }
            let ms: [Matrix; 7] = ms.try_into().expect("exactly 7 products");
            // 8 block additions of h² elements each.
            rank.compute(8 * (h * h) as u64);
            c = strassen_combine(&ms);
            stride *= 7;
        }
        Ok(if me == 0 { c.into_vec() } else { Vec::new() })
    })?;

    let c_mat = Matrix::from_vec(n, n, out.results[0].clone());
    Ok((c_mat, out.profile))
}

/// `k` such that `7^k = p`, if any.
fn levels_for(p: usize) -> Option<usize> {
    let mut k = 0;
    let mut v = 1usize;
    while v < p {
        v = v.checked_mul(7)?;
        k += 1;
    }
    (v == p).then_some(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_kernels::gemm::matmul;
    use psse_kernels::strassen::strassen_flops;

    #[test]
    fn levels_detection() {
        assert_eq!(levels_for(1), Some(0));
        assert_eq!(levels_for(7), Some(1));
        assert_eq!(levels_for(49), Some(2));
        assert_eq!(levels_for(343), Some(3));
        assert_eq!(levels_for(8), None);
        assert_eq!(levels_for(14), None);
    }

    #[test]
    fn matches_sequential_product() {
        for (n, p) in [(8usize, 1usize), (8, 7), (16, 7), (16, 49)] {
            let a = Matrix::random(n, n, 1);
            let b = Matrix::random(n, n, 2);
            let (c, _) = strassen_distributed(&a, &b, p, SimConfig::counters_only()).unwrap();
            assert!(c.max_abs_diff(&matmul(&a, &b)) < 1e-9, "n = {n}, p = {p}");
        }
    }

    #[test]
    fn total_flops_match_strassen_not_classical() {
        // With k BFS levels and classical leaves, total multiply flops
        // are strassen_flops(n, n/2^k) — strictly fewer than classical
        // 2n³ once k ≥ 1 and n is large enough.
        let n = 32u64;
        let p = 49; // k = 2
        let a = Matrix::random(n as usize, n as usize, 3);
        let b = Matrix::random(n as usize, n as usize, 4);
        let (_, profile) = strassen_distributed(&a, &b, p, SimConfig::counters_only()).unwrap();
        let leaf = n / 4;
        let leaf_total = 49 * 2 * leaf * leaf * leaf;
        let total = profile.total_flops();
        assert!(total >= leaf_total);
        // Linear-combination adds are bounded: descent ≤ 4·(n/2)² per
        // rank per level; combine ≤ 8·h² per leader per level.
        assert!(
            total < leaf_total + 49 * 8 * (n * n),
            "unexpectedly many flops: {total}"
        );
        // Compare against the Strassen flop count with matching cutoff.
        let expected_mults = strassen_flops(n, leaf);
        assert!(leaf_total <= expected_mults);
    }

    #[test]
    fn per_rank_flops_strong_scale_steeply() {
        // p → 7p turns each rank's leaf product into 1/8 the multiply
        // flops (plus O(n²) local adds): the critical-path flop count
        // must fall by well over the 4x a classical algorithm would give
        // for 7x the processors... no wait — classical with 7x
        // processors gives exactly 7x; Strassen's leaf shrinks 8x. We
        // assert a ≥3.5x drop, which only the 8x leaf scaling explains
        // at this size (the O(n²) adds damp it below 8x).
        let n = 128;
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        let (_, p7) = strassen_distributed(&a, &b, 7, SimConfig::counters_only()).unwrap();
        let (_, p49) = strassen_distributed(&a, &b, 49, SimConfig::counters_only()).unwrap();
        let ratio = p7.max_flops() as f64 / p49.max_flops() as f64;
        assert!(ratio > 3.5, "per-rank flop ratio {ratio}");
        // Leaf multiply totals shrink by 7/8 per level (Strassen's
        // saving); the measured totals sit above the pure-leaf counts
        // because the replicated descent repeats the operand additions
        // on every rank of a subtree (see module docs).
        let leaf7 = 7 * 2 * (n as u64 / 2).pow(3);
        let leaf49 = 49 * 2 * (n as u64 / 4).pow(3);
        assert!(leaf49 < leaf7);
        assert!(p7.total_flops() >= leaf7);
        assert!(p49.total_flops() >= leaf49);
    }

    #[test]
    fn leaf_send_volume_matches_fum_bound() {
        // A non-leader leaf rank sends exactly its (n/2^k)² product:
        // n²/p^(2/ω0) words — the memory-independent bound.
        let n = 16;
        let p = 49;
        let a = Matrix::random(n, n, 7);
        let b = Matrix::random(n, n, 8);
        let (_, profile) = strassen_distributed(&a, &b, p, SimConfig::counters_only()).unwrap();
        let leaf_words = (n / 4) * (n / 4); // k = 2
                                            // Rank 1 (digit path 0,1) is a deepest-level non-leader.
        assert_eq!(profile.per_rank[1].words_sent as usize, leaf_words);
        assert_eq!(profile.per_rank[1].msgs_sent, 1);
    }

    #[test]
    fn rejects_bad_configurations() {
        let a = Matrix::random(16, 16, 1);
        let b = Matrix::random(16, 16, 2);
        assert!(strassen_distributed(&a, &b, 8, SimConfig::counters_only()).is_err());
        // n = 10 not divisible by 2² (k = 2 levels for p = 49).
        let a10 = Matrix::random(10, 10, 1);
        let b10 = Matrix::random(10, 10, 2);
        let r = strassen_distributed(&a10, &b10, 49, SimConfig::counters_only());
        assert!(r.is_err());
        // Rectangular inputs.
        let rect = Matrix::random(8, 16, 1);
        let b16 = Matrix::random(16, 16, 2);
        assert!(strassen_distributed(&rect, &b16, 7, SimConfig::counters_only()).is_err());
    }
}
