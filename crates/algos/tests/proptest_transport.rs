//! Transport-equivalence property tests.
//!
//! The zero-copy overhaul added two send variants (`send_slice`,
//! `send_shared`) next to the owning `send`, and rebuilt the wire format
//! (one shared envelope per transfer, arithmetic chunk pricing). These
//! tests pin the contract the rest of the workspace builds on:
//!
//! * the three variants are observationally identical — same virtual
//!   times, same counters, same recorded traces — on random schedules,
//!   clean or faulted (drop + corrupt + acked retries);
//! * every distributed algorithm in the crate produces a bit-identical
//!   profile and trace when re-executed, i.e. the transport introduces
//!   no scheduling nondeterminism end to end.

use proptest::prelude::*;
use psse_algos::prelude::*;
use psse_kernels::fft::Complex64;
use psse_kernels::matrix::Matrix;
use psse_kernels::nbody::Particle;
use psse_sim::prelude::*;
use std::sync::Arc;

/// Which send entry point a schedule run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendVia {
    Owned,
    Slice,
    Shared,
}

/// A randomly generated transfer: src → dst with a unique tag and a
/// payload derived from (src, tag).
#[derive(Debug, Clone, Copy)]
struct Transfer {
    src: usize,
    dst: usize,
    tag: u64,
    len: usize,
}

fn payload_for(t: &Transfer) -> Vec<f64> {
    (0..t.len)
        .map(|i| (t.src * 1_000_003 + t.tag as usize * 97 + i) as f64)
        .collect()
}

/// Strategy: a world size and a set of transfers with unique tags.
fn schedules() -> impl Strategy<Value = (usize, Vec<Transfer>)> {
    (2usize..6).prop_flat_map(|p| {
        let transfer =
            (0usize..p, 0usize..p, 0usize..200).prop_map(move |(src, dst, len)| Transfer {
                src,
                dst: if src == dst { (dst + 1) % p } else { dst },
                tag: 0, // assigned below
                len,
            });
        (Just(p), prop::collection::vec(transfer, 1..24)).prop_map(|(p, mut ts)| {
            for (i, t) in ts.iter_mut().enumerate() {
                t.tag = i as u64; // unique tags: no matching ambiguity
            }
            (p, ts)
        })
    })
}

fn run_schedule(
    p: usize,
    transfers: &[Transfer],
    via: SendVia,
    cfg: SimConfig,
) -> SimOutcome<usize> {
    Machine::run(p, cfg, move |rank| {
        let me = rank.rank();
        for t in transfers.iter().filter(|t| t.src == me) {
            let payload = payload_for(t);
            match via {
                SendVia::Owned => rank.send(t.dst, Tag(t.tag), payload)?,
                SendVia::Slice => rank.send_slice(t.dst, Tag(t.tag), &payload)?,
                SendVia::Shared => rank.send_shared(t.dst, Tag(t.tag), Arc::new(payload))?,
            }
        }
        let mut received = 0usize;
        for t in transfers.iter().filter(|t| t.dst == me) {
            rank.recv(t.src, Tag(t.tag))?;
            received += 1;
        }
        Ok(received)
    })
    .expect("schedule must complete")
}

/// Default prices, small chunking (so multi-chunk pricing is hit) and
/// trace recording on: the strictest observable surface.
fn traced_cfg() -> SimConfig {
    SimConfig {
        record_trace: true,
        max_message_words: 29, // awkward: most payloads span several chunks
        ..SimConfig::default()
    }
}

fn drop_corrupt_plan(seed: u64, drop_rate: f64, corrupt_rate: f64) -> FaultPlan {
    FaultPlan {
        spec: FaultSpec {
            seed,
            drop_rate,
            corrupt_rate,
            ..FaultSpec::default()
        },
        recovery: RecoveryPolicy {
            max_retries: 24,
            retry_backoff: 1e-9,
            checkpoint: None,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `send`, `send_slice` and `send_shared` are interchangeable:
    /// identical profiles (virtual times, every counter) and identical
    /// recorded traces on random clean schedules.
    #[test]
    fn send_variants_are_observationally_identical((p, transfers) in schedules()) {
        let owned = run_schedule(p, &transfers, SendVia::Owned, traced_cfg());
        let slice = run_schedule(p, &transfers, SendVia::Slice, traced_cfg());
        let shared = run_schedule(p, &transfers, SendVia::Shared, traced_cfg());
        prop_assert_eq!(&owned.profile, &slice.profile);
        prop_assert_eq!(&owned.profile, &shared.profile);
        prop_assert_eq!(&owned.results, &slice.results);
        prop_assert_eq!(&owned.results, &shared.results);
    }

    /// The same equivalence holds under drop + corrupt faults with
    /// acked retries: fault decisions key on the transfer, not on how
    /// its payload entered the transport.
    #[test]
    fn send_variants_match_under_faults(
        (p, transfers) in schedules(),
        seed in 0u64..1024,
        drop_pct in 0u32..20,
        corrupt_pct in 0u32..20,
    ) {
        let plan = drop_corrupt_plan(seed, drop_pct as f64 / 100.0, corrupt_pct as f64 / 100.0);
        let cfg = || SimConfig { faults: Some(plan.clone()), ..traced_cfg() };
        let owned = run_schedule(p, &transfers, SendVia::Owned, cfg());
        let slice = run_schedule(p, &transfers, SendVia::Slice, cfg());
        let shared = run_schedule(p, &transfers, SendVia::Shared, cfg());
        prop_assert_eq!(&owned.profile, &slice.profile);
        prop_assert_eq!(&owned.profile, &shared.profile);
    }

    /// A faulted end-to-end algorithm run (2.5D ABFT matmul under
    /// drop + corrupt + retry) re-executes bit-identically: profile,
    /// trace and numerical result.
    #[test]
    fn faulted_abft_matmul_reruns_bit_identical(
        data_seed in 0u64..256,
        fault_seed in 0u64..256,
    ) {
        let n = 8;
        let a = Matrix::random(n, n, data_seed);
        let b = Matrix::random(n, n, data_seed + 1);
        let plan = drop_corrupt_plan(fault_seed, 0.08, 0.04);
        let run = || {
            let cfg = SimConfig { faults: Some(plan.clone()), ..traced_cfg() };
            matmul_25d_abft(&a, &b, 8, 2, cfg).expect("retries absorb the injected faults")
        };
        let (c1, p1) = run();
        let (c2, p2) = run();
        prop_assert_eq!(c1.as_slice(), c2.as_slice());
        prop_assert_eq!(p1, p2);
    }

    /// Faulted sample sort recovers to the *clean* run's bytes: the
    /// retry machinery must not perturb which keys land where.
    #[test]
    fn faulted_samplesort_recovers_bit_identical(
        data_seed in 0u64..256,
        fault_seed in 0u64..256,
    ) {
        let keys = random_keys(64, data_seed);
        let plan = drop_corrupt_plan(fault_seed, 0.08, 0.04);
        let faulted_cfg = SimConfig { faults: Some(plan), ..traced_cfg() };
        let (s1, p1) = sample_sort(&keys, 4, faulted_cfg.clone())
            .expect("retries absorb the injected faults");
        let (s2, p2) = sample_sort(&keys, 4, faulted_cfg).unwrap();
        let (clean, _) = sample_sort(&keys, 4, traced_cfg()).unwrap();
        prop_assert_eq!(&p1, &p2);
        for (a, b) in s1.iter().zip(&s2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in s1.iter().zip(&clean) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "faults changed the sorted output");
        }
    }

    /// Same contract for the halo stencil: faults cost retries, never
    /// numerics.
    #[test]
    fn faulted_stencil_recovers_bit_identical(
        data_seed in 0u64..256,
        fault_seed in 0u64..256,
        iters in 1usize..4,
    ) {
        let n = 8;
        let grid = random_grid(n, data_seed);
        let plan = drop_corrupt_plan(fault_seed, 0.08, 0.04);
        let faulted_cfg = SimConfig { faults: Some(plan), ..traced_cfg() };
        let (g1, p1) = halo_stencil(&grid, n, 1, iters, Decomp::OneD, 4, faulted_cfg.clone())
            .expect("retries absorb the injected faults");
        let (g2, p2) = halo_stencil(&grid, n, 1, iters, Decomp::OneD, 4, faulted_cfg).unwrap();
        let serial = serial_stencil(&grid, n, 1, iters);
        prop_assert_eq!(&p1, &p2);
        for (a, b) in g1.iter().zip(&g2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in g1.iter().zip(&serial) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "faults changed the stencil output");
        }
    }
}

/// Run every distributed algorithm in the crate twice with tracing on
/// and require bit-identical profiles (which include the full event
/// trace) — the end-to-end determinism contract of the transport.
#[test]
fn all_algorithms_rerun_bit_identical() {
    let n = 8;
    let a = Matrix::random(n, n, 100);
    let b = Matrix::random(n, n, 101);
    let spd = Matrix::random_diagonally_dominant(n, 102);
    let tall = Matrix::random(16, 2, 103);
    let particles: Vec<Particle> = (0..8)
        .map(|i| Particle::at([i as f64, 0.5 * i as f64, 0.25], 1.0 + i as f64))
        .collect();
    let signal: Vec<Complex64> = (0..16)
        .map(|i| Complex64::new((i as f64).sin(), (i as f64).cos()))
        .collect();

    type AlgoRun<'x> = Box<dyn Fn() -> Profile + 'x>;
    let runs: Vec<(&str, AlgoRun)> = vec![
        (
            "cannon",
            Box::new(|| cannon_matmul(&a, &b, 4, traced_cfg()).unwrap().1),
        ),
        (
            "summa",
            Box::new(|| summa_matmul(&a, &b, 4, 2, traced_cfg()).unwrap().1),
        ),
        (
            "mm25d",
            Box::new(|| matmul_25d(&a, &b, 8, 2, traced_cfg()).unwrap().1),
        ),
        (
            "strassen",
            Box::new(|| strassen_distributed(&a, &b, 7, traced_cfg()).unwrap().1),
        ),
        ("lu2d", Box::new(|| lu_2d(&spd, 4, traced_cfg()).unwrap().1)),
        (
            "nbody",
            Box::new(|| nbody_replicated(&particles, 4, 2, traced_cfg()).unwrap().1),
        ),
        (
            "fft",
            Box::new(|| {
                distributed_fft(&signal, 2, AllToAllKind::Hypercube, traced_cfg())
                    .unwrap()
                    .1
            }),
        ),
        ("tsqr", Box::new(|| tsqr(&tall, 4, traced_cfg()).unwrap().1)),
        (
            "samplesort",
            Box::new(|| {
                sample_sort(&random_keys(64, 104), 4, traced_cfg())
                    .unwrap()
                    .1
            }),
        ),
        (
            "stencil",
            Box::new(|| {
                halo_stencil(&random_grid(8, 105), 8, 1, 2, Decomp::TwoD, 4, traced_cfg())
                    .unwrap()
                    .1
            }),
        ),
    ];
    for (name, run) in &runs {
        let p1 = run();
        let p2 = run();
        assert!(
            !p1.events.is_empty() && p1.events.iter().any(|e| !e.is_empty()),
            "{name}: trace must actually be recorded"
        );
        assert_eq!(p1, p2, "{name}: profile/trace must be bit-identical");
    }
}
