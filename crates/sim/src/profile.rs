//! Per-rank counters and whole-run profiles.

use psse_metrics::{saturating_nanos, Registry};

use crate::error::{SimError, SimResult};
use crate::record::TimedEvent;

/// Counters accumulated by one rank over a run. All units are words,
/// messages, flops and (virtual) seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankStats {
    /// Floating-point operations charged via `Rank::compute`.
    pub flops: u64,
    /// Words sent across links (self-sends excluded; includes intra-node
    /// traffic on hierarchical machines).
    pub words_sent: u64,
    /// Messages sent across links (after splitting at `m` words).
    pub msgs_sent: u64,
    /// Of `words_sent`, the words that stayed within the sender's node
    /// (zero on flat machines).
    pub words_sent_intra: u64,
    /// Of `msgs_sent`, the messages that stayed within the sender's node.
    pub msgs_sent_intra: u64,
    /// Words received across links.
    pub words_recvd: u64,
    /// Messages received across links.
    pub msgs_recvd: u64,
    /// Current tracked allocation, words.
    pub mem_current: u64,
    /// High-water mark of tracked allocation, words.
    pub mem_peak: u64,
    /// Failed transfer attempts retransmitted plus link-level duplicates
    /// (fault injection only; see `SimConfig::faults`).
    pub retries: u64,
    /// Words that crossed a link without being delivered (failed
    /// attempts, duplicates). Kept out of `words_sent` so the
    /// sent/received balance still holds; pricing adds them to `W`.
    pub retrans_words: u64,
    /// Messages wasted on failed attempts and duplicates.
    pub retrans_msgs: u64,
    /// Words written to stable storage by coordinated checkpoints.
    pub checkpoint_words: u64,
    /// Messages (chunks) those checkpoint writes were split into.
    pub checkpoint_msgs: u64,
    /// Crashes absorbed by checkpoint/restart on this rank.
    pub crashes_recovered: u64,
    /// The rank's virtual clock at the end of its program.
    pub finish_time: f64,
}

/// The complete accounting of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Per-rank counters, indexed by rank id.
    pub per_rank: Vec<RankStats>,
    /// Virtual makespan: max over ranks of `finish_time`.
    pub makespan: f64,
    /// Per-rank event logs, indexed by rank id. Empty unless the run
    /// was executed with [`crate::machine::SimConfig::record_trace`]
    /// set (see [`crate::record`]).
    pub events: Vec<Vec<TimedEvent>>,
}

impl Profile {
    pub(crate) fn new(per_rank: Vec<RankStats>) -> Self {
        Profile::with_events(per_rank, Vec::new())
    }

    /// Build a profile from per-rank counters plus per-rank event logs
    /// (makespan is the max of the `finish_time`s). Used by the
    /// thread-per-rank runner and by external executors (`psse-event`)
    /// that account the same counters outside this crate.
    pub fn with_events(per_rank: Vec<RankStats>, events: Vec<Vec<TimedEvent>>) -> Self {
        let makespan = per_rank
            .iter()
            .map(|r| r.finish_time)
            .fold(0.0_f64, f64::max);
        Profile {
            per_rank,
            makespan,
            events,
        }
    }

    /// Build a profile directly from per-rank counters (makespan is the
    /// max of the `finish_time`s). Used by replay engines that
    /// reconstruct counters outside the simulator.
    pub fn from_stats(per_rank: Vec<RankStats>) -> Self {
        Profile::new(per_rank)
    }

    /// World size.
    pub fn p(&self) -> usize {
        self.per_rank.len()
    }

    /// Sum over ranks of flops.
    pub fn total_flops(&self) -> u64 {
        self.per_rank.iter().map(|r| r.flops).sum()
    }

    /// Max over ranks of flops (critical-path `F`).
    pub fn max_flops(&self) -> u64 {
        self.per_rank.iter().map(|r| r.flops).max().unwrap_or(0)
    }

    /// Sum over ranks of words sent (total traffic).
    pub fn total_words_sent(&self) -> u64 {
        self.per_rank.iter().map(|r| r.words_sent).sum()
    }

    /// Max over ranks of words sent (critical-path `W`).
    pub fn max_words_sent(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.words_sent)
            .max()
            .unwrap_or(0)
    }

    /// Sum over ranks of messages sent.
    pub fn total_msgs_sent(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).sum()
    }

    /// Max over ranks of messages sent (critical-path `S`).
    pub fn max_msgs_sent(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).max().unwrap_or(0)
    }

    /// Max over ranks of the memory high-water mark (the model's `M`).
    pub fn max_mem_peak(&self) -> u64 {
        self.per_rank.iter().map(|r| r.mem_peak).max().unwrap_or(0)
    }

    /// Sum over ranks of intra-node words sent (hierarchical machines).
    pub fn total_words_intra(&self) -> u64 {
        self.per_rank.iter().map(|r| r.words_sent_intra).sum()
    }

    /// Sum over ranks of inter-node words sent.
    pub fn total_words_inter(&self) -> u64 {
        self.total_words_sent() - self.total_words_intra()
    }

    /// Sum over ranks of intra-node messages sent.
    pub fn total_msgs_intra(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent_intra).sum()
    }

    /// Sum over ranks of resilience-overhead words: retransmissions,
    /// duplicates and checkpoint writes. Zero on fault-free runs.
    pub fn resilience_words(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.retrans_words + r.checkpoint_words)
            .sum()
    }

    /// Sum over ranks of resilience-overhead messages.
    pub fn resilience_msgs(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.retrans_msgs + r.checkpoint_msgs)
            .sum()
    }

    /// Max over ranks of words sent *including* resilience traffic
    /// (retransmissions, duplicates, checkpoint writes) — the `W` the
    /// energy model should price on a faulted run.
    pub fn max_words_with_resilience(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.words_sent + r.retrans_words + r.checkpoint_words)
            .max()
            .unwrap_or(0)
    }

    /// Max over ranks of messages sent *including* resilience traffic.
    pub fn max_msgs_with_resilience(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.msgs_sent + r.retrans_msgs + r.checkpoint_msgs)
            .max()
            .unwrap_or(0)
    }

    /// Sum over ranks of failed/duplicate transfer attempts.
    pub fn total_retries(&self) -> u64 {
        self.per_rank.iter().map(|r| r.retries).sum()
    }

    /// Sum over ranks of crashes absorbed by checkpoint/restart.
    pub fn total_crashes_recovered(&self) -> u64 {
        self.per_rank.iter().map(|r| r.crashes_recovered).sum()
    }

    /// Combine with the profile of a run executed *after* this one on
    /// the same machine: counters add; the makespan is the sum of the
    /// two makespans (phase 2 starts when phase 1 completes globally).
    /// Event logs are dropped — composing them would require
    /// time-shifting phase 2; record the composite run instead.
    pub fn then(&self, later: &Profile) -> Profile {
        assert_eq!(
            self.p(),
            later.p(),
            "profiles must have the same world size"
        );
        let per_rank = self
            .per_rank
            .iter()
            .zip(&later.per_rank)
            .map(|(a, b)| RankStats {
                flops: a.flops + b.flops,
                words_sent: a.words_sent + b.words_sent,
                msgs_sent: a.msgs_sent + b.msgs_sent,
                words_sent_intra: a.words_sent_intra + b.words_sent_intra,
                msgs_sent_intra: a.msgs_sent_intra + b.msgs_sent_intra,
                words_recvd: a.words_recvd + b.words_recvd,
                msgs_recvd: a.msgs_recvd + b.msgs_recvd,
                mem_current: b.mem_current,
                mem_peak: a.mem_peak.max(b.mem_peak),
                retries: a.retries + b.retries,
                retrans_words: a.retrans_words + b.retrans_words,
                retrans_msgs: a.retrans_msgs + b.retrans_msgs,
                checkpoint_words: a.checkpoint_words + b.checkpoint_words,
                checkpoint_msgs: a.checkpoint_msgs + b.checkpoint_msgs,
                crashes_recovered: a.crashes_recovered + b.crashes_recovered,
                finish_time: a.finish_time + b.finish_time,
            })
            .collect();
        Profile {
            per_rank,
            makespan: self.makespan + later.makespan,
            events: Vec::new(),
        }
    }

    /// Export this run's accounting into a metrics [`Registry`] under
    /// `prefix`:
    ///
    /// * counters `{prefix}.total.*` — flops, words, messages,
    ///   retries, crashes recovered, and resilience traffic, summed
    ///   over ranks (and accumulating across runs exported into the
    ///   same registry);
    /// * gauges `{prefix}.p` and `{prefix}.mem_peak_words` — world
    ///   size and the memory high-water mark of the *last* exported
    ///   run;
    /// * histograms `{prefix}.rank.*` — the per-rank distributions of
    ///   flops, words sent, messages sent, memory peak, and finish
    ///   time (virtual nanoseconds), one sample per rank.
    ///
    /// Errors only if `prefix` collides with same-named metrics of a
    /// different kind already in the registry.
    pub fn export_metrics(&self, reg: &Registry, prefix: &str) -> Result<(), String> {
        for (name, v) in [
            ("total.flops", self.total_flops()),
            ("total.words", self.total_words_sent()),
            ("total.msgs", self.total_msgs_sent()),
            ("total.retries", self.total_retries()),
            ("total.crashes_recovered", self.total_crashes_recovered()),
            ("resilience.words", self.resilience_words()),
            ("resilience.msgs", self.resilience_msgs()),
        ] {
            reg.counter(&format!("{prefix}.{name}"))?.add(v);
        }
        reg.gauge(&format!("{prefix}.p"))?.set(self.p() as i64);
        reg.gauge(&format!("{prefix}.mem_peak_words"))?
            .set(self.max_mem_peak() as i64);
        let h_flops = reg.histogram(&format!("{prefix}.rank.flops"))?;
        let h_words = reg.histogram(&format!("{prefix}.rank.words_sent"))?;
        let h_msgs = reg.histogram(&format!("{prefix}.rank.msgs_sent"))?;
        let h_mem = reg.histogram(&format!("{prefix}.rank.mem_peak"))?;
        let h_finish = reg.histogram(&format!("{prefix}.rank.finish_ns"))?;
        for r in &self.per_rank {
            h_flops.record(r.flops);
            h_words.record(r.words_sent);
            h_msgs.record(r.msgs_sent);
            h_mem.record(r.mem_peak);
            h_finish.record(saturating_nanos(r.finish_time));
        }
        Ok(())
    }

    /// Consistency check: every word sent across a link is received.
    pub fn words_balance(&self) -> (u64, u64) {
        (
            self.total_words_sent(),
            self.per_rank.iter().map(|r| r.words_recvd).sum(),
        )
    }

    /// Enforce [`Profile::words_balance`]: error with
    /// [`SimError::UnbalancedProfile`] when a program left transfers
    /// unreceived (or counters were corrupted). Called automatically by
    /// `Machine::run` in debug builds.
    pub fn assert_balanced(&self) -> SimResult<()> {
        let (sent, recvd) = self.words_balance();
        if sent != recvd {
            return Err(SimError::UnbalancedProfile { sent, recvd });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(flops: u64, words: u64, t: f64) -> RankStats {
        RankStats {
            flops,
            words_sent: words,
            msgs_sent: words / 10,
            words_recvd: words,
            msgs_recvd: words / 10,
            mem_current: 0,
            mem_peak: 2 * words,
            finish_time: t,
            ..RankStats::default()
        }
    }

    #[test]
    fn intra_accessors_default_to_zero() {
        let p = Profile::new(vec![stats(1, 100, 1.0), stats(2, 50, 2.0)]);
        assert_eq!(p.total_words_intra(), 0);
        assert_eq!(p.total_msgs_intra(), 0);
        assert_eq!(p.total_words_inter(), 150);
    }

    #[test]
    fn aggregates() {
        let p = Profile::new(vec![
            stats(100, 10, 1.0),
            stats(300, 30, 2.5),
            stats(200, 0, 0.5),
        ]);
        assert_eq!(p.p(), 3);
        assert_eq!(p.total_flops(), 600);
        assert_eq!(p.max_flops(), 300);
        assert_eq!(p.total_words_sent(), 40);
        assert_eq!(p.max_words_sent(), 30);
        assert_eq!(p.total_msgs_sent(), 4);
        assert_eq!(p.max_msgs_sent(), 3);
        assert_eq!(p.max_mem_peak(), 60);
        assert_eq!(p.makespan, 2.5);
        assert_eq!(p.words_balance(), (40, 40));
    }

    #[test]
    fn then_composes_counters_and_makespan() {
        let a = Profile::new(vec![stats(100, 10, 1.0), stats(50, 20, 2.0)]);
        let b = Profile::new(vec![stats(10, 1, 0.5), stats(20, 2, 0.25)]);
        let c = a.then(&b);
        assert_eq!(c.total_flops(), 180);
        assert_eq!(c.per_rank[0].flops, 110);
        assert_eq!(c.per_rank[1].words_sent, 22);
        assert_eq!(c.makespan, 2.5);
        assert_eq!(c.per_rank[0].mem_peak, 20); // max of phases
    }

    #[test]
    #[should_panic(expected = "same world size")]
    fn then_requires_matching_worlds() {
        let a = Profile::new(vec![stats(1, 1, 1.0)]);
        let b = Profile::new(vec![stats(1, 1, 1.0), stats(1, 1, 1.0)]);
        let _ = a.then(&b);
    }

    #[test]
    fn export_metrics_names_every_series() {
        let reg = Registry::new();
        let p = Profile::new(vec![stats(100, 10, 1.0), stats(300, 30, 2.5)]);
        p.export_metrics(&reg, "sim").unwrap();
        let snap = reg.snapshot();
        use psse_metrics::SnapshotValue;
        assert_eq!(
            snap.get("sim.total.flops"),
            Some(&SnapshotValue::Counter(400))
        );
        assert_eq!(snap.get("sim.p"), Some(&SnapshotValue::Gauge(2)));
        match snap.get("sim.rank.finish_ns") {
            Some(SnapshotValue::Histogram(h)) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.max(), Some(2_500_000_000));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        // A second export accumulates counters and re-records ranks.
        p.export_metrics(&reg, "sim").unwrap();
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("sim.total.flops"),
            Some(&SnapshotValue::Counter(800))
        );
        // A kind collision is an error, not silent aliasing.
        reg.counter("clash.rank.flops").unwrap();
        let q = Profile::new(vec![stats(1, 1, 1.0)]);
        assert!(q.export_metrics(&reg, "clash").is_err());
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = Profile::new(vec![]);
        assert_eq!(p.total_flops(), 0);
        assert_eq!(p.max_flops(), 0);
        assert_eq!(p.makespan, 0.0);
    }
}
