//! # psse-sim — a deterministic virtual-time distributed machine
//!
//! This crate is the executable substitute for the MPI clusters the paper
//! targets: a simulated distributed-memory machine whose `p` ranks run as
//! OS threads, exchange real data through tagged point-to-point messages
//! and collectives, and account their **virtual time** with exactly the
//! paper's cost model (Eq. 1):
//!
//! * `compute(f)` advances a rank's clock by `γt·f`;
//! * sending `k` words advances the sender by `⌈k/m⌉·αt + k·βt` (long
//!   transfers are split into messages of at most `m` words, matching the
//!   paper's `S = W/m` accounting);
//! * a receive completes no earlier than the message's departure time
//!   (`t_recv = max(t_local, t_depart)` — the no-overlap postal model).
//!
//! The makespan (max over ranks of final clocks) is therefore determined
//! **only by the message DAG**, never by OS scheduling: two runs of the
//! same program produce bit-identical profiles (tested). Per-rank
//! counters — flops, words/messages sent and received, memory high-water
//! mark — are exactly the `F`, `W`, `S`, `M` that the energy model
//! (Eq. 2) prices; `psse-algos` bridges a [`profile::Profile`] into
//! `psse-core`'s `ExecutionSummary`.
//!
//! ## Zero-copy transport
//!
//! Payloads cross the wire as shared [`message::SharedPayload`] buffers:
//! one envelope per transfer, chunk costs priced arithmetically, fan-out
//! by reference count. Besides [`rank::Rank::send`] there is a borrowing
//! [`rank::Rank::send_slice`] and a sharing [`rank::Rank::send_shared`] /
//! [`rank::Rank::recv_shared`] pair; all variants are bit-identical in
//! virtual time, counters, and traces (see `DESIGN.md`, "Zero-copy
//! transport"). Rank threads are pooled and reused across `Machine::run`
//! calls, and blocked receives wake by condvar, not by polling.
//!
//! ## Trace recording (opt-in)
//!
//! Setting [`machine::SimConfig::record_trace`] makes every rank record
//! a typed [`record::TimedEvent`] log (compute, send, recv, alloc/free,
//! collective markers) returned via [`profile::Profile::events`]. The
//! `psse-trace` crate replays such logs to re-price a run under
//! different machine parameters without re-executing the algorithm.
//! The flag is **off by default**: recording costs one `Vec` push per
//! operation (payload data is never copied); with it off the only
//! overhead is one branch per operation.
//!
//! ## Fault injection (opt-in)
//!
//! Setting [`machine::SimConfig::faults`] to a `psse-faults`
//! [`FaultPlan`] injects deterministic, virtual-time-scheduled faults —
//! rank crashes and per-link drop/corrupt/duplicate/delay — and applies
//! the plan's recovery policy: acked sends with bounded exponential
//! backoff, and coordinated checkpoint/restart whose write volume is
//! charged through the same Eq. 1 link prices (the words land in
//! dedicated [`profile::RankStats`] resilience counters so the energy
//! model can price them). `None` (the default) keeps every run
//! bit-identical to the pre-fault-layer simulator.
//!
//! ## Example
//!
//! ```
//! use psse_sim::prelude::*;
//!
//! let cfg = SimConfig::default();
//! let outcome = Machine::run(4, cfg, |rank| {
//!     // Each rank computes, then everyone sums everyone's value.
//!     rank.compute(1000);
//!     let me = rank.rank() as f64;
//!     let sums = rank.allreduce_sum(Tag(7), vec![me])?;
//!     Ok(sums[0])
//! })
//! .unwrap();
//! assert!(outcome.results.iter().all(|&s| s == 6.0)); // 0+1+2+3
//! assert!(outcome.profile.makespan > 0.0);
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// scoped-job lifetime erasure in [`pool`] (see its module docs for the
// soundness argument); everything else stays unsafe-free.
#![deny(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN alongside non-positive values;
// `partial_cmp` would obscure that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Index-based loops are kept where the index participates in the math
// (grid coordinates, butterfly strides); iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod collectives;
pub mod error;
pub mod grid;
pub mod machine;
mod mailbox;
pub mod message;
mod pool;
pub mod profile;
pub mod rank;
pub mod record;
mod registry;
pub mod seqmem;

pub use error::SimError;
pub use machine::{Backend, CancelFlag, Machine, SimConfig, SimOutcome};
pub use message::{SharedPayload, Tag};
pub use profile::{Profile, RankStats};
pub use psse_faults::FaultPlan;
pub use rank::Rank;

/// One-stop imports.
pub mod prelude {
    pub use crate::collectives::Group;
    pub use crate::error::SimError;
    pub use crate::grid::{Grid2, Grid3};
    pub use crate::machine::{Backend, CancelFlag, Machine, SimConfig, SimOutcome};
    pub use crate::message::{SharedPayload, Tag};
    pub use crate::profile::{Profile, RankStats};
    pub use crate::rank::Rank;
    pub use crate::record::{EventKind, TimedEvent};
    pub use crate::seqmem::{FastMemory, MemStats};
    pub use psse_faults::{
        CheckpointPolicy, CrashEvent, FaultPlan, FaultSpec, LinkFaultKind, RecoveryPolicy,
    };
}
