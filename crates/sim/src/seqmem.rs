//! Sequential two-level memory simulator (paper Fig. 1(a)): a
//! fully-associative LRU fast memory in front of a slow memory, counting
//! the words and messages (lines) that cross the boundary.
//!
//! This is the executable substrate for the paper's sequential bounds
//! (Eqs. 3–4): `psse-algos::seq_matmul` drives real matmul kernels
//! through [`FastMemory::access`] and compares the measured traffic to
//! `Ω(F/√M)`.

use std::collections::HashMap;

/// Traffic counters of a [`FastMemory`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Misses (line fetched from slow memory).
    pub misses: u64,
    /// Dirty lines written back to slow memory.
    pub writebacks: u64,
    /// Words moved across the slow/fast boundary (fetches + writebacks).
    pub words_moved: u64,
    /// Messages (line transfers) across the boundary.
    pub lines_moved: u64,
}

/// A fully-associative, write-back, LRU cache over a word-addressed
/// memory. Capacity and line size are in words; capacity must be a
/// positive multiple of the line size.
#[derive(Debug)]
pub struct FastMemory {
    line_words: u64,
    max_lines: usize,
    stats: MemStats,
    // line id -> slot index
    map: HashMap<u64, usize>,
    // intrusive doubly-linked LRU list over slots
    slots: Vec<Slot>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    line: u64,
    dirty: bool,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl FastMemory {
    /// Create a fast memory of `capacity_words` with `line_words`-word
    /// lines.
    ///
    /// # Panics
    /// If `line_words == 0` or `capacity_words < line_words`.
    pub fn new(capacity_words: u64, line_words: u64) -> Self {
        assert!(line_words > 0, "line size must be positive");
        assert!(
            capacity_words >= line_words,
            "capacity must hold at least one line"
        );
        let max_lines = (capacity_words / line_words) as usize;
        FastMemory {
            line_words,
            max_lines,
            stats: MemStats::default(),
            map: HashMap::with_capacity(max_lines),
            slots: Vec::with_capacity(max_lines),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Capacity in words.
    pub fn capacity_words(&self) -> u64 {
        self.max_lines as u64 * self.line_words
    }

    /// Current counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Reset counters (contents stay resident).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Touch word `addr` (`write = true` marks the line dirty). Returns
    /// whether the access hit in fast memory.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.stats.accesses += 1;
        let line = addr / self.line_words;
        if let Some(&idx) = self.map.get(&line) {
            self.detach(idx);
            self.push_front(idx);
            if write {
                self.slots[idx].dirty = true;
            }
            return true;
        }
        // Miss: fetch the line, evicting LRU if full.
        self.stats.misses += 1;
        self.stats.words_moved += self.line_words;
        self.stats.lines_moved += 1;
        let idx = if let Some(idx) = self.free.pop() {
            idx
        } else if self.slots.len() < self.max_lines {
            self.slots.push(Slot {
                line: 0,
                dirty: false,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Evict the least recently used line.
            let victim = self.tail;
            self.detach(victim);
            let old = self.slots[victim];
            self.map.remove(&old.line);
            if old.dirty {
                self.stats.writebacks += 1;
                self.stats.words_moved += self.line_words;
                self.stats.lines_moved += 1;
            }
            victim
        };
        self.slots[idx] = Slot {
            line,
            dirty: write,
            prev: NIL,
            next: NIL,
        };
        self.map.insert(line, idx);
        self.push_front(idx);
        false
    }

    /// Read convenience wrapper.
    pub fn read(&mut self, addr: u64) -> bool {
        self.access(addr, false)
    }

    /// Write convenience wrapper.
    pub fn write(&mut self, addr: u64) -> bool {
        self.access(addr, true)
    }

    /// Flush all dirty lines (end-of-run writeback accounting).
    pub fn flush(&mut self) {
        let dirty: u64 = self.slots.iter().filter(|s| s.dirty).count() as u64;
        for s in self.slots.iter_mut() {
            s.dirty = false;
        }
        self.stats.writebacks += dirty;
        self.stats.words_moved += dirty * self.line_words;
        self.stats.lines_moved += dirty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_touch() {
        let mut m = FastMemory::new(64, 8);
        assert!(!m.read(0)); // compulsory miss
        assert!(m.read(1)); // same line
        assert!(m.read(7));
        assert!(!m.read(8)); // next line
        let s = m.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.misses, 2);
        assert_eq!(s.words_moved, 16);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut m = FastMemory::new(16, 8); // 2 lines
        m.read(0); // line 0
        m.read(8); // line 1
        m.read(0); // touch line 0 (now MRU)
        m.read(16); // line 2 evicts line 1
        assert!(m.read(0), "line 0 must still be resident");
        assert!(!m.read(8), "line 1 must have been evicted");
    }

    #[test]
    fn writebacks_count_dirty_evictions_only() {
        let mut m = FastMemory::new(16, 8);
        m.write(0); // dirty line 0
        m.read(8); // clean line 1
        m.read(16); // evicts LRU = line 0 (dirty) -> writeback
        let s = m.stats();
        assert_eq!(s.writebacks, 1);
        // 3 fetches + 1 writeback = 4 line moves.
        assert_eq!(s.lines_moved, 4);
        assert_eq!(s.words_moved, 32);
    }

    #[test]
    fn flush_writes_back_resident_dirty_lines() {
        let mut m = FastMemory::new(32, 8);
        m.write(0);
        m.write(8);
        m.read(16);
        m.flush();
        assert_eq!(m.stats().writebacks, 2);
        m.flush();
        assert_eq!(m.stats().writebacks, 2, "flush is idempotent");
    }

    #[test]
    fn word_granularity_lines() {
        let mut m = FastMemory::new(4, 1);
        m.read(0);
        m.read(1);
        m.read(2);
        m.read(3);
        m.read(4); // evicts 0
        assert!(!m.read(0));
        assert_eq!(m.capacity_words(), 4);
    }

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut m = FastMemory::new(1024, 16);
        for a in 0..4096u64 {
            m.read(a);
        }
        let s = m.stats();
        assert_eq!(s.misses, 4096 / 16);
        assert_eq!(s.accesses, 4096);
    }

    #[test]
    fn streaming_larger_than_cache_thrashes_on_reuse() {
        // Touch a working set 2x the cache twice: second pass misses
        // everything again (LRU worst case).
        let mut m = FastMemory::new(256, 8);
        for _ in 0..2 {
            for a in 0..512u64 {
                m.read(a);
            }
        }
        assert_eq!(m.stats().misses, 2 * 512 / 8);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_capacity_below_line() {
        let _ = FastMemory::new(4, 8);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut m = FastMemory::new(64, 8);
        m.read(0);
        m.reset_stats();
        assert!(m.read(0), "contents survive a stats reset");
        assert_eq!(m.stats().misses, 0);
    }
}
