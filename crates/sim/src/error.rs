//! Simulator error type.

use std::fmt;

/// Errors surfaced by the simulated machine.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm,
/// so adding fault-related variants is not a breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Configuration rejected before launch (zero ranks, bad parameters).
    InvalidConfig(String),
    /// A rank addressed a peer outside `0..p`.
    RankOutOfRange {
        /// The offending rank id.
        rank: usize,
        /// World size.
        size: usize,
    },
    /// A rank's tracked allocation exceeded the configured per-rank
    /// memory limit.
    MemoryLimitExceeded {
        /// Rank whose allocation failed.
        rank: usize,
        /// Words requested in total after the failing allocation.
        requested: u64,
        /// Configured limit.
        limit: u64,
    },
    /// More words freed than allocated — an accounting bug in the caller.
    MemoryUnderflow {
        /// Rank with broken accounting.
        rank: usize,
    },
    /// A receive could not complete because a peer rank failed or the
    /// program deadlocked (no matching message before the wall-clock
    /// timeout).
    RecvFailed {
        /// Receiving rank.
        rank: usize,
        /// Expected source.
        src: usize,
        /// Human-readable cause.
        cause: String,
    },
    /// Another rank returned an error or panicked, poisoning the run.
    PeerFailed(String),
    /// The run's traffic did not balance: words sent across links and
    /// words received differ (a program left transfers unreceived, or
    /// counters were corrupted). Raised by `Profile::assert_balanced`.
    UnbalancedProfile {
        /// Total words sent across links.
        sent: u64,
        /// Total words received.
        recvd: u64,
    },
    /// An algorithm-level precondition failed (used by `psse-algos`).
    Algorithm(String),
    /// A rank hit its scheduled crash time with no checkpoint/restart
    /// policy to recover it (injected by `SimConfig::faults`).
    RankCrashed {
        /// The crashed rank.
        rank: usize,
        /// Virtual time of the crash, seconds.
        at: f64,
    },
    /// An integrity check (ABFT checksum, checked collective) caught a
    /// corrupted payload.
    CorruptPayload {
        /// Rank that detected the corruption.
        rank: usize,
        /// What was checked and how it failed.
        detail: String,
    },
    /// A transfer kept failing after exhausting the recovery policy's
    /// retry budget.
    RetriesExhausted {
        /// Sending rank.
        rank: usize,
        /// Destination rank.
        dest: usize,
        /// Attempts made (original send + retries).
        attempts: u32,
    },
    /// The run was cancelled from outside through a
    /// [`crate::machine::CancelFlag`] (e.g. a lab watchdog timeout)
    /// before it could complete.
    Cancelled,
    /// True deadlock, proven rather than timed out: every live rank is
    /// blocked in a receive and no blocked rank has a matching message
    /// queued, so no progress is possible. Raised by the event-driven
    /// backend ([`crate::machine::Backend::Events`]), which never
    /// sleeps on a wall clock.
    Deadlock {
        /// The rank that proved the deadlock (lowest blocked rank id).
        rank: usize,
        /// Every blocked rank id, ascending.
        blocked: Vec<usize>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(m) => write!(f, "invalid simulator config: {m}"),
            SimError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for world size {size}")
            }
            SimError::MemoryLimitExceeded {
                rank,
                requested,
                limit,
            } => write!(
                f,
                "rank {rank} exceeded memory limit: {requested} > {limit} words"
            ),
            SimError::MemoryUnderflow { rank } => {
                write!(f, "rank {rank} freed more words than it allocated")
            }
            SimError::RecvFailed { rank, src, cause } => {
                write!(f, "rank {rank} failed receiving from {src}: {cause}")
            }
            SimError::PeerFailed(m) => write!(f, "peer rank failed: {m}"),
            SimError::UnbalancedProfile { sent, recvd } => write!(
                f,
                "unbalanced profile: {sent} words sent but {recvd} received"
            ),
            SimError::Algorithm(m) => write!(f, "algorithm error: {m}"),
            SimError::RankCrashed { rank, at } => {
                write!(
                    f,
                    "rank {rank} crashed at virtual time {at:.6}s with no checkpoint to restart from"
                )
            }
            SimError::CorruptPayload { rank, detail } => {
                write!(f, "rank {rank} detected a corrupt payload: {detail}")
            }
            SimError::RetriesExhausted {
                rank,
                dest,
                attempts,
            } => write!(
                f,
                "rank {rank} gave up sending to {dest} after {attempts} failed attempts"
            ),
            SimError::Cancelled => {
                write!(f, "run cancelled by an external watchdog before completion")
            }
            SimError::Deadlock { rank, blocked } => {
                write!(
                    f,
                    "deadlock proven at rank {rank}: ranks {blocked:?} are all blocked \
                     in recv with no matching message queued"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias used throughout the simulator.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(SimError, &str)> = vec![
            (SimError::InvalidConfig("p = 0".into()), "p = 0"),
            (SimError::RankOutOfRange { rank: 9, size: 4 }, "rank 9"),
            (
                SimError::MemoryLimitExceeded {
                    rank: 1,
                    requested: 100,
                    limit: 50,
                },
                "100 > 50",
            ),
            (SimError::MemoryUnderflow { rank: 2 }, "rank 2"),
            (
                SimError::RecvFailed {
                    rank: 0,
                    src: 3,
                    cause: "deadlock".into(),
                },
                "deadlock",
            ),
            (SimError::PeerFailed("boom".into()), "boom"),
            (
                SimError::UnbalancedProfile {
                    sent: 70,
                    recvd: 30,
                },
                "70 words sent but 30 received",
            ),
            (SimError::Algorithm("bad grid".into()), "bad grid"),
            (SimError::RankCrashed { rank: 5, at: 1.25 }, "rank 5"),
            (
                SimError::CorruptPayload {
                    rank: 3,
                    detail: "checksum row mismatch".into(),
                },
                "checksum row mismatch",
            ),
            (
                SimError::RetriesExhausted {
                    rank: 1,
                    dest: 4,
                    attempts: 7,
                },
                "7 failed attempts",
            ),
            (
                SimError::Deadlock {
                    rank: 0,
                    blocked: vec![0, 1],
                },
                "[0, 1]",
            ),
            (SimError::Cancelled, "cancelled"),
        ];
        for (e, frag) in cases {
            assert!(e.to_string().contains(frag), "{e}");
        }
    }
}
