//! Blocked-rank registry for the event-driven backend.
//!
//! Under [`crate::machine::Backend::Events`] a blocking receive never
//! sleeps on a wall clock: the receiver registers itself here, and the
//! registry proves (or disproves) deadlock from global state — every
//! live rank blocked with no matching message queued anywhere means no
//! progress is possible, ever. The proof replaces `recv_timeout`, whose
//! wall-clock patience is meaningless under virtual time (a loaded host
//! would turn a slow run into a spurious "deadlock", an idle one would
//! sleep 30 s on a real deadlock).
//!
//! ## Locking
//!
//! All registry state lives behind one mutex, and the lock is held
//! across the "check mailbox, then wait" sequence, so the classic lost
//! wakeup cannot happen: a sender pushes to the mailbox *first*, then
//! takes the registry lock to notify — if the receiver saw an empty
//! queue, the sender's notify is necessarily still ahead of it. Lock
//! order is registry → mailbox everywhere; mailbox pushes never hold
//! the registry lock.

use crate::mailbox::Mailbox;
use crate::message::Tag;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// What a registered receive should do next.
pub(crate) enum BlockOutcome {
    /// A matching message is queued (popped by the caller's retry).
    Ready,
    /// The run is poisoned; abandon the receive.
    Poisoned,
    /// Deadlock proven: every live rank blocked, no message queued.
    /// Carries the ascending blocked rank set.
    Deadlocked(Vec<usize>),
}

struct RegState {
    /// Ranks that have not completed their program yet.
    live: usize,
    /// Blocked ranks and the `(src, tag)` each one is waiting on.
    blocked: HashMap<usize, (usize, Tag)>,
    /// Set once, by whichever rank (or completion) proves the deadlock.
    deadlocked: Option<Vec<usize>>,
    /// Mirrors the machine's poison flag so waiters parked on the
    /// registry condvar observe failures without a mailbox wakeup.
    poisoned: bool,
}

/// Process-global-free, per-run registry of blocked ranks. One instance
/// per `Machine::run` under the Events backend.
pub(crate) struct EventRegistry {
    state: Mutex<RegState>,
    cv: Condvar,
}

fn lock_state(m: &Mutex<RegState>) -> MutexGuard<'_, RegState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl EventRegistry {
    pub(crate) fn new(p: usize) -> EventRegistry {
        EventRegistry {
            state: Mutex::new(RegState {
                live: p,
                blocked: HashMap::new(),
                deadlocked: None,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Deadlock proof, called with the state lock held: every live rank
    /// is blocked and no blocked rank has a matching message queued.
    /// Messages are pushed before their receiver could possibly block on
    /// them (sends are eager), so a probe that finds nothing queued is
    /// conclusive, not a race.
    fn prove_deadlock(st: &mut RegState, mailboxes: &[Mailbox]) -> Option<Vec<usize>> {
        if st.live == 0 || st.blocked.len() < st.live {
            return None;
        }
        if st
            .blocked
            .iter()
            .any(|(&rank, &(src, tag))| mailboxes[rank].has_match(src, tag))
        {
            return None; // someone is about to make progress
        }
        let mut ranks: Vec<usize> = st.blocked.keys().copied().collect();
        ranks.sort_unstable();
        st.deadlocked = Some(ranks.clone());
        Some(ranks)
    }

    /// Park rank `id` until a message under `(src, tag)` is queued in
    /// its mailbox, the run is poisoned, or deadlock is proven. Never
    /// sleeps on a wall clock. The caller re-pops the mailbox on
    /// [`BlockOutcome::Ready`].
    pub(crate) fn block_until_ready(
        &self,
        id: usize,
        src: usize,
        tag: Tag,
        mailboxes: &[Mailbox],
    ) -> BlockOutcome {
        let mut st = lock_state(&self.state);
        loop {
            // Checked under the registry lock: a sender pushes first and
            // only then takes this lock to notify, so an empty queue here
            // means the eventual notify cannot be missed below.
            if mailboxes[id].has_match(src, tag) {
                st.blocked.remove(&id);
                self.cv.notify_all();
                return BlockOutcome::Ready;
            }
            if st.poisoned {
                st.blocked.remove(&id);
                return BlockOutcome::Poisoned;
            }
            if let Some(ranks) = st.deadlocked.clone() {
                st.blocked.remove(&id);
                return BlockOutcome::Deadlocked(ranks);
            }
            st.blocked.insert(id, (src, tag));
            if let Some(ranks) = Self::prove_deadlock(&mut st, mailboxes) {
                st.blocked.remove(&id);
                self.cv.notify_all();
                return BlockOutcome::Deadlocked(ranks);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A sender queued a message: wake parked receivers to re-check
    /// their mailboxes. Taking the lock orders this after any in-flight
    /// check (see [`EventRegistry::block_until_ready`]).
    pub(crate) fn notify_send(&self) {
        let _st = lock_state(&self.state);
        self.cv.notify_all();
    }

    /// Rank `id` finished its program. With one fewer live rank the
    /// remaining blocked set may now be total, so re-run the proof.
    pub(crate) fn rank_done(&self, mailboxes: &[Mailbox]) {
        let mut st = lock_state(&self.state);
        st.live = st.live.saturating_sub(1);
        if Self::prove_deadlock(&mut st, mailboxes).is_some() {
            self.cv.notify_all();
        }
    }

    /// Mirror the machine poison flag and wake every parked receiver.
    pub(crate) fn poison(&self) {
        let mut st = lock_state(&self.state);
        st.poisoned = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Envelope;
    use std::sync::Arc;

    fn boxes(p: usize) -> Vec<Mailbox> {
        (0..p).map(|_| Mailbox::new()).collect()
    }

    fn env(src: usize, tag: u64) -> Envelope {
        Envelope {
            src,
            tag: Tag(tag),
            n_chunks: 1,
            depart_time: 0.0,
            payload: Arc::new(vec![1.0]),
        }
    }

    #[test]
    fn ready_when_message_already_queued() {
        let reg = EventRegistry::new(2);
        let mb = boxes(2);
        mb[0].push(env(1, 3));
        assert!(matches!(
            reg.block_until_ready(0, 1, Tag(3), &mb),
            BlockOutcome::Ready
        ));
    }

    #[test]
    fn single_rank_self_deadlock_is_proven_immediately() {
        let reg = EventRegistry::new(1);
        let mb = boxes(1);
        match reg.block_until_ready(0, 0, Tag(0), &mb) {
            BlockOutcome::Deadlocked(ranks) => assert_eq!(ranks, vec![0]),
            _ => panic!("expected a deadlock proof"),
        }
    }

    #[test]
    fn completion_of_last_runnable_rank_proves_deadlock() {
        let reg = Arc::new(EventRegistry::new(2));
        let mb = Arc::new(boxes(2));
        let waiter = {
            let reg = Arc::clone(&reg);
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || reg.block_until_ready(0, 1, Tag(0), &mb))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Rank 1 finishes without ever sending: rank 0 can never proceed.
        reg.rank_done(&mb);
        match waiter.join().unwrap() {
            BlockOutcome::Deadlocked(ranks) => assert_eq!(ranks, vec![0]),
            _ => panic!("expected a deadlock proof"),
        }
    }

    #[test]
    fn cross_thread_send_wakes_blocked_rank() {
        let reg = Arc::new(EventRegistry::new(2));
        let mb = Arc::new(boxes(2));
        let waiter = {
            let reg = Arc::clone(&reg);
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || reg.block_until_ready(1, 0, Tag(9), &mb))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb[1].push(env(0, 9));
        reg.notify_send();
        assert!(matches!(waiter.join().unwrap(), BlockOutcome::Ready));
    }

    #[test]
    fn poison_unparks_blocked_rank() {
        let reg = Arc::new(EventRegistry::new(2));
        let mb = Arc::new(boxes(2));
        let waiter = {
            let reg = Arc::clone(&reg);
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || reg.block_until_ready(1, 0, Tag(0), &mb))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        reg.poison();
        assert!(matches!(waiter.join().unwrap(), BlockOutcome::Poisoned));
    }

    #[test]
    fn blocked_rank_with_pending_message_defeats_the_proof() {
        // Rank 0 blocks on a tag that IS queued for rank 1's benefit:
        // wrong key, so rank 0 stays blocked; rank 1 blocks on the queued
        // key — the probe must see rank 1's match and refuse the proof,
        // then rank 1 drains it and completes.
        let reg = Arc::new(EventRegistry::new(2));
        let mb = Arc::new(boxes(2));
        mb[1].push(env(0, 5));
        let blocked_forever = {
            let reg = Arc::clone(&reg);
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || reg.block_until_ready(0, 1, Tag(7), &mb))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(
            reg.block_until_ready(1, 0, Tag(5), &mb),
            BlockOutcome::Ready
        ));
        mb[1].try_recv(0, Tag(5)).expect("queued message");
        reg.rank_done(&mb); // rank 1 completes -> now rank 0 is truly stuck
        match blocked_forever.join().unwrap() {
            BlockOutcome::Deadlocked(ranks) => assert_eq!(ranks, vec![0]),
            other => panic!(
                "expected deadlock after peer completion, got {}",
                match other {
                    BlockOutcome::Ready => "ready",
                    BlockOutcome::Poisoned => "poisoned",
                    BlockOutcome::Deadlocked(_) => unreachable!(),
                }
            ),
        }
    }
}
