//! The per-rank handle: virtual clock, counters, and point-to-point
//! messaging.

use crate::error::{SimError, SimResult};
use crate::machine::SimConfig;
use crate::mailbox::{Mailbox, RecvWait};
use crate::message::{Envelope, SharedPayload, Tag};
use crate::profile::RankStats;
use crate::record::{EventKind, TimedEvent};
use crate::registry::{BlockOutcome, EventRegistry};
use psse_faults::{FaultPlan, LinkFaultKind};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// Per-rank fault-injection state (present only when
/// `SimConfig::faults` is set). Fault decisions are pure functions of
/// the plan seed and the per-link transfer counters kept here, so they
/// are deterministic regardless of thread interleaving.
struct FaultState {
    plan: FaultPlan,
    /// Transfers initiated on each outgoing link (indexes the plan).
    link_seq: Vec<u64>,
    /// Virtual time of the next coordinated checkpoint boundary
    /// (`+inf` when checkpointing is off).
    next_cp: f64,
    /// Last checkpoint boundary crossed (crash rework restarts here).
    last_cp: f64,
    /// This rank's scheduled crash, not yet triggered.
    crash_at: Option<f64>,
    /// A crash that struck with no checkpoint to restart from; surfaced
    /// by the next fallible operation (or by `Machine::run` at exit).
    pending_crash: Option<SimError>,
}

/// Deterministically perturb a corrupted payload word: the result
/// always differs from `x` by at least 1.0, so integrity checks with
/// any reasonable tolerance can see it.
fn corrupt_word(x: f64) -> f64 {
    x + 1.0 + x.abs()
}

/// A rank of the simulated machine. Handed by [`crate::Machine::run`] to
/// the per-rank program; owns the rank's virtual clock and counters.
pub struct Rank {
    id: usize,
    p: usize,
    cfg: Arc<SimConfig>,
    time: f64,
    stats: RankStats,
    mailboxes: Arc<Vec<Mailbox>>,
    poison: Arc<AtomicBool>,
    events: Vec<TimedEvent>,
    fault: Option<Box<FaultState>>,
    /// Present only under [`crate::machine::Backend::Events`]: blocking
    /// receives register here instead of sleeping on a wall clock.
    registry: Option<Arc<EventRegistry>>,
}

impl Rank {
    pub(crate) fn new(
        id: usize,
        p: usize,
        cfg: Arc<SimConfig>,
        mailboxes: Arc<Vec<Mailbox>>,
        poison: Arc<AtomicBool>,
        registry: Option<Arc<EventRegistry>>,
    ) -> Self {
        let fault = cfg.faults.as_ref().map(|plan| {
            Box::new(FaultState {
                plan: plan.clone(),
                link_seq: vec![0; p],
                next_cp: plan
                    .recovery
                    .checkpoint
                    .map_or(f64::INFINITY, |cp| cp.interval),
                last_cp: 0.0,
                crash_at: plan.crash_at(id),
                pending_crash: None,
            })
        });
        Rank {
            id,
            p,
            cfg,
            time: 0.0,
            stats: RankStats::default(),
            mailboxes,
            poison,
            events: Vec::new(),
            fault,
            registry,
        }
    }

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.id
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        self.p
    }

    /// The rank's current virtual time, seconds.
    pub fn now(&self) -> f64 {
        self.time
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    pub(crate) fn into_parts(mut self) -> (RankStats, Vec<TimedEvent>) {
        self.stats.finish_time = self.time;
        (self.stats, self.events)
    }

    /// Append an event to the trace log (no-op unless recording).
    #[inline]
    fn record(&mut self, t_start: f64, kind: EventKind) {
        if self.cfg.record_trace {
            self.events.push(TimedEvent {
                t_start,
                t_end: self.time,
                kind,
            });
        }
    }

    /// Record a collective-begin trace marker (no-op unless recording).
    /// Public so external step-driven executors (`psse-event`'s rank
    /// programs) can emit the same markers the built-in collectives do.
    pub fn mark_collective_begin(&mut self, op: &str) {
        if self.cfg.record_trace {
            let t = self.time;
            self.record(t, EventKind::CollBegin { op: op.to_string() });
        }
    }

    /// Record the matching collective-end trace marker; see
    /// [`Rank::mark_collective_begin`].
    pub fn mark_collective_end(&mut self, op: &str) {
        if self.cfg.record_trace {
            let t = self.time;
            self.record(t, EventKind::CollEnd { op: op.to_string() });
        }
    }

    /// Record a collective begin/end marker pair around `body`. The end
    /// marker is only written when the collective succeeds; a failing
    /// collective aborts the run anyway.
    pub(crate) fn with_collective<T>(
        &mut self,
        op: &str,
        body: impl FnOnce(&mut Self) -> SimResult<T>,
    ) -> SimResult<T> {
        self.mark_collective_begin(op);
        let out = body(self)?;
        self.mark_collective_end(op);
        Ok(out)
    }

    /// Surface a pending unrecoverable crash (set by a preceding
    /// `compute`, which cannot return errors itself).
    fn fail_if_crashed(&mut self) -> SimResult<()> {
        if let Some(fs) = self.fault.as_deref_mut() {
            if let Some(e) = fs.pending_crash.take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// A crash the rank's program never got to observe (no fallible
    /// operation followed it). `Machine::run` checks this at rank exit.
    pub(crate) fn take_fault_error(&mut self) -> Option<SimError> {
        self.fault
            .as_deref_mut()
            .and_then(|fs| fs.pending_crash.take())
    }

    /// Charge a transfer's link cost without delivering anything: failed
    /// (dropped / corrupt-detected) attempts, duplicates, and checkpoint
    /// writes all burn bandwidth this way. The chunking mirrors `send`;
    /// the words land in the resilience counters, not `words_sent`, so
    /// the sent/received balance is preserved.
    fn charge_wasted_transfer(&mut self, total: usize, alpha: f64, beta: f64) {
        let m = self.cfg.max_message_words;
        let mut left = total;
        loop {
            let k = left.min(m);
            self.time += alpha + beta * k as f64;
            self.stats.retrans_msgs += 1;
            self.stats.retrans_words += k as u64;
            if left <= m {
                break;
            }
            left -= m;
        }
    }

    /// Charge a checkpoint write of `words` words to stable storage at
    /// the machine-level link prices, chunked at `m` like any transfer.
    fn charge_checkpoint_write(&mut self, words: u64) {
        let m = self.cfg.max_message_words as u64;
        let (alpha, beta) = (self.cfg.alpha_t, self.cfg.beta_t);
        let mut left = words;
        loop {
            let k = left.min(m);
            self.time += alpha + beta * k as f64;
            self.stats.checkpoint_msgs += 1;
            self.stats.checkpoint_words += k;
            if left <= m {
                break;
            }
            left -= m;
        }
    }

    /// Run after every clock-advancing operation: write the coordinated
    /// checkpoints whose boundaries the operation crossed, then trigger
    /// this rank's scheduled crash once its clock passes the crash time.
    /// With a checkpoint policy the crash costs the rework since the
    /// last checkpoint boundary plus the restart time; without one it is
    /// fatal ([`SimError::RankCrashed`]).
    fn fault_epilogue(&mut self) {
        let Some(mut fs) = self.fault.take() else {
            return;
        };
        if let Some(cp) = fs.plan.recovery.checkpoint {
            // Only boundaries crossed by the operation itself fire here;
            // boundaries crossed while writing a checkpoint fire on the
            // next operation (keeps this loop finite even when a write
            // costs more than the interval).
            let t_op = self.time;
            while fs.next_cp <= t_op {
                let t0 = self.time;
                self.charge_checkpoint_write(cp.words);
                fs.last_cp = fs.next_cp;
                fs.next_cp += cp.interval;
                self.record(t0, EventKind::Checkpoint { words: cp.words });
            }
        }
        if let Some(at) = fs.crash_at {
            if self.time >= at {
                fs.crash_at = None;
                if let Some(cp) = fs.plan.recovery.checkpoint {
                    let t0 = self.time;
                    let lost = self.time - fs.last_cp;
                    self.time += lost + cp.restart_seconds;
                    self.stats.crashes_recovered += 1;
                    self.record(
                        t0,
                        EventKind::CrashRecovery {
                            lost,
                            restart: cp.restart_seconds,
                        },
                    );
                } else {
                    fs.pending_crash = Some(SimError::RankCrashed { rank: self.id, at });
                }
            }
        }
        self.fault = Some(fs);
    }

    /// Decide and apply this transfer's injected fault *before*
    /// delivery. Drop/corrupt faults under an ack protocol
    /// (`max_retries > 0`) burn failed attempts with exponential
    /// virtual-time backoff until one succeeds; a drop without retries
    /// is [`SimError::RetriesExhausted`]; a corruption without retries
    /// silently perturbs one payload word (ABFT's job to catch) —
    /// copy-on-write through [`Arc::make_mut`], so a shared payload is
    /// only duplicated when a corruption actually fires. Delay stalls
    /// the sender. Returns `true` when the transfer must also be
    /// re-charged as a duplicate after delivery.
    fn inject_send_faults(
        &mut self,
        dest: usize,
        tag: Tag,
        payload: &mut SharedPayload,
        alpha: f64,
        beta: f64,
    ) -> SimResult<bool> {
        let Some(mut fs) = self.fault.take() else {
            return Ok(false);
        };
        let seq = fs.link_seq[dest];
        fs.link_seq[dest] += 1;
        let primary = fs.plan.link_fault(self.id, dest, seq);
        let res = match primary {
            None => Ok(false),
            Some(LinkFaultKind::Duplicate) => Ok(true),
            Some(LinkFaultKind::Delay) => {
                let t0 = self.time;
                let seconds = fs.plan.spec.delay_seconds;
                self.time += seconds;
                self.record(t0, EventKind::LinkDelay { seconds });
                Ok(false)
            }
            Some(LinkFaultKind::Corrupt) if fs.plan.recovery.max_retries == 0 => {
                if !payload.is_empty() {
                    let i = fs.plan.corrupt_index(self.id, dest, seq, payload.len());
                    let words = Arc::make_mut(payload);
                    words[i] = corrupt_word(words[i]);
                }
                Ok(false)
            }
            Some(LinkFaultKind::Drop) | Some(LinkFaultKind::Corrupt) => {
                let words = payload.len();
                let max_retries = fs.plan.recovery.max_retries;
                let mut attempt: u32 = 0;
                loop {
                    let t0 = self.time;
                    self.charge_wasted_transfer(words, alpha, beta);
                    let backoff = fs.plan.recovery.retry_backoff * f64::powi(2.0, attempt as i32);
                    self.time += backoff;
                    self.stats.retries += 1;
                    self.record(
                        t0,
                        EventKind::Retry {
                            dest,
                            tag: tag.0,
                            attempt: attempt as usize,
                            words,
                            backoff,
                        },
                    );
                    attempt += 1;
                    if attempt > max_retries {
                        break Err(SimError::RetriesExhausted {
                            rank: self.id,
                            dest,
                            attempts: attempt,
                        });
                    }
                    match fs.plan.attempt_fault(self.id, dest, seq, attempt) {
                        Some(LinkFaultKind::Drop) | Some(LinkFaultKind::Corrupt) => continue,
                        _ => break Ok(false),
                    }
                }
            }
        };
        self.fault = Some(fs);
        res
    }

    /// Execute `flops` floating-point operations: advances the virtual
    /// clock by `γt·flops` and the flop counter.
    pub fn compute(&mut self, flops: u64) {
        let t0 = self.time;
        self.stats.flops += flops;
        self.time += self.cfg.gamma_t * flops as f64;
        self.record(t0, EventKind::Compute { flops });
        if self.fault.is_some() {
            self.fault_epilogue();
        }
    }

    /// Track an allocation of `words` words. Errors if the configured
    /// per-rank memory limit would be exceeded.
    pub fn alloc(&mut self, words: u64) -> SimResult<()> {
        let new = self.stats.mem_current + words;
        if let Some(limit) = self.cfg.mem_limit_words {
            if new > limit {
                return Err(SimError::MemoryLimitExceeded {
                    rank: self.id,
                    requested: new,
                    limit,
                });
            }
        }
        self.stats.mem_current = new;
        self.stats.mem_peak = self.stats.mem_peak.max(new);
        let t = self.time;
        self.record(t, EventKind::Alloc { words });
        Ok(())
    }

    /// Track the release of `words` words.
    pub fn free(&mut self, words: u64) -> SimResult<()> {
        if words > self.stats.mem_current {
            return Err(SimError::MemoryUnderflow { rank: self.id });
        }
        self.stats.mem_current -= words;
        let t = self.time;
        self.record(t, EventKind::Free { words });
        Ok(())
    }

    /// Surface an external cancellation request ([`crate::CancelFlag`])
    /// as an error at the next communication point. One relaxed-ish
    /// atomic load when a flag is configured; a plain `None` branch
    /// otherwise.
    fn check_cancelled(&self) -> SimResult<()> {
        match &self.cfg.cancel {
            Some(flag) if flag.is_cancelled() => Err(SimError::Cancelled),
            _ => Ok(()),
        }
    }

    fn check_peer(&self, peer: usize) -> SimResult<()> {
        if peer >= self.p {
            return Err(SimError::RankOutOfRange {
                rank: peer,
                size: self.p,
            });
        }
        Ok(())
    }

    /// Whether `peer` lives on the same node as this rank (always false
    /// on a flat machine).
    pub fn same_node(&self, peer: usize) -> bool {
        match &self.cfg.hierarchy {
            Some(h) => self.id / h.cores_per_node == peer / h.cores_per_node,
            None => false,
        }
    }

    /// Send `payload` to `dest` under `tag`. Never blocks (eager,
    /// unbounded buffering). Transfers longer than the machine's maximum
    /// message size count `⌈k/m⌉` messages and the sender's clock
    /// advances by `αt + k·βt` per chunk — at the intra-node prices when
    /// a [`crate::machine::Hierarchy`] is configured and `dest` shares
    /// this rank's node. A self-send is free (no link is crossed) and
    /// the payload becomes immediately receivable.
    ///
    /// This is a zero-copy wrapper over [`Rank::send_shared`]; use
    /// [`Rank::send_slice`] when you would otherwise clone a buffer to
    /// call it.
    pub fn send(&mut self, dest: usize, tag: Tag, payload: Vec<f64>) -> SimResult<()> {
        self.send_shared(dest, tag, Arc::new(payload))
    }

    /// Borrowing send: like [`Rank::send`], but copies the words out of
    /// `payload` itself (once, into the wire buffer) instead of making
    /// the caller clone a `Vec` it wants to keep.
    pub fn send_slice(&mut self, dest: usize, tag: Tag, payload: &[f64]) -> SimResult<()> {
        self.send_shared(dest, tag, Arc::new(payload.to_vec()))
    }

    /// Shared send: like [`Rank::send`], but the payload is a
    /// reference-counted buffer the wire can carry without copying —
    /// the right call when the same data goes to several peers (fan-out
    /// in a broadcast tree, forwarding in an allgather ring). Pricing,
    /// counters, fault decisions, and traces are identical to
    /// [`Rank::send`].
    pub fn send_shared(&mut self, dest: usize, tag: Tag, payload: SharedPayload) -> SimResult<()> {
        self.check_peer(dest)?;
        self.check_cancelled()?;
        self.fail_if_crashed()?;
        let t0 = self.time;
        if dest == self.id {
            let words = payload.len();
            self.mailboxes[self.id].push(Envelope {
                src: self.id,
                tag,
                n_chunks: 1,
                depart_time: self.time,
                payload,
            });
            self.record(
                t0,
                EventKind::Send {
                    dest,
                    tag: tag.0,
                    words,
                },
            );
            return Ok(());
        }
        let intra = self.same_node(dest);
        let (alpha, beta) = match (&self.cfg.hierarchy, intra) {
            (Some(h), true) => (h.intra_alpha_t, h.intra_beta_t),
            _ => (self.cfg.alpha_t, self.cfg.beta_t),
        };
        let m = self.cfg.max_message_words;
        let mut payload = payload;
        let duplicate = if self.fault.is_some() {
            self.inject_send_faults(dest, tag, &mut payload, alpha, beta)?
        } else {
            false
        };
        let t_send = self.time;
        let total = payload.len();
        let n_chunks = if total == 0 { 1 } else { total.div_ceil(m) };
        // Arithmetic chunk pricing: the same per-chunk clock and counter
        // updates (in the same f64 order) that physically splitting the
        // payload performed, without materializing any chunk.
        let mut left = total;
        loop {
            let k = left.min(m);
            self.time += alpha + beta * k as f64;
            self.stats.msgs_sent += 1;
            self.stats.words_sent += k as u64;
            if intra {
                self.stats.msgs_sent_intra += 1;
                self.stats.words_sent_intra += k as u64;
            }
            if left <= m {
                break;
            }
            left -= m;
        }
        // One wire message for the whole transfer. Its departure time is
        // the sender's clock after all chunk pricing — bit-identical to
        // the old per-chunk envelopes' latest departure, which is what
        // the receiver's clock advances to.
        self.mailboxes[dest].push(Envelope {
            src: self.id,
            tag,
            n_chunks,
            depart_time: self.time,
            payload,
        });
        if let Some(reg) = &self.registry {
            // Wake registry-parked receivers to re-check their mailboxes
            // (Events-backend receives never park on the mailbox condvar).
            reg.notify_send();
        }
        self.record(
            t_send,
            EventKind::Send {
                dest,
                tag: tag.0,
                words: total,
            },
        );
        if duplicate {
            // The link sent the transfer twice; the receiver discards
            // the copy, but its bandwidth and latency are still paid.
            let td = self.time;
            self.charge_wasted_transfer(total, alpha, beta);
            self.stats.retries += 1;
            self.record(
                td,
                EventKind::Retry {
                    dest,
                    tag: tag.0,
                    attempt: 0,
                    words: total,
                    backoff: 0.0,
                },
            );
        }
        if self.fault.is_some() {
            self.fault_epilogue();
        }
        Ok(())
    }

    /// Receive the transfer sent by `src` under `tag`, blocking until it
    /// arrives. The rank's clock advances to the transfer's departure
    /// time (`max(t_local, t_depart)`).
    pub fn recv(&mut self, src: usize, tag: Tag) -> SimResult<Vec<f64>> {
        let shared = self.recv_shared(src, tag)?;
        // Sole owner (the common case: sender dropped its handle) means
        // the Vec is unwrapped without copying.
        Ok(Arc::try_unwrap(shared).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Like [`Rank::recv`], but returns the shared wire buffer itself —
    /// zero-copy even when the sender (or another receiver downstream)
    /// still holds a reference, e.g. when forwarding the same payload
    /// onward in a ring or tree.
    pub fn recv_shared(&mut self, src: usize, tag: Tag) -> SimResult<SharedPayload> {
        self.check_peer(src)?;
        self.check_cancelled()?;
        self.fail_if_crashed()?;
        let t0 = self.time;
        let env = match &self.registry {
            // Events backend: no wall clock anywhere. Block on the
            // registry until the message is queued, the run is poisoned,
            // or deadlock is *proven* (every live rank blocked, nothing
            // queued for any of them).
            Some(reg) => loop {
                match self.mailboxes[self.id].try_recv(src, tag) {
                    Some(env) => break env,
                    None => match reg.block_until_ready(self.id, src, tag, &self.mailboxes) {
                        BlockOutcome::Ready => continue,
                        BlockOutcome::Poisoned => {
                            // Distinguish an external cancellation from
                            // a failing peer: the watchdog poisons the
                            // run through the same wakeup path.
                            self.check_cancelled()?;
                            return Err(SimError::PeerFailed(format!(
                                "rank {} abandoned recv from {src}: a peer rank failed",
                                self.id
                            )));
                        }
                        BlockOutcome::Deadlocked(blocked) => {
                            return Err(SimError::Deadlock {
                                rank: self.id,
                                blocked,
                            });
                        }
                    },
                }
            },
            // Threads backend: park on the mailbox condvar, woken by the
            // matching push or by the poison flag (a poisoned run can
            // never complete this receive).
            None => {
                let deadline = Instant::now() + self.cfg.recv_timeout;
                match self.mailboxes[self.id].recv(src, tag, deadline, &self.poison) {
                    RecvWait::Message(env) => env,
                    RecvWait::Poisoned => {
                        // An external cancellation wakes receivers via
                        // the same poison flag; report it as such.
                        self.check_cancelled()?;
                        return Err(SimError::PeerFailed(format!(
                            "rank {} abandoned recv from {src}: a peer rank failed",
                            self.id
                        )));
                    }
                    RecvWait::TimedOut => {
                        return Err(SimError::RecvFailed {
                            rank: self.id,
                            src,
                            cause: format!(
                                "no matching message for tag {tag:?} within {:?} (deadlock?)",
                                self.cfg.recv_timeout
                            ),
                        });
                    }
                }
            }
        };
        self.time = self.time.max(env.depart_time);
        let words = env.payload.len();
        if src != self.id {
            self.stats.words_recvd += words as u64;
            self.stats.msgs_recvd += env.n_chunks as u64;
        }
        self.record(
            t0,
            EventKind::Recv {
                src,
                tag: tag.0,
                words,
                msgs: env.n_chunks,
            },
        );
        if self.fault.is_some() {
            self.fault_epilogue();
        }
        Ok(env.payload)
    }

    /// Send to `dest` and receive from `src` in one call. Safe in rings
    /// and shifts because sends are eager.
    pub fn sendrecv(
        &mut self,
        dest: usize,
        send_tag: Tag,
        payload: Vec<f64>,
        src: usize,
        recv_tag: Tag,
    ) -> SimResult<Vec<f64>> {
        self.send(dest, send_tag, payload)?;
        self.recv(src, recv_tag)
    }

    /// [`Rank::sendrecv`] over shared buffers: forward one reference,
    /// receive the next — the zero-copy step of a ring exchange.
    pub fn sendrecv_shared(
        &mut self,
        dest: usize,
        send_tag: Tag,
        payload: SharedPayload,
        src: usize,
        recv_tag: Tag,
    ) -> SimResult<SharedPayload> {
        self.send_shared(dest, send_tag, payload)?;
        self.recv_shared(src, recv_tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, SimConfig};

    #[test]
    fn ping_pong_times_and_counters() {
        let cfg = SimConfig {
            gamma_t: 0.0,
            beta_t: 1e-6,
            alpha_t: 1e-3,
            max_message_words: 1 << 20,
            ..SimConfig::default()
        };
        let out = Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(1), vec![0.0; 1000])?;
                let back = rank.recv(1, Tag(2))?;
                assert_eq!(back.len(), 1000);
            } else {
                let data = rank.recv(0, Tag(1))?;
                rank.send(0, Tag(2), data)?;
            }
            Ok(rank.now())
        })
        .unwrap();
        // Each direction costs α + 1000β = 1e-3 + 1e-3 = 2e-3.
        let expect = 2.0 * (1e-3 + 1000.0 * 1e-6);
        assert!((out.profile.makespan - expect).abs() < 1e-12);
        let s = &out.profile.per_rank[0];
        assert_eq!(s.words_sent, 1000);
        assert_eq!(s.msgs_sent, 1);
        assert_eq!(s.words_recvd, 1000);
        assert_eq!(s.msgs_recvd, 1);
    }

    #[test]
    fn long_transfers_split_into_messages() {
        let cfg = SimConfig {
            max_message_words: 100,
            ..SimConfig::counters_only()
        };
        let out = Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![1.0; 450])?;
            } else {
                let v = rank.recv(0, Tag(0))?;
                assert_eq!(v.len(), 450);
                assert!(v.iter().all(|&x| x == 1.0));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(out.profile.per_rank[0].msgs_sent, 5); // ceil(450/100)
        assert_eq!(out.profile.per_rank[0].words_sent, 450);
        assert_eq!(out.profile.per_rank[1].msgs_recvd, 5);
    }

    #[test]
    fn payload_order_is_preserved_across_chunks() {
        let cfg = SimConfig {
            max_message_words: 7,
            ..SimConfig::counters_only()
        };
        Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                let payload: Vec<f64> = (0..100).map(|i| i as f64).collect();
                rank.send(1, Tag(3), payload)?;
            } else {
                let v = rank.recv(0, Tag(3))?;
                for (i, &x) in v.iter().enumerate() {
                    assert_eq!(x, i as f64);
                }
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        Machine::run(2, SimConfig::counters_only(), |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(10), vec![10.0])?;
                rank.send(1, Tag(20), vec![20.0])?;
            } else {
                // Receive in reverse order of sending.
                let b = rank.recv(0, Tag(20))?;
                let a = rank.recv(0, Tag(10))?;
                assert_eq!(a, vec![10.0]);
                assert_eq!(b, vec![20.0]);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn empty_message_costs_one_latency() {
        let cfg = SimConfig {
            gamma_t: 0.0,
            beta_t: 1e-6,
            alpha_t: 0.5,
            ..SimConfig::default()
        };
        let out = Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![])?;
            } else {
                let v = rank.recv(0, Tag(0))?;
                assert!(v.is_empty());
            }
            Ok(())
        })
        .unwrap();
        assert!((out.profile.makespan - 0.5).abs() < 1e-12);
        assert_eq!(out.profile.per_rank[0].msgs_sent, 1);
        assert_eq!(out.profile.per_rank[0].words_sent, 0);
    }

    #[test]
    fn self_send_is_free_and_receivable() {
        let out = Machine::run(1, SimConfig::default(), |rank| {
            rank.send(0, Tag(5), vec![42.0])?;
            let v = rank.recv(0, Tag(5))?;
            assert_eq!(v, vec![42.0]);
            Ok(rank.now())
        })
        .unwrap();
        assert_eq!(out.results[0], 0.0);
        assert_eq!(out.profile.per_rank[0].words_sent, 0);
        assert_eq!(out.profile.per_rank[0].msgs_sent, 0);
    }

    #[test]
    fn rank_out_of_range_is_caught() {
        let r = Machine::run(2, SimConfig::default(), |rank| rank.send(5, Tag(0), vec![]));
        assert!(matches!(
            r,
            Err(SimError::RankOutOfRange { rank: 5, size: 2 })
        ));
    }

    #[test]
    fn receive_waits_for_virtual_arrival() {
        // Sender computes for a long virtual time before sending; the
        // receiver's clock must jump to the arrival time.
        let cfg = SimConfig {
            gamma_t: 1e-6,
            beta_t: 0.0,
            alpha_t: 0.0,
            ..SimConfig::default()
        };
        let out = Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                rank.compute(1_000_000); // 1.0 virtual second
                rank.send(1, Tag(0), vec![1.0])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(rank.now())
        })
        .unwrap();
        assert!((out.results[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn virtual_time_ignores_wall_clock_waiting() {
        // Receiver that waits (wall-clock) for a sender does not accrue
        // virtual time beyond the message arrival.
        let cfg = SimConfig {
            gamma_t: 0.0,
            beta_t: 0.0,
            alpha_t: 1e-3,
            ..SimConfig::default()
        };
        let out = Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
                rank.send(1, Tag(0), vec![])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(rank.now())
        })
        .unwrap();
        assert!((out.results[1] - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn memory_tracking_and_limits() {
        let cfg = SimConfig {
            mem_limit_words: Some(1000),
            ..SimConfig::default()
        };
        let out = Machine::run(1, cfg.clone(), |rank| {
            rank.alloc(600)?;
            rank.alloc(300)?;
            rank.free(500)?;
            rank.alloc(400)?;
            Ok(())
        })
        .unwrap();
        let s = &out.profile.per_rank[0];
        assert_eq!(s.mem_peak, 900);
        assert_eq!(s.mem_current, 800);

        let r = Machine::run(1, cfg, |rank| {
            rank.alloc(600)?;
            rank.alloc(600)?;
            Ok(())
        });
        assert!(matches!(r, Err(SimError::MemoryLimitExceeded { .. })));
    }

    #[test]
    fn memory_underflow_is_caught() {
        let r = Machine::run(1, SimConfig::default(), |rank| {
            rank.alloc(10)?;
            rank.free(20)
        });
        assert!(matches!(r, Err(SimError::MemoryUnderflow { rank: 0 })));
    }

    #[test]
    fn sendrecv_ring_shift_does_not_deadlock() {
        let p = 8;
        let out = Machine::run(p, SimConfig::default(), |rank| {
            let right = (rank.rank() + 1) % rank.size();
            let left = (rank.rank() + rank.size() - 1) % rank.size();
            let v = rank.sendrecv(right, Tag(0), vec![rank.rank() as f64], left, Tag(0))?;
            Ok(v[0])
        })
        .unwrap();
        for (r, v) in out.results.iter().enumerate() {
            assert_eq!(*v, ((r + p - 1) % p) as f64);
        }
    }

    #[test]
    fn hierarchy_prices_intra_node_links_cheaper() {
        use crate::machine::Hierarchy;
        let cfg = SimConfig {
            gamma_t: 0.0,
            beta_t: 1e-6,
            alpha_t: 1e-3,
            hierarchy: Some(Hierarchy {
                cores_per_node: 2,
                intra_beta_t: 1e-8,
                intra_alpha_t: 1e-5,
            }),
            ..SimConfig::default()
        };
        // Ranks 0,1 share node 0; rank 2,3 share node 1.
        let out = Machine::run(4, cfg, |rank| {
            match rank.rank() {
                0 => {
                    rank.send(1, Tag(0), vec![0.0; 1000])?; // intra
                    rank.send(2, Tag(1), vec![0.0; 1000])?; // inter
                }
                1 => {
                    rank.recv(0, Tag(0))?;
                }
                2 => {
                    rank.recv(0, Tag(1))?;
                }
                _ => {}
            }
            Ok(rank.now())
        })
        .unwrap();
        // Rank 0 paid intra (1e-5 + 1000·1e-8 = 2e-5) then inter
        // (1e-3 + 1000·1e-6 = 2e-3).
        assert!((out.results[0] - (2e-5 + 2e-3)).abs() < 1e-12);
        // Rank 1's arrival: after the intra send only.
        assert!((out.results[1] - 2e-5).abs() < 1e-12);
        // Counters split by level.
        let s0 = &out.profile.per_rank[0];
        assert_eq!(s0.words_sent, 2000);
        assert_eq!(s0.words_sent_intra, 1000);
        assert_eq!(s0.msgs_sent_intra, 1);
        assert!(out.profile.per_rank[0].msgs_sent == 2);
        assert_eq!(out.profile.total_words_inter(), 1000);
    }

    #[test]
    fn same_node_logic() {
        use crate::machine::Hierarchy;
        let cfg = SimConfig {
            hierarchy: Some(Hierarchy {
                cores_per_node: 4,
                intra_beta_t: 0.0,
                intra_alpha_t: 0.0,
            }),
            ..SimConfig::default()
        };
        let out = Machine::run(8, cfg, |rank| Ok((rank.same_node(0), rank.same_node(7)))).unwrap();
        assert_eq!(out.results[0], (true, false));
        assert_eq!(out.results[3], (true, false));
        assert_eq!(out.results[4], (false, true));
    }

    #[test]
    fn flat_machine_has_no_same_node_pairs() {
        let out = Machine::run(2, SimConfig::default(), |rank| Ok(rank.same_node(0))).unwrap();
        assert_eq!(out.results, vec![false, false]);
    }

    #[test]
    fn invalid_hierarchy_rejected() {
        use crate::machine::Hierarchy;
        let cfg = SimConfig {
            hierarchy: Some(Hierarchy {
                cores_per_node: 0,
                intra_beta_t: 0.0,
                intra_alpha_t: 0.0,
            }),
            ..SimConfig::default()
        };
        assert!(matches!(
            Machine::run(2, cfg, |_| Ok(())),
            Err(SimError::InvalidConfig(_))
        ));
    }

    fn fault_cfg(plan: psse_faults::FaultPlan) -> SimConfig {
        SimConfig {
            gamma_t: 0.0,
            beta_t: 1e-6,
            alpha_t: 1e-3,
            faults: Some(plan),
            ..SimConfig::default()
        }
    }

    fn drop_plan(rate: f64, retries: u32) -> psse_faults::FaultPlan {
        psse_faults::FaultPlan {
            spec: psse_faults::FaultSpec {
                seed: 7,
                drop_rate: rate,
                ..Default::default()
            },
            recovery: psse_faults::RecoveryPolicy {
                max_retries: retries,
                retry_backoff: 1e-4,
                checkpoint: None,
            },
        }
    }

    #[test]
    fn dropped_transfer_is_retried_and_charged() {
        // Drop rate 1 on attempt 0 would retry forever; use rate 1 with
        // one retry only if attempt 1 passes — instead pick a rate where
        // we can find a seed/transfer that drops attempt 0 and passes
        // attempt 1, by scanning.
        let plan = drop_plan(0.5, 4);
        // Find how many of the first sends on link 0→1 fail.
        let out = Machine::run(2, fault_cfg(plan.clone()), |rank| {
            if rank.rank() == 0 {
                for i in 0..20u64 {
                    rank.send(1, Tag(i), vec![1.0; 100])?;
                }
            } else {
                for i in 0..20u64 {
                    let v = rank.recv(0, Tag(i))?;
                    assert_eq!(v, vec![1.0; 100], "payload must survive retries");
                }
            }
            Ok(())
        })
        .unwrap();
        let s = &out.profile.per_rank[0];
        assert!(s.retries > 0, "a 50% drop rate must hit at least once");
        assert_eq!(s.retrans_words, 100 * s.retries); // single-chunk transfers
        assert_eq!(s.words_sent, 20 * 100, "delivered words are unchanged");
        // Each failed attempt costs at least the link price plus backoff.
        let min_overhead = s.retries as f64 * (1e-3 + 100.0 * 1e-6 + 1e-4);
        let clean = 20.0 * (1e-3 + 100.0 * 1e-6);
        assert!(out.profile.makespan >= clean + min_overhead - 1e-12);
    }

    #[test]
    fn drop_without_retry_exhausts() {
        let plan = drop_plan(1.0, 0);
        let r = Machine::run(2, fault_cfg(plan), |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![1.0])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(())
        });
        assert!(
            matches!(
                r,
                Err(SimError::RetriesExhausted {
                    rank: 0,
                    dest: 1,
                    attempts: 1
                })
            ),
            "{r:?}"
        );
    }

    #[test]
    fn corruption_without_retry_perturbs_exactly_one_word() {
        let mut plan = drop_plan(0.0, 0);
        plan.spec.corrupt_rate = 1.0;
        let out = Machine::run(2, fault_cfg(plan), |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![2.0; 50])?;
                Ok(0)
            } else {
                let v = rank.recv(0, Tag(0))?;
                Ok(v.iter().filter(|&&x| x != 2.0).count())
            }
        })
        .unwrap();
        assert_eq!(out.results[1], 1, "exactly one word corrupted");
    }

    #[test]
    fn corruption_with_retry_is_detected_and_resent_clean() {
        let mut plan = drop_plan(0.0, 8);
        plan.spec.corrupt_rate = 0.5;
        let out = Machine::run(2, fault_cfg(plan), |rank| {
            if rank.rank() == 0 {
                for i in 0..20u64 {
                    rank.send(1, Tag(i), vec![3.0; 10])?;
                }
                Ok(0)
            } else {
                let mut bad = 0;
                for i in 0..20u64 {
                    let v = rank.recv(0, Tag(i))?;
                    bad += v.iter().filter(|&&x| x != 3.0).count();
                }
                Ok(bad)
            }
        })
        .unwrap();
        assert_eq!(out.results[1], 0, "acked sends deliver clean payloads");
        assert!(out.profile.per_rank[0].retries > 0);
    }

    #[test]
    fn delay_fault_stalls_the_sender() {
        let mut plan = drop_plan(0.0, 0);
        plan.spec.delay_rate = 1.0;
        plan.spec.delay_seconds = 0.25;
        let out = Machine::run(2, fault_cfg(plan), |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![0.0; 100])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(rank.now())
        })
        .unwrap();
        let clean = 1e-3 + 100.0 * 1e-6;
        assert!((out.results[0] - (0.25 + clean)).abs() < 1e-12);
        assert!((out.results[1] - (0.25 + clean)).abs() < 1e-12);
    }

    #[test]
    fn duplicate_fault_charges_twice_delivers_once() {
        let mut plan = drop_plan(0.0, 0);
        plan.spec.duplicate_rate = 1.0;
        let out = Machine::run(2, fault_cfg(plan), |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![1.0; 100])?;
            } else {
                let v = rank.recv(0, Tag(0))?;
                assert_eq!(v.len(), 100);
            }
            Ok(())
        })
        .unwrap();
        let s = &out.profile.per_rank[0];
        assert_eq!(s.words_sent, 100);
        assert_eq!(s.retrans_words, 100);
        assert_eq!(s.retries, 1);
        out.profile.assert_balanced().unwrap();
    }

    #[test]
    fn crash_without_checkpoint_is_fatal() {
        let mut plan = drop_plan(0.0, 0);
        plan.spec
            .crashes
            .push(psse_faults::CrashEvent { rank: 1, at: 0.5 });
        let cfg = SimConfig {
            gamma_t: 1e-9,
            faults: Some(plan),
            ..SimConfig::default()
        };
        let r = Machine::run(2, cfg, |rank| {
            if rank.rank() == 1 {
                rank.compute(1_000_000_000); // 1 virtual second
            }
            Ok(())
        });
        assert!(
            matches!(r, Err(SimError::RankCrashed { rank: 1, .. })),
            "{r:?}"
        );
    }

    #[test]
    fn crash_with_checkpoint_recovers_and_prices_rework() {
        let mut plan = drop_plan(0.0, 0);
        plan.spec
            .crashes
            .push(psse_faults::CrashEvent { rank: 0, at: 0.55 });
        plan.recovery.checkpoint = Some(psse_faults::CheckpointPolicy {
            interval: 0.2,
            words: 1000,
            restart_seconds: 0.1,
        });
        let cfg = SimConfig {
            gamma_t: 1e-9,
            beta_t: 1e-6,
            alpha_t: 1e-3,
            faults: Some(plan),
            ..SimConfig::default()
        };
        let out = Machine::run(1, cfg, |rank| {
            for _ in 0..10 {
                rank.compute(100_000_000); // 0.1 virtual seconds each
            }
            Ok(())
        })
        .unwrap();
        let s = &out.profile.per_rank[0];
        assert_eq!(s.crashes_recovered, 1);
        assert!(s.checkpoint_words >= 2 * 1000, "several checkpoints due");
        assert!(
            out.profile.makespan > 1.0 + 0.1,
            "rework + restart + checkpoint writes must show up: {}",
            out.profile.makespan
        );
    }

    #[test]
    fn faulted_runs_are_bit_identical_across_repeats() {
        let mut plan = drop_plan(0.3, 6);
        plan.spec.corrupt_rate = 0.1;
        plan.spec.duplicate_rate = 0.1;
        plan.spec.delay_rate = 0.1;
        plan.spec.delay_seconds = 1e-3;
        let run = || {
            Machine::run(4, fault_cfg(plan.clone()), |rank| {
                let right = (rank.rank() + 1) % rank.size();
                let left = (rank.rank() + rank.size() - 1) % rank.size();
                let mut block = vec![rank.rank() as f64; 64];
                for step in 0..8 {
                    block = rank.sendrecv(right, Tag(step), block, left, Tag(step))?;
                    rank.compute(500);
                }
                Ok(())
            })
            .unwrap()
            .profile
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fault schedule must be deterministic");
        assert!(a.total_retries() > 0, "faults must actually fire");
    }

    #[test]
    fn faults_none_is_bit_identical_to_default() {
        // Explicitly constructing the config with `faults: None` must
        // change nothing relative to the pre-fault-layer behavior.
        let run = |cfg: SimConfig| {
            Machine::run(4, cfg, |rank| {
                let right = (rank.rank() + 1) % rank.size();
                let left = (rank.rank() + rank.size() - 1) % rank.size();
                let mut block = vec![rank.rank() as f64; 128];
                for step in 0..4 {
                    block = rank.sendrecv(right, Tag(step), block, left, Tag(step))?;
                    rank.compute(1000);
                }
                Ok(())
            })
            .unwrap()
            .profile
        };
        let a = run(SimConfig::default());
        let b = run(SimConfig {
            faults: None,
            ..SimConfig::default()
        });
        assert_eq!(a, b);
        assert_eq!(a.resilience_words(), 0);
        assert_eq!(a.total_retries(), 0);
    }

    #[test]
    fn send_variants_are_bit_identical() {
        // send / send_slice / send_shared must produce the same profile
        // and trace down to the last bit (multi-chunk, traced, timed).
        let cfg = || SimConfig {
            gamma_t: 1e-9,
            beta_t: 1e-6,
            alpha_t: 1e-3,
            max_message_words: 37,
            record_trace: true,
            ..SimConfig::default()
        };
        let run = |mode: usize| {
            Machine::run(3, cfg(), move |rank| {
                let data: Vec<f64> = (0..100).map(|i| (i + rank.rank()) as f64).collect();
                let dest = (rank.rank() + 1) % rank.size();
                let src = (rank.rank() + 2) % rank.size();
                match mode {
                    0 => rank.send(dest, Tag(1), data.clone())?,
                    1 => rank.send_slice(dest, Tag(1), &data)?,
                    _ => rank.send_shared(dest, Tag(1), Arc::new(data.clone()))?,
                }
                let v = rank.recv(src, Tag(1))?;
                Ok(v[0])
            })
            .unwrap()
        };
        let a = run(0);
        let b = run(1);
        let c = run(2);
        assert_eq!(a.profile, b.profile);
        assert_eq!(b.profile, c.profile);
        assert_eq!(a.results, b.results);
        assert_eq!(b.results, c.results);
    }

    #[test]
    fn shared_fanout_delivers_the_same_buffer() {
        // One Arc sent to two peers crosses the wire without copying:
        // both receivers observe the root's allocation.
        let out = Machine::run(3, SimConfig::counters_only(), |rank| {
            if rank.rank() == 0 {
                let data: SharedPayload = Arc::new(vec![4.0; 64]);
                let ptr = data.as_ptr() as usize;
                rank.send_shared(1, Tag(0), Arc::clone(&data))?;
                rank.send_shared(2, Tag(0), data)?;
                Ok(ptr)
            } else {
                let v = rank.recv_shared(0, Tag(0))?;
                assert!(v.iter().all(|&x| x == 4.0));
                Ok(v.as_ptr() as usize)
            }
        })
        .unwrap();
        assert_eq!(out.results[0], out.results[1]);
        assert_eq!(out.results[0], out.results[2]);
    }

    #[test]
    fn corrupting_a_shared_payload_leaves_other_holders_clean() {
        // Copy-on-write: a corruption fault on one link must not reach
        // the sender's buffer or a sibling transfer sharing it.
        let mut plan = drop_plan(0.0, 0);
        plan.spec.corrupt_rate = 1.0;
        let out = Machine::run(3, fault_cfg(plan), |rank| {
            if rank.rank() == 0 {
                let data: SharedPayload = Arc::new(vec![2.0; 50]);
                rank.send_shared(1, Tag(0), Arc::clone(&data))?;
                rank.send_shared(2, Tag(0), Arc::clone(&data))?;
                assert!(
                    data.iter().all(|&x| x == 2.0),
                    "sender's buffer must stay clean"
                );
                Ok(0)
            } else {
                let v = rank.recv(0, Tag(0))?;
                Ok(v.iter().filter(|&&x| x != 2.0).count())
            }
        })
        .unwrap();
        assert_eq!(out.results[1], 1, "link 0→1 corrupts exactly one word");
        assert_eq!(out.results[2], 1, "link 0→2 corrupts exactly one word");
    }

    #[test]
    fn same_tag_transfers_are_fifo() {
        // Two back-to-back transfers under one (src, tag) key arrive in
        // send order.
        Machine::run(2, SimConfig::counters_only(), |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![1.0])?;
                rank.send(1, Tag(0), vec![2.0])?;
            } else {
                assert_eq!(rank.recv(0, Tag(0))?, vec![1.0]);
                assert_eq!(rank.recv(0, Tag(0))?, vec![2.0]);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn determinism_bit_identical_profiles() {
        let run = || {
            Machine::run(6, SimConfig::default(), |rank| {
                let me = rank.rank();
                rank.compute((me as u64 + 1) * 1000);
                let right = (me + 1) % rank.size();
                let left = (me + rank.size() - 1) % rank.size();
                let mut block = vec![me as f64; 64];
                for step in 0..rank.size() {
                    block =
                        rank.sendrecv(right, Tag(step as u64), block, left, Tag(step as u64))?;
                    rank.compute(500);
                }
                Ok(())
            })
            .unwrap()
            .profile
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "profiles must be bit-identical across runs");
    }
}
