//! Processor-grid topologies and their rank groups.
//!
//! The distributed algorithms lay ranks out on logical grids:
//!
//! * [`Grid2`] — a `q × q` grid (Cannon, SUMMA, 2D LU): rank
//!   `= row·q + col`;
//! * [`Grid3`] — a `q × q × c` cuboid (2.5D/3D matmul): rank
//!   `= layer·q² + row·q + col`, with `c` the replication factor.
//!
//! Each grid hands out the [`Group`]s over which the algorithms run
//! collectives (rows, columns, layers, and the `c`-deep "fibers" along
//! which blocks are replicated and contributions reduced).

use crate::collectives::Group;
use crate::error::{SimError, SimResult};

/// A `q × q` processor grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2 {
    q: usize,
}

impl Grid2 {
    /// Build from a total rank count `p = q²`.
    pub fn from_p(p: usize) -> SimResult<Grid2> {
        let q = (p as f64).sqrt().round() as usize;
        if q * q != p || q == 0 {
            return Err(SimError::Algorithm(format!(
                "2D grid needs a square rank count, got p = {p}"
            )));
        }
        Ok(Grid2 { q })
    }

    /// Grid edge `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Total ranks `q²`.
    pub fn p(&self) -> usize {
        self.q * self.q
    }

    /// Rank at `(row, col)` (row-major).
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.q && col < self.q);
        row * self.q + col
    }

    /// `(row, col)` of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.p());
        (rank / self.q, rank % self.q)
    }

    /// The group of ranks in `row`, ordered by column.
    pub fn row_group(&self, row: usize) -> Group {
        Group::new((0..self.q).map(|c| self.rank_of(row, c)).collect())
            .expect("grid rows are valid groups")
    }

    /// The group of ranks in `col`, ordered by row.
    pub fn col_group(&self, col: usize) -> Group {
        Group::new((0..self.q).map(|r| self.rank_of(r, col)).collect())
            .expect("grid columns are valid groups")
    }
}

/// A `q × q × c` processor cuboid (layer-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    q: usize,
    c: usize,
}

impl Grid3 {
    /// Build from a total rank count `p = q²·c` with replication factor
    /// `c`.
    pub fn from_p(p: usize, c: usize) -> SimResult<Grid3> {
        if c == 0 || !p.is_multiple_of(c) {
            return Err(SimError::Algorithm(format!(
                "3D grid needs c | p, got p = {p}, c = {c}"
            )));
        }
        let per_layer = p / c;
        let q = (per_layer as f64).sqrt().round() as usize;
        if q == 0 || q * q != per_layer {
            return Err(SimError::Algorithm(format!(
                "3D grid needs p/c to be a square, got p/c = {per_layer}"
            )));
        }
        Ok(Grid3 { q, c })
    }

    /// Layer edge `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Replication factor `c` (number of layers).
    pub fn c(&self) -> usize {
        self.c
    }

    /// Total ranks `q²·c`.
    pub fn p(&self) -> usize {
        self.q * self.q * self.c
    }

    /// Rank at `(row, col, layer)`.
    pub fn rank_of(&self, row: usize, col: usize, layer: usize) -> usize {
        debug_assert!(row < self.q && col < self.q && layer < self.c);
        layer * self.q * self.q + row * self.q + col
    }

    /// `(row, col, layer)` of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.p());
        let layer = rank / (self.q * self.q);
        let rem = rank % (self.q * self.q);
        (rem / self.q, rem % self.q, layer)
    }

    /// All ranks of `layer`, in row-major order.
    pub fn layer_group(&self, layer: usize) -> Group {
        Group::new(
            (0..self.q * self.q)
                .map(|i| layer * self.q * self.q + i)
                .collect(),
        )
        .expect("grid layers are valid groups")
    }

    /// The `c` ranks sharing `(row, col)` across layers, ordered by
    /// layer — the replication "fiber" along which 2.5D matmul
    /// broadcasts inputs and reduces contributions.
    pub fn fiber_group(&self, row: usize, col: usize) -> Group {
        Group::new((0..self.c).map(|l| self.rank_of(row, col, l)).collect())
            .expect("grid fibers are valid groups")
    }

    /// Ranks of `row` within `layer`, ordered by column.
    pub fn row_group(&self, row: usize, layer: usize) -> Group {
        Group::new((0..self.q).map(|cl| self.rank_of(row, cl, layer)).collect())
            .expect("grid rows are valid groups")
    }

    /// Ranks of `col` within `layer`, ordered by row.
    pub fn col_group(&self, col: usize, layer: usize) -> Group {
        Group::new((0..self.q).map(|r| self.rank_of(r, col, layer)).collect())
            .expect("grid columns are valid groups")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_roundtrip() {
        let g = Grid2::from_p(16).unwrap();
        assert_eq!(g.q(), 4);
        assert_eq!(g.p(), 16);
        for rank in 0..16 {
            let (r, c) = g.coords(rank);
            assert_eq!(g.rank_of(r, c), rank);
        }
    }

    #[test]
    fn grid2_rejects_non_square() {
        assert!(Grid2::from_p(12).is_err());
        assert!(Grid2::from_p(0).is_err());
        assert!(Grid2::from_p(2).is_err());
    }

    #[test]
    fn grid2_groups() {
        let g = Grid2::from_p(9).unwrap();
        assert_eq!(g.row_group(1).members(), &[3, 4, 5]);
        assert_eq!(g.col_group(2).members(), &[2, 5, 8]);
    }

    #[test]
    fn grid3_roundtrip() {
        let g = Grid3::from_p(32, 2).unwrap();
        assert_eq!(g.q(), 4);
        assert_eq!(g.c(), 2);
        assert_eq!(g.p(), 32);
        for rank in 0..32 {
            let (r, c, l) = g.coords(rank);
            assert_eq!(g.rank_of(r, c, l), rank);
        }
    }

    #[test]
    fn grid3_rejects_bad_shapes() {
        assert!(Grid3::from_p(10, 2).is_err()); // p/c = 5 not square
        assert!(Grid3::from_p(8, 0).is_err());
        assert!(Grid3::from_p(9, 2).is_err()); // c does not divide p
    }

    #[test]
    fn grid3_c1_is_grid2() {
        let g3 = Grid3::from_p(16, 1).unwrap();
        let g2 = Grid2::from_p(16).unwrap();
        for rank in 0..16 {
            let (r, c, l) = g3.coords(rank);
            assert_eq!(l, 0);
            assert_eq!((r, c), g2.coords(rank));
        }
    }

    #[test]
    fn grid3_groups() {
        let g = Grid3::from_p(18, 2).unwrap(); // q = 3, c = 2
        assert_eq!(
            g.layer_group(1).members(),
            &[9, 10, 11, 12, 13, 14, 15, 16, 17]
        );
        assert_eq!(g.fiber_group(0, 0).members(), &[0, 9]);
        assert_eq!(g.fiber_group(2, 1).members(), &[7, 16]);
        assert_eq!(g.row_group(1, 1).members(), &[12, 13, 14]);
        assert_eq!(g.col_group(1, 0).members(), &[1, 4, 7]);
    }
}
