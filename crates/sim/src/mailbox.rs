//! Keyed per-rank mailboxes with condvar wakeups.
//!
//! Each rank owns one [`Mailbox`]; senders push whole-transfer
//! [`Envelope`]s keyed by `(src, tag)` and the receiver pops the head of
//! exactly the queue it is waiting on — O(1) per message instead of the
//! O(pending) scan a flat `Vec<Envelope>` needs under heavy unrelated
//! traffic. Blocking receives park on a condition variable and are woken
//! by the next push (or by [`Mailbox::wake`] when the run is poisoned),
//! so there is no polling tick: a dead peer is observed immediately, not
//! after a timeout slice.

use crate::message::{Envelope, Tag};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Outcome of a blocking mailbox receive.
pub(crate) enum RecvWait {
    /// The matching transfer, FIFO per `(src, tag)`.
    Message(Envelope),
    /// The run was poisoned and no matching message was queued.
    Poisoned,
    /// The deadline passed with no matching message (deadlock).
    TimedOut,
}

/// One rank's incoming-message store: `(src, tag) → FIFO` plus the
/// condition variable its receive thread parks on.
pub(crate) struct Mailbox {
    queues: Mutex<HashMap<(usize, Tag), VecDeque<Envelope>>>,
    cv: Condvar,
}

/// A panic while holding a mailbox lock cannot leave the map in a torn
/// state (no invariants span statements), so lock poisoning is ignored —
/// this keeps the poison-flag wakeup working even mid-unwind.
fn lock_queues(
    m: &Mutex<HashMap<(usize, Tag), VecDeque<Envelope>>>,
) -> MutexGuard<'_, HashMap<(usize, Tag), VecDeque<Envelope>>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Mailbox {
    pub(crate) fn new() -> Mailbox {
        Mailbox {
            queues: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }

    /// Enqueue a transfer and wake the (single) receiver thread.
    pub(crate) fn push(&self, env: Envelope) {
        let mut queues = lock_queues(&self.queues);
        queues.entry((env.src, env.tag)).or_default().push_back(env);
        // One receiver per mailbox (the owning rank), so notify_one.
        self.cv.notify_one();
    }

    /// Pop the next transfer from `src` under `tag`, blocking until one
    /// arrives, the `poison` flag is raised, or `deadline` passes.
    ///
    /// A message already queued wins over poison: the transfer completed
    /// before the failure, so the receiver may still consume it — this
    /// matches the pre-condvar transport, which harvested its pending
    /// buffer before checking the flag.
    pub(crate) fn recv(
        &self,
        src: usize,
        tag: Tag,
        deadline: Instant,
        poison: &AtomicBool,
    ) -> RecvWait {
        let mut queues = lock_queues(&self.queues);
        loop {
            if let Some(q) = queues.get_mut(&(src, tag)) {
                if let Some(env) = q.pop_front() {
                    if q.is_empty() {
                        queues.remove(&(src, tag));
                    }
                    return RecvWait::Message(env);
                }
            }
            if poison.load(Ordering::SeqCst) {
                return RecvWait::Poisoned;
            }
            let now = Instant::now();
            if now >= deadline {
                return RecvWait::TimedOut;
            }
            // The flag was clear while we held the lock; a poisoner
            // raises it and then takes this lock to notify, so the
            // wakeup cannot be lost between the check and the wait.
            queues = self
                .cv
                .wait_timeout(queues, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Wake the receiver so it re-checks the poison flag. Taking the
    /// lock before notifying is what makes the wakeup race-free (see
    /// [`Mailbox::recv`]).
    pub(crate) fn wake(&self) {
        let _queues = lock_queues(&self.queues);
        self.cv.notify_all();
    }

    /// Non-blocking receive: pop the next transfer from `src` under
    /// `tag` if one is already queued. The event-driven backend's block
    /// path (see `crate::registry`) polls this under the registry lock
    /// instead of ever parking on this mailbox's condvar.
    pub(crate) fn try_recv(&self, src: usize, tag: Tag) -> Option<Envelope> {
        let mut queues = lock_queues(&self.queues);
        let q = queues.get_mut(&(src, tag))?;
        let env = q.pop_front();
        if q.is_empty() {
            queues.remove(&(src, tag));
        }
        env
    }

    /// Whether a transfer from `src` under `tag` is queued right now.
    /// Used by the deadlock probe: a blocked rank with a matching
    /// message is about to make progress, so the system is not stuck.
    pub(crate) fn has_match(&self, src: usize, tag: Tag) -> bool {
        lock_queues(&self.queues)
            .get(&(src, tag))
            .is_some_and(|q| !q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn env(src: usize, tag: u64, val: f64) -> Envelope {
        Envelope {
            src,
            tag: Tag(tag),
            n_chunks: 1,
            depart_time: 0.0,
            payload: Arc::new(vec![val]),
        }
    }

    #[test]
    fn push_then_recv_is_fifo_per_key() {
        let mb = Mailbox::new();
        mb.push(env(1, 7, 1.0));
        mb.push(env(1, 7, 2.0));
        mb.push(env(2, 7, 9.0)); // different key, must not interfere
        let poison = AtomicBool::new(false);
        let deadline = Instant::now() + Duration::from_secs(1);
        for expect in [1.0, 2.0] {
            match mb.recv(1, Tag(7), deadline, &poison) {
                RecvWait::Message(e) => assert_eq!(e.payload[0], expect),
                _ => panic!("expected a message"),
            }
        }
        match mb.recv(2, Tag(7), deadline, &poison) {
            RecvWait::Message(e) => assert_eq!(e.payload[0], 9.0),
            _ => panic!("expected a message"),
        }
    }

    #[test]
    fn queued_message_beats_poison() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5.0));
        let poison = AtomicBool::new(true);
        let deadline = Instant::now() + Duration::from_secs(1);
        assert!(matches!(
            mb.recv(0, Tag(1), deadline, &poison),
            RecvWait::Message(_)
        ));
        assert!(matches!(
            mb.recv(0, Tag(1), deadline, &poison),
            RecvWait::Poisoned
        ));
    }

    #[test]
    fn empty_recv_times_out() {
        let mb = Mailbox::new();
        let poison = AtomicBool::new(false);
        let deadline = Instant::now() + Duration::from_millis(20);
        assert!(matches!(
            mb.recv(0, Tag(0), deadline, &poison),
            RecvWait::TimedOut
        ));
    }

    #[test]
    fn cross_thread_wakeup_is_prompt() {
        let mb = Arc::new(Mailbox::new());
        let poison = Arc::new(AtomicBool::new(false));
        let t0 = Instant::now();
        let recv_side = {
            let mb = Arc::clone(&mb);
            let poison = Arc::clone(&poison);
            std::thread::spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(10);
                matches!(mb.recv(3, Tag(0), deadline, &poison), RecvWait::Message(_))
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        mb.push(env(3, 0, 1.0));
        assert!(recv_side.join().unwrap());
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "wakeup must be event-driven, not a timeout slice"
        );
    }

    #[test]
    fn poison_wake_unblocks_waiter() {
        let mb = Arc::new(Mailbox::new());
        let poison = Arc::new(AtomicBool::new(false));
        let recv_side = {
            let mb = Arc::clone(&mb);
            let poison = Arc::clone(&poison);
            std::thread::spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(10);
                matches!(mb.recv(0, Tag(0), deadline, &poison), RecvWait::Poisoned)
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        poison.store(true, Ordering::SeqCst);
        mb.wake();
        assert!(recv_side.join().unwrap());
    }
}
