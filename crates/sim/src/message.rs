//! Message envelope and tag types.

/// A user-level message tag. Point-to-point receives match on
/// `(source, tag)`; collectives consume a contiguous tag window starting
/// at the caller-supplied base tag (see [`crate::collectives`]), so give
/// concurrent communication phases tags at least
/// [`crate::collectives::TAG_WINDOW`] apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl Tag {
    /// A derived tag, `self + offset` (used by collectives for their
    /// internal rounds).
    pub fn offset(self, off: u64) -> Tag {
        Tag(self.0 + off)
    }
}

/// One wire message: a chunk of a (possibly split) user-level transfer.
#[derive(Debug, Clone)]
pub(crate) struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// User tag of the transfer this chunk belongs to.
    pub tag: Tag,
    /// Chunk index within the transfer.
    pub chunk: usize,
    /// Total number of chunks in the transfer.
    pub n_chunks: usize,
    /// Total payload length of the whole transfer, in words.
    pub total_words: usize,
    /// Virtual departure time at the sender (seconds).
    pub depart_time: f64,
    /// This chunk's payload.
    pub payload: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_offset() {
        assert_eq!(Tag(10).offset(5), Tag(15));
    }

    #[test]
    fn tags_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Tag(1));
        s.insert(Tag(1));
        s.insert(Tag(2));
        assert_eq!(s.len(), 2);
        assert!(Tag(1) < Tag(2));
    }
}
