//! Message envelope, tag types, and the shared-payload wire format.

use std::sync::Arc;

/// A user-level message tag. Point-to-point receives match on
/// `(source, tag)`; collectives consume a contiguous tag window starting
/// at the caller-supplied base tag (see [`crate::collectives`]), so give
/// concurrent communication phases tags at least
/// [`crate::collectives::TAG_WINDOW`] apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl Tag {
    /// A derived tag, `self + offset` (used by collectives for their
    /// internal rounds).
    pub fn offset(self, off: u64) -> Tag {
        Tag(self.0 + off)
    }
}

/// A reference-counted transfer payload.
///
/// The transport never copies payload words: `Rank::send` wraps its
/// `Vec` once, forwarding ranks clone the `Arc` (one atomic increment),
/// and a unique receiver unwraps the `Vec` back out. `Arc<Vec<f64>>`
/// rather than `Arc<[f64]>` because both conversions at the API
/// boundary (`Vec → Arc` on send, `Arc → Vec` on a sole-owner receive)
/// are then free, whereas a slice Arc would memcpy on each. Fault
/// injection that corrupts a payload goes through [`Arc::make_mut`], so
/// a shared buffer is copied only when a corruption actually fires
/// (copy-on-write).
pub type SharedPayload = Arc<Vec<f64>>;

/// One wire message: a whole user-level transfer.
///
/// The paper's `⌈k/m⌉` message split (Eq. 1, `S = W/m`) is *priced*
/// arithmetically at the sender — the per-chunk `αt + βt·k` clock
/// advances and counter increments are identical to physically splitting
/// the payload — but only one envelope carrying the whole transfer
/// crosses the queue. `n_chunks` records how many virtual messages the
/// transfer was priced as, so the receiver's `msgs_recvd` counter and
/// the recorded trace stay bit-identical to the chunked wire format.
#[derive(Debug, Clone)]
pub(crate) struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// User tag of the transfer.
    pub tag: Tag,
    /// Virtual messages the transfer was priced as (`⌈words/m⌉`, min 1).
    pub n_chunks: usize,
    /// Virtual departure time of the transfer's last chunk at the
    /// sender (seconds).
    pub depart_time: f64,
    /// The whole transfer's payload, shared, not copied.
    pub payload: SharedPayload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_offset() {
        assert_eq!(Tag(10).offset(5), Tag(15));
    }

    #[test]
    fn tags_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Tag(1));
        s.insert(Tag(1));
        s.insert(Tag(2));
        assert_eq!(s.len(), 2);
        assert!(Tag(1) < Tag(2));
    }

    #[test]
    fn shared_payload_is_cheap_to_clone() {
        let p: SharedPayload = Arc::new(vec![1.0; 1024]);
        let q = Arc::clone(&p);
        assert_eq!(p.as_ptr(), q.as_ptr(), "clone shares the allocation");
    }
}
