//! Collective operations over rank groups.
//!
//! All collectives operate on a [`Group`] — an ordered list of member
//! ranks shared (identically!) by every participant — and a base
//! [`Tag`]. Each collective uses tag offsets in `[0, TAG_WINDOW)` above
//! the base tag for its internal rounds, so concurrent communication
//! phases must space their base tags at least [`TAG_WINDOW`] apart, and a
//! tag must not be reused for two transfers that can be simultaneously
//! outstanding between the same pair of ranks.
//!
//! Implementations are the classic ones whose costs the paper's models
//! assume: binomial-tree broadcast/reduce (`log p` rounds), ring
//! allgather (`p − 1` rounds of `n/p` words), and pairwise all-to-all
//! (`p − 1` exchanges — the "naive" all-to-all of the FFT analysis).

use crate::error::{SimError, SimResult};
use crate::message::{SharedPayload, Tag};
use crate::rank::Rank;
use std::sync::Arc;

/// Number of tag offsets a single collective may consume.
pub const TAG_WINDOW: u64 = 128;

/// An ordered set of ranks participating in a collective. All members
/// must construct an identical `Group` (same order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    members: Vec<usize>,
}

impl Group {
    /// Group over explicit members. Must be non-empty and duplicate-free.
    pub fn new(members: Vec<usize>) -> SimResult<Group> {
        if members.is_empty() {
            return Err(SimError::Algorithm("empty group".into()));
        }
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != members.len() {
            return Err(SimError::Algorithm("duplicate ranks in group".into()));
        }
        Ok(Group { members })
    }

    /// The world group `0..p`.
    pub fn world(p: usize) -> Group {
        Group {
            members: (0..p).collect(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has a single member.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members in group order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Global rank of group index `i`.
    pub fn member(&self, i: usize) -> usize {
        self.members[i]
    }

    /// Group index of global rank `r`, if a member.
    pub fn index_of(&self, r: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == r)
    }

    fn my_index(&self, rank: &Rank) -> SimResult<usize> {
        self.index_of(rank.rank()).ok_or_else(|| {
            SimError::Algorithm(format!(
                "rank {} is not a member of group {:?}",
                rank.rank(),
                self.members
            ))
        })
    }
}

impl Rank {
    /// Barrier over `group` (dissemination algorithm, `⌈log₂g⌉` rounds of
    /// empty messages).
    pub fn barrier(&mut self, tag: Tag, group: &Group) -> SimResult<()> {
        self.with_collective("barrier", |rk| rk.barrier_impl(tag, group))
    }

    fn barrier_impl(&mut self, tag: Tag, group: &Group) -> SimResult<()> {
        let g = group.len();
        let me = group.my_index(self)?;
        let mut round = 0u64;
        let mut dist = 1usize;
        while dist < g {
            let to = group.member((me + dist) % g);
            let from = group.member((me + g - dist % g) % g);
            self.send(to, tag.offset(round), Vec::new())?;
            self.recv(from, tag.offset(round))?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcast from the group member with global rank `root`. The root
    /// passes `Some(data)`, everyone else `None`; all members return the
    /// broadcast data. Binomial tree: `⌈log₂g⌉` rounds.
    pub fn broadcast(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        data: Option<Vec<f64>>,
    ) -> SimResult<Vec<f64>> {
        self.with_collective("broadcast", |rk| rk.broadcast_impl(tag, group, root, data))
    }

    fn broadcast_impl(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        data: Option<Vec<f64>>,
    ) -> SimResult<Vec<f64>> {
        let g = group.len();
        let me = group.my_index(self)?;
        let root_idx = group
            .index_of(root)
            .ok_or_else(|| SimError::Algorithm(format!("broadcast root {root} not in group")))?;
        let v = (me + g - root_idx) % g; // virtual index, root at 0
                                         // One shared allocation fans out through the whole tree: each
                                         // edge clones a reference, never the words.
        let data: SharedPayload = if v == 0 {
            Arc::new(
                data.ok_or_else(|| SimError::Algorithm("broadcast root must supply data".into()))?,
            )
        } else {
            // Receive from the parent in the binomial tree.
            let mut mask = 1usize;
            let mut round = 0u64;
            loop {
                if v & mask != 0 {
                    let parent = group.member((v - mask + root_idx) % g);
                    break self.recv_shared(parent, tag.offset(round))?;
                }
                mask <<= 1;
                round += 1;
                if mask >= g {
                    return Err(SimError::Algorithm("broadcast tree malformed".into()));
                }
            }
        };
        // Forward to children: all set bits below my lowest set bit.
        let lowest = if v == 0 {
            g.next_power_of_two()
        } else {
            v & v.wrapping_neg()
        };
        let mut mask = lowest >> 1;
        while mask > 0 {
            let child_v = v + mask;
            if child_v < g {
                let child = group.member((child_v + root_idx) % g);
                let round = mask.trailing_zeros() as u64;
                self.send_shared(child, tag.offset(round), Arc::clone(&data))?;
            }
            mask >>= 1;
        }
        // At most one copy, and only if a child transfer is still in
        // flight when we materialize the caller's Vec.
        Ok(Arc::try_unwrap(data).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Element-wise sum-reduction to the group member with global rank
    /// `root` (binomial tree, `⌈log₂g⌉` rounds). Returns `Some(sum)` on
    /// the root, `None` elsewhere. All contributions must have equal
    /// length.
    pub fn reduce_sum(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        data: Vec<f64>,
    ) -> SimResult<Option<Vec<f64>>> {
        self.with_collective("reduce_sum", |rk| {
            rk.reduce_sum_impl(tag, group, root, data)
        })
    }

    fn reduce_sum_impl(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        data: Vec<f64>,
    ) -> SimResult<Option<Vec<f64>>> {
        let g = group.len();
        let me = group.my_index(self)?;
        let root_idx = group
            .index_of(root)
            .ok_or_else(|| SimError::Algorithm(format!("reduce root {root} not in group")))?;
        let v = (me + g - root_idx) % g;
        let len = data.len();
        let mut acc = data;
        let mut mask = 1usize;
        let mut round = 0u64;
        while mask < g {
            if v & mask != 0 {
                let parent = group.member((v - mask + root_idx) % g);
                self.send(parent, tag.offset(round), acc)?;
                return Ok(None);
            }
            let child_v = v + mask;
            if child_v < g {
                let child = group.member((child_v + root_idx) % g);
                let other = self.recv(child, tag.offset(round))?;
                if other.len() != len {
                    return Err(SimError::Algorithm(format!(
                        "reduce contributions disagree in length: {} vs {len}",
                        other.len()
                    )));
                }
                // The reduction itself is real work: one add per element.
                self.compute(len as u64);
                for (a, b) in acc.iter_mut().zip(&other) {
                    *a += b;
                }
            }
            mask <<= 1;
            round += 1;
        }
        Ok(Some(acc))
    }

    /// All-reduce (sum): reduce to the first group member, then
    /// broadcast. `2·⌈log₂g⌉` rounds; every member returns the sum.
    pub fn allreduce_sum(&mut self, tag: Tag, data: Vec<f64>) -> SimResult<Vec<f64>> {
        let group = Group::world(self.size());
        self.allreduce_sum_group(tag, &group, data)
    }

    /// [`Rank::allreduce_sum`] over an explicit group.
    pub fn allreduce_sum_group(
        &mut self,
        tag: Tag,
        group: &Group,
        data: Vec<f64>,
    ) -> SimResult<Vec<f64>> {
        self.with_collective("allreduce_sum", |rk| {
            let root = group.member(0);
            let reduced = rk.reduce_sum(tag, group, root, data)?;
            rk.broadcast(tag.offset(64), group, root, reduced)
        })
    }

    /// All-reduce (sum) with an integrity check: every member appends
    /// the sum of its local contribution as one extra checksum word, so
    /// after the elementwise reduction the last word must equal the sum
    /// of the data words (both are `Σᵢ Σⱼ xᵢ[j]`, reassociated). A
    /// payload corrupted in flight breaks the identity and is reported
    /// as [`SimError::CorruptPayload`]; `rel_tol` absorbs the
    /// floating-point reassociation (1e-9 is ample for well-scaled
    /// data). One extra word per message and `2·⌈log₂g⌉` extra adds.
    pub fn allreduce_sum_checked(
        &mut self,
        tag: Tag,
        data: Vec<f64>,
        rel_tol: f64,
    ) -> SimResult<Vec<f64>> {
        let mut extended = data;
        let local_sum: f64 = extended.iter().sum();
        self.compute(extended.len() as u64);
        extended.push(local_sum);
        let mut out = self.allreduce_sum(tag, extended)?;
        let checksum = out.pop().expect("checksum word survives the reduction");
        let total: f64 = out.iter().sum();
        self.compute(out.len() as u64);
        let scale = 1.0_f64.max(checksum.abs()).max(total.abs());
        if (checksum - total).abs() > rel_tol * scale {
            return Err(SimError::CorruptPayload {
                rank: self.rank(),
                detail: format!("allreduce checksum {checksum:e} != recomputed sum {total:e}"),
            });
        }
        Ok(out)
    }

    /// Ring allgather: every member contributes a block; all members
    /// return the concatenation of all blocks in group order. `g − 1`
    /// rounds; each rank sends every block once (total `g·(g−1)` block
    /// transfers — the bandwidth-optimal ring).
    pub fn allgather(
        &mut self,
        tag: Tag,
        group: &Group,
        block: Vec<f64>,
    ) -> SimResult<Vec<Vec<f64>>> {
        self.with_collective("allgather", |rk| rk.allgather_impl(tag, group, block))
    }

    fn allgather_impl(
        &mut self,
        tag: Tag,
        group: &Group,
        block: Vec<f64>,
    ) -> SimResult<Vec<Vec<f64>>> {
        let g = group.len();
        let me = group.my_index(self)?;
        let mut blocks: Vec<Option<SharedPayload>> = vec![None; g];
        let right = group.member((me + 1) % g);
        let left = group.member((me + g - 1) % g);
        // Each block travels the ring as one shared allocation: a rank
        // keeps a reference and forwards the same buffer, so the g − 1
        // per-hop clones become reference-count bumps.
        let mut current: SharedPayload = Arc::new(block);
        blocks[me] = Some(Arc::clone(&current));
        for step in 0..g.saturating_sub(1) {
            let incoming = self.sendrecv_shared(
                right,
                tag.offset(step as u64),
                current,
                left,
                tag.offset(step as u64),
            )?;
            let src_idx = (me + g - 1 - step) % g;
            blocks[src_idx] = Some(Arc::clone(&incoming));
            current = incoming;
        }
        drop(current);
        // Materializing the caller's Vecs is the only point a block may
        // be copied (when a forwarded reference is still in flight).
        Ok(blocks
            .into_iter()
            .map(|b| {
                let b = b.expect("ring filled");
                Arc::try_unwrap(b).unwrap_or_else(|shared| (*shared).clone())
            })
            .collect())
    }

    /// Pairwise all-to-all: member `i` sends `blocks[j]` to member `j`
    /// and returns the blocks received from every member (indexed by
    /// group position). `g − 1` exchange rounds — the "naive" all-to-all
    /// whose costs (`W = data`, `S = p`) the paper's FFT analysis quotes.
    pub fn alltoall(
        &mut self,
        tag: Tag,
        group: &Group,
        blocks: Vec<Vec<f64>>,
    ) -> SimResult<Vec<Vec<f64>>> {
        self.with_collective("alltoall", |rk| rk.alltoall_impl(tag, group, blocks))
    }

    fn alltoall_impl(
        &mut self,
        tag: Tag,
        group: &Group,
        mut blocks: Vec<Vec<f64>>,
    ) -> SimResult<Vec<Vec<f64>>> {
        let g = group.len();
        if blocks.len() != g {
            return Err(SimError::Algorithm(format!(
                "alltoall needs one block per member: got {}, group size {g}",
                blocks.len()
            )));
        }
        let me = group.my_index(self)?;
        let mut out: Vec<Option<Vec<f64>>> = vec![None; g];
        out[me] = Some(std::mem::take(&mut blocks[me]));
        for step in 1..g {
            let to_idx = (me + step) % g;
            let from_idx = (me + g - step) % g;
            let recvd = self.sendrecv(
                group.member(to_idx),
                tag.offset(step as u64 % TAG_WINDOW),
                std::mem::take(&mut blocks[to_idx]),
                group.member(from_idx),
                tag.offset(step as u64 % TAG_WINDOW),
            )?;
            out[from_idx] = Some(recvd);
        }
        Ok(out
            .into_iter()
            .map(|b| b.expect("all slots filled"))
            .collect())
    }

    /// Linear scatter from `root`: the root supplies one block per
    /// member (in group order) and each member returns its block. The
    /// standard large-message building block (root sends each block
    /// exactly once — no tree amplification).
    pub fn scatter(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        blocks: Option<Vec<Vec<f64>>>,
    ) -> SimResult<Vec<f64>> {
        self.with_collective("scatter", |rk| rk.scatter_impl(tag, group, root, blocks))
    }

    fn scatter_impl(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        blocks: Option<Vec<Vec<f64>>>,
    ) -> SimResult<Vec<f64>> {
        let g = group.len();
        let me = group.my_index(self)?;
        let root_idx = group
            .index_of(root)
            .ok_or_else(|| SimError::Algorithm(format!("scatter root {root} not in group")))?;
        if me == root_idx {
            let mut blocks = blocks
                .ok_or_else(|| SimError::Algorithm("scatter root must supply blocks".into()))?;
            if blocks.len() != g {
                return Err(SimError::Algorithm(format!(
                    "scatter needs one block per member: got {}, group size {g}",
                    blocks.len()
                )));
            }
            for i in 0..g {
                if i != root_idx {
                    self.send(group.member(i), tag, std::mem::take(&mut blocks[i]))?;
                }
            }
            Ok(std::mem::take(&mut blocks[root_idx]))
        } else {
            self.recv(root, tag)
        }
    }

    /// Linear gather to `root`: every member contributes a block; the
    /// root returns all blocks in group order, others `None`.
    pub fn gather(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        block: Vec<f64>,
    ) -> SimResult<Option<Vec<Vec<f64>>>> {
        self.with_collective("gather", |rk| rk.gather_impl(tag, group, root, block))
    }

    fn gather_impl(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        block: Vec<f64>,
    ) -> SimResult<Option<Vec<Vec<f64>>>> {
        let g = group.len();
        let me = group.my_index(self)?;
        let root_idx = group
            .index_of(root)
            .ok_or_else(|| SimError::Algorithm(format!("gather root {root} not in group")))?;
        if me == root_idx {
            let mut out: Vec<Option<Vec<f64>>> = vec![None; g];
            out[root_idx] = Some(block);
            for i in 0..g {
                if i != root_idx {
                    out[i] = Some(self.recv(group.member(i), tag)?);
                }
            }
            Ok(Some(
                out.into_iter().map(|b| b.expect("gathered")).collect(),
            ))
        } else {
            self.send(root, tag, block)?;
            Ok(None)
        }
    }

    /// Chunk boundaries for splitting `len` words over `g` members.
    fn chunk_bounds(len: usize, g: usize, i: usize) -> (usize, usize) {
        (i * len / g, (i + 1) * len / g)
    }

    /// Ring reduce-scatter (sum): every member contributes an equal-length
    /// vector; member `i` returns the `i`-th chunk of the element-wise
    /// sum. Bandwidth-optimal: `g − 1` rounds, each moving `≈ len/g`
    /// words per rank (`(g−1)/g · len` total per rank).
    pub fn reduce_scatter_sum(
        &mut self,
        tag: Tag,
        group: &Group,
        data: Vec<f64>,
    ) -> SimResult<Vec<f64>> {
        self.with_collective("reduce_scatter_sum", |rk| {
            rk.reduce_scatter_sum_impl(tag, group, data)
        })
    }

    fn reduce_scatter_sum_impl(
        &mut self,
        tag: Tag,
        group: &Group,
        data: Vec<f64>,
    ) -> SimResult<Vec<f64>> {
        let g = group.len();
        let me = group.my_index(self)?;
        let len = data.len();
        if g == 1 {
            return Ok(data);
        }
        let right = group.member((me + 1) % g);
        let left = group.member((me + g - 1) % g);
        // Chunk c starts at rank (c+1) mod g and travels rightward,
        // accumulating each host's contribution, ending at rank c.
        let start_chunk = (me + g - 1) % g;
        let (s0, s1) = Self::chunk_bounds(len, g, start_chunk);
        let mut in_flight = data[s0..s1].to_vec();
        for t in 0..g - 1 {
            let incoming = self.sendrecv(
                right,
                tag.offset(t as u64),
                in_flight,
                left,
                tag.offset(t as u64),
            )?;
            // The chunk arriving at step t is (me - t - 2) mod g.
            let c = (me + 2 * g - t - 2) % g;
            let (c0, c1) = Self::chunk_bounds(len, g, c);
            if incoming.len() != c1 - c0 {
                return Err(SimError::Algorithm(format!(
                    "reduce-scatter contributions disagree in length: chunk {c} \
                     expected {} got {}",
                    c1 - c0,
                    incoming.len()
                )));
            }
            let mut acc = incoming;
            self.compute((c1 - c0) as u64);
            for (a, b) in acc.iter_mut().zip(&data[c0..c1]) {
                *a += b;
            }
            in_flight = acc;
        }
        // After g−1 steps the fully reduced chunk `me` is in hand.
        Ok(in_flight)
    }

    /// Large-message broadcast (van de Geijn scatter + allgather): the
    /// root sends each word once and every rank relays `≈ (g−1)/g` of
    /// the payload — total `≈ 2·len` words moved versus the binomial
    /// tree's `len·log g` from the root. Prefer this over
    /// [`Rank::broadcast`] when `len ≫ g·αt/βt`.
    pub fn broadcast_large(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        data: Option<Vec<f64>>,
    ) -> SimResult<Vec<f64>> {
        self.with_collective("broadcast_large", |rk| {
            rk.broadcast_large_impl(tag, group, root, data)
        })
    }

    fn broadcast_large_impl(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        data: Option<Vec<f64>>,
    ) -> SimResult<Vec<f64>> {
        let g = group.len();
        if g as u64 >= TAG_WINDOW {
            return Err(SimError::Algorithm(format!(
                "broadcast_large supports groups below {TAG_WINDOW} members, got {g}"
            )));
        }
        if g == 1 {
            return data
                .ok_or_else(|| SimError::Algorithm("broadcast root must supply data".into()));
        }
        let me = group.my_index(self)?;
        let root_idx = group
            .index_of(root)
            .ok_or_else(|| SimError::Algorithm(format!("broadcast root {root} not in group")))?;
        // Scatter segment lengths must be agreed by all ranks: ship the
        // total length in the segment payloads' first word.
        let blocks = if me == root_idx {
            let data =
                data.ok_or_else(|| SimError::Algorithm("broadcast root must supply data".into()))?;
            let len = data.len();
            Some(
                (0..g)
                    .map(|i| {
                        let (b0, b1) = Self::chunk_bounds(len, g, i);
                        let mut seg = Vec::with_capacity(b1 - b0 + 1);
                        seg.push(len as f64);
                        seg.extend_from_slice(&data[b0..b1]);
                        seg
                    })
                    .collect(),
            )
        } else {
            None
        };
        let my_seg = self.scatter(tag, group, root, blocks)?;
        let segments = self.allgather(tag.offset(1), group, my_seg)?;
        let mut out = Vec::new();
        for seg in segments {
            out.extend_from_slice(&seg[1..]);
        }
        Ok(out)
    }

    /// Large-message sum-reduction to `root` (reduce-scatter + gather):
    /// every rank moves `≈ 2·(g−1)/g · len` words versus the binomial
    /// tree's `len·log g` on internal nodes.
    pub fn reduce_sum_large(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        data: Vec<f64>,
    ) -> SimResult<Option<Vec<f64>>> {
        self.with_collective("reduce_sum_large", |rk| {
            rk.reduce_sum_large_impl(tag, group, root, data)
        })
    }

    fn reduce_sum_large_impl(
        &mut self,
        tag: Tag,
        group: &Group,
        root: usize,
        data: Vec<f64>,
    ) -> SimResult<Option<Vec<f64>>> {
        let g = group.len();
        if g > 64 {
            return Err(SimError::Algorithm(format!(
                "reduce_sum_large supports groups of at most 64 members \
                 (tag-window layout), got {g}"
            )));
        }
        if g == 1 {
            return Ok(Some(data));
        }
        let me = group.my_index(self)?;
        let root_idx = group
            .index_of(root)
            .ok_or_else(|| SimError::Algorithm(format!("reduce root {root} not in group")))?;
        let len = data.len();
        let chunk = self.reduce_scatter_sum(tag, group, data)?;
        let gathered = self.gather(tag.offset(64), group, root, chunk)?;
        if me != root_idx {
            return Ok(None);
        }
        let mut out = Vec::with_capacity(len);
        for c in gathered.expect("root gathers") {
            out.extend_from_slice(&c);
        }
        Ok(Some(out))
    }

    /// Inclusive prefix sum across the group (Hillis–Steele over ranks):
    /// member `i` returns `Σ_{j ≤ i} contribution_j`. `⌈log₂g⌉` rounds.
    pub fn scan_sum(&mut self, tag: Tag, group: &Group, data: Vec<f64>) -> SimResult<Vec<f64>> {
        self.with_collective("scan_sum", |rk| rk.scan_sum_impl(tag, group, data))
    }

    fn scan_sum_impl(&mut self, tag: Tag, group: &Group, data: Vec<f64>) -> SimResult<Vec<f64>> {
        let g = group.len();
        let me = group.my_index(self)?;
        let len = data.len();
        let mut partial = data;
        let mut d = 1usize;
        let mut round = 0u64;
        while d < g {
            if me + d < g {
                self.send_slice(group.member(me + d), tag.offset(round), &partial)?;
            }
            if me >= d {
                let incoming = self.recv(group.member(me - d), tag.offset(round))?;
                if incoming.len() != len {
                    return Err(SimError::Algorithm(
                        "scan contributions disagree in length".into(),
                    ));
                }
                self.compute(len as u64);
                for (a, b) in partial.iter_mut().zip(&incoming) {
                    *a += b;
                }
            }
            d <<= 1;
            round += 1;
        }
        Ok(partial)
    }

    /// Hypercube (store-and-forward) all-to-all: `log₂g` rounds, each
    /// exchanging half of the data with a cube neighbour — the
    /// "tree-based all-to-all" of the paper's FFT analysis
    /// (`W = (data/2)·log p`, `S = log p` per rank). Requires a
    /// power-of-two group and equal-length blocks.
    pub fn alltoall_hypercube(
        &mut self,
        tag: Tag,
        group: &Group,
        blocks: Vec<Vec<f64>>,
    ) -> SimResult<Vec<Vec<f64>>> {
        self.with_collective("alltoall_hypercube", |rk| {
            rk.alltoall_hypercube_impl(tag, group, blocks)
        })
    }

    fn alltoall_hypercube_impl(
        &mut self,
        tag: Tag,
        group: &Group,
        blocks: Vec<Vec<f64>>,
    ) -> SimResult<Vec<Vec<f64>>> {
        let g = group.len();
        if !g.is_power_of_two() {
            return Err(SimError::Algorithm(format!(
                "hypercube all-to-all needs a power-of-two group, got {g}"
            )));
        }
        if blocks.len() != g {
            return Err(SimError::Algorithm(format!(
                "alltoall needs one block per member: got {}, group size {g}",
                blocks.len()
            )));
        }
        let me = group.my_index(self)?;
        if g == 1 {
            return Ok(blocks);
        }
        // Records in flight: (source index, dest index, payload). Records
        // are self-describing on the wire ([src, dest, len, data...]) so
        // block lengths may vary across ranks.
        let mut records: Vec<(usize, usize, Vec<f64>)> = blocks
            .into_iter()
            .enumerate()
            .map(|(d, b)| (me, d, b))
            .collect();
        let rounds = g.trailing_zeros();
        for k in 0..rounds {
            let bit = 1usize << k;
            let partner = group.member(me ^ bit);
            let (keep, forward): (Vec<_>, Vec<_>) = records
                .into_iter()
                .partition(|(_, dest, _)| dest & bit == me & bit);
            let wire_len: usize = forward.iter().map(|(_, _, d)| d.len() + 3).sum();
            let mut payload = Vec::with_capacity(wire_len);
            for (src, dest, data) in &forward {
                payload.push(*src as f64);
                payload.push(*dest as f64);
                payload.push(data.len() as f64);
                payload.extend_from_slice(data);
            }
            let incoming = self.sendrecv(
                partner,
                tag.offset(k as u64),
                payload,
                partner,
                tag.offset(k as u64),
            )?;
            records = keep;
            let mut off = 0usize;
            while off < incoming.len() {
                let src = incoming[off] as usize;
                let dest = incoming[off + 1] as usize;
                let len = incoming[off + 2] as usize;
                records.push((src, dest, incoming[off + 3..off + 3 + len].to_vec()));
                off += 3 + len;
            }
        }
        // Every record is now addressed to me; order by source.
        let mut out: Vec<Option<Vec<f64>>> = vec![None; g];
        for (src, dest, data) in records {
            if dest != me {
                return Err(SimError::Algorithm(
                    "hypercube routing bug: misdelivered record".into(),
                ));
            }
            out[src] = Some(data);
        }
        out.into_iter()
            .enumerate()
            .map(|(src, b)| {
                b.ok_or_else(|| {
                    SimError::Algorithm(format!("hypercube all-to-all missing block from {src}"))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, SimConfig};

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn group_construction() {
        assert!(Group::new(vec![]).is_err());
        assert!(Group::new(vec![1, 2, 1]).is_err());
        let g = Group::new(vec![3, 1, 4]).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.index_of(4), Some(2));
        assert_eq!(g.index_of(9), None);
        assert_eq!(g.member(0), 3);
        assert_eq!(Group::world(4).members(), &[0, 1, 2, 3]);
        assert!(!g.is_empty());
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in 0..p {
                let out = Machine::run(p, cfg(), |rank| {
                    let group = Group::world(rank.size());
                    let data = if rank.rank() == root {
                        Some(vec![root as f64, 99.0])
                    } else {
                        None
                    };
                    rank.broadcast(Tag(0), &group, root, data)
                })
                .unwrap();
                for v in out.results {
                    assert_eq!(v, vec![root as f64, 99.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn broadcast_critical_path_is_logarithmic() {
        // With pure latency costs, binomial broadcast takes ⌈log₂p⌉·α.
        let cfg = SimConfig {
            gamma_t: 0.0,
            beta_t: 0.0,
            alpha_t: 1.0,
            ..SimConfig::default()
        };
        for p in [2usize, 4, 8, 16] {
            let out = Machine::run(p, cfg.clone(), |rank| {
                let group = Group::world(rank.size());
                let data = if rank.rank() == 0 {
                    Some(vec![1.0])
                } else {
                    None
                };
                rank.broadcast(Tag(0), &group, 0, data)?;
                Ok(())
            })
            .unwrap();
            let expected = (p as f64).log2().ceil();
            assert!(
                (out.profile.makespan - expected).abs() < 1e-9,
                "p={p}: makespan {} vs expected {expected}",
                out.profile.makespan
            );
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for p in [1usize, 2, 6, 9] {
            let out = Machine::run(p, cfg(), |rank| {
                let group = Group::world(rank.size());
                let data = vec![rank.rank() as f64, 1.0];
                rank.reduce_sum(Tag(0), &group, 0, data)
            })
            .unwrap();
            let total: f64 = (0..p).map(|r| r as f64).sum();
            assert_eq!(out.results[0], Some(vec![total, p as f64]));
            for r in 1..p {
                assert_eq!(out.results[r], None);
            }
        }
    }

    #[test]
    fn reduce_rejects_length_mismatch() {
        let r = Machine::run(2, cfg(), |rank| {
            let group = Group::world(rank.size());
            let data = vec![0.0; 1 + rank.rank()];
            rank.reduce_sum(Tag(0), &group, 0, data)
        });
        assert!(matches!(r, Err(SimError::Algorithm(_))));
    }

    #[test]
    fn allreduce_gives_everyone_the_sum() {
        let out = Machine::run(7, cfg(), |rank| {
            rank.allreduce_sum(Tag(0), vec![rank.rank() as f64])
        })
        .unwrap();
        for v in out.results {
            assert_eq!(v, vec![21.0]);
        }
    }

    #[test]
    fn checked_allreduce_passes_clean_and_catches_corruption() {
        // Clean run: identical result to the unchecked collective.
        let out = Machine::run(7, cfg(), |rank| {
            rank.allreduce_sum_checked(Tag(0), vec![rank.rank() as f64, 1.0], 1e-9)
        })
        .unwrap();
        for v in out.results {
            assert_eq!(v, vec![21.0, 7.0]);
        }
        // Corrupt every transfer (no ack protocol): the checksum word
        // and the data can no longer agree anywhere a fault landed.
        let fcfg = crate::machine::SimConfig {
            faults: Some(psse_faults::FaultPlan {
                spec: psse_faults::FaultSpec {
                    seed: 3,
                    corrupt_rate: 1.0,
                    ..Default::default()
                },
                ..Default::default()
            }),
            ..cfg()
        };
        let r = Machine::run(7, fcfg, |rank| {
            rank.allreduce_sum_checked(Tag(0), vec![rank.rank() as f64; 16], 1e-9)
        });
        assert!(
            matches!(r, Err(SimError::CorruptPayload { .. })),
            "corruption must be detected, got {r:?}"
        );
    }

    #[test]
    fn allgather_orders_blocks_by_group_index() {
        let out = Machine::run(5, cfg(), |rank| {
            let group = Group::world(rank.size());
            let block = vec![rank.rank() as f64; rank.rank() + 1]; // ragged
            rank.allgather(Tag(0), &group, block)
        })
        .unwrap();
        for blocks in out.results {
            for (i, b) in blocks.iter().enumerate() {
                assert_eq!(b.len(), i + 1);
                assert!(b.iter().all(|&x| x == i as f64));
            }
        }
    }

    #[test]
    fn alltoall_transposes_blocks() {
        let p = 6;
        let out = Machine::run(p, cfg(), |rank| {
            let group = Group::world(rank.size());
            let me = rank.rank();
            // Block for j encodes (me, j).
            let blocks: Vec<Vec<f64>> = (0..p).map(|j| vec![(me * 100 + j) as f64]).collect();
            rank.alltoall(Tag(0), &group, blocks)
        })
        .unwrap();
        for (me, received) in out.results.iter().enumerate() {
            for (j, b) in received.iter().enumerate() {
                assert_eq!(b, &vec![(j * 100 + me) as f64], "rank {me} from {j}");
            }
        }
    }

    #[test]
    fn alltoall_wrong_block_count_rejected() {
        let r = Machine::run(3, cfg(), |rank| {
            let group = Group::world(rank.size());
            rank.alltoall(Tag(0), &group, vec![vec![]; 2])
        });
        assert!(matches!(r, Err(SimError::Algorithm(_))));
    }

    #[test]
    fn barrier_completes_on_all_sizes() {
        for p in [1usize, 2, 3, 7, 8] {
            Machine::run(p, cfg(), |rank| {
                let group = Group::world(rank.size());
                rank.barrier(Tag(0), &group)
            })
            .unwrap();
        }
    }

    #[test]
    fn subgroup_collectives_are_independent() {
        // Two disjoint groups run allreduce concurrently with the same
        // base tag — no cross-talk because sources differ.
        let out = Machine::run(6, cfg(), |rank| {
            let me = rank.rank();
            let group = if me < 3 {
                Group::new(vec![0, 1, 2]).unwrap()
            } else {
                Group::new(vec![3, 4, 5]).unwrap()
            };
            rank.allreduce_sum_group(Tag(0), &group, vec![me as f64])
        })
        .unwrap();
        for me in 0..6 {
            let expect = if me < 3 { 3.0 } else { 12.0 };
            assert_eq!(out.results[me], vec![expect], "rank {me}");
        }
    }

    #[test]
    fn non_member_rank_is_rejected() {
        let r = Machine::run(2, cfg(), |rank| {
            let group = Group::new(vec![0]).unwrap();
            if rank.rank() == 1 {
                rank.barrier(Tag(0), &group)
            } else {
                Ok(())
            }
        });
        assert!(matches!(r, Err(SimError::Algorithm(_))));
    }

    #[test]
    fn scatter_distributes_blocks() {
        for p in [1usize, 2, 5, 8] {
            for root in [0, p - 1] {
                let out = Machine::run(p, cfg(), move |rank| {
                    let group = Group::world(rank.size());
                    let blocks = if rank.rank() == root {
                        Some((0..p).map(|i| vec![i as f64; i + 1]).collect())
                    } else {
                        None
                    };
                    rank.scatter(Tag(0), &group, root, blocks)
                })
                .unwrap();
                for (i, b) in out.results.iter().enumerate() {
                    assert_eq!(b, &vec![i as f64; i + 1], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn gather_collects_blocks_in_order() {
        let out = Machine::run(5, cfg(), |rank| {
            let group = Group::world(rank.size());
            rank.gather(Tag(0), &group, 2, vec![rank.rank() as f64])
        })
        .unwrap();
        for (i, r) in out.results.iter().enumerate() {
            if i == 2 {
                let blocks = r.as_ref().unwrap();
                for (j, b) in blocks.iter().enumerate() {
                    assert_eq!(b, &vec![j as f64]);
                }
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn reduce_scatter_sums_chunks() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            let len = 24; // divisible by all tested p
            let out = Machine::run(p, cfg(), move |rank| {
                let group = Group::world(rank.size());
                // Contribution of rank r: value r+1 everywhere.
                let data = vec![(rank.rank() + 1) as f64; len];
                rank.reduce_scatter_sum(Tag(0), &group, data)
            })
            .unwrap();
            let total: f64 = (1..=p).map(|r| r as f64).sum();
            let mut covered = 0;
            for (i, chunk) in out.results.iter().enumerate() {
                // Near-equal chunks: [i·len/p, (i+1)·len/p).
                let expect_len = (i + 1) * len / p - i * len / p;
                assert_eq!(chunk.len(), expect_len, "p={p} rank={i}");
                covered += chunk.len();
                assert!(
                    chunk.iter().all(|&x| x == total),
                    "p={p} rank={i}: {chunk:?}"
                );
            }
            assert_eq!(covered, len, "chunks must tile the vector");
        }
    }

    #[test]
    fn reduce_scatter_moves_fewer_words_than_binomial_reduce() {
        let p = 8;
        let len = 1 << 12;
        let ring = Machine::run(p, SimConfig::counters_only(), move |rank| {
            let group = Group::world(rank.size());
            rank.reduce_scatter_sum(Tag(0), &group, vec![1.0; len])?;
            Ok(())
        })
        .unwrap()
        .profile;
        let binomial = Machine::run(p, SimConfig::counters_only(), move |rank| {
            let group = Group::world(rank.size());
            rank.reduce_sum(Tag(0), &group, 0, vec![1.0; len])?;
            Ok(())
        })
        .unwrap()
        .profile;
        // Ring: every rank sends (p−1)/p·len < len; binomial senders
        // ship the full vector. And binomial internal nodes *receive*
        // up to log p full vectors, versus (p−1)/p·len on the ring.
        assert!(ring.max_words_sent() < binomial.max_words_sent());
        let ring_recv = ring.per_rank.iter().map(|s| s.words_recvd).max().unwrap();
        let bin_recv = binomial
            .per_rank
            .iter()
            .map(|s| s.words_recvd)
            .max()
            .unwrap();
        assert!(
            ring_recv < bin_recv,
            "ring {ring_recv} vs binomial {bin_recv}"
        );
    }

    #[test]
    fn broadcast_large_matches_binomial_result() {
        for p in [1usize, 2, 3, 6, 8] {
            let out = Machine::run(p, cfg(), move |rank| {
                let group = Group::world(rank.size());
                let data = if rank.rank() == 0 {
                    Some((0..37).map(|i| i as f64).collect())
                } else {
                    None
                };
                rank.broadcast_large(Tag(0), &group, 0, data)
            })
            .unwrap();
            let expect: Vec<f64> = (0..37).map(|i| i as f64).collect();
            for r in out.results {
                assert_eq!(r, expect, "p={p}");
            }
        }
    }

    #[test]
    fn broadcast_large_root_sends_less_than_binomial() {
        let p = 8;
        let len = 1 << 14;
        let run = |large: bool| {
            Machine::run(p, SimConfig::counters_only(), move |rank| {
                let group = Group::world(rank.size());
                let data = if rank.rank() == 0 {
                    Some(vec![1.0; len])
                } else {
                    None
                };
                if large {
                    rank.broadcast_large(Tag(0), &group, 0, data)?;
                } else {
                    rank.broadcast(Tag(0), &group, 0, data)?;
                }
                Ok(())
            })
            .unwrap()
            .profile
        };
        let large = run(true);
        let binomial = run(false);
        // Binomial root sends log2(8) = 3 full copies; scatter+allgather
        // root sends ~2 copies' worth.
        let root_large = large.per_rank[0].words_sent;
        let root_binomial = binomial.per_rank[0].words_sent;
        assert!(
            root_large < root_binomial,
            "large {root_large} vs binomial {root_binomial}"
        );
    }

    #[test]
    fn reduce_sum_large_matches_binomial() {
        for p in [1usize, 2, 4, 6] {
            let len = 24;
            let out = Machine::run(p, cfg(), move |rank| {
                let group = Group::world(rank.size());
                let data = vec![(rank.rank() + 1) as f64; len];
                rank.reduce_sum_large(Tag(0), &group, 0, data)
            })
            .unwrap();
            let total: f64 = (1..=p).map(|r| r as f64).sum();
            assert_eq!(out.results[0], Some(vec![total; len]), "p={p}");
            for r in &out.results[1..] {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn oversized_groups_rejected_by_large_collectives() {
        // Construct the error without running 200 threads by calling the
        // guard path directly on a small world with an oversized group
        // definition being impossible — instead check the documented cap
        // through a 65+-member artificial check.
        let members: Vec<usize> = (0..65).collect();
        let g = Group::new(members).unwrap();
        assert_eq!(g.len(), 65);
        // The cap itself is validated in-run for reduce_sum_large; the
        // broadcast_large cap is TAG_WINDOW. Both are compile-time
        // constants worth pinning:
        const { assert!(64 < TAG_WINDOW) };
    }

    #[test]
    fn scan_computes_prefix_sums() {
        for p in [1usize, 2, 3, 5, 8] {
            let out = Machine::run(p, cfg(), |rank| {
                let group = Group::world(rank.size());
                rank.scan_sum(Tag(0), &group, vec![rank.rank() as f64 + 1.0, 1.0])
            })
            .unwrap();
            for (i, r) in out.results.iter().enumerate() {
                let expect0: f64 = (1..=i + 1).map(|v| v as f64).sum();
                assert_eq!(r, &vec![expect0, (i + 1) as f64], "p={p} rank={i}");
            }
        }
    }

    #[test]
    fn reduce_scatter_rejects_length_mismatch() {
        let r = Machine::run(3, cfg(), |rank| {
            let group = Group::world(rank.size());
            let data = vec![1.0; 9 + rank.rank() * 3];
            rank.reduce_scatter_sum(Tag(0), &group, data)
        });
        assert!(matches!(r, Err(SimError::Algorithm(_))));
    }

    #[test]
    fn hypercube_alltoall_transposes_blocks() {
        let p = 8;
        let out = Machine::run(p, cfg(), |rank| {
            let group = Group::world(rank.size());
            let me = rank.rank();
            let blocks: Vec<Vec<f64>> = (0..p).map(|j| vec![(me * 100 + j) as f64, 0.5]).collect();
            rank.alltoall_hypercube(Tag(0), &group, blocks)
        })
        .unwrap();
        for (me, received) in out.results.iter().enumerate() {
            for (j, b) in received.iter().enumerate() {
                assert_eq!(b, &vec![(j * 100 + me) as f64, 0.5], "rank {me} from {j}");
            }
        }
    }

    #[test]
    fn hypercube_alltoall_message_count_is_logarithmic() {
        // S = log₂p messages per rank (one exchange per cube dimension),
        // versus p − 1 for the pairwise algorithm.
        let p = 16;
        let run = |hyper: bool| {
            Machine::run(p, SimConfig::counters_only(), move |rank| {
                let group = Group::world(rank.size());
                let blocks: Vec<Vec<f64>> = (0..p).map(|_| vec![1.0; 8]).collect();
                if hyper {
                    rank.alltoall_hypercube(Tag(0), &group, blocks)?;
                } else {
                    rank.alltoall(Tag(0), &group, blocks)?;
                }
                Ok(())
            })
            .unwrap()
            .profile
        };
        let hyper = run(true);
        let naive = run(false);
        assert_eq!(hyper.per_rank[0].msgs_sent, 4); // log2(16)
        assert_eq!(naive.per_rank[0].msgs_sent, 15); // p − 1
                                                     // The price: the hypercube moves more words.
        assert!(hyper.per_rank[0].words_sent > naive.per_rank[0].words_sent);
    }

    #[test]
    fn hypercube_rejects_bad_inputs() {
        let r = Machine::run(3, cfg(), |rank| {
            let group = Group::world(rank.size());
            rank.alltoall_hypercube(Tag(0), &group, vec![vec![]; 3])
        });
        assert!(matches!(r, Err(SimError::Algorithm(_))), "non power of two");
    }

    #[test]
    fn hypercube_supports_ragged_blocks() {
        // Records are self-describing, so block lengths may vary.
        let p = 4;
        let out = Machine::run(p, cfg(), |rank| {
            let group = Group::world(rank.size());
            let me = rank.rank();
            let blocks: Vec<Vec<f64>> = (0..p).map(|j| vec![me as f64; j + 1]).collect();
            rank.alltoall_hypercube(Tag(0), &group, blocks)
        })
        .unwrap();
        for (me, received) in out.results.iter().enumerate() {
            for (j, b) in received.iter().enumerate() {
                assert_eq!(b, &vec![j as f64; me + 1], "rank {me} from {j}");
            }
        }
    }

    #[test]
    fn hypercube_single_rank_is_identity() {
        let out = Machine::run(1, cfg(), |rank| {
            let group = Group::world(1);
            rank.alltoall_hypercube(Tag(0), &group, vec![vec![3.0]])
        })
        .unwrap();
        assert_eq!(out.results[0], vec![vec![3.0]]);
    }

    #[test]
    fn reduction_charges_flops() {
        let out = Machine::run(4, cfg(), |rank| {
            let group = Group::world(rank.size());
            rank.reduce_sum(Tag(0), &group, 0, vec![1.0; 100])?;
            Ok(())
        })
        .unwrap();
        // 3 pairwise merges of 100 elements happen somewhere in the tree.
        assert_eq!(out.profile.total_flops(), 300);
    }
}
