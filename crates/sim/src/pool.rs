//! Reusable rank-thread pool.
//!
//! A fault sweep or lab batch calls [`crate::Machine::run`] thousands of
//! times; spawning and joining `p` OS threads per call dominated the
//! wall-clock cost of small runs. This pool keeps finished rank threads
//! parked on private job channels and hands them to the next run, so a
//! sweep at fixed `p` pays thread creation once.
//!
//! The jobs a run dispatches borrow from its stack frame (the rank
//! closure, the result slots), so they are not `'static`. [`Crew`]
//! provides the scoped-spawn guarantee `std::thread::scope` gives:
//! every dispatched job has finished — and been dropped — before the
//! borrows expire. The guarantee is enforced by `Crew`'s destructor,
//! which blocks until each job has signalled completion through an
//! owned channel sender whose signal fires on drop (so a panicking job
//! still signals). The single `unsafe` in this crate is the lifetime
//! erasure of the boxed job; it is sound because the destructor cannot
//! be skipped while the enclosing `Machine::run` frame unwinds.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Mutex, OnceLock, PoisonError};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A parked worker: the sending half of its private job channel.
struct Worker {
    tx: Sender<Job>,
}

/// Default ceiling on parked workers; beyond it, workers are dropped
/// and their threads exit when the channel disconnects. Configurable
/// per run via `SimConfig::pool_idle_max` and overridable process-wide
/// with the `PSSE_POOL_IDLE_MAX` environment variable.
pub(crate) const IDLE_CAP: usize = 4096;

/// Parked threads are not free: even fully blocked, each one taxes the
/// small runs that follow (measurably ~1 µs per parked thread per
/// `Machine::run` at small `p` — scheduler/allocator bookkeeping, seen
/// on single-core hosts). So the pool tracks demand: when a run
/// finishes, the idle list is trimmed to twice that run's rank count,
/// but never below this floor (default; see
/// `SimConfig::pool_idle_floor`). Consecutive same-`p` runs (a sweep's
/// hot loop) stay fully pooled; dropping from `p = 1024` to a small-`p`
/// phase sheds the oversized fleet after the first small run instead of
/// taxing every one that follows.
pub(crate) const IDLE_FLOOR: usize = 64;

/// Resolve the idle-trim limits a run will use: the configured values,
/// with the cap overridden by `PSSE_POOL_IDLE_MAX` when set to a valid
/// number, and the floor clamped so `floor <= cap` always holds (a
/// reversed pair would make `usize::clamp` panic in `Drop for Crew`).
pub(crate) fn effective_limits(cfg_floor: usize, cfg_cap: usize) -> (usize, usize) {
    let env = std::env::var("PSSE_POOL_IDLE_MAX").ok();
    resolve_limits(cfg_floor, cfg_cap, env.as_deref())
}

/// Pure core of [`effective_limits`], testable without touching the
/// process environment.
fn resolve_limits(cfg_floor: usize, cfg_cap: usize, env_cap: Option<&str>) -> (usize, usize) {
    let cap = env_cap
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(cfg_cap);
    (cfg_floor.min(cap), cap)
}

fn idle() -> &'static Mutex<Vec<Worker>> {
    static IDLE: OnceLock<Mutex<Vec<Worker>>> = OnceLock::new();
    IDLE.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_idle() -> std::sync::MutexGuard<'static, Vec<Worker>> {
    idle().lock().unwrap_or_else(PoisonError::into_inner)
}

fn take_worker() -> Worker {
    if let Some(w) = lock_idle().pop() {
        return w;
    }
    let (tx, rx) = std::sync::mpsc::channel::<Job>();
    std::thread::Builder::new()
        .name("psse-rank".into())
        .spawn(move || worker_loop(rx))
        .expect("spawn rank worker thread");
    Worker { tx }
}

fn worker_loop(rx: Receiver<Job>) {
    // Exits when the channel disconnects (the Worker handle was dropped,
    // e.g. evicted from the idle list).
    while let Ok(job) = rx.recv() {
        // A panic is already caught and converted inside the job wrapper
        // (see Machine::run); this outer catch only shields the worker
        // from a panicking Drop of the job's captures.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// Signals completion when dropped, whether the job ran, panicked, or
/// was dropped unexecuted — exactly the cases [`Crew`] must count.
struct DoneGuard(Sender<()>);

impl Drop for DoneGuard {
    fn drop(&mut self) {
        let _ = self.0.send(());
    }
}

/// One run's worth of pooled workers. Dispatch jobs with
/// [`Crew::execute`]; the destructor blocks until every job has
/// completed and only then returns the workers to the idle pool.
pub(crate) struct Crew {
    workers: Vec<Worker>,
    dispatched: usize,
    done_tx: Sender<()>,
    done_rx: Receiver<()>,
    /// Idle-trim floor applied by this crew's destructor.
    idle_floor: usize,
    /// Idle-pool ceiling applied by this crew's destructor.
    idle_cap: usize,
}

impl Crew {
    #[cfg(test)]
    pub(crate) fn new() -> Crew {
        Crew::with_limits(IDLE_FLOOR, IDLE_CAP)
    }

    /// A crew whose destructor trims the idle pool to
    /// `(2·dispatched).clamp(floor, cap)`. Callers must guarantee
    /// `floor <= cap` (see [`effective_limits`]).
    pub(crate) fn with_limits(floor: usize, cap: usize) -> Crew {
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        Crew {
            workers: Vec::new(),
            dispatched: 0,
            done_tx,
            done_rx,
            idle_floor: floor,
            idle_cap: cap,
        }
    }

    /// Run `job` on a pooled worker thread. The job may borrow from the
    /// caller's frame: `Crew`'s destructor keeps those borrows alive
    /// until the job has finished and been dropped.
    pub(crate) fn execute<'scope, F>(&mut self, job: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let done = DoneGuard(self.done_tx.clone());
        let wrapper: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let _done = done; // signals after `job` (and its captures) are gone
            job();
        });
        // SAFETY: the wrapper (and the `'scope` borrows it captures) is
        // dropped before its DoneGuard signals, and `Crew::drop` blocks
        // until `dispatched` signals have been received before the
        // `'scope` frame can unwind past it. The transmute only erases
        // the lifetime; the vtable and layout are unchanged.
        let wrapper: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(wrapper) };
        self.dispatched += 1;
        let worker = take_worker();
        match worker.tx.send(wrapper) {
            Ok(()) => self.workers.push(worker),
            Err(send_err) => {
                // The pooled thread is gone (its spawn must have failed
                // mid-construction); run the job on a fresh dedicated
                // thread instead. The job is already `'static`-erased.
                let job = send_err.0;
                std::thread::Builder::new()
                    .name("psse-rank".into())
                    .spawn(move || {
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    })
                    .expect("spawn fallback rank thread");
            }
        }
    }
}

impl Drop for Crew {
    fn drop(&mut self) {
        for _ in 0..self.dispatched {
            // Cannot fail: we hold one `done_tx`, so the channel never
            // disconnects, and every dispatched wrapper owns a DoneGuard
            // that signals when the wrapper is dropped — run or not.
            let _ = self.done_rx.recv();
        }
        let cap = (2 * self.dispatched).clamp(self.idle_floor, self.idle_cap);
        let mut idle = lock_idle();
        while let Some(w) = self.workers.pop() {
            if idle.len() >= self.idle_cap {
                break; // dropped workers let their threads exit
            }
            idle.push(w);
        }
        // Demand-based trim (see IDLE_FLOOR): drop parked workers beyond
        // what a run of this size plausibly needs again.
        if idle.len() > cap {
            idle.truncate(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_and_crew_waits() {
        let counter = AtomicUsize::new(0);
        {
            let mut crew = Crew::new();
            for _ in 0..8 {
                crew.execute(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop blocks until all 8 ran
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn borrowed_state_is_released_before_drop_returns() {
        let mut values = [0usize; 4];
        {
            let mut crew = Crew::new();
            for (i, v) in values.iter_mut().enumerate() {
                crew.execute(move || *v = i + 1);
            }
        }
        assert_eq!(values, [1, 2, 3, 4]);
    }

    #[test]
    fn panicking_job_still_signals() {
        let mut crew = Crew::new();
        crew.execute(|| panic!("deliberate"));
        drop(crew); // must not hang
    }

    #[test]
    fn workers_are_reused_across_crews() {
        // Run two batches and check the idle pool does not grow past the
        // first batch's size (i.e. batch two reused batch one's threads).
        let run = || {
            let mut crew = Crew::new();
            for _ in 0..4 {
                crew.execute(std::thread::yield_now);
            }
        };
        run();
        let after_first = lock_idle().len();
        run();
        let after_second = lock_idle().len();
        assert!(
            after_second <= after_first.max(4),
            "second batch must reuse parked workers: {after_first} -> {after_second}"
        );
    }

    #[test]
    fn small_run_trims_an_oversized_idle_pool() {
        // A big crew parks a large fleet; the next small crew must shed
        // it down to its own demand (other tests sharing the process
        // pool can only trim further, never inflate past IDLE_CAP).
        let big = 150;
        {
            let mut crew = Crew::new();
            for _ in 0..big {
                crew.execute(std::thread::yield_now);
            }
        }
        {
            let mut crew = Crew::new();
            for _ in 0..2 {
                crew.execute(std::thread::yield_now);
            }
        }
        let idle_now = lock_idle().len();
        assert!(
            idle_now < big,
            "idle pool must be trimmed after a small run: {idle_now}"
        );
    }

    #[test]
    fn resolve_limits_applies_env_and_orders_the_pair() {
        // No override: configured values pass through.
        assert_eq!(resolve_limits(64, 4096, None), (64, 4096));
        // Valid override replaces the cap.
        assert_eq!(resolve_limits(64, 4096, Some("128")), (64, 128));
        assert_eq!(resolve_limits(64, 4096, Some(" 9000 ")), (64, 9000));
        // Garbage override is ignored.
        assert_eq!(resolve_limits(64, 4096, Some("lots")), (64, 4096));
        // A cap below the floor pulls the floor down — never a reversed
        // pair (usize::clamp panics on min > max).
        assert_eq!(resolve_limits(64, 4096, Some("8")), (8, 8));
        assert_eq!(resolve_limits(100, 10, None), (10, 10));
    }

    #[test]
    fn tiny_cap_crew_trims_the_pool_hard() {
        {
            let mut crew = Crew::with_limits(2, 2);
            for _ in 0..16 {
                crew.execute(std::thread::yield_now);
            }
        }
        // Loose bound: other tests share the process-wide pool and may
        // park their own workers concurrently, but this crew's 16 must
        // not survive its own cap-2 trim.
        assert!(
            lock_idle().len() < 16,
            "cap 2 must trim this crew's 16 parked workers"
        );
    }

    #[test]
    fn concurrent_crews_do_not_share_workers_mid_job() {
        // Two crews running simultaneously must get disjoint workers;
        // otherwise two blocking ranks could serialize on one thread.
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut crews: Vec<Crew> = Vec::new();
        for _ in 0..2 {
            let mut crew = Crew::new();
            for _ in 0..4 {
                let b = Arc::clone(&barrier);
                crew.execute(move || {
                    b.wait(); // deadlocks unless all 8 jobs run concurrently
                });
            }
            crews.push(crew);
        }
        drop(crews);
    }
}
